// Ablation A4 — microbenchmarks of the crypto substrate (google-benchmark).
//
// The proxy-capacity claims of Figure 5 rest on the per-record crypto being
// cheap relative to network/stack costs; these microbenches pin down what
// each primitive actually costs in this implementation.
#include <benchmark/benchmark.h>

#include "common/bytes.hpp"
#include "crypto/aead.hpp"
#include "crypto/hmac.hpp"
#include "crypto/random.hpp"
#include "crypto/secure_channel.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"

namespace {

using namespace xsearch;          // NOLINT
using namespace xsearch::crypto;  // NOLINT

void BM_Sha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key(32, 0x11);
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_AeadSeal(benchmark::State& state) {
  AeadKey::Raw raw{};
  raw.fill(0x42);
  const AeadKey key = AeadKey::absorb(raw);
  const Bytes plaintext(static_cast<std::size_t>(state.range(0)), 0xcd);
  std::uint64_t counter = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        aead_seal(key, make_nonce(1, counter++), {}, plaintext));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AeadSeal)->Arg(64)->Arg(1024)->Arg(16384);

void BM_AeadOpen(benchmark::State& state) {
  AeadKey::Raw raw{};
  raw.fill(0x42);
  const AeadKey key = AeadKey::absorb(raw);
  const Bytes plaintext(static_cast<std::size_t>(state.range(0)), 0xcd);
  const Bytes sealed = aead_seal(key, make_nonce(1, 7), {}, plaintext);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aead_open(key, make_nonce(1, 7), {}, sealed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AeadOpen)->Arg(64)->Arg(1024)->Arg(16384);

void BM_X25519SharedSecret(benchmark::State& state) {
  X25519Secret::Raw a{}, b{};
  a.fill(1);
  b.fill(2);
  const auto alice = x25519_keypair_from_seed(X25519Secret::absorb(a));
  const auto bob = x25519_keypair_from_seed(X25519Secret::absorb(b));
  for (auto _ : state) {
    benchmark::DoNotOptimize(x25519(alice.private_key, bob.public_key));
  }
}
BENCHMARK(BM_X25519SharedSecret);

void BM_SecureChannelRoundTrip(benchmark::State& state) {
  ChaChaKey::Raw seed{};
  seed.fill(3);
  SecureRandom rng(ChaChaKey::absorb(seed));
  const auto server_static = x25519_keypair_from_seed(rng.key());
  const auto client_eph = x25519_keypair_from_seed(rng.key());
  const auto server_eph = x25519_keypair_from_seed(rng.key());
  auto client = SecureChannel::initiator(client_eph, server_static.public_key,
                                         server_eph.public_key);
  auto server =
      SecureChannel::responder(server_static, server_eph, client_eph.public_key);

  const Bytes query = to_bytes("a typical web search query");
  for (auto _ : state) {
    const Bytes record = client.seal(query);
    auto opened = server.open(record);
    benchmark::DoNotOptimize(opened);
    const Bytes response = server.seal(query);
    auto opened2 = client.open(response);
    benchmark::DoNotOptimize(opened2);
  }
}
BENCHMARK(BM_SecureChannelRoundTrip);

void BM_HandshakeKeyDerivation(benchmark::State& state) {
  ChaChaKey::Raw seed{};
  seed.fill(4);
  SecureRandom rng(ChaChaKey::absorb(seed));
  const auto server_static = x25519_keypair_from_seed(rng.key());
  const auto server_eph = x25519_keypair_from_seed(rng.key());
  std::uint8_t i = 0;
  for (auto _ : state) {
    X25519Secret::Raw ec{};
    ec.fill(++i);
    const auto client_eph = x25519_keypair_from_seed(X25519Secret::absorb(ec));
    benchmark::DoNotOptimize(SecureChannel::initiator(
        client_eph, server_static.public_key, server_eph.public_key));
  }
}
BENCHMARK(BM_HandshakeKeyDerivation);

}  // namespace

BENCHMARK_MAIN();
