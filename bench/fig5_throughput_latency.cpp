// Figure 5 — latency vs offered throughput for X-Search, PEAS and Tor.
//
// Paper claims (§6.3): X-Search serves ~25,000 req/s with sub-second
// latency; PEAS saturates around 1,000 req/s; Tor around 100 req/s — one
// and two orders of magnitude apart. Measurements are taken with a
// wrk2-style open-loop generator and the proxies configured to reply
// immediately (no live engine), isolating proxy capacity.
//
// Every mechanism is driven through the unified PrivateSearchClient API:
// the client is built by name from the MechanismRegistry, and the load is
// offered through the asynchronous batch path (submit/poll on the client's
// own worker lanes), so any registered mechanism — including a sixth one —
// is benchable by passing its name on the command line.
//
// What is real here: every request executes the full proxy compute path
// (X-Search: channel AEAD open/seal + Algorithm 1 + history update inside
// the enclave boundary; PEAS: hybrid envelope decryption + co-occurrence
// fake generation; Tor: three onion layers each way). What is calibrated:
// a per-request stack/network service cost per system
// (netsim::service_costs::for_mechanism) sized so the saturation knees land
// at the paper's magnitudes — documented in EXPERIMENTS.md.
//
// The special name "xsearch-remote" drives the same saturation load over
// real TCP: an in-process ProxyServer fronts the proxy, the unified client
// is api::make_remote_client, and each batch lane holds its own attested
// session — so the bench exercises the bounded SessionTable and the
// pool-served connection path concurrently, end to end, and reports the
// session-lifecycle counters afterwards.
//
// Run: ./build/bench/fig5_throughput_latency [mechanism...]
//      (default: xsearch peas tor; any registered name or xsearch-remote)
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/client.hpp"
#include "api/load_driver.hpp"
#include "api/registry.hpp"
#include "api/remote.hpp"
#include "api/xsearch_options.hpp"
#include "bench_common.hpp"
#include "loadgen/loadgen.hpp"
#include "net/proxy_server.hpp"
#include "netsim/netsim.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/proxy.hpp"

namespace {

using namespace xsearch;  // NOLINT

constexpr std::size_t kWorkers = 4;

void print_row(const std::string& system, const loadgen::LoadReport& report) {
  std::printf("%-10s %10.0f %12.1f %10.3f %10.3f %10.3f %8llu\n",
              system.c_str(), report.offered_rps, report.achieved_rps,
              report.mean_ms(), report.p50_ms(), report.p99_ms(),
              static_cast<unsigned long long>(report.dropped));
}

loadgen::LoadConfig config_for(double rps) {
  loadgen::LoadConfig config;
  config.target_rps = rps;
  config.duration = 400 * kMilli;
  return config;
}

/// Offered-rate grids bracketing each system's saturation knee.
const std::vector<double>& rate_grid(const std::string& mechanism) {
  static const std::map<std::string, std::vector<double>> grids = {
      {"xsearch", {1000.0, 5000.0, 10000.0, 15000.0, 20000.0, 24000.0,
                   27000.0, 30000.0}},
      {"peas", {100.0, 300.0, 600.0, 800.0, 1000.0, 1200.0, 1500.0}},
      {"tor", {10.0, 25.0, 50.0, 75.0, 100.0, 120.0, 150.0}},
      // Real TCP round trips: the knee sits well below the in-process one.
      {"xsearch-remote", {500.0, 1000.0, 2000.0, 4000.0, 8000.0}},
  };
  static const std::vector<double> generic = {1000.0, 5000.0, 10000.0,
                                              20000.0, 40000.0};
  const auto it = grids.find(mechanism);
  return it != grids.end() ? it->second : generic;
}

/// Networked X-Search deployment for "xsearch-remote": a saturation-mode
/// proxy behind a pool-served ProxyServer on an ephemeral loopback port.
struct RemoteDeployment {
  RemoteDeployment() : authority(xsearch::to_bytes("fig5-remote-root")) {}

  xsearch::sgx::AttestationAuthority authority;
  std::unique_ptr<xsearch::core::XSearchProxy> proxy;
  std::unique_ptr<xsearch::net::ProxyServer> server;
};

std::unique_ptr<RemoteDeployment> start_remote_deployment(
    const api::ClientConfig& config) {
  auto deployment = std::make_unique<RemoteDeployment>();
  // Same translation as the in-process "xsearch" mechanism — the two must
  // not drift, or remote and in-process measurements stop being comparable.
  core::XSearchProxy::Options options = api::xsearch_proxy_options(config);
  options.contact_engine = false;  // saturation mode, no engine deployed
  auto proxy =
      core::XSearchProxy::create(nullptr, deployment->authority, options);
  if (!proxy.is_ok()) {
    std::fprintf(stderr, "xsearch-remote proxy: %s\n",
                 proxy.status().to_string().c_str());
    return nullptr;
  }
  deployment->proxy = std::move(proxy).value();
  auto server = net::ProxyServer::start(*deployment->proxy);
  if (!server.is_ok()) {
    std::fprintf(stderr, "xsearch-remote server: %s\n",
                 server.status().to_string().c_str());
    return nullptr;
  }
  deployment->server = std::move(server).value();
  return deployment;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("# Figure 5: latency vs offered throughput (proxy saturation)\n");

  std::vector<std::string> mechanisms = {"xsearch", "peas", "tor"};
  if (argc > 1) mechanisms.assign(argv + 1, argv + argc);

  const auto bed = bench::make_testbed(
      {.num_users = 100, .total_queries = 10'000, .num_documents = 100});
  const std::string sample_query = bed->split.test.records()[0].text;

  std::printf("%-10s %10s %12s %10s %10s %10s %8s\n", "system", "offered",
              "achieved", "mean_ms", "p50_ms", "p99_ms", "dropped");

  std::uint64_t seed = 100;
  for (const auto& name : mechanisms) {
    api::ClientConfig config;
    config.contact_engine = false;  // reply-immediately saturation mode
    config.k = 3;
    config.top_k = 20;
    config.history_capacity = 100'000;
    config.batch_workers = kWorkers;
    config.seed = seed += 100;

    const bool remote = name == "xsearch-remote";
    std::unique_ptr<RemoteDeployment> deployment;
    api::ClientPtr client_ptr;
    if (remote) {
      // Real sockets supply the stack cost the in-process run calibrates.
      deployment = start_remote_deployment(config);
      if (deployment == nullptr) continue;
      client_ptr = api::make_remote_client(
          "127.0.0.1", deployment->server->port(), deployment->authority,
          deployment->proxy->measurement(), config);
    } else {
      config.stack_cost_per_request =
          netsim::service_costs::for_mechanism(name).cost_per_request;
      api::Backend backend;  // no engine: proxies answer without retrieval
      backend.fake_source = &bed->split.train;
      auto client = api::make_client(name, backend, config);
      if (!client.is_ok()) {
        std::fprintf(stderr, "%s: %s\n", name.c_str(),
                     client.status().to_string().c_str());
        continue;
      }
      client_ptr = std::move(client).value();
    }
    if (const auto status = client_ptr->connect(); !status.is_ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(), status.to_string().c_str());
      continue;
    }

    for (const double rps : rate_grid(name)) {
      const auto report = api::run_open_loop_batch(
          *client_ptr, [&] { return sample_query; }, config_for(rps));
      print_row(name, report);
    }
    client_ptr->close();

    if (remote) {
      // One attested session per batch lane, all concurrently live: the
      // multi-threaded shared-table claim of §4.1, measured.
      const auto stats = deployment->proxy->session_stats();
      std::printf("# %s sessions: peak=%zu created=%llu evicted=%llu "
                  "connections=%llu reaped=%llu\n",
                  name.c_str(), stats.peak_active,
                  static_cast<unsigned long long>(stats.created),
                  static_cast<unsigned long long>(stats.evicted_lru +
                                                  stats.expired_ttl),
                  static_cast<unsigned long long>(
                      deployment->server->connections_served()),
                  static_cast<unsigned long long>(
                      deployment->server->connections_reaped()));
      deployment->server->stop();
    }
  }

  std::printf("\n# paper: X-Search ~25k req/s sub-second; PEAS ~1k; Tor ~100\n");
  return 0;
}
