// Figure 5 — latency vs offered throughput for X-Search, PEAS and Tor.
//
// Paper claims (§6.3): X-Search serves ~25,000 req/s with sub-second
// latency; PEAS saturates around 1,000 req/s; Tor around 100 req/s — one
// and two orders of magnitude apart. Measurements are taken with a
// wrk2-style open-loop generator and the proxies configured to reply
// immediately (no live engine), isolating proxy capacity.
//
// What is real here: every request executes the full proxy compute path
// (X-Search: channel AEAD open/seal + Algorithm 1 + history update inside
// the enclave boundary; PEAS: hybrid envelope decryption + co-occurrence
// fake generation; Tor: three onion layers each way). What is calibrated:
// a per-request stack/network service cost per system (netsim::service_costs)
// sized so the saturation knees land at the paper's magnitudes — documented
// in EXPERIMENTS.md.
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "baselines/peas/peas.hpp"
#include "baselines/tor/tor.hpp"
#include "bench_common.hpp"
#include "loadgen/loadgen.hpp"
#include "netsim/netsim.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/broker.hpp"
#include "xsearch/proxy.hpp"

namespace {

using namespace xsearch;  // NOLINT

constexpr std::size_t kWorkers = 4;

/// Hands each load-generator worker thread its own client (brokers and
/// baseline clients keep per-session state and are not thread-safe).
template <typename Client>
class ClientPool {
 public:
  explicit ClientPool(std::vector<std::unique_ptr<Client>> clients)
      : clients_(std::move(clients)) {}

  Client& acquire() {
    thread_local Client* mine = nullptr;
    if (mine == nullptr) {
      const std::size_t idx = next_.fetch_add(1) % clients_.size();
      mine = clients_[idx].get();
    }
    return *mine;
  }

 private:
  std::vector<std::unique_ptr<Client>> clients_;
  std::atomic<std::size_t> next_{0};
};

void print_row(const char* system, const loadgen::LoadReport& report) {
  std::printf("%-10s %10.0f %12.1f %10.3f %10.3f %10.3f %8llu\n", system,
              report.offered_rps, report.achieved_rps, report.mean_ms(),
              report.p50_ms(), report.p99_ms(),
              static_cast<unsigned long long>(report.dropped));
}

loadgen::LoadConfig config_for(double rps) {
  loadgen::LoadConfig config;
  config.target_rps = rps;
  config.duration = 400 * kMilli;
  config.workers = kWorkers;
  return config;
}

}  // namespace

int main() {
  std::printf("# Figure 5: latency vs offered throughput (proxy saturation)\n");
  std::printf("%-10s %10s %12s %10s %10s %10s %8s\n", "system", "offered",
              "achieved", "mean_ms", "p50_ms", "p99_ms", "dropped");

  const auto bed = bench::make_testbed(
      {.num_users = 100, .total_queries = 10'000, .num_documents = 100});

  const std::string sample_query = bed->split.test.records()[0].text;

  // ---- X-Search proxy in reply-immediately mode -------------------------------
  {
    sgx::AttestationAuthority authority(to_bytes("bench-root"));
    core::XSearchProxy::Options options;
    options.contact_engine = false;
    options.k = 3;
    options.history_capacity = 100'000;
    core::XSearchProxy proxy(nullptr, authority, options);

    std::vector<std::unique_ptr<core::ClientBroker>> brokers;
    for (std::size_t i = 0; i < kWorkers; ++i) {
      brokers.push_back(std::make_unique<core::ClientBroker>(
          proxy, authority, proxy.measurement(), 100 + i));
      (void)brokers.back()->connect();
    }
    ClientPool<core::ClientBroker> pool(std::move(brokers));
    const auto cost = netsim::service_costs::xsearch_proxy();

    for (const double rps : {1000.0, 5000.0, 10000.0, 15000.0, 20000.0, 24000.0,
                             27000.0, 30000.0}) {
      const auto report = loadgen::run_open_loop(
          [&] {
            cost.charge();
            (void)pool.acquire().search(sample_query);
          },
          config_for(rps));
      print_row("X-Search", report);
    }
  }

  // ---- PEAS two-proxy chain -----------------------------------------------------
  {
    baselines::peas::FakeQueryGenerator fakes(bed->split.train);
    baselines::peas::PeasIssuer issuer(nullptr, 7);
    baselines::peas::PeasReceiver receiver(issuer);

    std::vector<std::unique_ptr<baselines::peas::PeasClient>> clients;
    for (std::size_t i = 0; i < kWorkers; ++i) {
      clients.push_back(std::make_unique<baselines::peas::PeasClient>(
          static_cast<std::uint32_t>(i), receiver, issuer.public_key(), fakes, 3,
          200 + i));
    }
    ClientPool<baselines::peas::PeasClient> pool(std::move(clients));
    const auto cost = netsim::service_costs::peas_chain();

    for (const double rps : {100.0, 300.0, 600.0, 800.0, 1000.0, 1200.0, 1500.0}) {
      const auto report = loadgen::run_open_loop(
          [&] {
            cost.charge();
            (void)pool.acquire().search(sample_query);
          },
          config_for(rps));
      print_row("PEAS", report);
    }
  }

  // ---- Tor circuit ------------------------------------------------------------------
  {
    baselines::tor::TorRelay entry(1), middle(2), exit(3);
    std::vector<std::unique_ptr<baselines::tor::TorClient>> clients;
    for (std::size_t i = 0; i < kWorkers; ++i) {
      clients.push_back(std::make_unique<baselines::tor::TorClient>(
          std::vector<baselines::tor::TorRelay*>{&entry, &middle, &exit}, nullptr,
          300 + i));
    }
    ClientPool<baselines::tor::TorClient> pool(std::move(clients));
    const auto cost = netsim::service_costs::tor_circuit();

    for (const double rps : {10.0, 25.0, 50.0, 75.0, 100.0, 120.0, 150.0}) {
      const auto report = loadgen::run_open_loop(
          [&] {
            cost.charge();
            (void)pool.acquire().search(sample_query);
          },
          config_for(rps));
      print_row("Tor", report);
    }
  }

  std::printf("\n# paper: X-Search ~25k req/s sub-second; PEAS ~1k; Tor ~100\n");
  return 0;
}
