// Figure 5 — latency vs offered throughput for X-Search, PEAS and Tor.
//
// Paper claims (§6.3): X-Search serves ~25,000 req/s with sub-second
// latency; PEAS saturates around 1,000 req/s; Tor around 100 req/s — one
// and two orders of magnitude apart. Measurements are taken with a
// wrk2-style open-loop generator and the proxies configured to reply
// immediately (no live engine), isolating proxy capacity.
//
// Every mechanism is driven through the unified PrivateSearchClient API:
// the client is built by name from the MechanismRegistry, and the load is
// offered through the asynchronous batch path (submit/poll on the client's
// own worker lanes), so any registered mechanism — including a sixth one —
// is benchable by passing its name on the command line.
//
// What is real here: every request executes the full proxy compute path
// (X-Search: channel AEAD open/seal + Algorithm 1 + history update inside
// the enclave boundary; PEAS: hybrid envelope decryption + co-occurrence
// fake generation; Tor: three onion layers each way). What is calibrated:
// a per-request stack/network service cost per system
// (netsim::service_costs::for_mechanism) sized so the saturation knees land
// at the paper's magnitudes — documented in EXPERIMENTS.md.
//
// The special name "xsearch-remote" drives the same saturation load over
// real TCP: an in-process ProxyServer fronts the proxy, the unified client
// is api::make_remote_client, and each batch lane holds its own attested
// session — so the bench exercises the bounded SessionTable and the
// pool-served connection path concurrently, end to end, and reports the
// session-lifecycle counters afterwards.
//
// The special name "xsearch-sessions" is the concurrent-scaling mode: one
// shared saturation proxy, S closed-loop client sessions on S threads for
// S in {1,2,4,8}. With per-session RNG streams and reader/writer history
// there is no global lock on the query path, so aggregate throughput should
// track the hardware parallelism available instead of flattening against a
// serialization point (on a 1-core container it stays level; the thing to
// check is that it does not *collapse* as sessions are added).
//
// The special name "xsearch-switchless" is the boundary-transport mode:
// the same 4-session closed loop run twice against one saturation proxy —
// classic per-request ecall vs the exitless job ring — reporting achieved
// qps, real enclave transitions per query (the ring drives this to ~0) and
// the ring's fallback/park/wakeup counters. See run_switchless_sweep below.
//
// The special name "xsearch-fleet" is the scale-out mode: a ProxyFleet of
// {1,2,4} consistent-hash-routed workers behind one ProxyServer, swept
// against wire batch sizes {1,4,16} (one AEAD seal/open and one TCP round
// trip per batched frame). See run_fleet_sweep below.
//
// The special name "xsearch-recovery" (also reachable as
// --mode=xsearch-recovery) is the kill-and-recover mode: a 2-worker fleet
// under a FleetSupervisor, closed-loop TCP load, one worker's enclave
// killed mid-run. Measured per phase (pre-kill / recovery / post-recovery):
// qps and the victim's history depth — decoy quality — right after the
// automatic respawn. Run twice: warm (sealed checkpoints on, the respawn
// restores the history) vs cold (no checkpoints, the respawn reopens the
// paper's cold-start obfuscation window). See run_recovery_sweep below.
//
// The special name "xsearch-idle-sweep" is the connection-scaling mode:
// N mostly-idle attested sessions (N in {1k,10k,50k}, clamped to the fd
// rlimit) held concurrently against the same saturation ProxyHandler
// behind two server architectures — the epoll reactor (ProxyServer) and a
// thread-per-connection baseline resurrected in this bench. Reported per
// leg: RSS growth per held session and the p50/p99 wakeup-to-reply time of
// a query sent on an already-idle session. A leg that cannot reach N
// (thread spawn failure, refused connections) is marked "cannot". See
// run_idle_sweep below.
//
// The special name "xsearch-degraded" is the brownout mode: a 2-worker
// fleet with a live engine whose calls are degraded mid-run through the
// proxies' host-side fault hook (FaultPlan::engine_call — injected latency
// + failures). The per-proxy engine circuit breaker trips, sheds the
// engine path fast, and half-open probes restore it once the fault window
// closes. Measured per phase (healthy / degraded / recovered): goodput,
// failed searches (shed), and p99 latency. See run_degraded_sweep below.
//
// Besides the stdout table, every run writes machine-readable JSON (default
// BENCH_fig5.json, or pass --json=PATH) with one object per measured row,
// uploaded by the CI release-bench job so perf numbers accumulate per PR.
//
// Run: ./build/bench/fig5_throughput_latency [--json=PATH] [--mode=NAME]
//      [mechanism...]
//      (default: xsearch peas tor; any registered name, xsearch-remote,
//      xsearch-sessions, xsearch-switchless, xsearch-fleet,
//      xsearch-recovery, xsearch-degraded or xsearch-idle-sweep;
//      --mode=NAME is shorthand for appending NAME to the mechanism list)
#include <sys/resource.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/client.hpp"
#include "api/load_driver.hpp"
#include "api/registry.hpp"
#include "api/remote.hpp"
#include "api/xsearch_options.hpp"
#include "bench_common.hpp"
#include "crypto/x25519.hpp"
#include "loadgen/loadgen.hpp"
#include "net/chaos.hpp"
#include "net/fleet_supervisor.hpp"
#include "net/proxy_fleet.hpp"
#include "net/proxy_server.hpp"
#include "net/remote_broker.hpp"
#include "net/frame.hpp"
#include "netsim/netsim.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/broker.hpp"
#include "xsearch/proxy.hpp"
#include "xsearch/wire.hpp"

namespace {

using namespace xsearch;  // NOLINT

constexpr std::size_t kWorkers = 4;

/// One measured row, kept for the JSON dump. `sessions` is only meaningful
/// for the xsearch-sessions sweep, `workers`/`batch` for the xsearch-fleet
/// sweep, `mode`/`phase`/`history_depth` for the xsearch-recovery sweep
/// (0/empty elsewhere).
struct JsonRow {
  std::string system;
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t dropped = 0;
  std::size_t sessions = 0;
  std::size_t workers = 0;
  std::size_t batch = 0;
  std::string mode;   // "warm" / "cold" (recovery) or "reactor" / "threads"
  std::string phase;  // "pre-kill" / ... (recovery) or "ok" / "cannot" (idle)
  std::size_t history_depth = 0;
  /// xsearch-idle-sweep only: resident-memory growth per held session.
  double rss_kb = 0.0;
};

std::vector<JsonRow> g_rows;

void print_row(const std::string& system, const loadgen::LoadReport& report) {
  std::printf("%-16s %10.0f %12.1f %10.3f %10.3f %10.3f %8llu\n",
              system.c_str(), report.offered_rps, report.achieved_rps,
              report.mean_ms(), report.p50_ms(), report.p99_ms(),
              static_cast<unsigned long long>(report.dropped));
  g_rows.push_back({system, report.offered_rps, report.achieved_rps,
                    report.mean_ms(), report.p50_ms(), report.p99_ms(),
                    report.dropped, 0, 0, 0});
}

/// Minimal JSON string escaping (mechanism names come from argv).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
    out.push_back(c);
  }
  return out;
}

bool write_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"figure\": \"fig5_throughput_latency\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const JsonRow& r = g_rows[i];
    std::fprintf(f,
                 "    {\"system\": \"%s\", \"offered_rps\": %.1f, "
                 "\"achieved_rps\": %.1f, \"mean_ms\": %.3f, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f, \"dropped\": %llu, \"sessions\": %zu, "
                 "\"workers\": %zu, \"batch\": %zu, \"mode\": \"%s\", "
                 "\"phase\": \"%s\", \"history_depth\": %zu, "
                 "\"rss_kb_per_session\": %.2f}%s\n",
                 json_escape(r.system).c_str(), r.offered_rps, r.achieved_rps, r.mean_ms,
                 r.p50_ms, r.p99_ms, static_cast<unsigned long long>(r.dropped),
                 r.sessions, r.workers, r.batch, json_escape(r.mode).c_str(),
                 json_escape(r.phase).c_str(), r.history_depth, r.rss_kb,
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

/// Concurrent-session closed-loop sweep over one shared saturation proxy.
void run_session_sweep(const api::ClientConfig& config) {
  xsearch::sgx::AttestationAuthority authority(
      xsearch::to_bytes("fig5-sessions-root"));
  core::XSearchProxy::Options options = api::xsearch_proxy_options(config);
  options.contact_engine = false;
  auto proxy = core::XSearchProxy::create(nullptr, authority, options);
  if (!proxy.is_ok()) {
    std::fprintf(stderr, "xsearch-sessions proxy: %s\n",
                 proxy.status().to_string().c_str());
    return;
  }

  constexpr auto kDuration = std::chrono::milliseconds(400);
  for (const std::size_t sessions : {1u, 2u, 4u, 8u}) {
    std::atomic<bool> go{false};
    std::atomic<bool> stop{false};
    std::atomic<std::size_t> ready{0};
    std::atomic<std::uint64_t> completed{0};
    std::vector<std::thread> threads;
    threads.reserve(sessions);
    for (std::size_t s = 0; s < sessions; ++s) {
      threads.emplace_back([&, s] {
        core::ClientBroker broker(*proxy.value(), authority,
                                  proxy.value()->measurement(), 9000 + s);
        // Handshake before the clock starts: attestation serializes on
        // handshake_mutex_ and would bias S=1 vs S=8 if timed.
        const bool connected = broker.connect().is_ok();
        ready.fetch_add(1, std::memory_order_release);
        if (!connected) return;
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        std::uint64_t done = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          if (broker.search("concurrent scaling probe").is_ok()) ++done;
        }
        completed.fetch_add(done, std::memory_order_relaxed);
      });
    }
    while (ready.load(std::memory_order_acquire) < sessions)
      std::this_thread::yield();
    const auto t0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    std::this_thread::sleep_for(kDuration);
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : threads) t.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double rps = static_cast<double>(completed.load()) / secs;
    std::printf("%-16s %9zu* %12.1f %10s %10s %10s %8s\n", "xsearch-sessions",
                sessions, rps, "-", "-", "-", "-");
    g_rows.push_back({"xsearch-sessions", 0.0, rps, 0.0, 0.0, 0.0, 0,
                      sessions});
  }
  std::printf("# *closed-loop: column is concurrent sessions, not offered rps\n");
}

/// Switchless-boundary sweep: the same 4-session closed loop against one
/// saturation proxy, once on the classic one-ecall-per-request path and
/// once through the exitless job ring. The figure of merit is the last
/// column — real enclave transitions per query — which the ring drives to
/// ~0 while the throughput columns show what the extra scheduler hop costs
/// on this box (hardware SGX would bank ~8us per avoided crossing instead).
void run_switchless_sweep(const api::ClientConfig& config) {
  xsearch::sgx::AttestationAuthority authority(
      xsearch::to_bytes("fig5-switchless-root"));
  constexpr std::size_t kSessions = 4;
  constexpr auto kDuration = std::chrono::milliseconds(400);

  for (const bool switchless : {false, true}) {
    core::XSearchProxy::Options options = api::xsearch_proxy_options(config);
    options.contact_engine = false;
    options.switchless.enabled = switchless;
    options.switchless.ring_depth = 64;
    options.switchless.workers = 2;
    options.switchless.pickup_patience = 20 * kMilli;
    auto proxy = core::XSearchProxy::create(nullptr, authority, options);
    if (!proxy.is_ok()) {
      std::fprintf(stderr, "xsearch-switchless proxy: %s\n",
                   proxy.status().to_string().c_str());
      return;
    }

    std::atomic<bool> go{false};
    std::atomic<bool> stop{false};
    std::atomic<std::size_t> ready{0};
    std::atomic<std::uint64_t> completed{0};
    std::vector<std::thread> threads;
    threads.reserve(kSessions);
    for (std::size_t s = 0; s < kSessions; ++s) {
      threads.emplace_back([&, s] {
        core::ClientBroker broker(*proxy.value(), authority,
                                  proxy.value()->measurement(), 9500 + s);
        const bool connected = broker.connect().is_ok();
        ready.fetch_add(1, std::memory_order_release);
        if (!connected) return;
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        std::uint64_t done = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          if (broker.search("switchless boundary probe").is_ok()) ++done;
        }
        completed.fetch_add(done, std::memory_order_relaxed);
      });
    }
    while (ready.load(std::memory_order_acquire) < kSessions)
      std::this_thread::yield();
    const auto before = proxy.value()->enclave().transition_stats();
    const auto t0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    std::this_thread::sleep_for(kDuration);
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : threads) t.join();
    const auto after = proxy.value()->enclave().transition_stats();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const std::uint64_t queries = completed.load();
    const double rps = static_cast<double>(queries) / secs;
    const double transitions_per_query =
        queries == 0 ? 0.0
                     : static_cast<double>(after.ecalls - before.ecalls) /
                           static_cast<double>(queries);
    const auto ring = proxy.value()->ring_stats();
    const char* phase = switchless ? "switchless" : "ecall";

    std::printf("%-16s %9zu* %12.1f %10s %10s %10s %8.3f\n",
                "xsearch-switchless", kSessions, rps, "-", "-",
                phase, transitions_per_query);
    std::printf(
        "# %s: %llu queries, %.3f new ecalls/query, ring: %llu switchless / "
        "%llu fallback / %llu ring-full / %llu parks / %llu wakeups\n",
        phase, static_cast<unsigned long long>(queries), transitions_per_query,
        static_cast<unsigned long long>(ring.jobs_switchless),
        static_cast<unsigned long long>(ring.fallback_ecalls),
        static_cast<unsigned long long>(ring.ring_full_rejects),
        static_cast<unsigned long long>(ring.worker_parks),
        static_cast<unsigned long long>(ring.worker_wakeups));
    g_rows.push_back({"xsearch-switchless", 0.0, rps, 0.0, 0.0, 0.0, 0,
                      kSessions, 0, 0, phase, ""});
  }
  std::printf(
      "# *closed-loop: last column is real enclave transitions per query\n");
}

/// Fleet scale-out sweep: {1,2,4} consistent-hash-routed proxy workers
/// behind one ProxyServer × wire batch sizes {1,4,16}, driven closed-loop
/// by 4 concurrent TCP sessions. Fixed offered load (every client thread
/// saturates), so the figure of merit is aggregate qps as workers grow and
/// per-query wire cost as batches grow: each batched frame pays ONE AEAD
/// seal/open + TCP round trip for `batch` queries. On a single-core runner
/// worker scaling reads as "does not collapse"; the batch column shows the
/// real amortization either way (aead_per_query = 2/batch).
void run_fleet_sweep(const api::ClientConfig& config) {
  xsearch::sgx::AttestationAuthority authority(
      xsearch::to_bytes("fig5-fleet-root"));
  constexpr std::size_t kClientSessions = 4;
  constexpr auto kDuration = std::chrono::milliseconds(300);

  for (const std::size_t workers : {1u, 2u, 4u}) {
    net::ProxyFleet::Options fleet_options =
        api::fleet_options(config, {.workers = workers, .virtual_nodes = 64});
    fleet_options.proxy.contact_engine = false;  // saturation mode
    auto fleet = net::ProxyFleet::create(nullptr, authority, fleet_options);
    if (!fleet.is_ok()) {
      std::fprintf(stderr, "xsearch-fleet: %s\n",
                   fleet.status().to_string().c_str());
      return;
    }
    auto server = net::ProxyServer::start(*fleet.value());
    if (!server.is_ok()) {
      std::fprintf(stderr, "xsearch-fleet server: %s\n",
                   server.status().to_string().c_str());
      return;
    }

    for (const std::size_t batch : {1u, 4u, 16u}) {
      std::atomic<bool> go{false};
      std::atomic<bool> stop{false};
      std::atomic<std::size_t> ready{0};
      std::atomic<std::uint64_t> completed{0};
      std::vector<std::thread> threads;
      threads.reserve(kClientSessions);
      for (std::size_t s = 0; s < kClientSessions; ++s) {
        threads.emplace_back([&, s] {
          net::RemoteBroker broker("127.0.0.1", server.value()->port(),
                                   authority, fleet.value()->measurement(),
                                   7000 + 13 * s + batch);
          const bool connected = broker.connect().is_ok();
          ready.fetch_add(1, std::memory_order_release);
          if (!connected) return;
          std::vector<std::string> queries(batch, "fleet scaling probe");
          while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
          std::uint64_t done = 0;
          while (!stop.load(std::memory_order_relaxed)) {
            if (batch == 1) {
              if (broker.search(queries[0]).is_ok()) ++done;
            } else {
              auto outcomes = broker.search_batch(queries);
              if (outcomes.is_ok()) done += outcomes.value().size();
            }
          }
          completed.fetch_add(done, std::memory_order_relaxed);
        });
      }
      while (ready.load(std::memory_order_acquire) < kClientSessions)
        std::this_thread::yield();
      const auto t0 = std::chrono::steady_clock::now();
      go.store(true, std::memory_order_release);
      std::this_thread::sleep_for(kDuration);
      stop.store(true, std::memory_order_relaxed);
      for (auto& t : threads) t.join();
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const double qps = static_cast<double>(completed.load()) / secs;
      const double mean_ms =
          completed.load() == 0
              ? 0.0
              : 1e3 * secs * kClientSessions / static_cast<double>(completed.load());
      std::printf("%-16s %4zuw %4zub %12.1f %10.3f %10s %10s %8s\n",
                  "xsearch-fleet", workers, batch, qps, mean_ms, "-", "-", "-");
      g_rows.push_back({"xsearch-fleet", 0.0, qps, mean_ms, 0.0, 0.0, 0, 0,
                        workers, batch});
    }

    std::uint64_t routed_total = 0;
    std::size_t workers_hit = 0;
    for (std::size_t w = 0; w < fleet.value()->worker_count(); ++w) {
      const auto stats = fleet.value()->worker_stats(w);
      routed_total += stats.routed;
      workers_hit += stats.sessions.created > 0 ? 1 : 0;
    }
    std::printf("# xsearch-fleet workers=%zu: routed=%llu workers_with_sessions=%zu\n",
                workers, static_cast<unsigned long long>(routed_total),
                workers_hit);
    server.value()->stop();
  }
  std::printf("# *closed-loop: columns are workers/batch; mean_ms is per query\n");
}

/// Kill-and-recover sweep: 2 fleet workers behind one ProxyServer, 2
/// closed-loop TCP sessions, a FleetSupervisor probing heartbeats. After a
/// pre-kill measurement window one worker's enclave is crashed; the
/// supervisor detects it, drains the arc and respawns. Measured per phase:
/// aggregate qps, plus the victim's history depth right after the respawn —
/// the decoy-quality number that separates warm (checkpointed) from cold
/// restarts. Run twice, warm then cold.
void run_recovery_sweep(const api::ClientConfig& base_config) {
  constexpr std::size_t kClientSessions = 2;
  constexpr auto kPhaseWindow = std::chrono::milliseconds(300);
  constexpr const char* kPhaseNames[] = {"pre-kill", "recovery", "post-recovery"};

  for (const bool warm : {true, false}) {
    api::ClientConfig config = base_config;
    std::filesystem::path checkpoint_dir;
    if (warm) {
      checkpoint_dir =
          std::filesystem::temp_directory_path() / "fig5_recovery_ckpt";
      std::filesystem::remove_all(checkpoint_dir);
      config.recovery.checkpoint_dir = checkpoint_dir.string();
      // Closed-loop in-process rates reach tens of kqps: a tighter interval
      // would turn the row into a checkpoint-write bench instead of a
      // recovery one (each seal snapshots the whole history).
      config.recovery.checkpoint_interval_queries = 512;
    } else {
      config.recovery.checkpoint_dir.clear();
    }
    config.recovery.probe_interval = 5 * kMilli;
    config.recovery.failure_threshold = 2;

    xsearch::sgx::AttestationAuthority authority(
        xsearch::to_bytes("fig5-recovery-root"));
    net::ProxyFleet::Options fleet_options =
        api::fleet_options(config, {.workers = 2, .virtual_nodes = 64});
    fleet_options.proxy.contact_engine = false;  // saturation mode
    auto fleet = net::ProxyFleet::create(nullptr, authority, fleet_options);
    if (!fleet.is_ok()) {
      std::fprintf(stderr, "xsearch-recovery: %s\n",
                   fleet.status().to_string().c_str());
      return;
    }
    auto server = net::ProxyServer::start(*fleet.value());
    if (!server.is_ok()) {
      std::fprintf(stderr, "xsearch-recovery server: %s\n",
                   server.status().to_string().c_str());
      return;
    }
    net::FleetSupervisor supervisor(*fleet.value(),
                                    api::supervisor_options(config));

    std::atomic<int> phase{0};
    std::atomic<bool> go{false};
    std::atomic<bool> stop{false};
    std::atomic<std::size_t> ready{0};
    std::array<std::atomic<std::uint64_t>, 3> completed{};
    std::array<std::atomic<std::uint64_t>, 3> failed{};
    std::vector<std::uint64_t> session_ids(kClientSessions, 0);
    std::vector<std::thread> threads;
    threads.reserve(kClientSessions);
    for (std::size_t s = 0; s < kClientSessions; ++s) {
      threads.emplace_back([&, s] {
        net::RemoteBroker broker("127.0.0.1", server.value()->port(), authority,
                                 fleet.value()->measurement(), 4200 + 17 * s);
        const bool connected = broker.connect().is_ok();
        if (connected) session_ids[s] = broker.session_id();
        ready.fetch_add(1, std::memory_order_release);
        if (!connected) return;
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        while (!stop.load(std::memory_order_relaxed)) {
          const int p = phase.load(std::memory_order_relaxed);
          if (broker.search("recovery probe").is_ok()) {
            completed[static_cast<std::size_t>(p)].fetch_add(
                1, std::memory_order_relaxed);
          } else {
            failed[static_cast<std::size_t>(p)].fetch_add(
                1, std::memory_order_relaxed);
          }
        }
      });
    }
    while (ready.load(std::memory_order_acquire) < kClientSessions)
      std::this_thread::yield();
    // Kill the worker that owns session 0 so the dip is visible from a
    // client actually parked on the dead arc.
    const std::size_t victim = fleet.value()->owner_of(session_ids[0]);

    std::array<double, 3> phase_secs{};
    const auto run_phase = [&](int index, auto&& mid) {
      const auto t0 = std::chrono::steady_clock::now();
      phase.store(index, std::memory_order_relaxed);
      mid();
      std::this_thread::sleep_for(kPhaseWindow);
      phase_secs[static_cast<std::size_t>(index)] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    };

    go.store(true, std::memory_order_release);
    run_phase(0, [] {});
    const std::size_t depth_before_kill =
        fleet.value()->worker_history_depth(victim);
    run_phase(1, [&] { (void)fleet.value()->kill_worker(victim); });
    // The decoy table the respawned worker STARTED from (warm = last
    // checkpoint, cold = 0). checkpoint.restored_entries is immutable for
    // the revived proxy — the live history_depth would already include
    // post-respawn traffic that re-hashed onto the arc, which in cold mode
    // can erase the warm/cold gap this sweep exists to show.
    const std::size_t depth_after_respawn =
        fleet.value()->worker_stats(victim).checkpoint.restored_entries;
    run_phase(2, [] {});
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : threads) t.join();

    const char* mode = warm ? "warm" : "cold";
    const auto stats = fleet.value()->fleet_stats();
    for (int p = 0; p < 3; ++p) {
      const auto idx = static_cast<std::size_t>(p);
      const double qps =
          static_cast<double>(completed[idx].load()) / phase_secs[idx];
      const std::size_t depth = p == 0 ? depth_before_kill : depth_after_respawn;
      std::printf("%-16s %5s %13s %12.1f %10s %10s %10s %8llu depth=%zu\n",
                  "xsearch-recovery", mode, kPhaseNames[idx], qps, "-", "-", "-",
                  static_cast<unsigned long long>(failed[idx].load()), depth);
      JsonRow row;
      row.system = "xsearch-recovery";
      row.achieved_rps = qps;
      row.dropped = failed[idx].load();
      row.workers = 2;
      row.mode = mode;
      row.phase = kPhaseNames[idx];
      row.history_depth = depth;
      g_rows.push_back(row);
    }
    std::printf("# xsearch-recovery %s: auto_respawns=%llu restore_hits=%llu "
                "restore_misses=%llu warm_start_ratio=%.2f\n",
                mode, static_cast<unsigned long long>(stats.auto_respawns),
                static_cast<unsigned long long>(stats.restore_hits),
                static_cast<unsigned long long>(stats.restore_misses),
                stats.warm_start_ratio);
    server.value()->stop();
    if (warm) std::filesystem::remove_all(checkpoint_dir);
  }
  std::printf("# *kill-and-recover: dropped column is failed searches in the "
              "phase; depth is the victim's pre-kill history, then its "
              "restored-checkpoint depth\n");
}

/// Brownout sweep: a 2-worker fleet with a live engine, 2 closed-loop TCP
/// sessions with end-to-end request budgets, and a mid-run window where
/// FaultPlan::engine_call degrades every engine round trip (injected delay
/// + a failure rate past the breaker's trip ratio). The per-proxy engine
/// circuit breaker converts the brownout into fast typed failures instead
/// of budget-burning slow ones, then half-open probes re-close it once the
/// window ends. Reported per phase: goodput (successful qps), failed
/// searches, and the client-observed p99.
void run_degraded_sweep(const api::ClientConfig& base_config,
                        const engine::SearchEngine& engine) {
  constexpr std::size_t kClientSessions = 2;
  constexpr auto kPhaseWindow = std::chrono::milliseconds(300);
  constexpr const char* kPhaseNames[] = {"healthy", "degraded", "recovered"};

  api::ClientConfig config = base_config;
  config.contact_engine = true;  // the engine path is the subject here

  // Engine-path fault plan, gated on the degraded phase below: 60% of
  // engine calls fail (past the 50% trip ratio), the rest eat a 2ms stall.
  net::FaultPlan::Options plan_options;
  plan_options.seed = 42;
  plan_options.fault_ops = 1'000'000;  // never exhausts inside the window
  plan_options.delay_p = plan_options.partial_p = plan_options.drop_p = 0.0;
  plan_options.reset_p = plan_options.garbage_p = 0.0;
  plan_options.engine_delay_p = 0.3;
  plan_options.engine_delay = 2 * kMilli;
  plan_options.engine_fail_p = 0.6;
  auto plan = std::make_shared<net::FaultPlan>(plan_options);
  auto degraded = std::make_shared<std::atomic<bool>>(false);

  xsearch::sgx::AttestationAuthority authority(
      xsearch::to_bytes("fig5-degraded-root"));
  net::ProxyFleet::Options fleet_options =
      api::fleet_options(config, {.workers = 2, .virtual_nodes = 64});
  fleet_options.proxy.contact_engine = true;
  fleet_options.proxy.engine_fault_hook = [plan, degraded]() -> Status {
    if (!degraded->load(std::memory_order_relaxed)) return {};
    return plan->engine_call();
  };
  fleet_options.proxy.engine_breaker_enabled = true;
  fleet_options.proxy.engine_breaker.window = 32;
  fleet_options.proxy.engine_breaker.min_samples = 8;
  fleet_options.proxy.engine_breaker.failure_ratio = 0.5;
  fleet_options.proxy.engine_breaker.open_cooldown = 50 * kMilli;
  fleet_options.proxy.engine_breaker.half_open_probes = 2;
  auto fleet = net::ProxyFleet::create(&engine, authority, fleet_options);
  if (!fleet.is_ok()) {
    std::fprintf(stderr, "xsearch-degraded: %s\n",
                 fleet.status().to_string().c_str());
    return;
  }
  auto server = net::ProxyServer::start(*fleet.value());
  if (!server.is_ok()) {
    std::fprintf(stderr, "xsearch-degraded server: %s\n",
                 server.status().to_string().c_str());
    return;
  }

  std::atomic<int> phase{0};
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> ready{0};
  std::array<std::atomic<std::uint64_t>, 3> completed{};
  std::array<std::atomic<std::uint64_t>, 3> failed{};
  // Client-observed per-phase latencies, one slab per session (merged after
  // the join, so the measuring threads never share a vector).
  std::vector<std::array<std::vector<double>, 3>> latencies(kClientSessions);
  std::vector<std::thread> threads;
  threads.reserve(kClientSessions);
  for (std::size_t s = 0; s < kClientSessions; ++s) {
    threads.emplace_back([&, s] {
      net::RemoteBroker::Options broker_options;
      broker_options.request_budget = 500 * kMilli;
      broker_options.connect_budget = kSecond;
      broker_options.retry.max_attempts = 2;
      broker_options.retry.initial_backoff = kMilli;
      broker_options.retry.max_backoff = 10 * kMilli;
      net::RemoteBroker broker("127.0.0.1", server.value()->port(), authority,
                               fleet.value()->measurement(), 6100 + 19 * s,
                               broker_options);
      const bool connected = broker.connect().is_ok();
      ready.fetch_add(1, std::memory_order_release);
      if (!connected) return;
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_relaxed)) {
        const int p = phase.load(std::memory_order_relaxed);
        const auto idx = static_cast<std::size_t>(p);
        const auto t0 = std::chrono::steady_clock::now();
        const bool ok = broker.search("brownout probe").is_ok();
        const double ms =
            1e3 *
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        latencies[s][idx].push_back(ms);
        (ok ? completed : failed)[idx].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  while (ready.load(std::memory_order_acquire) < kClientSessions)
    std::this_thread::yield();

  std::array<double, 3> phase_secs{};
  const auto run_phase = [&](int index, auto&& mid) {
    const auto t0 = std::chrono::steady_clock::now();
    phase.store(index, std::memory_order_relaxed);
    mid();
    std::this_thread::sleep_for(kPhaseWindow);
    phase_secs[static_cast<std::size_t>(index)] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  };

  go.store(true, std::memory_order_release);
  run_phase(0, [] {});
  run_phase(1, [&] { degraded->store(true, std::memory_order_relaxed); });
  run_phase(2, [&] { degraded->store(false, std::memory_order_relaxed); });
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();

  for (int p = 0; p < 3; ++p) {
    const auto idx = static_cast<std::size_t>(p);
    std::vector<double> merged;
    for (std::size_t s = 0; s < kClientSessions; ++s) {
      merged.insert(merged.end(), latencies[s][idx].begin(),
                    latencies[s][idx].end());
    }
    std::sort(merged.begin(), merged.end());
    const double p99 =
        merged.empty() ? 0.0 : merged[merged.size() * 99 / 100];
    const double goodput =
        static_cast<double>(completed[idx].load()) / phase_secs[idx];
    std::printf("%-16s %13s %12.1f %10s %10s %10.3f %8llu\n",
                "xsearch-degraded", kPhaseNames[idx], goodput, "-", "-", p99,
                static_cast<unsigned long long>(failed[idx].load()));
    JsonRow row;
    row.system = "xsearch-degraded";
    row.achieved_rps = goodput;
    row.p99_ms = p99;
    row.dropped = failed[idx].load();
    row.workers = 2;
    row.mode = "engine-chaos";
    row.phase = kPhaseNames[idx];
    g_rows.push_back(row);
  }
  std::uint64_t trips = 0;
  std::uint64_t rejected = 0;
  for (std::size_t w = 0; w < fleet.value()->worker_count(); ++w) {
    const auto proxy = fleet.value()->worker_proxy(w);
    if (proxy == nullptr) continue;
    const auto stats = proxy->engine_breaker_stats();
    trips += stats.trips;
    rejected += stats.rejected;
  }
  std::printf("# xsearch-degraded: engine_faults=%llu breaker_trips=%llu "
              "breaker_rejected=%llu\n",
              static_cast<unsigned long long>(plan->faults_injected()),
              static_cast<unsigned long long>(trips),
              static_cast<unsigned long long>(rejected));
  server.value()->stop();
  std::printf("# *brownout: dropped column is failed searches in the phase; "
              "p99 is client-observed\n");
}

// ---- idle-session sweep -----------------------------------------------------

/// Current VmRSS in kB from /proc/self/status (0 if unreadable).
std::size_t vm_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %zu", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

/// Minimal thread-per-connection frame server over the same ProxyHandler —
/// the pre-reactor architecture, resurrected as the idle sweep's baseline
/// leg. One blocking thread per accepted connection, parked in read_frame()
/// while its session idles: the per-session cost is a whole thread (stack +
/// kernel task) instead of the reactor's buffer-and-table-entry.
class ThreadPerConnectionServer {
 public:
  static std::unique_ptr<ThreadPerConnectionServer> start(
      core::ProxyHandler& proxy) {
    auto listener = net::TcpListener::bind(0);
    if (!listener) return nullptr;
    return std::unique_ptr<ThreadPerConnectionServer>(
        new ThreadPerConnectionServer(proxy, std::move(listener).value()));
  }

  ~ThreadPerConnectionServer() { stop(); }

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] bool spawn_failed() const {
    return spawn_failed_.load(std::memory_order_relaxed);
  }

  void stop() {
    if (stopping_.exchange(true)) return;
    listener_.close();
    if (accept_thread_.joinable()) accept_thread_.join();
    std::vector<std::shared_ptr<net::TcpStream>> live;
    std::vector<std::thread> threads;
    {
      MutexLock lock(mutex_);
      live.swap(live_);
      threads.swap(threads_);
    }
    for (const auto& stream : live) stream->shutdown_both();
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
    listener_.release();
  }

 private:
  ThreadPerConnectionServer(core::ProxyHandler& proxy,
                            net::TcpListener listener)
      : proxy_(&proxy), listener_(std::move(listener)) {
    accept_thread_ = std::thread([this] { accept_loop(); });
  }

  void accept_loop() {
    while (!stopping_.load(std::memory_order_relaxed)) {
      auto accepted = listener_.accept();
      if (!accepted) break;  // listener closed
      auto stream =
          std::make_shared<net::TcpStream>(std::move(accepted).value());
      try {
        std::thread worker([this, stream] { serve(*stream); });
        MutexLock lock(mutex_);
        live_.push_back(stream);
        threads_.push_back(std::move(worker));
      } catch (const std::system_error&) {
        // The architecture's hard wall: no thread, no connection.
        spawn_failed_.store(true, std::memory_order_relaxed);
        (void)net::write_frame(
            *stream, net::FrameType::kErrorStatus,
            net::encode_error_status(
                overloaded("thread-per-connection: cannot spawn")));
        stream->shutdown_both();
      }
    }
  }

  void serve(net::TcpStream& stream) {
    bool peer_v2 = false;
    const auto send_error = [&](const Status& status) {
      if (peer_v2) {
        return net::write_frame(stream, net::FrameType::kErrorStatus,
                                net::encode_error_status(status));
      }
      return net::write_frame(stream, net::FrameType::kError,
                              to_bytes(status.to_string()));
    };
    while (!stopping_.load(std::memory_order_relaxed)) {
      auto frame = net::read_frame(stream);
      if (!frame) return;  // clean close or broken peer
      if (frame.value().v2) peer_v2 = true;
      switch (frame.value().type) {
        case net::FrameType::kHello: {
          if (frame.value().payload.size() != crypto::kX25519KeySize) {
            (void)send_error(invalid_argument("bad hello"));
            return;
          }
          crypto::X25519Key client_pub;
          std::memcpy(client_pub.data(), frame.value().payload.data(),
                      client_pub.size());
          auto response = proxy_->handshake(client_pub);
          if (!response) {
            (void)send_error(response.status());
            return;
          }
          Bytes payload;
          core::wire::put_u64(payload, response.value().session_id);
          const Bytes quote = response.value().quote.serialize();
          core::wire::put_u32(payload,
                              static_cast<std::uint32_t>(quote.size()));
          append(payload, quote);
          append(payload, response.value().server_ephemeral_pub);
          if (!net::write_frame(stream, net::FrameType::kHelloReply, payload)
                   .is_ok()) {
            return;
          }
          break;
        }
        case net::FrameType::kQuery:
        case net::FrameType::kBatchQuery: {
          const net::FrameType reply_type =
              frame.value().type == net::FrameType::kQuery
                  ? net::FrameType::kQueryReply
                  : net::FrameType::kBatchReply;
          std::size_t offset = 0;
          const auto session =
              core::wire::get_u64(frame.value().payload, offset);
          if (!session) {
            (void)send_error(invalid_argument("bad query frame"));
            return;
          }
          auto response = proxy_->handle_query_record(
              session.value(),
              ByteSpan(frame.value().payload).subspan(offset));
          if (!response) {
            if (!send_error(response.status()).is_ok()) return;
            break;
          }
          if (!net::write_frame(stream, reply_type, response.value())
                   .is_ok()) {
            return;
          }
          break;
        }
        default:
          (void)send_error(invalid_argument("unexpected frame"));
          return;
      }
    }
  }

  core::ProxyHandler* proxy_;
  net::TcpListener listener_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> spawn_failed_{false};
  std::thread accept_thread_;
  Mutex mutex_;
  std::vector<std::shared_ptr<net::TcpStream>> live_ XS_GUARDED_BY(mutex_);
  std::vector<std::thread> threads_ XS_GUARDED_BY(mutex_);
};

/// One idle-sweep leg: hold `sessions` attested, mostly-idle connections
/// against `port`, then measure RSS growth per session and wakeup-to-reply
/// on a sample of the held population.
/// Returns the leg's RSS growth per held session (kB).
double run_idle_leg(const xsearch::sgx::AttestationAuthority& authority,
                    const sgx::Measurement& measurement, std::uint16_t port,
                    std::size_t sessions, const char* mode,
                    const std::function<bool()>& architecture_failed) {
  const std::size_t rss_before = vm_rss_kb();

  std::vector<std::unique_ptr<net::RemoteBroker>> brokers;
  brokers.reserve(sessions);
  std::uint64_t connect_failures = 0;
  for (std::size_t s = 0; s < sessions; ++s) {
    auto broker = std::make_unique<net::RemoteBroker>(
        "127.0.0.1", port, authority, measurement, 8'000'000 + s);
    if (broker->connect().is_ok()) {
      brokers.push_back(std::move(broker));
    } else if (++connect_failures > 64) {
      break;  // systematic refusal: the leg cannot hold this population
    }
  }
  const std::size_t held = brokers.size();
  const std::size_t rss_after = vm_rss_kb();
  const double rss_kb_per_session =
      held == 0 || rss_after <= rss_before
          ? 0.0
          : static_cast<double>(rss_after - rss_before) /
                static_cast<double>(held);

  // Wakeup-to-reply: one query per sampled session, sent while the whole
  // population sits idle — the number a mostly-idle client actually feels.
  std::vector<double> wake_ms;
  std::uint64_t query_failures = 0;
  const std::size_t sample = std::min<std::size_t>(1000, held);
  if (sample > 0) {
    const std::size_t stride = held / sample;
    wake_ms.reserve(sample);
    for (std::size_t i = 0; i < sample; ++i) {
      auto& broker = *brokers[i * stride];
      const auto t0 = std::chrono::steady_clock::now();
      const bool ok = broker.search("idle wakeup probe").is_ok();
      const double ms =
          1e3 *
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (ok) {
        wake_ms.push_back(ms);
      } else {
        ++query_failures;
      }
    }
  }
  std::sort(wake_ms.begin(), wake_ms.end());
  const double p50 = wake_ms.empty() ? 0.0 : wake_ms[wake_ms.size() / 2];
  const double p99 =
      wake_ms.empty() ? 0.0 : wake_ms[wake_ms.size() * 99 / 100];

  const bool complete = held == sessions && query_failures == 0 &&
                        !architecture_failed();
  const std::uint64_t dropped = connect_failures + query_failures;
  std::printf("%-16s %6zu/%-6zu %8s %10.3f %10.3f %7.1fkB %8llu%s\n",
              "xsearch-idle", held, sessions, mode, p50, p99,
              rss_kb_per_session, static_cast<unsigned long long>(dropped),
              complete ? "" : "  CANNOT");
  JsonRow row;
  row.system = "xsearch-idle";
  row.sessions = held;
  row.p50_ms = p50;
  row.p99_ms = p99;
  row.dropped = dropped;
  row.mode = mode;
  row.phase = complete ? "ok" : "cannot";
  row.rss_kb = rss_kb_per_session;
  g_rows.push_back(row);
  return rss_kb_per_session;
}

/// Connection-scaling sweep: the reactor data plane vs thread-per-
/// connection, each holding N mostly-idle attested sessions in one
/// process (2 fds per session: client end + server end). The reactor's
/// idle session costs a receive buffer and a table entry; the baseline's
/// costs a parked thread — RSS per session and the ability to reach N at
/// all are the figures of merit (the paper's tens-of-thousands-of-users
/// claim, measured architecturally).
void run_idle_sweep(const api::ClientConfig& base_config) {
  // Lift the soft fd limit to the hard cap and size the targets to fit.
  rlimit nofile{};
  if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0 &&
      nofile.rlim_cur < nofile.rlim_max) {
    rlimit raised = nofile;
    raised.rlim_cur = nofile.rlim_max;
    (void)::setrlimit(RLIMIT_NOFILE, &raised);
  }
  (void)::getrlimit(RLIMIT_NOFILE, &nofile);
  const std::size_t fd_budget =
      nofile.rlim_cur == RLIM_INFINITY
          ? (1u << 20)
          : static_cast<std::size_t>(nofile.rlim_cur);
  const std::size_t session_budget =
      fd_budget > 400 ? (fd_budget - 200) / 2 : 100;

  std::vector<std::size_t> targets;
  for (const std::size_t want : {1'000u, 10'000u, 50'000u}) {
    const std::size_t n = std::min<std::size_t>(want, session_budget);
    if (n < want) {
      std::printf("# xsearch-idle: target %zu clamped to %zu "
                  "(RLIMIT_NOFILE=%zu, 2 fds/session in-process)\n",
                  want, n, fd_budget);
    }
    if (targets.empty() || targets.back() != n) targets.push_back(n);
  }

  api::ClientConfig config = base_config;
  // Every held session lives in the enclave's session table concurrently.
  config.session_capacity = targets.back() + 64;

  std::printf("%-16s %13s %8s %10s %10s %9s %8s\n", "system", "held/target",
              "arch", "p50_ms", "p99_ms", "rss/sess", "dropped");
  for (const std::size_t sessions : targets) {
    double reactor_rss = 0.0;
    double threads_rss = 0.0;
    for (const bool reactor : {true, false}) {
      xsearch::sgx::AttestationAuthority authority(
          xsearch::to_bytes("fig5-idle-root"));
      core::XSearchProxy::Options options = api::xsearch_proxy_options(config);
      options.contact_engine = false;  // saturation mode
      auto proxy = core::XSearchProxy::create(nullptr, authority, options);
      if (!proxy.is_ok()) {
        std::fprintf(stderr, "xsearch-idle proxy: %s\n",
                     proxy.status().to_string().c_str());
        return;
      }
      if (reactor) {
        net::ProxyServer::Options server_options;
        server_options.workers = 2;  // per *request*, not per connection
        auto server =
            net::ProxyServer::start(*proxy.value(), 0, server_options);
        if (!server.is_ok()) {
          std::fprintf(stderr, "xsearch-idle server: %s\n",
                       server.status().to_string().c_str());
          return;
        }
        reactor_rss = run_idle_leg(authority, proxy.value()->measurement(),
                                   server.value()->port(), sessions, "reactor",
                                   [] { return false; });
        server.value()->stop();
      } else {
        auto server = ThreadPerConnectionServer::start(*proxy.value());
        if (server == nullptr) {
          std::fprintf(stderr, "xsearch-idle threaded server: bind failed\n");
          return;
        }
        threads_rss = run_idle_leg(authority, proxy.value()->measurement(),
                                   server->port(), sessions, "threads",
                                   [&server] { return server->spawn_failed(); });
        server->stop();
      }
    }
    // Both legs pay the same client-side cost (one RemoteBroker + one
    // enclave session each), so the difference is the server's idle cost:
    // a parked thread vs a receive buffer + connection entry.
    std::printf("# xsearch-idle %zu: threads leg pays +%.1fkB/session over "
                "the reactor (the parked per-connection thread)\n",
                sessions, threads_rss - reactor_rss);
  }
  std::printf("# *idle sweep: rss/sess is RSS growth per held session "
              "(client+server in-process); CANNOT = leg could not hold or "
              "serve the population\n");
}

loadgen::LoadConfig config_for(double rps) {
  loadgen::LoadConfig config;
  config.target_rps = rps;
  config.duration = 400 * kMilli;
  return config;
}

/// Offered-rate grids bracketing each system's saturation knee.
const std::vector<double>& rate_grid(const std::string& mechanism) {
  static const std::map<std::string, std::vector<double>> grids = {
      {"xsearch", {1000.0, 5000.0, 10000.0, 15000.0, 20000.0, 24000.0,
                   27000.0, 30000.0}},
      {"peas", {100.0, 300.0, 600.0, 800.0, 1000.0, 1200.0, 1500.0}},
      {"tor", {10.0, 25.0, 50.0, 75.0, 100.0, 120.0, 150.0}},
      // Real TCP round trips: the knee sits well below the in-process one.
      {"xsearch-remote", {500.0, 1000.0, 2000.0, 4000.0, 8000.0}},
  };
  static const std::vector<double> generic = {1000.0, 5000.0, 10000.0,
                                              20000.0, 40000.0};
  const auto it = grids.find(mechanism);
  return it != grids.end() ? it->second : generic;
}

/// Networked X-Search deployment for "xsearch-remote": a saturation-mode
/// proxy behind a pool-served ProxyServer on an ephemeral loopback port.
struct RemoteDeployment {
  RemoteDeployment() : authority(xsearch::to_bytes("fig5-remote-root")) {}

  xsearch::sgx::AttestationAuthority authority;
  std::unique_ptr<xsearch::core::XSearchProxy> proxy;
  std::unique_ptr<xsearch::net::ProxyServer> server;
};

std::unique_ptr<RemoteDeployment> start_remote_deployment(
    const api::ClientConfig& config) {
  auto deployment = std::make_unique<RemoteDeployment>();
  // Same translation as the in-process "xsearch" mechanism — the two must
  // not drift, or remote and in-process measurements stop being comparable.
  core::XSearchProxy::Options options = api::xsearch_proxy_options(config);
  options.contact_engine = false;  // saturation mode, no engine deployed
  auto proxy =
      core::XSearchProxy::create(nullptr, deployment->authority, options);
  if (!proxy.is_ok()) {
    std::fprintf(stderr, "xsearch-remote proxy: %s\n",
                 proxy.status().to_string().c_str());
    return nullptr;
  }
  deployment->proxy = std::move(proxy).value();
  auto server = net::ProxyServer::start(*deployment->proxy);
  if (!server.is_ok()) {
    std::fprintf(stderr, "xsearch-remote server: %s\n",
                 server.status().to_string().c_str());
    return nullptr;
  }
  deployment->server = std::move(server).value();
  return deployment;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("# Figure 5: latency vs offered throughput (proxy saturation)\n");

  std::string json_path = "BENCH_fig5.json";
  std::vector<std::string> mechanisms;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--mode=", 0) == 0) {
      mechanisms.push_back(arg.substr(7));
    } else {
      mechanisms.push_back(arg);
    }
  }
  if (mechanisms.empty()) mechanisms = {"xsearch", "peas", "tor"};

  const auto bed = bench::make_testbed(
      {.num_users = 100, .total_queries = 10'000, .num_documents = 100});
  const std::string sample_query = bed->split.test.records()[0].text;

  std::printf("%-16s %10s %12s %10s %10s %10s %8s\n", "system", "offered",
              "achieved", "mean_ms", "p50_ms", "p99_ms", "dropped");

  std::uint64_t seed = 100;
  for (const auto& name : mechanisms) {
    api::ClientConfig config;
    config.contact_engine = false;  // reply-immediately saturation mode
    config.k = 3;
    config.top_k = 20;
    config.history_capacity = 100'000;
    config.batch_workers = kWorkers;
    config.seed = seed += 100;

    if (name == "xsearch-sessions") {
      run_session_sweep(config);
      continue;
    }
    if (name == "xsearch-switchless") {
      run_switchless_sweep(config);
      continue;
    }
    if (name == "xsearch-fleet") {
      run_fleet_sweep(config);
      continue;
    }
    if (name == "xsearch-recovery") {
      run_recovery_sweep(config);
      continue;
    }
    if (name == "xsearch-degraded") {
      run_degraded_sweep(config, *bed->engine);
      continue;
    }
    if (name == "xsearch-idle-sweep") {
      run_idle_sweep(config);
      continue;
    }

    const bool remote = name == "xsearch-remote";
    std::unique_ptr<RemoteDeployment> deployment;
    api::ClientPtr client_ptr;
    if (remote) {
      // Real sockets supply the stack cost the in-process run calibrates.
      deployment = start_remote_deployment(config);
      if (deployment == nullptr) continue;
      client_ptr = api::make_remote_client(
          "127.0.0.1", deployment->server->port(), deployment->authority,
          deployment->proxy->measurement(), config);
    } else {
      config.stack_cost_per_request =
          netsim::service_costs::for_mechanism(name).cost_per_request;
      api::Backend backend;  // no engine: proxies answer without retrieval
      backend.fake_source = &bed->split.train;
      auto client = api::make_client(name, backend, config);
      if (!client.is_ok()) {
        std::fprintf(stderr, "%s: %s\n", name.c_str(),
                     client.status().to_string().c_str());
        continue;
      }
      client_ptr = std::move(client).value();
    }
    if (const auto status = client_ptr->connect(); !status.is_ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(), status.to_string().c_str());
      continue;
    }

    for (const double rps : rate_grid(name)) {
      const auto report = api::run_open_loop_batch(
          *client_ptr, [&] { return sample_query; }, config_for(rps));
      print_row(name, report);
    }
    client_ptr->close();

    if (remote) {
      // One attested session per batch lane, all concurrently live: the
      // multi-threaded shared-table claim of §4.1, measured.
      const auto stats = deployment->proxy->session_stats();
      std::printf("# %s sessions: peak=%zu created=%llu evicted=%llu "
                  "connections=%llu reaped=%llu\n",
                  name.c_str(), stats.peak_active,
                  static_cast<unsigned long long>(stats.created),
                  static_cast<unsigned long long>(stats.evicted_lru +
                                                  stats.expired_ttl),
                  static_cast<unsigned long long>(
                      deployment->server->connections_served()),
                  static_cast<unsigned long long>(
                      deployment->server->connections_reaped()));
      deployment->server->stop();
    }
  }

  if (write_json(json_path)) {
    std::printf("# wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
  }
  std::printf("\n# paper: X-Search ~25k req/s sub-second; PEAS ~1k; Tor ~100\n");
  return 0;
}
