// Ablation A6 — SimAttack vs a Naive Bayes ML attack.
//
// §5.3.1 motivates SimAttack because it outperforms earlier attacks
// "including a machine learning attack" (Peddinti & Saxena). This bench
// checks that claim against our substrate: both adversaries attack the same
// protected traffic; a stronger attack means a *higher* re-identification
// rate (worse for the user).
//
// The protected traffic is produced end to end through the unified client
// API: an X-Search client (k >= 1; k = 0 is the "direct" mechanism) serves
// each test query, and the adversaries observe exactly what the engine
// observes — the OR query string — which they split back into sub-queries,
// as the honest-but-curious engine of §3 would.
#include <cstdio>
#include <string>
#include <vector>

#include "api/client.hpp"
#include "api/registry.hpp"
#include "attack/ml_attack.hpp"
#include "attack/simattack.hpp"
#include "bench_common.hpp"

namespace {
using namespace xsearch;  // NOLINT
}

int main() {
  std::printf("# Ablation A6: re-identification rate, SimAttack vs Naive Bayes\n");
  const auto bed = bench::make_testbed();
  constexpr std::size_t kTestQueries = 200;

  attack::SimAttack simattack(bed->split.train);
  attack::NaiveBayesAttack bayes(bed->split.train);

  std::vector<std::string> warm;
  warm.reserve(bed->split.train.size());
  for (const auto& r : bed->split.train.records()) warm.push_back(r.text);

  // The adversary's vantage point: every query string the engine receives.
  std::vector<std::string> observed;
  bed->engine->set_observer(
      [&observed](std::string_view q) { observed.emplace_back(q); });

  std::printf("%-4s %12s %12s\n", "k", "SimAttack", "NaiveBayes");
  for (const std::size_t k : {0u, 1u, 3u, 5u}) {
    api::ClientConfig config;
    config.k = k;
    config.top_k = 20;
    config.history_capacity = 200'000;
    config.seed = 6000 + k;

    api::Backend backend;
    backend.engine = bed->engine.get();
    backend.fake_source = &bed->split.train;

    auto client = api::make_client(k == 0 ? "direct" : "xsearch", backend, config);
    if (!client.is_ok() || !client.value()->prime(warm).is_ok()) {
      std::fprintf(stderr, "k=%zu: client setup failed\n", k);
      continue;
    }

    std::size_t sim_correct = 0, nb_correct = 0;
    for (std::size_t i = 0; i < kTestQueries; ++i) {
      const auto& rec = bed->split.test.records()[i * 37 % bed->split.test.size()];
      observed.clear();
      if (!client.value()->search(rec.text).is_ok() || observed.empty()) continue;
      const auto sub_queries = attack::split_or_query(observed.front());

      if (const auto id = simattack.attack(sub_queries);
          id && id->user == rec.user && id->query == rec.text) {
        ++sim_correct;
      }
      if (const auto id = bayes.attack(sub_queries);
          id && id->user == rec.user && id->query == rec.text) {
        ++nb_correct;
      }
    }
    std::printf("%-4zu %12.3f %12.3f\n", k,
                static_cast<double>(sim_correct) / kTestQueries,
                static_cast<double>(nb_correct) / kTestQueries);
  }
  bed->engine->set_observer(nullptr);

  std::printf("\n# paper §5.3.1 (on AOL): SimAttack >= the ML attack. On the synthetic\n");
  std::printf("# log the NB baseline is comparable and can edge ahead — synthetic users\n");
  std::printf("# repeat exact queries more than AOL users, which frequency-based NB\n");
  std::printf("# exploits. Deviation documented in EXPERIMENTS.md (A6).\n");
  return 0;
}
