// Ablation A6 — SimAttack vs a Naive Bayes ML attack.
//
// §5.3.1 motivates SimAttack because it outperforms earlier attacks
// "including a machine learning attack" (Peddinti & Saxena). This bench
// checks that claim against our substrate: both adversaries attack the same
// protected traffic; a stronger attack means a *higher* re-identification
// rate (worse for the user).
#include <cstdio>
#include <vector>

#include "attack/ml_attack.hpp"
#include "attack/simattack.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "xsearch/history.hpp"
#include "xsearch/obfuscator.hpp"

namespace {
using namespace xsearch;  // NOLINT
}

int main() {
  std::printf("# Ablation A6: re-identification rate, SimAttack vs Naive Bayes\n");
  const auto bed = bench::make_testbed();
  constexpr std::size_t kTestQueries = 200;

  attack::SimAttack simattack(bed->split.train);
  attack::NaiveBayesAttack bayes(bed->split.train);

  std::printf("%-4s %12s %12s\n", "k", "SimAttack", "NaiveBayes");
  for (const std::size_t k : {0u, 1u, 3u, 5u}) {
    core::QueryHistory history(200'000);
    for (const auto& r : bed->split.train.records()) history.add(r.text);
    core::Obfuscator obfuscator(history, k);
    Rng rng(6000 + k);

    std::size_t sim_correct = 0, nb_correct = 0;
    for (std::size_t i = 0; i < kTestQueries; ++i) {
      const auto& rec = bed->split.test.records()[i * 37 % bed->split.test.size()];
      const auto obf = obfuscator.obfuscate(rec.text, rng);

      if (const auto id = simattack.attack(obf.sub_queries);
          id && id->user == rec.user && id->query == rec.text) {
        ++sim_correct;
      }
      if (const auto id = bayes.attack(obf.sub_queries);
          id && id->user == rec.user && id->query == rec.text) {
        ++nb_correct;
      }
    }
    std::printf("%-4zu %12.3f %12.3f\n", k,
                static_cast<double>(sim_correct) / kTestQueries,
                static_cast<double>(nb_correct) / kTestQueries);
  }
  std::printf("\n# paper §5.3.1 (on AOL): SimAttack >= the ML attack. On the synthetic\n");
  std::printf("# log the NB baseline is comparable and can edge ahead — synthetic users\n");
  std::printf("# repeat exact queries more than AOL users, which frequency-based NB\n");
  std::printf("# exploits. Deviation documented in EXPERIMENTS.md (A6).\n");
  return 0;
}
