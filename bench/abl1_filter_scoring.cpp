// Ablation A1 — filter scoring function.
//
// Algorithm 2 scores results by common-word counts. How much of Figure 4's
// accuracy is due to that choice? Compare, at each k: the paper's
// common-words scoring, a cosine-similarity variant, and no filtering at
// all (return the merged OR results untouched).
#include <cstdio>
#include <unordered_set>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "xsearch/filter.hpp"
#include "xsearch/history.hpp"
#include "xsearch/obfuscator.hpp"

namespace {

using namespace xsearch;  // NOLINT

struct Accuracy {
  double precision = 0.0;
  double recall = 0.0;
};

enum class Mode { kCommonWords, kCosine, kNoFilter };

Accuracy evaluate(const bench::Testbed& bed, std::size_t k, Mode mode) {
  Rng rng(7000 + k + static_cast<std::size_t>(mode) * 100);
  core::QueryHistory history(200'000);
  for (const auto& r : bed.split.train.records()) history.add(r.text);
  core::Obfuscator obfuscator(history, k);
  core::ResultFilter common_words(core::FilterScoring::kCommonWords);
  core::ResultFilter cosine(core::FilterScoring::kCosine);

  double precision_sum = 0, recall_sum = 0;
  std::size_t counted = 0;
  constexpr std::size_t kQueries = 80;
  for (std::size_t i = 0; i < kQueries; ++i) {
    const auto& query = bed.split.test.records()[i * 41 % bed.split.test.size()].text;
    const auto reference = bed.engine->search(query, 20);
    if (reference.empty()) continue;
    std::unordered_set<engine::DocId> reference_docs;
    for (const auto& r : reference) reference_docs.insert(r.doc);

    const auto obf = obfuscator.obfuscate(query, rng);
    auto merged = bed.engine->search_or(obf.sub_queries, 20);
    std::vector<engine::SearchResult> kept;
    switch (mode) {
      case Mode::kCommonWords:
        kept = common_words.filter(obf.original, obf.fakes, std::move(merged));
        break;
      case Mode::kCosine:
        kept = cosine.filter(obf.original, obf.fakes, std::move(merged));
        break;
      case Mode::kNoFilter:
        kept = std::move(merged);
        break;
    }
    ++counted;
    if (kept.empty()) continue;
    std::size_t inter = 0;
    for (const auto& r : kept) inter += reference_docs.contains(r.doc);
    precision_sum += static_cast<double>(inter) / static_cast<double>(kept.size());
    recall_sum += static_cast<double>(inter) / static_cast<double>(reference.size());
  }
  if (counted == 0) return {};
  return {precision_sum / static_cast<double>(counted),
          recall_sum / static_cast<double>(counted)};
}

}  // namespace

int main() {
  std::printf("# Ablation A1: filter scoring function (precision / recall)\n");
  const auto bed = bench::make_testbed();

  std::printf("%-4s %12s %12s %12s %12s %12s %12s\n", "k", "words_prec",
              "words_rec", "cosine_prec", "cosine_rec", "none_prec", "none_rec");
  for (std::size_t k : {1u, 2u, 4u, 7u}) {
    const auto words = evaluate(*bed, k, Mode::kCommonWords);
    const auto cos = evaluate(*bed, k, Mode::kCosine);
    const auto none = evaluate(*bed, k, Mode::kNoFilter);
    std::printf("%-4zu %12.3f %12.3f %12.3f %12.3f %12.3f %12.3f\n", k,
                words.precision, words.recall, cos.precision, cos.recall,
                none.precision, none.recall);
  }
  std::printf("\n# expectation: filtering lifts precision far above no-filter;\n");
  std::printf("# cosine and common-words land close (the paper's choice is cheap)\n");
  return 0;
}
