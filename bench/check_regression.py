#!/usr/bin/env python3
"""Perf-regression gate over BENCH_micro.json.

Compares the current microbench run against the committed baseline
(bench/baselines/BENCH_micro.baseline.json) and fails when any stage
regresses beyond the threshold.

Raw microsecond comparisons across machines gate nothing but CPU models,
so the comparator normalizes first: it computes the median speed ratio
(current/baseline) across all stages and judges each stage against
baseline * median * (1 + threshold). A uniformly slower runner moves the
median and passes; ONE stage regressing (the thing a bad commit does)
stands out against the others and fails. An absolute mode (--absolute)
exists for same-machine A/B runs.

Exit status: 0 clean, 1 regression (or malformed input).

Usage:
  check_regression.py BASELINE CURRENT [--threshold 0.25] [--absolute]
                      [--inject STAGE=FACTOR] [--summary PATH]

--inject multiplies STAGE's current us/op by FACTOR before comparing —
the CI self-test proving the gate is live: injecting a 2x slowdown into
any stage MUST make this script fail.

--summary appends the markdown table to PATH (defaults to
$GITHUB_STEP_SUMMARY when set, so the job summary shows the pre/post
table).
"""

import argparse
import json
import os
import statistics
import sys


def load_stages(path):
    with open(path) as fh:
        doc = json.load(fh)
    stages = {s["name"]: float(s["us_per_op"]) for s in doc.get("stages", [])}
    if not stages:
        raise ValueError(f"{path}: no stages")
    return stages


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed normalized regression (0.25 = 25%%)")
    parser.add_argument("--absolute", action="store_true",
                        help="skip machine-speed normalization")
    parser.add_argument("--inject", default=None, metavar="STAGE=FACTOR",
                        help="multiply one current stage by FACTOR (gate self-test)")
    parser.add_argument("--summary", default=os.environ.get("GITHUB_STEP_SUMMARY"),
                        help="append the markdown table to this file")
    args = parser.parse_args()

    try:
        baseline = load_stages(args.baseline)
        current = load_stages(args.current)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as err:
        print(f"check_regression: {err}", file=sys.stderr)
        return 1

    if args.inject:
        stage, _, factor = args.inject.partition("=")
        if stage not in current:
            print(f"check_regression: --inject: unknown stage {stage!r}",
                  file=sys.stderr)
            return 1
        current[stage] *= float(factor)
        print(f"# injected synthetic {factor}x slowdown into {stage!r}")

    shared = [name for name in baseline if name in current]
    missing = [name for name in baseline if name not in current]
    if not shared:
        print("check_regression: no shared stages", file=sys.stderr)
        return 1

    scale = 1.0
    if not args.absolute:
        scale = statistics.median(current[n] / baseline[n] for n in shared)

    bar = scale * (1.0 + args.threshold)
    lines = [
        f"# microbench regression gate (threshold {args.threshold:.0%}, "
        f"machine-speed scale {scale:.2f}x)",
        "",
        "| stage | baseline us/op | current us/op | normalized | verdict |",
        "|---|---|---|---|---|",
    ]
    failed = []
    for name in shared:
        ratio = current[name] / baseline[name]
        normalized = ratio / scale
        ok = ratio <= bar
        if not ok:
            failed.append(name)
        lines.append(
            f"| {name} | {baseline[name]:.2f} | {current[name]:.2f} "
            f"| {normalized:.2f}x | {'ok' if ok else '**REGRESSED**'} |")
    for name in missing:
        failed.append(name)
        lines.append(f"| {name} | {baseline[name]:.2f} | missing | - | **MISSING** |")

    table = "\n".join(lines)
    print(table)
    if args.summary:
        try:
            with open(args.summary, "a") as fh:
                fh.write(table + "\n")
        except OSError as err:
            print(f"check_regression: cannot write summary: {err}", file=sys.stderr)

    if failed:
        print(f"\ncheck_regression: FAILED stages: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    print("\ncheck_regression: all stages within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
