// Figure 4 — precision and recall of X-Search's filtered results vs k.
//
// Paper claims: both precision and recall decrease slightly with k and stay
// above ~0.8 at k = 2. Methodology (§5.3.2): for each test query compare
// (a) the engine's results for the query alone against (b) what the user
// receives from an X-Search client — the obfuscated OR query's merged
// results after Algorithm 2 filtering; first 20 results; 100 random test
// queries per k.
//
// The X-Search path runs end to end through the unified client API: one
// client per k, history primed with the training stream (§5.1), each test
// query searched through the attested broker/enclave/engine pipeline.
// k = 0 — no obfuscation — is by definition the "direct" mechanism (a
// validated X-Search configuration requires k >= 1).
#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "api/client.hpp"
#include "api/registry.hpp"
#include "bench_common.hpp"

namespace {

using namespace xsearch;  // NOLINT

struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;
};

PrecisionRecall accuracy_for_k(const bench::Testbed& bed, std::size_t k,
                               std::size_t n_queries, std::uint64_t seed) {
  api::ClientConfig config;
  config.k = k;
  config.top_k = 20;
  config.history_capacity = 200'000;
  config.seed = seed;

  api::Backend backend;
  backend.engine = bed.engine.get();
  backend.fake_source = &bed.split.train;

  auto client = api::make_client(k == 0 ? "direct" : "xsearch", backend, config);
  if (!client.is_ok()) return {};

  std::vector<std::string> warm;
  warm.reserve(bed.split.train.size());
  for (const auto& r : bed.split.train.records()) warm.push_back(r.text);
  if (!client.value()->prime(warm).is_ok()) return {};

  double precision_sum = 0.0;
  double recall_sum = 0.0;
  std::size_t counted = 0;

  for (std::size_t i = 0; i < n_queries; ++i) {
    const auto& query =
        bed.split.test.records()[i * 41 % bed.split.test.size()].text;

    // Ground truth: first 20 results for the raw query.
    const auto reference = bed.engine->search(query, 20);
    if (reference.empty()) continue;
    std::unordered_set<engine::DocId> reference_docs;
    for (const auto& r : reference) reference_docs.insert(r.doc);

    // X-Search path: obfuscate, merged OR results, filter — end to end.
    const auto response = client.value()->search(query);
    if (!response.is_ok()) continue;
    const auto& filtered = response.value();
    if (filtered.empty()) {
      // No results returned to the user: recall 0 for this query; precision
      // undefined, skipped (matches the paper's averaging over returned sets).
      recall_sum += 0.0;
      ++counted;
      continue;
    }

    std::size_t intersection = 0;
    for (const auto& r : filtered) intersection += reference_docs.contains(r.doc);
    precision_sum +=
        static_cast<double>(intersection) / static_cast<double>(filtered.size());
    recall_sum +=
        static_cast<double>(intersection) / static_cast<double>(reference.size());
    ++counted;
  }

  if (counted == 0) return {};
  return PrecisionRecall{precision_sum / static_cast<double>(counted),
                         recall_sum / static_cast<double>(counted)};
}

}  // namespace

int main() {
  std::printf("# Figure 4: accuracy (precision/recall) of filtered results vs k\n");
  const auto bed = bench::make_testbed();
  constexpr std::size_t kQueries = 100;  // paper: 100 random test queries per k

  std::printf("%-4s %12s %12s\n", "k", "precision", "recall");
  for (std::size_t k = 0; k <= 7; ++k) {
    const auto pr = accuracy_for_k(*bed, k, kQueries, 3000 + k);
    std::printf("%-4zu %12.3f %12.3f\n", k, pr.precision, pr.recall);
  }
  std::printf("\n# paper: precision and recall > 0.8 at k=2, slight decrease with k\n");
  return 0;
}
