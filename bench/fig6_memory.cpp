// Figure 6 — enclave memory usage vs number of stored past queries.
//
// Paper claim (§6.3): the usable EPC (~90 MB) fits more than 1M queries in
// the obfuscation history with room to spare. The paper measured the heap
// of the xsearch process with Valgrind massif while loading the 6M-unique-
// query AOL vocabulary; here every byte of the in-enclave history is
// metered by the EpcAccountant, and we load 1M unique synthetic queries.
#include <cstdio>
#include <string>

#include "common/rng.hpp"
#include "dataset/synthetic.hpp"
#include "sgx/epc.hpp"
#include "xsearch/history.hpp"

namespace {

using namespace xsearch;  // NOLINT

/// Unique query strings with AOL-like length statistics (mean ~20 chars).
std::string make_query(std::size_t index, Rng& rng,
                       const std::vector<std::string>& vocabulary) {
  std::string q = vocabulary[rng.uniform(vocabulary.size())];
  const std::size_t words = 1 + rng.uniform(3);
  for (std::size_t w = 1; w < words; ++w) {
    q += ' ';
    q += vocabulary[rng.uniform(vocabulary.size())];
  }
  // Uniqueness suffix (the paper used the 6M *unique* AOL queries).
  q += ' ';
  q += std::to_string(index);
  return q;
}

}  // namespace

int main() {
  std::printf("# Figure 6: enclave memory vs queries stored (usable EPC = 90 MB)\n");

  // Vocabulary for realistic word material.
  dataset::SyntheticLogConfig log_config;
  log_config.num_users = 50;
  log_config.total_queries = 5000;
  log_config.vocab_size = 20'000;
  const auto log = dataset::generate_synthetic_log(log_config);
  std::vector<std::string> vocabulary;
  {
    std::unordered_map<std::string, bool> seen;
    for (const auto& r : log.records()) {
      std::string word;
      for (const char c : r.text) {
        if (c == ' ') break;
        word += c;
      }
      if (!word.empty() && !seen[word]) {
        seen[word] = true;
        vocabulary.push_back(word);
      }
    }
  }

  constexpr std::size_t kMaxQueries = 1'000'000;
  sgx::EpcAccountant epc;  // default 90 MiB usable
  core::QueryHistory history(kMaxQueries, &epc);
  Rng rng(0xf16 + 6);

  std::printf("%-16s %14s %12s %12s %12s\n", "queries_stored", "memory_MB",
              "epc_used_%", "page_faults", "fits_epc");
  const double mb = 1024.0 * 1024.0;
  for (std::size_t count = 0; count <= kMaxQueries;) {
    std::printf("%-16zu %14.2f %12.1f %12llu %12s\n", count,
                static_cast<double>(epc.in_use()) / mb,
                100.0 * static_cast<double>(epc.in_use()) /
                    static_cast<double>(epc.limit()),
                static_cast<unsigned long long>(epc.page_faults()),
                epc.over_limit() ? "NO" : "yes");
    const std::size_t next = count + 100'000;
    for (; count < next && count < kMaxQueries; ++count) {
      history.add(make_query(count, rng, vocabulary));
    }
    if (count == kMaxQueries) {
      std::printf("%-16zu %14.2f %12.1f %12llu %12s\n", count,
                  static_cast<double>(epc.in_use()) / mb,
                  100.0 * static_cast<double>(epc.in_use()) /
                      static_cast<double>(epc.limit()),
                  static_cast<unsigned long long>(epc.page_faults()),
                  epc.over_limit() ? "NO" : "yes");
      break;
    }
  }

  std::printf("\n# paper: >1M queries fit below the 90 MB usable EPC\n");
  return 0;
}
