// Shared experimental setup for the figure benches.
//
// Every bench builds the same testbed (synthetic AOL-like log, §5.1
// methodology: top-100 active users, 2/3-1/3 train/test split, topically
// coherent corpus + engine) from one seed, prints the seed, and regenerates
// one figure of the paper. Scale knobs are centralized here so all figures
// run against the same world.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "dataset/query_log.hpp"
#include "dataset/synthetic.hpp"
#include "engine/corpus.hpp"
#include "engine/search_engine.hpp"

namespace xsearch::bench {

struct Testbed {
  dataset::SyntheticLogConfig log_config;
  dataset::QueryLog log;            // the full synthetic log
  std::vector<dataset::UserId> top_users;
  dataset::QueryLog top_log;        // only the most active users
  dataset::TrainTestSplit split;    // of top_log (train = adversary knowledge)
  // Held by pointer: SearchEngine keeps a reference into Corpus, so both
  // must stay at stable addresses.
  std::unique_ptr<engine::Corpus> corpus;
  std::unique_ptr<engine::SearchEngine> engine;
};

struct TestbedConfig {
  std::uint64_t seed = 20170911;  // Middleware'17 submission era
  std::size_t num_users = 400;
  std::size_t total_queries = 60'000;
  std::size_t vocab_size = 8'000;
  std::size_t num_topics = 80;
  std::size_t top_n_users = 100;   // §5.1: 100 most active users
  std::size_t num_documents = 12'000;
};

inline std::unique_ptr<Testbed> make_testbed(const TestbedConfig& config = {}) {
  auto bed = std::make_unique<Testbed>();

  bed->log_config.seed = config.seed;
  bed->log_config.num_users = config.num_users;
  bed->log_config.total_queries = config.total_queries;
  bed->log_config.vocab_size = config.vocab_size;
  bed->log_config.num_topics = config.num_topics;

  bed->log = dataset::generate_synthetic_log(bed->log_config);
  bed->top_users = bed->log.most_active_users(config.top_n_users);
  bed->top_log = bed->log.filter_users(bed->top_users);
  bed->split = dataset::split_per_user(bed->top_log, 2.0 / 3.0);

  engine::CorpusConfig corpus_config;
  corpus_config.seed = config.seed ^ 0xd0c5;
  corpus_config.num_documents = config.num_documents;
  bed->corpus = std::make_unique<engine::Corpus>(bed->log, corpus_config);
  bed->engine = std::make_unique<engine::SearchEngine>(*bed->corpus);

  std::printf("# testbed: seed=%llu users=%zu queries=%zu top=%zu docs=%zu "
              "train=%zu test=%zu\n",
              static_cast<unsigned long long>(config.seed), config.num_users,
              config.total_queries, config.top_n_users, config.num_documents,
              bed->split.train.size(), bed->split.test.size());
  return bed;
}

}  // namespace xsearch::bench
