// Figure 3 — re-identification rate vs k for X-Search and PEAS.
//
// Paper claims: (1) with unlinkability alone (k = 0) SimAttack re-associates
// ~40% of test queries to their user; (2) the rate drops with k; (3)
// X-Search's real-past-query fakes beat PEAS's co-occurrence fakes at every
// k (23%-35% better protection).
//
// Protocol (§5.3.1): per test query of the top-100 users, build the
// protected query (k+1 sub-queries), run SimAttack against the training
// profiles, and count a success only when both the original query and the
// requesting user are recovered.
#include <cstdio>
#include <string>
#include <vector>

#include "attack/simattack.hpp"
#include "baselines/peas/peas.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "xsearch/history.hpp"
#include "xsearch/obfuscator.hpp"

namespace {

using namespace xsearch;  // NOLINT

struct AttackInput {
  dataset::UserId user;
  std::string original;
  std::vector<std::string> sub_queries;
};

double reidentification_rate(const attack::SimAttack& simattack,
                             const std::vector<AttackInput>& inputs) {
  std::size_t correct = 0;
  for (const auto& input : inputs) {
    const auto id = simattack.attack(input.sub_queries);
    if (id && id->user == input.user && id->query == input.original) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(inputs.size());
}

}  // namespace

int main() {
  std::printf("# Figure 3: re-identification rate vs k (lower = better privacy)\n");
  const auto bed = bench::make_testbed();
  constexpr std::size_t kTestQueries = 250;

  attack::SimAttack simattack(bed->split.train);

  // Test queries, round-robin over the test split for user diversity.
  std::vector<std::pair<dataset::UserId, std::string>> tests;
  for (std::size_t i = 0; i < kTestQueries; ++i) {
    const auto& r = bed->split.test.records()[i * 37 % bed->split.test.size()];
    tests.emplace_back(r.user, r.text);
  }

  baselines::peas::FakeQueryGenerator peas_gen(bed->split.train);

  std::printf("%-4s %14s %14s %16s\n", "k", "X-Search", "PEAS",
              "improvement(%)");
  for (std::size_t k = 0; k <= 7; ++k) {
    // --- X-Search: fakes drawn from the proxy's history of real queries.
    // The proxy is warmed with the training stream (queries of all users,
    // stored without identities), exactly the state a long-running proxy
    // would have.
    Rng rng(1000 + k);
    core::QueryHistory history(200'000);
    for (const auto& r : bed->split.train.records()) history.add(r.text);
    core::Obfuscator obfuscator(history, k);

    std::vector<AttackInput> xs_inputs;
    for (const auto& [user, query] : tests) {
      const auto obf = obfuscator.obfuscate(query, rng);
      xs_inputs.push_back({user, query, obf.sub_queries});
    }
    const double xs_rate = reidentification_rate(simattack, xs_inputs);

    // --- PEAS: fakes from co-occurrence walks, client-side.
    Rng peas_rng(2000 + k);
    std::vector<AttackInput> peas_inputs;
    for (const auto& [user, query] : tests) {
      std::vector<std::string> subs = peas_gen.generate_k(query, k, peas_rng);
      const std::size_t pos = peas_rng.uniform(subs.size() + 1);
      subs.insert(subs.begin() + static_cast<std::ptrdiff_t>(pos), query);
      peas_inputs.push_back({user, query, std::move(subs)});
    }
    const double peas_rate = reidentification_rate(simattack, peas_inputs);

    const double improvement =
        peas_rate > 0 ? (peas_rate - xs_rate) / peas_rate * 100.0 : 0.0;
    std::printf("%-4zu %14.3f %14.3f %16.1f\n", k, xs_rate, peas_rate, improvement);
  }

  std::printf("\n# paper: k=0 ~0.40 for both; X-Search below PEAS for all k>=1\n");
  return 0;
}
