// Ablation A5 — proxy compute cost as a function of k.
//
// Figure 5 fixes k = 3; here the pure per-request compute of the X-Search
// proxy (channel crypto + Algorithm 1 sampling + history update, no engine,
// no calibrated stack cost) is swept over k, separating the crypto floor
// from the obfuscation increment. Also reports the engine-side cost: the OR
// query grows with k, so retrieval work scales with k+1.
#include <cstdio>

#include "bench_common.hpp"
#include "common/clock.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/broker.hpp"
#include "xsearch/proxy.hpp"

namespace {
using namespace xsearch;  // NOLINT
}

int main() {
  std::printf("# Ablation A5: per-request proxy compute vs k\n");
  const auto bed = bench::make_testbed(
      {.num_users = 100, .total_queries = 15'000, .num_documents = 6'000});
  sgx::AttestationAuthority authority(to_bytes("bench-root"));
  constexpr std::size_t kQueries = 400;

  std::printf("%-4s %18s %20s\n", "k", "proxy_only_us/query",
              "with_engine_us/query");
  for (const std::size_t k : {0u, 1u, 3u, 5u, 7u, 10u}) {
    // Proxy-only (saturation mode): crypto + obfuscation + history.
    double proxy_only_us = 0;
    {
      core::XSearchProxy::Options options;
      options.k = k;
      options.history_capacity = 100'000;
      options.contact_engine = false;
      core::XSearchProxy proxy(nullptr, authority, options);
      core::ClientBroker broker(proxy, authority, proxy.measurement(), 1);
      for (std::size_t i = 0; i < 200; ++i) {  // warm history + caches
        (void)broker.search(bed->split.train.records()[i].text);
      }
      const Nanos t0 = wall_now();
      for (std::size_t i = 0; i < kQueries; ++i) {
        (void)broker.search(
            bed->split.test.records()[i % bed->split.test.size()].text);
      }
      proxy_only_us = static_cast<double>(wall_now() - t0) /
                      static_cast<double>(kQueries) / 1000.0;
    }

    // Full path including the (k+1)-sub-query engine retrieval + filtering.
    double with_engine_us = 0;
    {
      core::XSearchProxy::Options options;
      options.k = k;
      options.history_capacity = 100'000;
      core::XSearchProxy proxy(bed->engine.get(), authority, options);
      core::ClientBroker broker(proxy, authority, proxy.measurement(), 2);
      for (std::size_t i = 0; i < 100; ++i) {
        (void)broker.search(bed->split.train.records()[i].text);
      }
      const Nanos t0 = wall_now();
      for (std::size_t i = 0; i < kQueries; ++i) {
        (void)broker.search(
            bed->split.test.records()[i % bed->split.test.size()].text);
      }
      with_engine_us = static_cast<double>(wall_now() - t0) /
                       static_cast<double>(kQueries) / 1000.0;
    }

    std::printf("%-4zu %18.1f %20.1f\n", k, proxy_only_us, with_engine_us);
  }
  std::printf("\n# expectation: proxy-only cost is nearly flat in k (sampling is\n");
  std::printf("# O(k) on tiny strings); engine+filter cost grows ~linearly with k+1\n");
  return 0;
}
