// Figure 7 — CDF of user-perceived web-search round-trip time for 100
// queries per mechanism.
//
// Paper numbers (§6.3, measured May 2017): X-Search median 0.577 s /
// p99 0.873 s; Tor median 1.06 s / p99 up to ~3 s; Direct fastest. The
// paper plots Direct, X-Search and Tor; through the unified API the same
// harness also covers TrackMeNot and PEAS (pass names on the command line
// to choose).
//
// Composition per request = (calibrated WAN link samples,
// netsim::wan::sample_search_rtt) + (measured wall-clock of the system's
// real compute path: channel crypto, obfuscation, engine retrieval,
// filtering, onion layers). The WAN part is a model; the compute part is
// executed and timed.
//
// Run: ./build/bench/fig7_end_to_end [mechanism...]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "api/client.hpp"
#include "api/registry.hpp"
#include "bench_common.hpp"
#include "common/clock.hpp"
#include "netsim/netsim.hpp"

namespace {

using namespace xsearch;  // NOLINT

void print_cdf(const std::string& name, std::vector<double>& seconds) {
  std::sort(seconds.begin(), seconds.end());
  auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(seconds.size() - 1) + 0.5);
    return seconds[std::min(idx, seconds.size() - 1)];
  };
  std::printf("%-10s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
              name.c_str(), at(0.10), at(0.25), at(0.50), at(0.75), at(0.90),
              at(0.99), seconds.back());
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("# Figure 7: end-to-end search RTT CDF, 100 queries per system\n");
  const auto bed = bench::make_testbed();
  constexpr std::size_t kQueries = 100;  // paper: 100 (Bing rate limits)
  Rng net_rng(0xf17);

  std::vector<std::string> mechanisms = {"direct", "xsearch", "tor"};
  if (argc > 1) mechanisms.assign(argv + 1, argv + argc);

  std::vector<std::string> queries;
  for (std::size_t i = 0; i < kQueries; ++i) {
    queries.push_back(bed->split.test.records()[i * 29 % bed->split.test.size()].text);
  }
  // Warm-up stream: other users' traffic, so obfuscating mechanisms draw
  // real decoys (§5.1 methodology).
  std::vector<std::string> warm;
  for (std::size_t i = 0; i < 200; ++i) {
    warm.push_back(bed->split.train.records()[i * 13 % bed->split.train.size()].text);
  }

  std::printf("%-10s %8s %8s %8s %8s %8s %8s %8s\n", "system", "p10", "p25",
              "p50", "p75", "p90", "p99", "max");

  std::uint64_t seed = 7;
  for (const auto& name : mechanisms) {
    api::ClientConfig config;
    config.k = 3;
    config.top_k = 20;
    config.history_capacity = 200'000;
    config.seed = seed += 70;

    api::Backend backend;
    backend.engine = bed->engine.get();
    backend.fake_source = &bed->split.train;

    auto client = api::make_client(name, backend, config);
    if (!client.is_ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   client.status().to_string().c_str());
      continue;
    }
    if (const auto status = client.value()->prime(warm); !status.is_ok()) {
      std::fprintf(stderr, "%s: prime: %s\n", name.c_str(),
                   status.to_string().c_str());
      continue;
    }

    std::vector<double> rtt;
    rtt.reserve(kQueries);
    for (const auto& q : queries) {
      const Nanos t0 = wall_now();
      (void)client.value()->search(q);
      const Nanos compute = wall_now() - t0;
      const Nanos total =
          compute + netsim::wan::sample_search_rtt(name, config.k, net_rng);
      rtt.push_back(static_cast<double>(total) / static_cast<double>(kSecond));
    }
    print_cdf(name, rtt);
  }

  std::printf("\n# paper: X-Search median 0.577s p99 0.873s; Tor median 1.06s p99 ~3s\n");
  return 0;
}
