// Figure 7 — CDF of user-perceived web-search round-trip time for 100
// queries: Direct, X-Search (k=3) and Tor.
//
// Paper numbers (§6.3, measured May 2017): X-Search median 0.577 s /
// p99 0.873 s; Tor median 1.06 s / p99 up to ~3 s; Direct fastest.
//
// Composition per request = (calibrated WAN link samples, netsim/) +
// (measured wall-clock of the system's real compute path: channel crypto,
// obfuscation, engine retrieval, filtering, onion layers). The WAN part is
// a model; the compute part is executed and timed.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "baselines/direct/direct.hpp"
#include "baselines/tor/tor.hpp"
#include "bench_common.hpp"
#include "common/clock.hpp"
#include "netsim/netsim.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/broker.hpp"
#include "xsearch/proxy.hpp"

namespace {

using namespace xsearch;  // NOLINT

void print_cdf(const char* name, std::vector<double>& seconds) {
  std::sort(seconds.begin(), seconds.end());
  auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(seconds.size() - 1) + 0.5);
    return seconds[std::min(idx, seconds.size() - 1)];
  };
  std::printf("%-10s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n", name, at(0.10),
              at(0.25), at(0.50), at(0.75), at(0.90), at(0.99), seconds.back());
}

}  // namespace

int main() {
  std::printf("# Figure 7: end-to-end search RTT CDF, 100 queries per system\n");
  const auto bed = bench::make_testbed();
  constexpr std::size_t kQueries = 100;  // paper: 100 (Bing rate limits)
  Rng net_rng(0xf17);

  std::vector<std::string> queries;
  for (std::size_t i = 0; i < kQueries; ++i) {
    queries.push_back(bed->split.test.records()[i * 29 % bed->split.test.size()].text);
  }

  const auto engine_link = netsim::links::engine_processing();
  const auto c2e = netsim::links::client_to_engine();
  const auto c2p = netsim::links::client_to_proxy();
  const auto p2e = netsim::links::proxy_to_engine();
  const auto tor_hop = netsim::links::tor_hop();

  // ---- Direct -------------------------------------------------------------------
  std::vector<double> direct_rtt;
  {
    baselines::direct::DirectClient client(*bed->engine);
    for (const auto& q : queries) {
      const Nanos t0 = wall_now();
      (void)client.search(q, 20);
      const Nanos compute = wall_now() - t0;
      const Nanos total = c2e.sample(net_rng) * 2 + engine_link.sample(net_rng) + compute;
      direct_rtt.push_back(static_cast<double>(total) / static_cast<double>(kSecond));
    }
  }

  // ---- X-Search (k=3) --------------------------------------------------------------
  std::vector<double> xsearch_rtt;
  {
    sgx::AttestationAuthority authority(to_bytes("bench-root"));
    core::XSearchProxy::Options options;
    options.k = 3;
    options.history_capacity = 200'000;
    core::XSearchProxy proxy(bed->engine.get(), authority, options);
    core::ClientBroker broker(proxy, authority, proxy.measurement(), 77);
    // Warm the history so obfuscation uses real decoys.
    for (std::size_t i = 0; i < 200; ++i) {
      (void)broker.search(bed->split.train.records()[i * 13 %
                                                     bed->split.train.size()].text);
    }

    // The engine evaluates the k+1 sub-queries of the OR query (§5.3.2
    // methodology), so its processing share grows mildly with k.
    const double or_query_factor = 1.0 + 0.04 * static_cast<double>(options.k + 1);
    for (const auto& q : queries) {
      const Nanos t0 = wall_now();
      (void)broker.search(q);
      const Nanos compute = wall_now() - t0;
      // client->proxy->engine->proxy->client; the OR query is one request.
      const Nanos total =
          c2p.sample(net_rng) * 2 + p2e.sample(net_rng) * 2 +
          static_cast<Nanos>(or_query_factor *
                             static_cast<double>(engine_link.sample(net_rng))) +
          compute;
      xsearch_rtt.push_back(static_cast<double>(total) / static_cast<double>(kSecond));
    }
  }

  // ---- Tor ---------------------------------------------------------------------------
  std::vector<double> tor_rtt;
  {
    baselines::tor::TorRelay entry(1), middle(2), exit(3);
    baselines::tor::TorClient client({&entry, &middle, &exit}, bed->engine.get(), 11);
    for (const auto& q : queries) {
      const Nanos t0 = wall_now();
      (void)client.search(q, 20);
      const Nanos compute = wall_now() - t0;
      Nanos total = compute + engine_link.sample(net_rng);
      for (int hop = 0; hop < 6; ++hop) total += tor_hop.sample(net_rng);  // 3 each way
      tor_rtt.push_back(static_cast<double>(total) / static_cast<double>(kSecond));
    }
  }

  std::printf("%-10s %8s %8s %8s %8s %8s %8s %8s\n", "system", "p10", "p25", "p50",
              "p75", "p90", "p99", "max");
  print_cdf("Direct", direct_rtt);
  print_cdf("X-Search", xsearch_rtt);
  print_cdf("Tor", tor_rtt);

  std::printf("\n# paper: X-Search median 0.577s p99 0.873s; Tor median 1.06s p99 ~3s\n");
  return 0;
}
