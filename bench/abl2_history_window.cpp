// Ablation A2 — history window size x.
//
// §4.3 bounds the past-query table to x entries to fit the EPC. The window
// size trades memory against decoy diversity and privacy: a tiny window
// recycles the same few decoys (and skews them toward recent users), while
// a huge one costs memory. Measured here per x: enclave memory, decoy
// distinctness over a burst of obfuscations, and the SimAttack
// re-identification rate at k = 3.
#include <cstdio>
#include <unordered_set>

#include "attack/simattack.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "sgx/epc.hpp"
#include "xsearch/history.hpp"
#include "xsearch/obfuscator.hpp"

namespace {
using namespace xsearch;  // NOLINT
}

int main() {
  std::printf("# Ablation A2: history window size vs memory, diversity, privacy\n");
  const auto bed = bench::make_testbed();
  attack::SimAttack simattack(bed->split.train);
  constexpr std::size_t kK = 3;
  constexpr std::size_t kTestQueries = 150;

  std::printf("%-10s %12s %16s %14s\n", "window_x", "memory_KB",
              "distinct_decoys", "reid_rate_k3");
  for (const std::size_t window : {100u, 1'000u, 10'000u, 100'000u}) {
    sgx::EpcAccountant epc;
    core::QueryHistory history(window, &epc);
    for (const auto& r : bed->split.train.records()) history.add(r.text);
    core::Obfuscator obfuscator(history, kK);
    Rng rng(9000 + window);

    // Decoy diversity: distinct fakes across a burst of obfuscations.
    std::unordered_set<std::string> distinct;
    std::size_t total_fakes = 0;
    for (std::size_t i = 0; i < 200; ++i) {
      const auto obf = obfuscator.obfuscate("probe " + std::to_string(i), rng);
      for (const auto& f : obf.fakes) {
        distinct.insert(f);
        ++total_fakes;
      }
    }

    // Privacy at k=3 under this window.
    std::size_t correct = 0;
    for (std::size_t i = 0; i < kTestQueries; ++i) {
      const auto& rec = bed->split.test.records()[i * 37 % bed->split.test.size()];
      const auto obf = obfuscator.obfuscate(rec.text, rng);
      const auto id = simattack.attack(obf.sub_queries);
      if (id && id->user == rec.user && id->query == rec.text) ++correct;
    }

    std::printf("%-10zu %12.1f %11zu/%-4zu %14.3f\n", window,
                static_cast<double>(epc.in_use()) / 1024.0, distinct.size(),
                total_fakes,
                static_cast<double>(correct) / static_cast<double>(kTestQueries));
  }
  std::printf("\n# expectation: memory grows ~linearly with x; diversity saturates;\n");
  std::printf("# privacy roughly stable once the window spans many users\n");
  return 0;
}
