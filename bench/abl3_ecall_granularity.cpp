// Ablation A3 — enclave interface granularity.
//
// §5.3.3: "to avoid unnecessary and costly mode transitions, we limit the
// enclave interface to allow only essential operations". This bench
// quantifies that design choice: it runs real queries through the proxy,
// counts the actual boundary crossings of the narrow interface (1 ecall +
// 4 ocalls per query), contrasts them with a hypothetical chatty interface
// that crosses once per pipeline step (decrypt, k samples, store, send,
// recv, filter, encrypt), and prices both with the canonical ~8 us
// SGX transition cost from the literature.
//
// A third column prices the exitless (switchless) path: the same query
// stream through the job ring, where the only ecall is the one long-running
// run_workers entry and steady-state crossings per query tend to zero.
#include <cstdio>

#include "bench_common.hpp"
#include "common/clock.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/broker.hpp"
#include "xsearch/proxy.hpp"

namespace {
using namespace xsearch;  // NOLINT

constexpr double kTransitionMicros = 8.0;  // EENTER/EEXIT + TLB flush, lit. value
}

int main() {
  std::printf("# Ablation A3: enclave transition cost, narrow vs chatty interface\n");
  const auto bed = bench::make_testbed(
      {.num_users = 100, .total_queries = 10'000, .num_documents = 3'000});

  sgx::AttestationAuthority authority(to_bytes("bench-root"));
  core::XSearchProxy::Options options;
  options.k = 3;
  options.history_capacity = 100'000;
  core::XSearchProxy proxy(bed->engine.get(), authority, options);
  core::ClientBroker broker(proxy, authority, proxy.measurement(), 5);

  constexpr std::size_t kQueries = 300;
  const auto before = proxy.enclave().transition_stats();
  const Nanos t0 = wall_now();
  for (std::size_t i = 0; i < kQueries; ++i) {
    (void)broker.search(bed->split.test.records()[i % bed->split.test.size()].text);
  }
  const Nanos elapsed = wall_now() - t0;
  const auto after = proxy.enclave().transition_stats();

  const double crossings_narrow =
      static_cast<double>((after.ecalls - before.ecalls) +
                          (after.ocalls - before.ocalls)) /
      static_cast<double>(kQueries);
  // Chatty design: one crossing per pipeline step.
  const double crossings_chatty = 1 /*decrypt*/ + static_cast<double>(options.k) /*samples*/ +
                                  1 /*store*/ + 1 /*send*/ + 1 /*recv*/ +
                                  1 /*filter*/ + 1 /*encrypt*/;

  const double per_query_us =
      static_cast<double>(elapsed) / static_cast<double>(kQueries) / 1000.0;
  const double narrow_overhead_us = crossings_narrow * kTransitionMicros;
  const double chatty_overhead_us = crossings_chatty * kTransitionMicros;

  std::printf("queries                       %zu\n", kQueries);
  // Switchless: same proxy options plus the job ring. Queries ride the ring
  // (run_workers is the only new ecall); the engine ocalls still cross, so
  // the ocall delta isolates what the exitless path actually removes.
  core::XSearchProxy::Options switchless_options = options;
  switchless_options.switchless.enabled = true;
  switchless_options.switchless.ring_depth = 64;
  switchless_options.switchless.workers = 1;
  switchless_options.switchless.pickup_patience = kSecond;
  core::XSearchProxy ring_proxy(bed->engine.get(), authority,
                                switchless_options);
  core::ClientBroker ring_broker(ring_proxy, authority,
                                 ring_proxy.measurement(), 5);
  const auto ring_before = ring_proxy.enclave().transition_stats();
  const Nanos ring_t0 = wall_now();
  for (std::size_t i = 0; i < kQueries; ++i) {
    (void)ring_broker.search(
        bed->split.test.records()[i % bed->split.test.size()].text);
  }
  const Nanos ring_elapsed = wall_now() - ring_t0;
  const auto ring_after = ring_proxy.enclave().transition_stats();
  const auto ring_stats = ring_proxy.ring_stats();

  const double crossings_switchless =
      static_cast<double>((ring_after.ecalls - ring_before.ecalls) +
                          (ring_after.ocalls - ring_before.ocalls)) /
      static_cast<double>(kQueries);
  const double ring_per_query_us =
      static_cast<double>(ring_elapsed) / static_cast<double>(kQueries) / 1000.0;
  const double switchless_overhead_us = crossings_switchless * kTransitionMicros;

  std::printf("crossings/query (narrow)      %.1f\n", crossings_narrow);
  std::printf("crossings/query (chatty)      %.1f\n", crossings_chatty);
  std::printf("crossings/query (switchless)  %.2f  (%llu rode the ring, %llu fell back)\n",
              crossings_switchless,
              static_cast<unsigned long long>(ring_stats.jobs_switchless),
              static_cast<unsigned long long>(ring_stats.fallback_ecalls));
  std::printf("proxy compute/query           %.1f us (ecall)  %.1f us (ring)\n",
              per_query_us, ring_per_query_us);
  std::printf("transition overhead (narrow)  %.1f us (%.1f%% of compute)\n",
              narrow_overhead_us, 100.0 * narrow_overhead_us / per_query_us);
  std::printf("transition overhead (chatty)  %.1f us (%.1f%% of compute)\n",
              chatty_overhead_us, 100.0 * chatty_overhead_us / per_query_us);
  std::printf("transition overhead (switchless) %.1f us (%.1f%% of compute)\n",
              switchless_overhead_us,
              100.0 * switchless_overhead_us / ring_per_query_us);
  std::printf("chatty/narrow overhead ratio  %.2fx\n",
              chatty_overhead_us / narrow_overhead_us);
  std::printf("\n# expectation: the narrow interface crosses ~5x/query; a chatty\n");
  std::printf("# one would nearly double per-query SGX overhead at k=3; the\n");
  std::printf("# switchless ring drops the per-query ECALL to ~0 (the engine\n");
  std::printf("# ocalls remain), at the price of one pinned worker ecall\n");
  return 0;
}
