// Ablation A7 — what happens when the history outgrows the EPC.
//
// Figure 6 shows the design point *fits*; this ablation explores the
// failure mode the sliding window exists to avoid: an unbounded table
// crossing the usable EPC boundary starts paging, and on hardware each
// EPC page-in costs tens of microseconds of encrypted copy + integrity
// verification. We meter simulated page faults for several (EPC budget,
// table size) combinations and price them with the literature's ~40 us
// per fault to show the cliff the window bound prevents.
#include <cstdio>
#include <string>

#include "common/rng.hpp"
#include "sgx/epc.hpp"
#include "xsearch/history.hpp"

namespace {
using namespace xsearch;  // NOLINT
constexpr double kFaultMicros = 40.0;  // EPC page-in cost on hardware (lit.)
}

int main() {
  std::printf("# Ablation A7: EPC paging when the history exceeds the budget\n");
  std::printf("%-14s %-14s %12s %12s %16s\n", "epc_budget_MB", "queries", "used_MB",
              "page_faults", "paging_cost_ms");

  for (const std::size_t budget_mb : {1u, 4u, 16u, 90u}) {
    for (const std::size_t queries : {50'000u, 200'000u, 800'000u}) {
      sgx::EpcAccountant epc(budget_mb * 1024 * 1024);
      core::QueryHistory history(queries, &epc);
      Rng rng(budget_mb * 131 + queries);
      for (std::size_t i = 0; i < queries; ++i) {
        history.add("user query number " + std::to_string(i) + " with words " +
                    std::to_string(rng.uniform(1000)));
      }
      const double used_mb =
          static_cast<double>(epc.in_use()) / (1024.0 * 1024.0);
      const double paging_ms = static_cast<double>(epc.page_faults()) *
                               kFaultMicros / 1000.0;
      std::printf("%-14zu %-14zu %12.2f %12llu %16.1f\n", budget_mb, queries,
                  used_mb, static_cast<unsigned long long>(epc.page_faults()),
                  paging_ms);
    }
  }
  std::printf("\n# expectation: zero faults whenever the table fits; past the\n");
  std::printf("# budget, faults (and hardware paging cost) grow with the excess —\n");
  std::printf("# the cliff the bounded sliding window (§4.3) is designed to avoid\n");
  return 0;
}
