// Figure 1 — CCDF of max(similarity(fakeQuery, pastQuery)).
//
// Paper claim: "almost all fake queries built by TrackMeNot and PEAS are
// original, i.e. never appear in the AOL [log]" — their maximum similarity
// to any real past query is low, which is what lets an adversary separate
// fake traffic from real traffic. X-Search's fakes, being verbatim past
// queries, sit at similarity 1.0 (extra series, not in the paper's plot).
//
// Output: one CCDF row per similarity threshold, per generator.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "attack/simattack.hpp"
#include "baselines/peas/peas.hpp"
#include "baselines/tmn/trackmenot.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "xsearch/history.hpp"
#include "xsearch/obfuscator.hpp"

namespace {

using namespace xsearch;  // NOLINT

std::vector<double> ccdf(std::vector<double> values,
                         const std::vector<double>& thresholds) {
  std::sort(values.begin(), values.end());
  std::vector<double> out;
  out.reserve(thresholds.size());
  for (const double t : thresholds) {
    const auto it = std::upper_bound(values.begin(), values.end(), t);
    out.push_back(static_cast<double>(values.end() - it) /
                  static_cast<double>(values.size()));
  }
  return out;
}

}  // namespace

int main() {
  std::printf("# Figure 1: CCDF of max similarity between fake and real past queries\n");
  const auto bed = bench::make_testbed();
  constexpr std::size_t kFakes = 800;

  // The similarity oracle: max cosine against every training query.
  attack::SimAttack oracle(bed->split.train);
  Rng rng(42);

  // Reference queries (the real queries each fake is generated "for").
  std::vector<std::string> references;
  for (std::size_t i = 0; i < kFakes; ++i) {
    references.push_back(
        bed->split.test.records()[i * 31 % bed->split.test.size()].text);
  }

  // PEAS: co-occurrence random walks over the training log.
  baselines::peas::FakeQueryGenerator peas_gen(bed->split.train);
  std::vector<double> peas_sims;
  for (const auto& ref : references) {
    peas_sims.push_back(
        oracle.max_similarity_to_any_past_query(peas_gen.generate(ref, rng)));
  }

  // TrackMeNot: RSS-feed phrases.
  baselines::tmn::TmnGenerator tmn_gen;
  std::vector<double> tmn_sims;
  for (std::size_t i = 0; i < kFakes; ++i) {
    tmn_sims.push_back(
        oracle.max_similarity_to_any_past_query(tmn_gen.fake_query(rng)));
  }

  // X-Search: fakes are verbatim past queries from the proxy history.
  core::QueryHistory history(100'000);
  for (const auto& r : bed->split.train.records()) history.add(r.text);
  core::Obfuscator obfuscator(history, 1);
  std::vector<double> xs_sims;
  for (const auto& ref : references) {
    const auto obf = obfuscator.obfuscate(ref, rng);
    if (!obf.fakes.empty()) {
      xs_sims.push_back(oracle.max_similarity_to_any_past_query(obf.fakes[0]));
    }
  }

  std::vector<double> thresholds;
  for (int i = 0; i <= 20; ++i) thresholds.push_back(i * 0.05);
  const auto peas_ccdf = ccdf(peas_sims, thresholds);
  const auto tmn_ccdf = ccdf(tmn_sims, thresholds);
  const auto xs_ccdf = ccdf(xs_sims, thresholds);

  std::printf("%-12s %10s %10s %10s\n", "max_sim>", "PEAS", "TMN", "X-Search");
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    std::printf("%-12.2f %10.3f %10.3f %10.3f\n", thresholds[i], peas_ccdf[i],
                tmn_ccdf[i], xs_ccdf[i]);
  }

  // Headline numbers mirrored in EXPERIMENTS.md.
  const auto frac_below = [](const std::vector<double>& sims, double t) {
    std::size_t n = 0;
    for (const double s : sims) n += (s < t);
    return static_cast<double>(n) / static_cast<double>(sims.size());
  };
  std::printf("\n# fraction of fakes with max similarity < 0.95 (i.e. 'original'):\n");
  std::printf("peas_original_fraction %.3f\n", frac_below(peas_sims, 0.95));
  std::printf("tmn_original_fraction %.3f\n", frac_below(tmn_sims, 0.95));
  std::printf("xsearch_original_fraction %.3f\n", frac_below(xs_sims, 0.95));
  return 0;
}
