// Query hot-path microbenchmarks — the per-PR perf trajectory tracker.
//
// Times the four stages a query pays inside the proxy, in isolation:
//
//   obfuscate    Algorithm 1: history sample + shuffle + history add
//   obfuscate_mt same, from N threads over one shared history (the
//                lock-free-obfuscation claim, measured)
//   filter       Algorithm 2 at k=7, results_per_subquery=10 (R=80), both
//                scorings, against an embedded *reference* implementation —
//                a verbatim copy of the pre-optimization per-pair scorer —
//                so the tokenize-once speedup is re-measurable forever
//   search_or    the engine's k+1-sub-query OR evaluation + merge
//   seal_open    one channel AEAD round trip at a typical record size
//
// Output: a human-readable table on stdout and machine-readable JSON
// (default BENCH_micro.json, first CLI arg overrides), uploaded by the CI
// release-bench job so numbers accumulate per PR.
//
// Run: ./build/bench/microbench [out.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "crypto/secure_channel.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "sgx/enclave.hpp"
#include "crypto/x25519.hpp"
#include "text/sparse_vector.hpp"
#include "text/tokenizer.hpp"
#include "text/vocabulary.hpp"
#include "xsearch/filter.hpp"
#include "xsearch/history.hpp"
#include "xsearch/obfuscator.hpp"

namespace {

using namespace xsearch;  // NOLINT
using Clock = std::chrono::steady_clock;

constexpr std::size_t kFilterK = 7;
constexpr std::size_t kResultsPerSubquery = 10;

double us_per_op(Clock::time_point t0, Clock::time_point t1, std::size_t ops) {
  return std::chrono::duration<double, std::micro>(t1 - t0).count() /
         static_cast<double>(ops);
}

// ---- reference filter: the pre-PR per-pair implementation -----------------
//
// Kept verbatim (modulo the removed helper overloads) as the fixed point the
// optimized ResultFilter is measured against. Scores every (sub-query,
// result) pair from scratch: one tokenization + hash-set build per pair.
class ReferenceFilter {
 public:
  explicit ReferenceFilter(core::FilterScoring scoring) : scoring_(scoring) {}

  [[nodiscard]] std::vector<engine::SearchResult> filter(
      std::string_view original, const std::vector<std::string>& fakes,
      std::vector<engine::SearchResult> results) const {
    std::vector<engine::SearchResult> kept;
    kept.reserve(results.size());
    for (auto& r : results) {
      const double original_score = score(original, r);
      bool is_max = true;
      for (const auto& fake : fakes) {
        if (score(fake, r) > original_score) {
          is_max = false;
          break;
        }
      }
      if (is_max) kept.push_back(std::move(r));
    }
    core::ResultFilter::strip_tracking(kept);
    return kept;
  }

 private:
  [[nodiscard]] static std::size_t common_words(
      const std::unordered_set<std::string>& a_words, std::string_view b) {
    std::size_t count = 0;
    std::unordered_set<std::string> seen;
    for (auto& token : text::tokenize(b)) {
      if (a_words.contains(token) && seen.insert(token).second) ++count;
    }
    return count;
  }

  [[nodiscard]] double score(std::string_view query,
                             const engine::SearchResult& result) const {
    if (scoring_ == core::FilterScoring::kCommonWords) {
      const auto tokens = text::tokenize(query);
      const std::unordered_set<std::string> words(tokens.begin(), tokens.end());
      return static_cast<double>(common_words(words, result.title) +
                                 common_words(words, result.description));
    }
    text::Vocabulary vocab;
    const auto q_vec = text::tf_vector(vocab, query);
    const auto r_vec =
        text::tf_vector(vocab, result.title + " " + result.description);
    return q_vec.cosine(r_vec);
  }

  core::FilterScoring scoring_;
};

// ---- synthetic filter workload --------------------------------------------

struct FilterWorkload {
  std::string original;
  std::vector<std::string> fakes;
  std::vector<engine::SearchResult> results;
};

FilterWorkload make_filter_workload(Rng& rng) {
  const std::vector<std::string> pool = {
      "private", "web",     "search",  "engine",   "enclave", "proxy",
      "query",   "results", "pasta",   "recipe",   "quantum", "physics",
      "tennis",  "scores",  "weather", "forecast", "music",   "festival",
      "travel",  "booking", "linux",   "kernel",   "privacy", "tracking"};
  const auto words = [&](std::size_t n) {
    std::string s;
    for (std::size_t i = 0; i < n; ++i) {
      if (!s.empty()) s += ' ';
      s += pool[rng.uniform(pool.size())];
    }
    return s;
  };

  FilterWorkload w;
  w.original = words(3);
  for (std::size_t i = 0; i < kFilterK; ++i) w.fakes.push_back(words(3));
  const std::size_t R = (kFilterK + 1) * kResultsPerSubquery;
  for (std::size_t i = 0; i < R; ++i) {
    engine::SearchResult r;
    r.doc = static_cast<engine::DocId>(i);
    r.title = words(6);
    r.description = words(25);
    r.url = "https://results.example/" + std::to_string(i);
    w.results.push_back(std::move(r));
  }
  return w;
}

// ---- replay stream: serves a prepared wire image forever ------------------
//
// Backs the frame/parse_copy stage: read_frame() pulls the length word,
// budget word and body as separate read_exact calls, each of which this
// stream answers with a freshly allocated copy — exactly the per-field
// allocation profile the blocking connection loop paid per frame.
class ReplayStream final : public net::ByteStream {
 public:
  explicit ReplayStream(Bytes wire) : wire_(std::move(wire)) {}

  [[nodiscard]] Status write_all(ByteSpan, const Deadline&) override {
    return Status::ok();
  }
  [[nodiscard]] Result<Bytes> read_exact(std::size_t n,
                                         const Deadline&) override {
    Bytes out;
    out.reserve(n);
    while (out.size() < n) {
      const std::size_t take = std::min(n - out.size(), wire_.size() - pos_);
      out.insert(out.end(), wire_.begin() + static_cast<std::ptrdiff_t>(pos_),
                 wire_.begin() + static_cast<std::ptrdiff_t>(pos_ + take));
      pos_ = (pos_ + take) % wire_.size();
    }
    return out;
  }
  void shutdown_both() override {}
  [[nodiscard]] bool valid() const override { return true; }

 private:
  Bytes wire_;
  std::size_t pos_ = 0;
};

struct StageResult {
  std::string name;
  double us = 0.0;
  double ops_per_sec = 0.0;
};

std::vector<StageResult> g_stages;

void report(const std::string& name, double us) {
  std::printf("%-24s %12.2f us/op %14.0f ops/s\n", name.c_str(), us,
              1e6 / us);
  g_stages.push_back({name, us, 1e6 / us});
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_micro.json";
  std::printf("# microbench: query hot-path stages (k=%zu, results/subq=%zu)\n",
              kFilterK, kResultsPerSubquery);
  Rng rng(42);

  // ---- obfuscate ----------------------------------------------------------
  {
    core::QueryHistory history(100'000);
    for (std::size_t i = 0; i < 20'000; ++i) {
      history.add("warm query " + std::to_string(i));
    }
    core::Obfuscator obfuscator(history, kFilterK);
    const std::size_t iters = 20'000;
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      (void)obfuscator.obfuscate("the user query", rng);
    }
    report("obfuscate", us_per_op(t0, Clock::now(), iters));
  }

  // ---- obfuscate_mt: shared history, one RNG stream per thread ------------
  for (const std::size_t threads : {1u, 2u, 4u}) {
    core::QueryHistory history(100'000);
    for (std::size_t i = 0; i < 20'000; ++i) {
      history.add("warm query " + std::to_string(i));
    }
    core::Obfuscator obfuscator(history, kFilterK);
    const std::size_t iters_each = 8'000;
    std::vector<std::thread> pool;
    const auto t0 = Clock::now();
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        Rng thread_rng(1000 + t);  // the per-session stream, modeled
        for (std::size_t i = 0; i < iters_each; ++i) {
          (void)obfuscator.obfuscate("the user query", thread_rng);
        }
      });
    }
    for (auto& th : pool) th.join();
    const double us =
        us_per_op(t0, Clock::now(), iters_each * threads);
    report("obfuscate_mt/" + std::to_string(threads), us);
  }

  // ---- filter: optimized vs reference, both scorings ----------------------
  double filter_speedup = 0.0;
  {
    FilterWorkload w = make_filter_workload(rng);
    struct Variant {
      const char* name;
      core::FilterScoring scoring;
      std::size_t iters_opt;
      std::size_t iters_ref;
    };
    for (const Variant v :
         {Variant{"common_words", core::FilterScoring::kCommonWords, 2000, 200},
          Variant{"cosine", core::FilterScoring::kCosine, 1000, 100}}) {
      const core::ResultFilter optimized(v.scoring);
      const ReferenceFilter reference(v.scoring);

      // The two implementations must agree before their timings mean
      // anything (the randomized equivalence test covers this exhaustively;
      // this is the smoke version).
      const auto kept_opt = optimized.filter(w.original, w.fakes, w.results);
      const auto kept_ref = reference.filter(w.original, w.fakes, w.results);
      if (kept_opt.size() != kept_ref.size()) {
        std::fprintf(stderr, "filter mismatch (%s): opt=%zu ref=%zu\n", v.name,
                     kept_opt.size(), kept_ref.size());
        return 1;
      }

      auto t0 = Clock::now();
      for (std::size_t i = 0; i < v.iters_opt; ++i) {
        (void)optimized.filter(w.original, w.fakes, w.results);
      }
      const double opt_us = us_per_op(t0, Clock::now(), v.iters_opt);

      t0 = Clock::now();
      for (std::size_t i = 0; i < v.iters_ref; ++i) {
        (void)reference.filter(w.original, w.fakes, w.results);
      }
      const double ref_us = us_per_op(t0, Clock::now(), v.iters_ref);

      report(std::string("filter/") + v.name, opt_us);
      report(std::string("filter_ref/") + v.name, ref_us);
      std::printf("%-24s %12.1fx\n", (std::string("speedup/") + v.name).c_str(),
                  ref_us / opt_us);
      if (v.scoring == core::FilterScoring::kCommonWords) {
        filter_speedup = ref_us / opt_us;
      }
    }
  }

  // ---- search_or ----------------------------------------------------------
  {
    const auto bed = bench::make_testbed(
        {.num_users = 50, .total_queries = 4'000, .num_documents = 2'000});
    core::QueryHistory history(50'000);
    for (const auto& rec : bed->split.train.records()) history.add(rec.text);
    core::Obfuscator obfuscator(history, kFilterK);
    const auto& test = bed->split.test.records();
    const std::size_t iters = 400;
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      const auto obf = obfuscator.obfuscate(test[i % test.size()].text, rng);
      (void)bed->engine->search_or(obf.sub_queries, kResultsPerSubquery);
    }
    report("search_or", us_per_op(t0, Clock::now(), iters));
  }

  // ---- seal_open ----------------------------------------------------------
  {
    crypto::X25519Secret::Raw seed{};
    seed[0] = 1;
    const auto server_static =
        crypto::x25519_keypair_from_seed(crypto::X25519Secret(seed));
    seed[0] = 2;
    const auto server_eph =
        crypto::x25519_keypair_from_seed(crypto::X25519Secret(seed));
    seed[0] = 3;
    const auto client_eph =
        crypto::x25519_keypair_from_seed(crypto::X25519Secret(seed));
    crypto::SecureChannel client = crypto::SecureChannel::initiator(
        client_eph, server_static.public_key, server_eph.public_key);
    crypto::SecureChannel server = crypto::SecureChannel::responder(
        server_static, server_eph, client_eph.public_key);

    const Bytes payload(4096, 0x5a);  // a typical filtered-results frame
    const std::size_t iters = 20'000;
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      auto opened = server.open(client.seal(payload));
      if (!opened) {
        std::fprintf(stderr, "seal/open failed\n");
        return 1;
      }
    }
    report("seal_open/4KiB", us_per_op(t0, Clock::now(), iters));
  }

  // ---- frame parse: blocking copy path vs zero-copy cursor ----------------
  //
  // The same 512-byte kQuery frame, decoded two ways. parse_copy is the
  // historical read_frame() shape: one read_exact per wire field, each
  // allocating and copying (served here from an in-memory replay stream, so
  // the delta is pure decode cost — no syscalls on either side). parse_cursor
  // is the reactor's FrameCursor over an already-buffered wire image: header
  // fields are decoded in place and the payload comes back as a span into
  // the buffer, zero allocations per frame.
  {
    const Bytes payload(512, 0x5a);
    auto header = net::encode_frame_header(net::FrameType::kQuery, payload.size());
    if (!header.is_ok()) {
      std::fprintf(stderr, "encode_frame_header failed\n");
      return 1;
    }
    Bytes wire = std::move(header).value();
    append(wire, payload);

    const std::size_t iters = 200'000;
    {
      ReplayStream stream(wire);
      const auto t0 = Clock::now();
      for (std::size_t i = 0; i < iters; ++i) {
        auto frame = net::read_frame(stream);
        if (!frame.is_ok() || frame.value().payload.size() != payload.size()) {
          std::fprintf(stderr, "frame/parse_copy: bad frame\n");
          return 1;
        }
      }
      report("frame/parse_copy", us_per_op(t0, Clock::now(), iters));
    }
    {
      // A receive buffer holding several frames, walked the way a reactor
      // connection walks its rbuf: parse at the cursor, consume frame_bytes.
      Bytes rbuf;
      for (std::size_t i = 0; i < 16; ++i) append(rbuf, wire);
      std::size_t offset = 0;
      std::uint64_t sink = 0;
      const auto t0 = Clock::now();
      for (std::size_t i = 0; i < iters; ++i) {
        const auto step = net::FrameCursor::parse(
            ByteSpan(rbuf).subspan(offset, rbuf.size() - offset));
        if (step.state != net::FrameCursor::State::kFrame) {
          std::fprintf(stderr, "frame/parse_cursor: bad frame\n");
          return 1;
        }
        sink += step.frame.payload.size();
        offset += step.frame.frame_bytes;
        if (offset == rbuf.size()) offset = 0;
      }
      report("frame/parse_cursor", us_per_op(t0, Clock::now(), iters));
      if (sink != iters * payload.size()) {
        std::fprintf(stderr, "frame/parse_cursor: payload size drifted\n");
        return 1;
      }
    }
  }

  // ---- boundary: 2-ecall path vs switchless job ring ----------------------
  //
  // Same trivial request handler, two transports. The simulation charges no
  // per-transition cost (hardware SGX pays ~8us per crossing), so the
  // structural win of the exitless path — ZERO transitions per request,
  // printed below — does not show up as wall-clock here; on this box the
  // ring adds scheduler hops instead. The JSON keeps both so the trend
  // tracker catches regressions in either transport's constant factor.
  {
    sgx::EnclaveRuntime enclave(
        {.code_identity = to_bytes("microbench-boundary-enclave")});
    enclave.register_ecall(
        sgx::EcallId::kRequest,
        [](ByteSpan in) -> Result<Bytes> { return Bytes(in.begin(), in.end()); });
    const Bytes payload(256, 0x42);
    const std::size_t iters = 20'000;

    auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      auto r = enclave.ecall(sgx::EcallId::kRequest, payload);
      if (!r.is_ok()) return 1;
    }
    report("boundary/ecall", us_per_op(t0, Clock::now(), iters));
    const auto ecall_transitions = enclave.transition_stats().ecalls;

    sgx::SwitchlessOptions switchless;
    switchless.ring_depth = 64;
    switchless.workers = 1;
    switchless.pickup_patience = kSecond;  // live worker: measure the ring
    enclave.start_switchless(switchless);
    const auto before_ring = enclave.transition_stats().ecalls;
    t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      auto r = enclave.submit(sgx::EcallId::kRequest, payload);
      if (!r.is_ok()) return 1;
    }
    report("boundary/switchless", us_per_op(t0, Clock::now(), iters));
    const auto ring_transitions = enclave.transition_stats().ecalls - before_ring;
    const auto ring = enclave.ring_stats();
    enclave.stop_switchless();
    std::printf(
        "%-24s %zu requests: %llu transitions on the ecall path, %llu on the "
        "ring (%llu rode it switchlessly, %llu fell back)\n",
        "transitions", iters,
        static_cast<unsigned long long>(ecall_transitions),
        static_cast<unsigned long long>(ring_transitions),
        static_cast<unsigned long long>(ring.jobs_switchless),
        static_cast<unsigned long long>(ring.fallback_ecalls));
  }

  // ---- JSON ---------------------------------------------------------------
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"config\": {\"k\": %zu, \"results_per_subquery\": %zu},\n",
                 kFilterK, kResultsPerSubquery);
    std::fprintf(f, "  \"filter_speedup_common_words\": %.2f,\n", filter_speedup);
    std::fprintf(f, "  \"stages\": [\n");
    for (std::size_t i = 0; i < g_stages.size(); ++i) {
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"us_per_op\": %.3f, "
                   "\"ops_per_sec\": %.1f}%s\n",
                   g_stages[i].name.c_str(), g_stages[i].us,
                   g_stages[i].ops_per_sec,
                   i + 1 < g_stages.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }

  // Regression alarm: the tokenize-once filter measures ~5x even on noisy
  // shared runners. Below 4x print a loud warning (could be CI jitter);
  // below 2x something is actually broken — fail the job.
  if (filter_speedup < 2.0) {
    std::fprintf(stderr,
                 "filter speedup %.2fx below the 2x regression bar — the "
                 "tokenize-once filter has regressed\n",
                 filter_speedup);
    return 1;
  }
  if (filter_speedup < 4.0) {
    std::fprintf(stderr,
                 "warning: filter speedup %.2fx below the expected 4x "
                 "(noisy runner, or a creeping regression — check the "
                 "BENCH_micro.json trend)\n",
                 filter_speedup);
  }
  return 0;
}
