// Quickstart: stand up the whole X-Search deployment in-process and run one
// private web search.
//
//   1. build a synthetic query log and a search engine over a matching corpus;
//   2. ask the MechanismRegistry for an "xsearch" client — behind the one
//      call, a proxy boots inside a (simulated) SGX enclave;
//   3. connect — the client broker attests the enclave and opens the secure
//      channel;
//   4. search — the engine only ever sees an obfuscated OR query, and the
//      user receives filtered, analytics-scrubbed results.
//
// Swapping "xsearch" for "direct", "tmn", "tor" or "peas" runs the same
// program over any other mechanism — the API is the same.
//
// Run: ./build/examples/quickstart [query words...]
#include <cstdio>
#include <string>
#include <vector>

#include "api/client.hpp"
#include "api/registry.hpp"
#include "dataset/synthetic.hpp"
#include "engine/corpus.hpp"
#include "engine/search_engine.hpp"

using namespace xsearch;  // NOLINT

int main(int argc, char** argv) {
  // --- 1. The world: a query log and a search engine. -----------------------
  dataset::SyntheticLogConfig log_config;
  log_config.num_users = 100;
  log_config.total_queries = 20'000;
  const auto log = dataset::generate_synthetic_log(log_config);

  engine::Corpus corpus(log, engine::CorpusConfig{.num_documents = 5'000});
  engine::SearchEngine search_engine(corpus);
  search_engine.set_observer([](std::string_view q) {
    std::printf("  [engine sees]  %.*s\n", static_cast<int>(q.size()), q.data());
  });

  // --- 2. An X-Search client, by name. ---------------------------------------
  api::Backend backend;
  backend.engine = &search_engine;
  backend.fake_source = &log;

  api::ClientConfig config;
  config.k = 3;  // three fake queries per real one
  config.top_k = 20;
  config.seed = 1;

  auto client = api::make_client("xsearch", backend, config);
  if (!client.is_ok()) {
    std::fprintf(stderr, "client setup failed: %s\n",
                 client.status().to_string().c_str());
    return 1;
  }

  // --- 3. Connect: attestation + secure channel. -----------------------------
  if (const auto status = client.value()->connect(); !status.is_ok()) {
    std::fprintf(stderr, "attestation failed: %s\n", status.to_string().c_str());
    return 1;
  }
  std::printf("attestation OK, secure channel established\n\n");

  // Warm the proxy history so the obfuscator has decoys (in production the
  // proxy is warm from other users' traffic).
  std::vector<std::string> warm;
  for (std::size_t i = 0; i < 50; ++i) {
    warm.push_back(log.records()[i * 97 % log.size()].text);
  }
  (void)client.value()->prime(warm);

  // --- 4. A private search. ---------------------------------------------------
  std::string query;
  for (int i = 1; i < argc; ++i) {
    if (!query.empty()) query += ' ';
    query += argv[i];
  }
  if (query.empty()) query = log.records()[12'345].text;

  std::printf("[user asks]    %s\n", query.c_str());
  const auto results = client.value()->search(query);
  if (!results.is_ok()) {
    std::fprintf(stderr, "search failed: %s\n", results.status().to_string().c_str());
    return 1;
  }

  std::printf("\n%zu filtered results:\n", results.value().size());
  std::size_t rank = 1;
  for (const auto& r : results.value()) {
    std::printf("  %2zu. %s\n      %s\n", rank++, r.title.c_str(), r.url.c_str());
    if (rank > 10) break;
  }

  const auto props = client.value()->privacy_properties();
  std::printf("\nprivacy properties of \"%s\": identity %s, query %s, k=%zu\n"
              "trust: %s\n",
              props.mechanism.c_str(),
              props.identity_exposed ? "exposed" : "hidden",
              props.query_exposed ? "exposed" : "hidden", props.k,
              props.trust_assumption.c_str());
  std::printf("\nnote: the engine line above shows the OR query — the real query\n"
              "is hidden among %zu decoys drawn from other users' past queries.\n",
              props.k);
  return 0;
}
