// Quickstart: stand up the whole X-Search deployment in-process and run one
// private web search.
//
//   1. build a synthetic query log and a search engine over a matching corpus;
//   2. launch an X-Search proxy inside a (simulated) SGX enclave;
//   3. attest the enclave from a client broker and open a secure channel;
//   4. search — the engine only ever sees an obfuscated OR query, and the
//      broker receives filtered, analytics-scrubbed results.
//
// Run: ./build/examples/quickstart [query words...]
#include <cstdio>
#include <string>

#include "dataset/synthetic.hpp"
#include "engine/corpus.hpp"
#include "engine/search_engine.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/broker.hpp"
#include "xsearch/proxy.hpp"

using namespace xsearch;  // NOLINT

int main(int argc, char** argv) {
  // --- 1. The world: a query log and a search engine. -----------------------
  dataset::SyntheticLogConfig log_config;
  log_config.num_users = 100;
  log_config.total_queries = 20'000;
  const auto log = dataset::generate_synthetic_log(log_config);

  engine::Corpus corpus(log, engine::CorpusConfig{.num_documents = 5'000});
  engine::SearchEngine search_engine(corpus);
  search_engine.set_observer([](std::string_view q) {
    std::printf("  [engine sees]  %.*s\n", static_cast<int>(q.size()), q.data());
  });

  // --- 2. The X-Search proxy on an "untrusted cloud host". ------------------
  sgx::AttestationAuthority intel(to_bytes("simulated-intel-epid-root"));
  core::XSearchProxy::Options options;
  options.k = 3;  // three fake queries per real one
  core::XSearchProxy proxy(&search_engine, intel, options);
  std::printf("proxy enclave measurement: %s...\n",
              hex_encode(ByteSpan(proxy.measurement().data(), 8)).c_str());

  // --- 3. Client broker: attest, then connect. -------------------------------
  core::ClientBroker broker(proxy, intel, proxy.measurement(), /*seed=*/1);
  if (const auto status = broker.connect(); !status.is_ok()) {
    std::fprintf(stderr, "attestation failed: %s\n", status.to_string().c_str());
    return 1;
  }
  std::printf("attestation OK, secure channel established\n\n");

  // Warm the proxy history so the obfuscator has decoys (in production the
  // proxy is warm from other users' traffic).
  for (std::size_t i = 0; i < 50; ++i) {
    (void)broker.search(log.records()[i * 97 % log.size()].text);
  }

  // --- 4. A private search. ---------------------------------------------------
  std::string query;
  for (int i = 1; i < argc; ++i) {
    if (!query.empty()) query += ' ';
    query += argv[i];
  }
  if (query.empty()) query = log.records()[12'345].text;

  std::printf("[user asks]    %s\n", query.c_str());
  const auto results = broker.search(query);
  if (!results.is_ok()) {
    std::fprintf(stderr, "search failed: %s\n", results.status().to_string().c_str());
    return 1;
  }

  std::printf("\n%zu filtered results:\n", results.value().size());
  std::size_t rank = 1;
  for (const auto& r : results.value()) {
    std::printf("  %2zu. %s\n      %s\n", rank++, r.title.c_str(), r.url.c_str());
    if (rank > 10) break;
  }
  std::printf("\nnote: the engine line above shows the OR query — the real query\n"
              "is hidden among %zu decoys drawn from other users' past queries.\n",
              proxy.options().k);
  return 0;
}
