// Baseline comparison: the same query through every system.
//
// Runs one query through Direct, Tor, PEAS and X-Search against the same
// simulated engine, and prints (a) what the search engine observes in each
// case and (b) what the user gets back — a compact demonstration of the
// privacy/functionality trade-off the paper's §2 taxonomy describes.
//
// Run: ./build/examples/baseline_comparison
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/direct/direct.hpp"
#include "baselines/peas/peas.hpp"
#include "baselines/tor/tor.hpp"
#include "dataset/synthetic.hpp"
#include "engine/corpus.hpp"
#include "engine/search_engine.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/broker.hpp"
#include "xsearch/proxy.hpp"

using namespace xsearch;  // NOLINT

namespace {

void show(const char* system, const std::vector<std::string>& engine_saw,
          std::size_t result_count) {
  std::printf("%-9s -> engine observed:\n", system);
  for (const auto& q : engine_saw) std::printf("             \"%s\"\n", q.c_str());
  std::printf("             user received %zu results\n\n", result_count);
}

}  // namespace

int main() {
  dataset::SyntheticLogConfig log_config;
  log_config.num_users = 100;
  log_config.total_queries = 20'000;
  const auto log = dataset::generate_synthetic_log(log_config);
  engine::Corpus corpus(log, engine::CorpusConfig{.num_documents = 5'000});
  engine::SearchEngine search_engine(corpus);

  std::vector<std::string> observed;
  search_engine.set_observer([&observed](std::string_view q) {
    observed.emplace_back(q);
  });

  const std::string query = log.records()[4'242].text;
  std::printf("the user's query: \"%s\"\n\n", query.c_str());

  // --- Direct ---------------------------------------------------------------
  {
    observed.clear();
    baselines::direct::DirectClient client(search_engine);
    const auto results = client.search(query);
    show("Direct", observed, results.size());
  }

  // --- Tor -------------------------------------------------------------------
  {
    observed.clear();
    baselines::tor::TorRelay entry(1), middle(2), exit(3);
    baselines::tor::TorClient client({&entry, &middle, &exit}, &search_engine, 5);
    const auto results = client.search(query);
    show("Tor", observed, results.is_ok() ? results.value().size() : 0);
  }

  // --- PEAS ------------------------------------------------------------------
  {
    observed.clear();
    baselines::peas::FakeQueryGenerator fakes(log);
    baselines::peas::PeasIssuer issuer(&search_engine, 7);
    baselines::peas::PeasReceiver receiver(issuer);
    baselines::peas::PeasClient client(1, receiver, issuer.public_key(), fakes,
                                       /*k=*/3, /*seed=*/11);
    const auto results = client.search(query);
    show("PEAS", observed, results.is_ok() ? results.value().size() : 0);
  }

  // --- X-Search -----------------------------------------------------------------
  {
    sgx::AttestationAuthority intel(to_bytes("simulated-intel-epid-root"));
    core::XSearchProxy::Options options;
    options.k = 3;
    core::XSearchProxy proxy(&search_engine, intel, options);
    core::ClientBroker broker(proxy, intel, proxy.measurement(), 13);
    // Warm the proxy with other users' traffic, then ask.
    for (std::size_t i = 0; i < 50; ++i) {
      (void)broker.search(log.records()[i * 101 % log.size()].text);
    }
    observed.clear();
    const auto results = broker.search(query);
    show("X-Search", observed, results.is_ok() ? results.value().size() : 0);
  }

  std::printf("Direct/Tor expose the full query (Tor hides only the IP).\n");
  std::printf("PEAS hides it among synthetic fakes; X-Search hides it among\n");
  std::printf("real past queries and additionally resists colluding proxies.\n");
  return 0;
}
