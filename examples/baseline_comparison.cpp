// Baseline comparison: the same query through every system.
//
// Runs one query through every mechanism registered in the
// MechanismRegistry — Direct, TrackMeNot, Tor, PEAS and X-Search — against
// the same simulated engine, and prints (a) what the search engine observes
// in each case, (b) what the user gets back, and (c) the mechanism's
// self-reported privacy properties — a compact demonstration of the
// privacy/functionality trade-off the paper's §2 taxonomy describes.
//
// No mechanism-specific code: each client is built by name through the
// unified API, so a sixth registered mechanism would appear here
// automatically.
//
// Run: ./build/examples/baseline_comparison
#include <cstdio>
#include <string>
#include <vector>

#include "api/client.hpp"
#include "api/registry.hpp"
#include "dataset/synthetic.hpp"
#include "engine/corpus.hpp"
#include "engine/search_engine.hpp"

using namespace xsearch;  // NOLINT

namespace {

void show(const std::string& system, const api::PrivacyProperties& props,
          const std::vector<std::string>& engine_saw, std::size_t result_count) {
  std::printf("%-9s -> engine observed:\n", system.c_str());
  for (const auto& q : engine_saw) std::printf("             \"%s\"\n", q.c_str());
  std::printf("             user received %zu results\n", result_count);
  std::printf("             identity %s, query %s, k=%zu — trust: %s\n\n",
              props.identity_exposed ? "EXPOSED" : "hidden",
              props.query_exposed ? "EXPOSED" : "hidden", props.k,
              props.trust_assumption.c_str());
}

}  // namespace

int main() {
  dataset::SyntheticLogConfig log_config;
  log_config.num_users = 100;
  log_config.total_queries = 20'000;
  const auto log = dataset::generate_synthetic_log(log_config);
  engine::Corpus corpus(log, engine::CorpusConfig{.num_documents = 5'000});
  engine::SearchEngine search_engine(corpus);

  std::vector<std::string> observed;
  search_engine.set_observer([&observed](std::string_view q) {
    observed.emplace_back(q);
  });

  const std::string query = log.records()[4'242].text;
  std::printf("the user's query: \"%s\"\n\n", query.c_str());

  // Warm-up stream: other users' traffic, so obfuscating mechanisms have
  // real decoys to draw from.
  std::vector<std::string> warm;
  for (std::size_t i = 0; i < 50; ++i) {
    warm.push_back(log.records()[i * 101 % log.size()].text);
  }

  api::Backend backend;
  backend.engine = &search_engine;
  backend.fake_source = &log;

  std::uint64_t seed = 1;
  for (const auto& name : api::MechanismRegistry::instance().mechanism_names()) {
    api::ClientConfig config;
    config.k = 3;
    config.top_k = 20;
    config.seed = seed += 2;

    auto client = api::make_client(name, backend, config);
    if (!client.is_ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   client.status().to_string().c_str());
      continue;
    }
    (void)client.value()->prime(warm);
    // X-Search additionally records searched queries into its history; give
    // every mechanism the same preceding traffic for a fair comparison.
    for (const auto& w : warm) (void)client.value()->search(w);

    observed.clear();
    const auto results = client.value()->search(query);
    show(name, client.value()->privacy_properties(), observed,
         results.is_ok() ? results.value().size() : 0);
  }

  std::printf("Direct/TrackMeNot/Tor expose the full query (Tor hides only the\n");
  std::printf("IP; TrackMeNot's RSS decoys are separable). PEAS hides it among\n");
  std::printf("synthetic fakes; X-Search hides it among real past queries and\n");
  std::printf("additionally resists colluding proxies.\n");
  return 0;
}
