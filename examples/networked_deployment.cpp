// Networked deployment: the proxy as a real TCP server.
//
// Starts an X-Search ProxyServer on a loopback port (the untrusted host
// process of a cloud deployment) and drives it through the unified client
// API: api::make_remote_client wraps the per-user local daemon of §4.2,
// speaking the framed protocol over actual sockets — the same
// PrivateSearchClient surface as every in-process mechanism.
//
// The second act is kill-and-recover: a 2-worker ProxyFleet with sealed
// checkpointing (api::RecoveryConfig) under a FleetSupervisor. One worker's
// enclave is crashed mid-session; the supervisor's heartbeat probes notice,
// drain its ring arc and respawn it — and the replacement restores the
// crashed worker's decoy table from its sealed checkpoint, so the restart
// is warm. The host only ever handles the opaque sealed blob.
//
// Run: ./build/examples/networked_deployment
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "api/client.hpp"
#include "api/remote.hpp"
#include "api/xsearch_options.hpp"
#include "dataset/synthetic.hpp"
#include "engine/corpus.hpp"
#include "engine/search_engine.hpp"
#include "net/fleet_supervisor.hpp"
#include "net/proxy_fleet.hpp"
#include "net/proxy_server.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/proxy.hpp"

using namespace xsearch;  // NOLINT

int main() {
  dataset::SyntheticLogConfig log_config;
  log_config.num_users = 60;
  log_config.total_queries = 8'000;
  const auto log = dataset::generate_synthetic_log(log_config);
  engine::Corpus corpus(log, engine::CorpusConfig{.num_documents = 3'000});
  engine::SearchEngine search_engine(corpus);

  sgx::AttestationAuthority intel(to_bytes("simulated-intel-epid-root"));
  core::XSearchProxy::Options options;
  options.k = 3;
  auto proxy = core::XSearchProxy::create(&search_engine, intel, options);
  if (!proxy.is_ok()) {
    std::fprintf(stderr, "proxy config rejected: %s\n",
                 proxy.status().to_string().c_str());
    return 1;
  }

  auto server = net::ProxyServer::start(*proxy.value());
  if (!server) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().to_string().c_str());
    return 1;
  }
  std::printf("proxy server listening on 127.0.0.1:%u\n", server.value()->port());

  // Two independent users, each an attested PrivateSearchClient over TCP.
  api::ClientConfig alice_config;
  alice_config.k = options.k;
  alice_config.seed = 1;
  api::ClientConfig bob_config = alice_config;
  bob_config.seed = 2;
  const auto alice = api::make_remote_client("127.0.0.1", server.value()->port(),
                                             intel, proxy.value()->measurement(),
                                             alice_config);
  const auto bob = api::make_remote_client("127.0.0.1", server.value()->port(),
                                           intel, proxy.value()->measurement(),
                                           bob_config);

  for (std::size_t i = 0; i < 15; ++i) {
    (void)alice->search(log.records()[i * 11].text);
    (void)bob->search(log.records()[i * 13].text);
  }
  const auto results = alice->search(log.records()[999].text);
  std::printf("alice's query over TCP: %s, %zu results\n",
              results.is_ok() ? "ok" : results.status().to_string().c_str(),
              results.is_ok() ? results.value().size() : 0);
  std::printf("history table now holds %zu queries (%zu bytes of EPC)\n",
              proxy.value()->history_size(), proxy.value()->history_memory_bytes());

  server.value()->stop();
  std::printf("served %llu connections; server stopped cleanly\n",
              static_cast<unsigned long long>(server.value()->connections_served()));

  // --- Kill-and-recover: supervised fleet with sealed checkpoints. -----------
  const auto checkpoint_dir =
      std::filesystem::temp_directory_path() / "xsearch_example_ckpt";
  std::filesystem::remove_all(checkpoint_dir);

  api::ClientConfig fleet_config;
  fleet_config.k = 3;
  fleet_config.seed = 7;
  fleet_config.recovery.checkpoint_dir = checkpoint_dir.string();
  fleet_config.recovery.checkpoint_interval_queries = 32;
  fleet_config.recovery.probe_interval = 5 * kMilli;
  fleet_config.recovery.failure_threshold = 2;

  auto fleet = net::ProxyFleet::create(
      &search_engine, intel,
      api::fleet_options(fleet_config, {.workers = 2, .virtual_nodes = 64}));
  if (!fleet.is_ok()) {
    std::fprintf(stderr, "fleet: %s\n", fleet.status().to_string().c_str());
    return 1;
  }
  auto fleet_server = net::ProxyServer::start(*fleet.value());
  if (!fleet_server.is_ok()) {
    std::fprintf(stderr, "fleet server: %s\n",
                 fleet_server.status().to_string().c_str());
    return 1;
  }
  net::FleetSupervisor supervisor(*fleet.value(),
                                  api::supervisor_options(fleet_config));

  api::ClientConfig carol_config = fleet_config;
  carol_config.seed = 3;
  const auto carol = api::make_remote_client(
      "127.0.0.1", fleet_server.value()->port(), intel,
      fleet.value()->measurement(), carol_config);
  for (std::size_t i = 0; i < 120; ++i) {
    (void)carol->search(log.records()[i * 7].text);
  }

  // The untrusted host now loses a worker mid-session (power event, EPC
  // wipe): every ecall into that enclave fails from here on. Kill the
  // worker carol's session hashed to — the one whose history her queries
  // warmed.
  std::size_t victim = 0;
  for (std::size_t w = 1; w < fleet.value()->worker_count(); ++w) {
    if (fleet.value()->worker_history_depth(w) >
        fleet.value()->worker_history_depth(victim)) {
      victim = w;
    }
  }
  const std::size_t depth_before = fleet.value()->worker_history_depth(victim);
  (void)fleet.value()->kill_worker(victim);
  std::printf("\nkilled fleet worker %zu (history held %zu decoy queries)\n",
              victim, depth_before);

  // The supervisor's heartbeats flag the dead enclave and respawn it; the
  // replacement restores the sealed checkpoint. Client searches keep
  // working throughout — the broker re-attests transparently.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fleet.value()->fleet_stats().auto_respawns == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    (void)carol->search(log.records()[321].text);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto stats = fleet.value()->fleet_stats();
  const auto worker = fleet.value()->worker_stats(victim);
  std::printf("supervisor auto-respawned it: restored %zu of %zu queries from "
              "the sealed checkpoint (auto_respawns=%llu, warm_start_ratio=%.2f)\n",
              worker.checkpoint.restored_entries, depth_before,
              static_cast<unsigned long long>(stats.auto_respawns),
              stats.warm_start_ratio);
  const auto after = carol->search(log.records()[999].text);
  std::printf("carol's search after recovery: %s\n",
              after.is_ok() ? "ok" : after.status().to_string().c_str());

  fleet_server.value()->stop();
  std::filesystem::remove_all(checkpoint_dir);
  std::printf("\nfleet served %llu connections; recovered without a cold start\n",
              static_cast<unsigned long long>(
                  fleet_server.value()->connections_served()));
  return 0;
}
