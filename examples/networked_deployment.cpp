// Networked deployment: the proxy as a real TCP server.
//
// Starts an X-Search ProxyServer on a loopback port (the untrusted host
// process of a cloud deployment) and drives it through the unified client
// API: api::make_remote_client wraps the per-user local daemon of §4.2,
// speaking the framed protocol over actual sockets — the same
// PrivateSearchClient surface as every in-process mechanism. Also
// demonstrates the sealed-history checkpoint: the proxy "restarts" and
// restores its decoy table without the host ever seeing a plaintext query.
//
// Run: ./build/examples/networked_deployment
#include <cstdio>
#include <filesystem>

#include "api/client.hpp"
#include "api/remote.hpp"
#include "dataset/synthetic.hpp"
#include "engine/corpus.hpp"
#include "engine/search_engine.hpp"
#include "net/proxy_server.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/checkpoint.hpp"
#include "xsearch/proxy.hpp"

using namespace xsearch;  // NOLINT

int main() {
  dataset::SyntheticLogConfig log_config;
  log_config.num_users = 60;
  log_config.total_queries = 8'000;
  const auto log = dataset::generate_synthetic_log(log_config);
  engine::Corpus corpus(log, engine::CorpusConfig{.num_documents = 3'000});
  engine::SearchEngine search_engine(corpus);

  sgx::AttestationAuthority intel(to_bytes("simulated-intel-epid-root"));
  core::XSearchProxy::Options options;
  options.k = 3;
  auto proxy = core::XSearchProxy::create(&search_engine, intel, options);
  if (!proxy.is_ok()) {
    std::fprintf(stderr, "proxy config rejected: %s\n",
                 proxy.status().to_string().c_str());
    return 1;
  }

  auto server = net::ProxyServer::start(*proxy.value());
  if (!server) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().to_string().c_str());
    return 1;
  }
  std::printf("proxy server listening on 127.0.0.1:%u\n", server.value()->port());

  // Two independent users, each an attested PrivateSearchClient over TCP.
  api::ClientConfig alice_config;
  alice_config.k = options.k;
  alice_config.seed = 1;
  api::ClientConfig bob_config = alice_config;
  bob_config.seed = 2;
  const auto alice = api::make_remote_client("127.0.0.1", server.value()->port(),
                                             intel, proxy.value()->measurement(),
                                             alice_config);
  const auto bob = api::make_remote_client("127.0.0.1", server.value()->port(),
                                           intel, proxy.value()->measurement(),
                                           bob_config);

  for (std::size_t i = 0; i < 15; ++i) {
    (void)alice->search(log.records()[i * 11].text);
    (void)bob->search(log.records()[i * 13].text);
  }
  const auto results = alice->search(log.records()[999].text);
  std::printf("alice's query over TCP: %s, %zu results\n",
              results.is_ok() ? "ok" : results.status().to_string().c_str(),
              results.is_ok() ? results.value().size() : 0);
  std::printf("history table now holds %zu queries (%zu bytes of EPC)\n",
              proxy.value()->history_size(), proxy.value()->history_memory_bytes());

  // --- Sealed checkpoint across a "restart". ---------------------------------
  // The seal/restore path runs inside the enclave; the host only ever
  // handles the opaque sealed blob. Demonstrated with a standalone
  // enclave + history pair sharing the proxy's code identity.
  const auto checkpoint_path =
      std::filesystem::temp_directory_path() / "xsearch_history.sealed";
  sgx::EnclaveRuntime enclave({.code_identity = core::XSearchProxy::code_identity()});
  core::QueryHistory history(10'000);
  for (std::size_t i = 0; i < 500; ++i) history.add(log.records()[i].text);
  const Bytes sealed = core::seal_history(enclave, history);
  (void)core::write_checkpoint_file(checkpoint_path, sealed);
  std::printf("\nsealed %zu queries into %s (%zu bytes, host-opaque)\n",
              history.size(), checkpoint_path.c_str(), sealed.size());

  core::QueryHistory restored(10'000);
  const auto blob = core::read_checkpoint_file(checkpoint_path);
  if (blob.is_ok() &&
      core::restore_history(enclave, blob.value(), restored).is_ok()) {
    std::printf("restarted enclave restored %zu queries — no cold start\n",
                restored.size());
  }
  std::filesystem::remove(checkpoint_path);

  server.value()->stop();
  std::printf("\nserved %llu connections; server stopped cleanly\n",
              static_cast<unsigned long long>(server.value()->connections_served()));
  return 0;
}
