// Attack evaluation: play the adversary.
//
// Reproduces the paper's privacy experiment (§6.1) end to end at small
// scale: train SimAttack profiles on the historical queries of the most
// active users, then attack live X-Search traffic and report how often the
// honest-but-curious engine re-identifies (user, query) pairs — compared
// with attacking unprotected traffic.
//
// Run: ./build/examples/attack_evaluation
#include <cstdio>

#include "attack/simattack.hpp"
#include "common/rng.hpp"
#include "dataset/synthetic.hpp"
#include "xsearch/history.hpp"
#include "xsearch/obfuscator.hpp"

using namespace xsearch;  // NOLINT

int main() {
  // The world: a log, split into the adversary's knowledge and live traffic.
  dataset::SyntheticLogConfig config;
  config.num_users = 200;
  config.total_queries = 30'000;
  const auto log = dataset::generate_synthetic_log(config);
  const auto top = log.most_active_users(50);
  const auto split = dataset::split_per_user(log.filter_users(top), 2.0 / 3.0);
  std::printf("adversary profiles: %zu users, %zu training queries\n", top.size(),
              split.train.size());

  attack::SimAttack adversary(split.train);

  // X-Search proxy state: history warmed with the training stream.
  core::QueryHistory history(100'000);
  for (const auto& r : split.train.records()) history.add(r.text);
  core::Obfuscator obfuscator(history, /*k=*/3);
  Rng rng(7);

  constexpr std::size_t kQueries = 300;
  std::size_t reid_plain = 0, reid_xsearch = 0, decoy_hits = 0;
  for (std::size_t i = 0; i < kQueries; ++i) {
    const auto& record = split.test.records()[i * 31 % split.test.size()];

    // Unprotected traffic: the engine sees the raw query.
    if (const auto id = adversary.attack({record.text});
        id && id->user == record.user) {
      ++reid_plain;
    }

    // X-Search traffic: the engine sees k+1 sub-queries.
    const auto obf = obfuscator.obfuscate(record.text, rng);
    if (const auto id = adversary.attack(obf.sub_queries)) {
      if (id->user == record.user && id->query == record.text) {
        ++reid_xsearch;
      } else {
        ++decoy_hits;  // the adversary confidently picked a decoy
      }
    }
  }

  const auto pct = [](std::size_t n, std::size_t total) {
    return 100.0 * static_cast<double>(n) / static_cast<double>(total);
  };
  std::printf("\nattack results over %zu live queries:\n", kQueries);
  std::printf("  unprotected traffic re-identified: %5.1f%%\n",
              pct(reid_plain, kQueries));
  std::printf("  X-Search (k=3) re-identified:      %5.1f%%\n",
              pct(reid_xsearch, kQueries));
  std::printf("  adversary misled onto a decoy:     %5.1f%%\n",
              pct(decoy_hits, kQueries));
  std::printf("\nX-Search's decoys are real queries of other users, so a\n"
              "confident adversary is often confidently *wrong*.\n");
  return 0;
}
