// Attack evaluation: play the adversary.
//
// Reproduces the paper's privacy experiment (§6.1) end to end at small
// scale: train SimAttack profiles on the historical queries of the most
// active users, then attack live traffic and report how often the
// honest-but-curious engine re-identifies (user, query) pairs — comparing
// X-Search traffic against unprotected traffic.
//
// Both traffic streams are produced through the unified client API
// ("direct" vs "xsearch"), and the adversary observes exactly what the
// engine observes — its query observation hook — rather than being handed
// the obfuscator's internals.
//
// Run: ./build/examples/attack_evaluation
#include <cstdio>
#include <string>
#include <vector>

#include "api/client.hpp"
#include "api/registry.hpp"
#include "attack/simattack.hpp"
#include "dataset/synthetic.hpp"
#include "engine/corpus.hpp"
#include "engine/search_engine.hpp"

using namespace xsearch;  // NOLINT

int main() {
  // The world: a log, split into the adversary's knowledge and live traffic.
  dataset::SyntheticLogConfig config;
  config.num_users = 200;
  config.total_queries = 30'000;
  const auto log = dataset::generate_synthetic_log(config);
  const auto top = log.most_active_users(50);
  const auto split = dataset::split_per_user(log.filter_users(top), 2.0 / 3.0);
  std::printf("adversary profiles: %zu users, %zu training queries\n", top.size(),
              split.train.size());

  attack::SimAttack adversary(split.train);

  // The engine the two clients talk to, with the adversary listening.
  engine::Corpus corpus(log, engine::CorpusConfig{.num_documents = 3'000});
  engine::SearchEngine search_engine(corpus);
  std::vector<std::string> observed;
  search_engine.set_observer(
      [&observed](std::string_view q) { observed.emplace_back(q); });

  api::Backend backend;
  backend.engine = &search_engine;
  backend.fake_source = &split.train;

  api::ClientConfig client_config;
  client_config.k = 3;
  client_config.top_k = 20;
  client_config.history_capacity = 100'000;
  client_config.seed = 7;

  auto unprotected = api::make_client("direct", backend, client_config);
  auto xsearch_client = api::make_client("xsearch", backend, client_config);
  if (!unprotected.is_ok() || !xsearch_client.is_ok()) {
    std::fprintf(stderr, "client setup failed\n");
    return 1;
  }

  // X-Search proxy state: history warmed with the training stream (§5.1).
  std::vector<std::string> warm;
  warm.reserve(split.train.size());
  for (const auto& r : split.train.records()) warm.push_back(r.text);
  (void)xsearch_client.value()->prime(warm);

  constexpr std::size_t kQueries = 300;
  std::size_t reid_plain = 0, reid_xsearch = 0, decoy_hits = 0;
  for (std::size_t i = 0; i < kQueries; ++i) {
    const auto& record = split.test.records()[i * 31 % split.test.size()];

    // Unprotected traffic: the engine sees the raw query.
    observed.clear();
    if (unprotected.value()->search(record.text).is_ok() && !observed.empty()) {
      if (const auto id = adversary.attack({observed.front()});
          id && id->user == record.user) {
        ++reid_plain;
      }
    }

    // X-Search traffic: the engine sees one OR query of k+1 sub-queries.
    observed.clear();
    if (xsearch_client.value()->search(record.text).is_ok() && !observed.empty()) {
      if (const auto id =
              adversary.attack(attack::split_or_query(observed.front()))) {
        if (id->user == record.user && id->query == record.text) {
          ++reid_xsearch;
        } else {
          ++decoy_hits;  // the adversary confidently picked a decoy
        }
      }
    }
  }

  const auto pct = [](std::size_t n, std::size_t total) {
    return 100.0 * static_cast<double>(n) / static_cast<double>(total);
  };
  std::printf("\nattack results over %zu live queries:\n", kQueries);
  std::printf("  unprotected traffic re-identified: %5.1f%%\n",
              pct(reid_plain, kQueries));
  std::printf("  X-Search (k=3) re-identified:      %5.1f%%\n",
              pct(reid_xsearch, kQueries));
  std::printf("  adversary misled onto a decoy:     %5.1f%%\n",
              pct(decoy_hits, kQueries));
  std::printf("\nX-Search's decoys are real queries of other users, so a\n"
              "confident adversary is often confidently *wrong*.\n");
  return 0;
}
