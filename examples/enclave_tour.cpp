// Enclave tour: the simulated SGX substrate, piece by piece.
//
// Walks through the runtime guarantees the X-Search design leans on:
// measurements, attestation (accepting a genuine enclave, rejecting a
// trojan), sealing, EPC metering with page-fault simulation, and the
// ecall/ocall transition counters behind the paper's narrow-interface
// design rule.
//
// Run: ./build/examples/enclave_tour
#include <cstdio>

#include "sgx/attestation.hpp"
#include "sgx/enclave.hpp"
#include "sgx/epc.hpp"

using namespace xsearch;  // NOLINT

int main() {
  // --- Measurements ------------------------------------------------------------
  sgx::EnclaveRuntime genuine({.code_identity = to_bytes("xsearch-proxy v1")});
  sgx::EnclaveRuntime trojan({.code_identity = to_bytes("xsearch-proxy v1, plus a backdoor")});
  std::printf("genuine measurement: %s...\n",
              hex_encode(ByteSpan(genuine.measurement().data(), 12)).c_str());
  std::printf("trojan  measurement: %s...\n\n",
              hex_encode(ByteSpan(trojan.measurement().data(), 12)).c_str());

  // --- Attestation ----------------------------------------------------------------
  sgx::AttestationAuthority intel(to_bytes("epid-group-root-key"));
  const auto genuine_quote = intel.issue(genuine.measurement(), to_bytes("chan-key"));
  const auto trojan_quote = intel.issue(trojan.measurement(), to_bytes("chan-key"));
  std::printf("client verifies genuine enclave: %s\n",
              intel.verify_enclave(genuine_quote, genuine.measurement())
                  .to_string().c_str());
  std::printf("client verifies trojan enclave:  %s\n\n",
              intel.verify_enclave(trojan_quote, genuine.measurement())
                  .to_string().c_str());

  // --- Sealing ----------------------------------------------------------------------
  const Bytes sealed = genuine.seal(to_bytes("query table checkpoint"));
  std::printf("sealed blob (%zu bytes) unseals in same-code enclave: %s\n", sealed.size(),
              genuine.unseal(sealed).is_ok() ? "yes" : "no");
  std::printf("same blob in different-code enclave:                 %s\n\n",
              trojan.unseal(sealed).is_ok() ? "yes (BUG)" : "refused");

  // --- EPC metering --------------------------------------------------------------------
  sgx::EpcAccountant epc(/*usable_bytes=*/64 * 1024);
  epc.charge(60 * 1024);
  std::printf("EPC: %zu/%zu bytes used, page faults so far: %llu\n", epc.in_use(),
              epc.limit(), static_cast<unsigned long long>(epc.page_faults()));
  epc.charge(20 * 1024);  // cross the limit -> paging
  std::printf("EPC after exceeding the limit: over=%s page_faults=%llu\n\n",
              epc.over_limit() ? "yes" : "no",
              static_cast<unsigned long long>(epc.page_faults()));

  // --- Boundary transitions ----------------------------------------------------------
  // The boundary is *typed*: handlers key on the EcallId/OcallId enums of
  // sgx/boundary.hpp, so dispatch is an array index and an unknown name is
  // unrepresentable at a call site.
  genuine.register_ocall(sgx::OcallId::kSend,
                         [](ByteSpan) -> Result<Bytes> { return Bytes{}; });
  genuine.register_ecall(sgx::EcallId::kRequest,
                         [&genuine](ByteSpan in) -> Result<Bytes> {
    (void)genuine.ocall(sgx::OcallId::kSend, in);  // trusted code calling out
    return Bytes{};
  });
  for (int i = 0; i < 5; ++i) {
    (void)genuine.ecall(sgx::EcallId::kRequest, to_bytes("x"));
  }
  const auto stats = genuine.transition_stats();
  std::printf("after 5 requests: %llu ecalls, %llu ocalls — every crossing costs\n"
              "~8us on hardware, which is why X-Search keeps the interface narrow.\n",
              static_cast<unsigned long long>(stats.ecalls),
              static_cast<unsigned long long>(stats.ocalls));

  // --- Switchless (exitless) requests ------------------------------------------------
  // Persistent trusted workers (entered via ONE long-running run_workers
  // ecall each) drain a job ring in untrusted memory, so steady-state
  // requests stop paying the crossing entirely.
  sgx::SwitchlessOptions switchless;
  switchless.workers = 1;
  genuine.start_switchless(switchless);
  const auto before = genuine.transition_stats();
  for (int i = 0; i < 5; ++i) {
    (void)genuine.submit(sgx::EcallId::kRequest, to_bytes("x"));
  }
  const auto after = genuine.transition_stats();
  const auto ring = genuine.ring_stats();
  genuine.stop_switchless();
  std::printf("switchless: 5 more requests cost %llu new ecalls "
              "(%llu rode the ring, %llu fell back).\n",
              static_cast<unsigned long long>(after.ecalls - before.ecalls),
              static_cast<unsigned long long>(ring.jobs_switchless),
              static_cast<unsigned long long>(ring.fallback_ecalls));
  return 0;
}
