#!/usr/bin/env python3
"""Secret-flow lint for the X-Search tree.

The Secret<N>/SecretBytes wrappers (src/common/secret.hpp) make key bytes
unreachable except through expose(<sink tag>), and the compiler already
rejects ==, <<, and implicit conversions on them. This script checks the
residue the type system cannot: that every expose() names a registered sink
tag valid for its scope, that secret-bearing identifiers never flow into
log/Status/exception text, branch conditions, array subscripts or hash-map
keys, and that nothing wipes a secret with a bare memset instead of
secure_wipe(). The policy lives in tools/secret_policy.toml; like
tcb_lint.py this is a line-level pass over the sources named there, so it
runs identically on a dev box and in CI.

The lint also emits the full exposure table (site -> sink -> reason) so CI
reviewers audit the exact places raw key bytes become visible.

Waivers:
  * per line:  // secret-lint: allow(<rule>) <written reason>
    (on the offending line or the line directly above it)
  * per file:  [[exempt]] entries in the TOML, with a reason
Both are counted and listed; a waiver without a reason is itself a finding.

Exit status: 0 when every finding is waived, 1 otherwise, 2 on bad usage.
"""

from __future__ import annotations

import argparse
import re
import sys
import tomllib
from dataclasses import dataclass, field
from pathlib import Path

SOURCE_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".h"}
WAIVER_RE = re.compile(r"//\s*secret-lint:\s*allow\(([\w-]+)\)\s*(.*)")
EXPOSE_RE = re.compile(r"(?:\.|->)\s*expose\s*\(\s*([^)]*)\)")
SINK_TAG_RE = re.compile(r"(?:SecretSink::)?(k\w+)\s*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str
    snippet: str


@dataclass
class Waiver:
    path: str
    where: str  # "line N" or "config"
    rule: str
    reason: str


@dataclass
class Exposure:
    path: str
    line: int
    sink: str
    reason: str


@dataclass
class Rule:
    name: str
    applies_to: str
    kind: str
    message: str
    patterns: list[re.Pattern] = field(default_factory=list)
    trigger: re.Pattern | None = None
    exclude: re.Pattern | None = None
    subscript_only: bool = False


def load_rules(config: dict) -> list[Rule]:
    rules = []
    for raw in config.get("rules", []):
        rule = Rule(
            name=raw["name"],
            applies_to=raw["applies_to"],
            kind=raw["kind"],
            message=raw["message"],
        )
        if rule.kind == "pattern":
            rule.patterns = [re.compile(p) for p in raw["patterns"]]
        elif rule.kind == "taint":
            rule.trigger = re.compile(raw["trigger"])
            if "exclude" in raw:
                rule.exclude = re.compile(raw["exclude"])
            rule.subscript_only = bool(raw.get("subscript_only", False))
        elif rule.kind != "expose":
            raise SystemExit(f"secret_lint: unknown rule kind {rule.kind!r}")
        rules.append(rule)
    return rules


def list_sources(root: Path, dirs: list[str]) -> list[Path]:
    out: list[Path] = []
    for d in dirs:
        base = root / d
        if not base.exists():
            continue
        out.extend(
            p for p in sorted(base.rglob("*")) if p.suffix in SOURCE_SUFFIXES
        )
    return out


def line_waiver(lines: list[str], idx: int) -> tuple[str, str] | None:
    """Waiver on the offending line, or alone on the line above it."""
    m = WAIVER_RE.search(lines[idx])
    if m:
        return m.group(1), m.group(2).strip()
    if idx > 0:
        prev = lines[idx - 1].strip()
        m = WAIVER_RE.search(prev)
        if m and prev.startswith("//"):
            return m.group(1), m.group(2).strip()
    return None


def strip_line_comment(line: str) -> str:
    """Drop // comments so prose about keys never trips a rule."""
    cut = line.find("//")
    return line if cut < 0 else line[:cut]


def strip_strings(code: str) -> str:
    """Blank out string-literal contents: "query too long" is not a taint."""
    return STRING_RE.sub('""', code)


class Linter:
    def __init__(self, root: Path, config: dict):
        self.root = root
        self.rules = load_rules(config)
        modules = config.get("modules", {})
        self.scopes = {
            "trusted": modules.get("trusted", []),
            "untrusted": modules.get("untrusted", []),
            "tests": modules.get("tests", []),
        }
        idents = config.get("secrets", {}).get("identifiers", [])
        self.secret_re = (
            re.compile(r"\b(?:" + "|".join(idents) + r")\b") if idents else None
        )
        self.sinks: dict[str, dict] = {
            s["name"]: s for s in config.get("sinks", [])
        }
        self.exempt: dict[tuple[str, str], str] = {}
        for entry in config.get("exempt", []):
            self.exempt[(entry["file"], entry["rule"])] = entry["reason"]
        self.findings: list[Finding] = []
        self.waivers: list[Waiver] = []
        self.exposures: list[Exposure] = []
        self.used_exempts: set[tuple[str, str]] = set()

    def scope_of(self, rel: str) -> str | None:
        for scope in ("trusted", "untrusted", "tests"):
            for d in self.scopes[scope]:
                if rel == d or rel.startswith(d.rstrip("/") + "/"):
                    return scope
        return None

    def rules_for(self, scope: str) -> list[Rule]:
        return [
            r
            for r in self.rules
            if r.applies_to == "all" or r.applies_to == scope
        ]

    def report(self, rel: str, lines: list[str], idx: int, rule: Rule,
               message: str | None = None) -> None:
        exempt_reason = self.exempt.get((rel, rule.name))
        if exempt_reason is not None:
            if (rel, rule.name) not in self.used_exempts:
                self.used_exempts.add((rel, rule.name))
                self.waivers.append(Waiver(rel, "config", rule.name, exempt_reason))
            return
        waiver = line_waiver(lines, idx)
        if waiver is not None:
            waived_rule, reason = waiver
            if waived_rule != rule.name:
                self.findings.append(Finding(
                    rel, idx + 1, rule.name,
                    f"waiver names rule {waived_rule!r} but the finding is "
                    f"{rule.name!r}", lines[idx].strip()))
            elif not reason:
                self.findings.append(Finding(
                    rel, idx + 1, rule.name,
                    "waiver has no written reason (required)",
                    lines[idx].strip()))
            else:
                self.waivers.append(
                    Waiver(rel, f"line {idx + 1}", rule.name, reason))
            return
        self.findings.append(Finding(
            rel, idx + 1, rule.name, message or rule.message,
            lines[idx].strip()))

    def check_expose(self, rel: str, scope: str, lines: list[str], idx: int,
                     rule: Rule) -> None:
        code = strip_line_comment(lines[idx])
        for m in EXPOSE_RE.finditer(code):
            tag = SINK_TAG_RE.search(m.group(1).strip())
            if not tag:
                self.report(rel, lines, idx, rule,
                            f"expose({m.group(1).strip()!r}) does not name a "
                            "SecretSink::k... tag")
                continue
            name = tag.group(1)
            sink = self.sinks.get(name)
            if sink is None:
                self.report(rel, lines, idx, rule,
                            f"SecretSink::{name} is not a registered sink "
                            f"({sorted(self.sinks)})")
                continue
            if scope not in sink.get("scopes", []):
                self.report(rel, lines, idx, rule,
                            f"SecretSink::{name} is not allowed in {scope} "
                            f"code (scopes: {sink.get('scopes', [])})")
                continue
            self.exposures.append(
                Exposure(rel, idx + 1, name, sink.get("reason", "")))

    def check_taint(self, rel: str, lines: list[str], idx: int,
                    rule: Rule) -> None:
        if self.secret_re is None or rule.trigger is None:
            return
        code = strip_strings(strip_line_comment(lines[idx]))
        if not rule.trigger.search(code):
            return
        if rule.subscript_only:
            hit = any(
                self.secret_re.search(code[m.start() + 1:m.end() - 1])
                for m in rule.trigger.finditer(code)
            )
            if not hit:
                return
        elif not self.secret_re.search(code):
            return
        if rule.exclude is not None and rule.exclude.search(code):
            return
        self.report(rel, lines, idx, rule)

    def lint_file(self, path: Path) -> None:
        rel = path.relative_to(self.root).as_posix()
        scope = self.scope_of(rel)
        if scope is None:
            return
        lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
        for rule in self.rules_for(scope):
            if rule.kind == "pattern":
                for idx, line in enumerate(lines):
                    code = strip_line_comment(line)
                    if any(p.search(code) for p in rule.patterns):
                        self.report(rel, lines, idx, rule)
            elif rule.kind == "expose":
                for idx in range(len(lines)):
                    self.check_expose(rel, scope, lines, idx, rule)
            elif rule.kind == "taint":
                for idx in range(len(lines)):
                    self.check_taint(rel, lines, idx, rule)

    def run(self, only: list[str] | None) -> None:
        files = list_sources(
            self.root, self.scopes["trusted"] + self.scopes["untrusted"]
            + self.scopes["tests"])
        if only:
            wanted = {Path(o).as_posix() for o in only}
            files = [
                f for f in files
                if f.relative_to(self.root).as_posix() in wanted
            ]
            if not files:
                raise SystemExit(f"secret_lint: --only matched no files: {only}")
        for f in files:
            self.lint_file(f)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--config", default="tools/secret_policy.toml")
    parser.add_argument("--root", default=".",
                        help="repo root the config paths are relative to")
    parser.add_argument("--only", action="append", default=None,
                        help="restrict to these repo-relative files (repeatable)")
    parser.add_argument("--summary-file", default=None,
                        help="append a markdown summary (e.g. $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args()

    root = Path(args.root).resolve()
    config_path = Path(args.config)
    if not config_path.is_absolute():
        config_path = root / config_path
    try:
        config = tomllib.loads(config_path.read_text())
    except (OSError, tomllib.TOMLDecodeError) as err:
        print(f"secret_lint: cannot load config {config_path}: {err}",
              file=sys.stderr)
        return 2

    linter = Linter(root, config)
    linter.run(args.only)

    for f in linter.findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}\n    {f.snippet}")
    print(f"secret_lint: {len(linter.findings)} finding(s), "
          f"{len(linter.waivers)} waiver(s), "
          f"{len(linter.exposures)} exposure site(s)")
    for w in linter.waivers:
        print(f"  waived [{w.rule}] {w.path} ({w.where}): {w.reason}")
    for e in linter.exposures:
        print(f"  expose [{e.sink}] {e.path}:{e.line}")

    if args.summary_file:
        with open(args.summary_file, "a", encoding="utf-8") as out:
            out.write("### Secret-flow lint\n\n")
            out.write(f"- findings: **{len(linter.findings)}**\n")
            out.write(f"- waivers: **{len(linter.waivers)}** "
                      "(each carries a written reason)\n")
            out.write(f"- exposure sites: **{len(linter.exposures)}**\n\n")
            if linter.findings:
                out.write("| file | line | rule | message |\n|---|---|---|---|\n")
                for f in linter.findings:
                    out.write(f"| {f.path} | {f.line} | {f.rule} | {f.message} |\n")
                out.write("\n")
            if linter.exposures:
                out.write("<details><summary>exposure table "
                          "(site &rarr; sink &rarr; reason)</summary>\n\n")
                out.write("| site | sink | reason |\n|---|---|---|\n")
                for e in linter.exposures:
                    out.write(f"| {e.path}:{e.line} | {e.sink} | {e.reason} |\n")
                out.write("\n</details>\n\n")
            if linter.waivers:
                out.write("<details><summary>waivers</summary>\n\n")
                out.write("| file | where | rule | reason |\n|---|---|---|---|\n")
                for w in linter.waivers:
                    out.write(f"| {w.path} | {w.where} | {w.rule} | {w.reason} |\n")
                out.write("\n</details>\n")

    return 1 if linter.findings else 0


if __name__ == "__main__":
    sys.exit(main())
