#!/usr/bin/env python3
"""TCB-boundary lint for the X-Search tree.

Enforces the trusted/untrusted split that the paper's security argument
rests on (small TCB behind a 2-ecall/4-ocall boundary). The rules live in
tools/tcb_boundary.toml; this script is a disciplined line-level pass over
the sources named there — no compiler needed, so it runs identically on a
dev box and in CI. When a compile_commands.json is supplied (any CMake
preset exports one) it is used to warn about trusted translation units the
build does not actually compile, which is how dead trusted code would
otherwise dodge both this lint and the thread-safety build.

Waivers:
  * per line:  // tcb-lint: allow(<rule>) <written reason>
    (on the offending line or the line directly above it)
  * per file:  [[exempt]] entries in the TOML, with a reason
Both are counted and listed; a waiver without a reason is itself a finding.

Exit status: 0 when every finding is waived, 1 otherwise, 2 on bad usage.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import tomllib
from dataclasses import dataclass, field
from pathlib import Path

SOURCE_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".h"}
WAIVER_RE = re.compile(r"//\s*tcb-lint:\s*allow\(([\w-]+)\)\s*(.*)")
INCLUDE_RE = re.compile(r'#include\s*"([^"]+)"')
BOUNDARY_RE = re.compile(r'\b(?:register_)?(ecall|ocall)\s*\(\s*"([^"]+)"')
# Typed boundary calls: ecall(EcallId::kRequest, ...), submit(EcallId::kX),
# register_ocall(sgx::OcallId::kSend, ...). The enumerator is snake_cased
# (kSockConnect -> sock_connect) and checked against the same [boundary]
# allowlist as the legacy string form.
ENUM_BOUNDARY_RE = re.compile(
    r'\b(?:register_)?(ecall|ocall|submit)\s*\(\s*'
    r'(?:[\w:]+::)?(?:EcallId|OcallId)::k(\w+)')
# The name arrays of the boundary header, checked 1:1 against [boundary].
NAME_ARRAY_RE = re.compile(
    r'k(Ecall|Ocall)Names\s*=\s*\{([^}]*)\}', re.DOTALL)


def enum_to_name(enumerator: str) -> str:
    """kSockConnect -> sock_connect (the boundary.hpp name convention)."""
    return re.sub(r"(?<!^)(?=[A-Z])", "_", enumerator).lower()


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str
    snippet: str


@dataclass
class Waiver:
    path: str
    where: str  # "line N" or "config"
    rule: str
    reason: str


@dataclass
class Rule:
    name: str
    applies_to: str
    kind: str
    message: str
    patterns: list[re.Pattern] = field(default_factory=list)
    headers: list[str] = field(default_factory=list)
    context: re.Pattern | None = None
    window: int = 0


def load_rules(config: dict) -> list[Rule]:
    rules = []
    for raw in config.get("rules", []):
        rule = Rule(
            name=raw["name"],
            applies_to=raw["applies_to"],
            kind=raw["kind"],
            message=raw["message"],
        )
        if rule.kind == "pattern":
            rule.patterns = [re.compile(p) for p in raw["patterns"]]
        elif rule.kind == "include":
            rule.headers = list(raw["headers"])
        elif rule.kind == "context":
            rule.patterns = [re.compile(raw["pattern"])]
            rule.context = re.compile(raw["context"])
            rule.window = int(raw.get("window", 20))
        elif rule.kind != "boundary":
            raise SystemExit(f"tcb_lint: unknown rule kind {rule.kind!r}")
        rules.append(rule)
    return rules


def list_sources(root: Path, dirs: list[str]) -> list[Path]:
    out: list[Path] = []
    for d in dirs:
        base = root / d
        if not base.exists():
            continue
        out.extend(
            p for p in sorted(base.rglob("*")) if p.suffix in SOURCE_SUFFIXES
        )
    return out


def line_waiver(lines: list[str], idx: int) -> tuple[str, str] | None:
    """Waiver on the offending line, or alone on the line above it."""
    m = WAIVER_RE.search(lines[idx])
    if m:
        return m.group(1), m.group(2).strip()
    if idx > 0:
        prev = lines[idx - 1].strip()
        m = WAIVER_RE.search(prev)
        if m and prev.startswith("//"):
            return m.group(1), m.group(2).strip()
    return None


def strip_line_comment(line: str) -> str:
    """Drop // comments so prose about ::recv or <fstream> never trips a rule."""
    cut = line.find("//")
    return line if cut < 0 else line[:cut]


class Linter:
    def __init__(self, root: Path, config: dict):
        self.root = root
        self.rules = load_rules(config)
        modules = config.get("modules", {})
        self.scopes = {
            "trusted": modules.get("trusted", []),
            "untrusted": modules.get("untrusted", []),
            "tests": modules.get("tests", []),
        }
        boundary = config.get("boundary", {})
        self.registered = {
            "ecall": set(boundary.get("ecalls", [])),
            "ocall": set(boundary.get("ocalls", [])),
        }
        self.boundary_names = {
            "ecall": list(boundary.get("ecalls", [])),
            "ocall": list(boundary.get("ocalls", [])),
        }
        self.boundary_header = boundary.get("header")
        self.exempt: dict[tuple[str, str], str] = {}
        for entry in config.get("exempt", []):
            self.exempt[(entry["file"], entry["rule"])] = entry["reason"]
        self.findings: list[Finding] = []
        self.waivers: list[Waiver] = []
        self.used_exempts: set[tuple[str, str]] = set()

    def scope_of(self, rel: str) -> str | None:
        for scope in ("trusted", "untrusted", "tests"):
            for d in self.scopes[scope]:
                if rel == d or rel.startswith(d.rstrip("/") + "/"):
                    return scope
        return None

    def rules_for(self, scope: str) -> list[Rule]:
        return [
            r
            for r in self.rules
            if r.applies_to == "all" or r.applies_to == scope
        ]

    def report(self, rel: str, lines: list[str], idx: int, rule: Rule,
               message: str | None = None) -> None:
        exempt_reason = self.exempt.get((rel, rule.name))
        if exempt_reason is not None:
            if (rel, rule.name) not in self.used_exempts:
                self.used_exempts.add((rel, rule.name))
                self.waivers.append(Waiver(rel, "config", rule.name, exempt_reason))
            return
        waiver = line_waiver(lines, idx)
        if waiver is not None:
            waived_rule, reason = waiver
            if waived_rule != rule.name:
                self.findings.append(Finding(
                    rel, idx + 1, rule.name,
                    f"waiver names rule {waived_rule!r} but the finding is "
                    f"{rule.name!r}", lines[idx].strip()))
            elif not reason:
                self.findings.append(Finding(
                    rel, idx + 1, rule.name,
                    "waiver has no written reason (required)",
                    lines[idx].strip()))
            else:
                self.waivers.append(
                    Waiver(rel, f"line {idx + 1}", rule.name, reason))
            return
        self.findings.append(Finding(
            rel, idx + 1, rule.name, message or rule.message,
            lines[idx].strip()))

    def lint_file(self, path: Path) -> None:
        rel = path.relative_to(self.root).as_posix()
        scope = self.scope_of(rel)
        if scope is None:
            return
        lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
        for rule in self.rules_for(scope):
            if rule.kind == "pattern":
                for idx, line in enumerate(lines):
                    code = strip_line_comment(line)
                    if any(p.search(code) for p in rule.patterns):
                        self.report(rel, lines, idx, rule)
            elif rule.kind == "include":
                for idx, line in enumerate(lines):
                    m = INCLUDE_RE.search(strip_line_comment(line))
                    if m and m.group(1) in rule.headers:
                        self.report(rel, lines, idx, rule)
            elif rule.kind == "boundary":
                for idx, line in enumerate(lines):
                    code = strip_line_comment(line)
                    for m in BOUNDARY_RE.finditer(code):
                        side, name = m.group(1), m.group(2)
                        if name not in self.registered[side]:
                            self.report(
                                rel, lines, idx, rule,
                                f"{side}(\"{name}\") is not a registered "
                                f"{side} ({sorted(self.registered[side])})")
                    for m in ENUM_BOUNDARY_RE.finditer(code):
                        side = "ecall" if m.group(1) in ("ecall", "submit") \
                            else "ocall"
                        name = enum_to_name(m.group(2))
                        if name not in self.registered[side]:
                            self.report(
                                rel, lines, idx, rule,
                                f"k{m.group(2)} ({side} \"{name}\") is not in "
                                f"the pinned {side} surface "
                                f"({sorted(self.registered[side])})")
            elif rule.kind == "context":
                for idx, line in enumerate(lines):
                    if not any(p.search(strip_line_comment(line))
                               for p in rule.patterns):
                        continue
                    lo = max(0, idx - rule.window)
                    nearby = "\n".join(lines[lo:idx + 1])
                    if rule.context and not rule.context.search(nearby):
                        self.report(rel, lines, idx, rule)

    def run(self, only: list[str] | None) -> None:
        files = list_sources(
            self.root, self.scopes["trusted"] + self.scopes["untrusted"]
            + self.scopes["tests"])
        if only:
            wanted = {Path(o).as_posix() for o in only}
            files = [
                f for f in files
                if f.relative_to(self.root).as_posix() in wanted
            ]
            if not files:
                raise SystemExit(f"tcb_lint: --only matched no files: {only}")
        for f in files:
            self.lint_file(f)
        if self.boundary_header and not only:
            self.check_boundary_header()

    def check_boundary_header(self) -> None:
        """The typed-id header's name arrays must match [boundary] exactly.

        Order matters: entry i of the TOML list is the name of enum value i,
        so a reorder (not just an add/remove) is drift and fails the lint.
        """
        path = self.root / self.boundary_header
        rel = self.boundary_header
        if not path.exists():
            self.findings.append(Finding(
                rel, 1, "boundary-allowlist",
                "[boundary].header names a file that does not exist", rel))
            return
        text = path.read_text(encoding="utf-8", errors="replace")
        found = {m.group(1).lower(): re.findall(r'"([^"]+)"', m.group(2))
                 for m in NAME_ARRAY_RE.finditer(text)}
        for side in ("ecall", "ocall"):
            names = found.get(side)
            if names is None:
                self.findings.append(Finding(
                    rel, 1, "boundary-allowlist",
                    f"could not find k{side.capitalize()}Names in the "
                    "boundary header", rel))
            elif names != self.boundary_names[side]:
                self.findings.append(Finding(
                    rel, 1, "boundary-allowlist",
                    f"{side} surface drift: header declares {names} but "
                    f"[boundary] pins {self.boundary_names[side]} "
                    "(order-sensitive — entry i names enum value i)", rel))


def check_compile_coverage(root: Path, compile_commands: Path,
                           trusted_dirs: list[str]) -> list[str]:
    """Trusted .cpp files the build never compiles (dead trusted code)."""
    try:
        entries = json.loads(compile_commands.read_text())
    except (OSError, json.JSONDecodeError) as err:
        return [f"could not read {compile_commands}: {err}"]
    compiled = set()
    for entry in entries:
        p = Path(entry["file"])
        if not p.is_absolute():
            p = Path(entry.get("directory", ".")) / p
        try:
            compiled.add(p.resolve().relative_to(root.resolve()).as_posix())
        except ValueError:
            continue
    warnings = []
    for f in list_sources(root, trusted_dirs):
        rel = f.relative_to(root).as_posix()
        if f.suffix == ".cpp" and rel not in compiled:
            warnings.append(f"trusted TU not in compile_commands.json: {rel}")
    return warnings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--config", default="tools/tcb_boundary.toml")
    parser.add_argument("--root", default=".",
                        help="repo root the config paths are relative to")
    parser.add_argument("--compile-commands", default=None,
                        help="optional compile_commands.json for coverage warnings")
    parser.add_argument("--only", action="append", default=None,
                        help="restrict to these repo-relative files (repeatable)")
    parser.add_argument("--summary-file", default=None,
                        help="append a markdown summary (e.g. $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args()

    root = Path(args.root).resolve()
    config_path = Path(args.config)
    if not config_path.is_absolute():
        config_path = root / config_path
    try:
        config = tomllib.loads(config_path.read_text())
    except (OSError, tomllib.TOMLDecodeError) as err:
        print(f"tcb_lint: cannot load config {config_path}: {err}",
              file=sys.stderr)
        return 2

    linter = Linter(root, config)
    linter.run(args.only)

    warnings: list[str] = []
    if args.compile_commands:
        warnings = check_compile_coverage(
            root, Path(args.compile_commands),
            linter.scopes["trusted"])

    for f in linter.findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}\n    {f.snippet}")
    for w in warnings:
        print(f"warning: {w}")
    print(f"tcb_lint: {len(linter.findings)} finding(s), "
          f"{len(linter.waivers)} waiver(s)")
    for w in linter.waivers:
        print(f"  waived [{w.rule}] {w.path} ({w.where}): {w.reason}")

    if args.summary_file:
        with open(args.summary_file, "a", encoding="utf-8") as out:
            out.write("### TCB boundary lint\n\n")
            out.write(f"- findings: **{len(linter.findings)}**\n")
            out.write(f"- waivers: **{len(linter.waivers)}** "
                      "(each carries a written reason)\n\n")
            if linter.findings:
                out.write("| file | line | rule | message |\n|---|---|---|---|\n")
                for f in linter.findings:
                    out.write(f"| {f.path} | {f.line} | {f.rule} | {f.message} |\n")
                out.write("\n")
            if linter.waivers:
                out.write("<details><summary>waivers</summary>\n\n")
                out.write("| file | where | rule | reason |\n|---|---|---|---|\n")
                for w in linter.waivers:
                    out.write(f"| {w.path} | {w.where} | {w.rule} | {w.reason} |\n")
                out.write("\n</details>\n")

    return 1 if linter.findings else 0


if __name__ == "__main__":
    sys.exit(main())
