#include "netsim/netsim.hpp"

#include <algorithm>
#include <cmath>

namespace xsearch::netsim {

Nanos LinkModel::sample(Rng& rng) const {
  const double mu = std::log(median_ms);
  double ms = std::max(rng.lognormal(mu, sigma), min_ms);
  if (congestion_probability > 0.0 && rng.bernoulli(congestion_probability)) {
    ms *= congestion_multiplier;
  }
  return static_cast<Nanos>(ms * static_cast<double>(kMilli));
}

namespace links {

LinkModel client_to_proxy() { return {.median_ms = 15.0, .sigma = 0.25, .min_ms = 4.0}; }

LinkModel proxy_to_engine() { return {.median_ms = 10.0, .sigma = 0.20, .min_ms = 3.0}; }

LinkModel engine_processing() {
  // Dominates every system's end-to-end time; Direct's median RTT in the
  // paper's Figure 7 sits near 0.5 s, p99/median ~ 1.5 (sigma ~ 0.18).
  return {.median_ms = 450.0, .sigma = 0.18, .min_ms = 120.0};
}

LinkModel tor_hop() {
  // Volunteer relays: high median, heavy tail — roughly one hop in twelve
  // lands on a congested relay. Six hop traversals plus the engine
  // reproduce the paper's 1.06 s median / ~3 s p99.
  return {.median_ms = 85.0,
          .sigma = 0.45,
          .min_ms = 15.0,
          .congestion_probability = 0.08,
          .congestion_multiplier = 6.0};
}

LinkModel client_to_engine() { return {.median_ms = 25.0, .sigma = 0.25, .min_ms = 6.0}; }

}  // namespace links

void ServiceCostModel::charge() const { busy_wait(cost_per_request); }

namespace service_costs {

// Calibration (see EXPERIMENTS.md): with the 4 worker threads the Figure 5
// bench uses, capacity = workers / service_time, landing the saturation
// knees at the paper's ~25k (X-Search), ~1k (PEAS) and ~100 (Tor) req/s.
ServiceCostModel xsearch_proxy() { return {.cost_per_request = 150 * kMicro}; }
ServiceCostModel peas_chain() { return {.cost_per_request = 3'800 * kMicro}; }
ServiceCostModel tor_circuit() { return {.cost_per_request = 38 * kMilli}; }

ServiceCostModel for_mechanism(std::string_view mechanism) {
  if (mechanism == "xsearch" || mechanism == "xsearch-remote") {
    return xsearch_proxy();
  }
  if (mechanism == "peas") return peas_chain();
  if (mechanism == "tor") return tor_circuit();
  // "direct" and "tmn" talk to the engine without an intermediary stack.
  return {.cost_per_request = 0};
}

}  // namespace service_costs

namespace wan {

Nanos sample_search_rtt(std::string_view mechanism, std::size_t k, Rng& rng) {
  const auto engine = links::engine_processing();
  // The engine evaluates the k+1 sub-queries of an OR query independently
  // (§5.3.2), so its processing share grows mildly with k.
  const auto engine_share = [&](std::size_t sub_queries) {
    const double factor = 1.0 + 0.04 * static_cast<double>(sub_queries);
    return static_cast<Nanos>(factor *
                              static_cast<double>(engine.sample(rng)));
  };

  if (mechanism == "tor") {
    // Three volunteer-relay hops each way; the exit submits the plain query.
    const auto hop = links::tor_hop();
    Nanos total = engine_share(1);
    for (int h = 0; h < 6; ++h) total += hop.sample(rng);
    return total;
  }
  if (mechanism == "peas") {
    // client -> receiver -> issuer -> engine and back: two proxy processes
    // in series before the engine.
    const auto c2p = links::client_to_proxy();
    const auto p2e = links::proxy_to_engine();
    return c2p.sample(rng) * 2 + p2e.sample(rng) * 2 + p2e.sample(rng) * 2 +
           engine_share(k + 1);
  }
  if (mechanism == "xsearch" || mechanism == "xsearch-remote") {
    // client -> cloud proxy -> engine and back; the OR query is one request.
    const auto c2p = links::client_to_proxy();
    const auto p2e = links::proxy_to_engine();
    return c2p.sample(rng) * 2 + p2e.sample(rng) * 2 + engine_share(k + 1);
  }
  // "direct", "tmn" (the user's own query) and unknown mechanisms: straight
  // to the engine. TrackMeNot's cover queries ride separate requests and do
  // not lengthen the user-perceived path.
  const auto c2e = links::client_to_engine();
  return c2e.sample(rng) * 2 + engine_share(1);
}

}  // namespace wan

void busy_wait(Nanos duration) {
  if (duration <= 0) return;
  const Nanos deadline = wall_now() + duration;
  while (wall_now() < deadline) {
    // spin — models CPU-bound packet/TLS work
  }
}

}  // namespace xsearch::netsim
