// Wide-area network latency models.
//
// The paper's Figures 5 and 7 include components that were measured on live
// networks (the Tor overlay in May 2017, Bing's serving latency). Those are
// not reproducible computationally, so this module provides explicitly
// *calibrated* stochastic models — log-normal link latencies whose medians
// match the medians the paper reports — while all computational costs
// (crypto, obfuscation, filtering, index lookups) are really executed by
// the benches. EXPERIMENTS.md spells out which part of each figure is
// model and which part is measurement.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace xsearch::netsim {

/// Log-normal one-way link latency with an optional congestion mixture
/// (heavy tail from occasionally overloaded links — pronounced on the
/// volunteer Tor relays). `sample()` returns nanoseconds.
struct LinkModel {
  double median_ms = 1.0;  // exp(mu) of the log-normal
  double sigma = 0.25;     // log-space standard deviation
  double min_ms = 0.1;     // physical floor (propagation delay)
  double congestion_probability = 0.0;  // chance a sample hits congestion
  double congestion_multiplier = 1.0;   // slowdown factor when it does

  [[nodiscard]] Nanos sample(Rng& rng) const;
};

/// Calibrated links (medians chosen to land on the paper's §6.3 numbers).
namespace links {

/// Client -> cloud-hosted proxy (same-continent WAN).
[[nodiscard]] LinkModel client_to_proxy();

/// Cloud proxy -> search engine frontend (datacenter peering).
[[nodiscard]] LinkModel proxy_to_engine();

/// Search-engine request processing + result transfer. This dominates the
/// end-to-end time of every system (Direct's median sits near 0.5 s).
[[nodiscard]] LinkModel engine_processing();

/// One hop of the volunteer Tor overlay: high median, heavy tail
/// (bandwidth-limited relays). Three hops each way plus exit->engine gave
/// the paper a 1.06 s median / ~3 s p99 search RTT.
[[nodiscard]] LinkModel tor_hop();

/// Client -> engine direct path.
[[nodiscard]] LinkModel client_to_engine();

}  // namespace links

/// Per-request service cost of a proxy's network/OS stack that the
/// in-process simulation does not otherwise execute (socket handling,
/// TLS record framing, scheduling). Used by the Figure 5 bench; values are
/// calibrated so saturation points land at the paper's orders of magnitude.
struct ServiceCostModel {
  Nanos cost_per_request = 0;

  /// Spin-waits the configured cost (busy CPU, like real packet work).
  void charge() const;
};

/// Calibrated per-request stack costs (see EXPERIMENTS.md, Figure 5).
namespace service_costs {
/// X-Search proxy: single enclave crossing + in-memory processing.
[[nodiscard]] ServiceCostModel xsearch_proxy();
/// PEAS: two proxy processes, store-and-forward, group decryption.
[[nodiscard]] ServiceCostModel peas_chain();
/// Tor: three bandwidth-limited volunteer relays.
[[nodiscard]] ServiceCostModel tor_circuit();
/// Stack cost by registered mechanism name ("xsearch", "peas", "tor");
/// mechanisms without an intermediary stack ("direct", "tmn") and unknown
/// names cost nothing.
[[nodiscard]] ServiceCostModel for_mechanism(std::string_view mechanism);
}  // namespace service_costs

/// WAN path composition by mechanism name, for user-perceived end-to-end
/// figures (Figure 7). The compute share of each request is *measured* by
/// the benches; only the wide-area hops and the engine's serving time are
/// modelled here.
namespace wan {
/// One query's WAN round trip for `mechanism` ("direct", "tmn", "tor",
/// "peas", "xsearch"), excluding client/proxy compute: every hop of the
/// mechanism's path plus the engine's processing share, which grows mildly
/// with the k+1 sub-queries of an OR query (§5.3.2 methodology).
[[nodiscard]] Nanos sample_search_rtt(std::string_view mechanism, std::size_t k,
                                      Rng& rng);
}  // namespace wan

/// Busy-waits for `duration` (coarse; intended for service-cost injection).
void busy_wait(Nanos duration);

}  // namespace xsearch::netsim
