// The switchless job ring: a bounded MPMC ring of fixed-size job slots that
// models the shared-memory request queue of an exitless ecall design (the
// `rpc_queue`-in-untrusted-memory idiom; cf. Intel's switchless calls).
//
// The ring lives in *untrusted* memory on purpose — that is what makes it
// exitless: host submitter threads enqueue without an enclave transition and
// persistent trusted workers (parked inside one long-running `run_workers`
// ecall each) dequeue without one. This does not grow the TCB: every payload
// crossing the ring is already AEAD-sealed end-to-end by the client channel,
// the slot carries only a one-byte typed EcallId (no code pointers, no
// format strings), and the trusted worker re-validates slot bounds and the
// job's cancellation state on pickup before touching anything. A host that
// corrupts the ring can lose or garble its *own* requests — which it could
// always do — not read or forge plaintext.
//
// Slot protocol is the classic bounded MPMC sequence ring (Vyukov): each
// slot carries a sequence atomic; a producer claims `enqueue_pos` by CAS
// when `seq == pos`, fills the slot, then publishes with `seq = pos + 1`;
// a consumer claims `dequeue_pos` when `seq == pos + 1` and recycles the
// slot with `seq = pos + depth`. The sequence stores are the only
// synchronization the payload fields need.
//
// Job completion is a separate heap block shared between the submitter and
// whichever worker picks the job up, because their lifetimes race: a
// submitter that sheds an expired job (or gives up and falls back to the
// 2-ecall path) walks away immediately, possibly before any worker has seen
// the slot. The `state` atomic arbitrates exactly-once execution: the
// submitter cancels with a kPending->kCancelled CAS, the worker claims with
// kPending->kPicked; whoever wins the CAS owns the outcome. Once a job is
// kPicked the submitter must wait for kDone — results land under the
// completion's mutex so the TSan-checked CondVar handoff is airtight.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "common/deadline.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "sgx/boundary.hpp"

namespace xsearch::sgx {

/// Shared completion record for one switchless job. See file comment for
/// the kPending -> {kPicked -> kDone | kCancelled} state machine.
struct JobCompletion {
  enum State : std::uint32_t {
    kPending = 0,    // in the ring, nobody committed to it yet
    kPicked = 1,     // a trusted worker owns it; submitter must await kDone
    kCancelled = 2,  // submitter shed it (deadline/patience); worker drops it
    kDone = 3,       // status/output are valid
  };

  std::atomic<std::uint32_t> state{kPending};

  // Result handoff. Written by the worker under `mutex` *before* the state
  // store to kDone (also under `mutex`, so the submitter's CondVar wait
  // cannot miss the wakeup), read by the submitter after observing kDone.
  Mutex mutex;
  CondVar done_cv;
  Status status XS_GUARDED_BY(mutex) = Status::ok();
  Bytes output XS_GUARDED_BY(mutex);
};

/// One job's payload as it rides the ring (and as a worker receives it).
struct Job {
  EcallId id = EcallId::kRequest;
  Bytes input;
  Deadline deadline;
  std::shared_ptr<JobCompletion> completion;
};

/// One ring slot. The non-atomic payload is published by the `seq` stores
/// (release on fill, acquire on claim) per the Vyukov protocol.
struct JobSlot {
  std::atomic<std::size_t> seq{0};
  Job job;
};

/// Bounded MPMC job ring. Depth is rounded up to a power of two so the
/// position-to-slot map is a mask, not a modulo.
class JobRing {
 public:
  explicit JobRing(std::size_t depth) {
    std::size_t rounded = 1;
    while (rounded < depth) rounded <<= 1;
    slots_ = std::make_unique<JobSlot[]>(rounded);
    for (std::size_t i = 0; i < rounded; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
    depth_ = rounded;
    mask_ = rounded - 1;
  }

  JobRing(const JobRing&) = delete;
  JobRing& operator=(const JobRing&) = delete;

  [[nodiscard]] std::size_t depth() const { return depth_; }

  /// Enqueues a job; returns false when the ring is full (backpressure —
  /// the caller falls back to a plain ecall).
  [[nodiscard]] bool try_enqueue(EcallId id, Bytes input, Deadline deadline,
                                 std::shared_ptr<JobCompletion> completion) {
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      JobSlot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          slot.job.id = id;
          slot.job.input = std::move(input);
          slot.job.deadline = deadline;
          slot.job.completion = std::move(completion);
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // the slot one lap back is still unconsumed: full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Dequeues the oldest job into `out`; returns false when empty. The
  /// slot's payload is moved out and the slot recycled before returning,
  /// so the ring never pins job memory past pickup.
  [[nodiscard]] bool try_dequeue(Job& out) {
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      JobSlot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          out = std::move(slot.job);
          slot.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

 private:
  std::unique_ptr<JobSlot[]> slots_;
  std::size_t depth_ = 0;
  std::size_t mask_ = 0;
  // Producer and consumer cursors on separate cache lines so submitter CAS
  // traffic does not false-share with worker CAS traffic.
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace xsearch::sgx
