// Simulated SGX enclave runtime.
//
// Models the pieces of the SGX programming model that X-Search's design and
// evaluation depend on (paper §2.3, §5.3.3):
//
//  * a *measurement* (hash of the enclave code) fixed at initialization —
//    the quantity remote attestation vouches for;
//  * an explicit *ecall/ocall boundary*: all data enters and leaves through
//    registered handlers, and every crossing is counted (transitions are the
//    paper's primary SGX overhead, hence its deliberately narrow interface
//    of 2 ecalls / 4 ocalls) — the surface is *typed*: handlers key on the
//    EcallId/OcallId enums pinned in sgx/boundary.hpp, and dispatch is an
//    array index, never a string lookup;
//  * an *exitless path*: a switchless job ring (sgx/job_ring.hpp) drained by
//    persistent trusted workers, each parked inside one long-running
//    `run_workers` ecall, so steady-state requests cross the boundary
//    without a transition and EnclaveStats-style ecall counts grow
//    sub-linearly in requests served;
//  * *EPC metering* of all enclave-resident state via EpcAccountant;
//  * *sealed storage*: AEAD encryption under a key derived from the
//    measurement, so only the same enclave code can unseal.
//
// What hardware SGX adds beyond this model — actual memory encryption and
// isolation enforcement — does not change control flow or capacity limits,
// which is what the reproduced figures measure (see DESIGN.md §2).
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/deadline.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "crypto/aead.hpp"
#include "crypto/sha256.hpp"
#include "sgx/boundary.hpp"
#include "sgx/epc.hpp"
#include "sgx/job_ring.hpp"

namespace xsearch::sgx {

using Measurement = crypto::Sha256Digest;

/// Counters for *real* enclave boundary crossings. Switchless ring jobs do
/// not count here — not crossing is what the exitless path is for — so
/// `ecalls` is the number the paper prices at ~8us each.
struct TransitionStats {
  std::uint64_t ecalls = 0;
  std::uint64_t ocalls = 0;
};

/// Tuning for the switchless job ring (see enclave.hpp file comment and
/// ARCHITECTURE.md "Switchless boundary").
struct SwitchlessOptions {
  /// Consumed by XSearchProxy::Options: submit queries through the ring
  /// instead of a per-request ecall. EnclaveRuntime itself keys off
  /// start_switchless()/stop_switchless(), not this flag.
  bool enabled = false;
  /// Ring capacity in job slots; rounded up to a power of two.
  std::size_t ring_depth = 64;
  /// Persistent in-enclave worker threads (each costs exactly one
  /// long-running `run_workers` ecall for its whole lifetime).
  std::size_t workers = 1;
  /// Empty ring polls a worker burns before parking on the doorbell.
  std::uint32_t spin_budget = 256;
  /// How long a submitter waits for a worker to pick its job up before it
  /// cancels the job and falls back to a plain ecall. Bounds the damage of
  /// parked/paused/saturated workers: traffic degrades to the 2-ecall path
  /// instead of hanging.
  Nanos pickup_patience = 2 * kMilli;
};

/// Switchless-path counters (monotonic, relaxed).
struct RingStats {
  std::uint64_t jobs_switchless = 0;   // completed through the ring
  std::uint64_t fallback_ecalls = 0;   // degraded to a plain ecall
  std::uint64_t ring_full_rejects = 0; // backpressure events (subset of above)
  std::uint64_t worker_parks = 0;
  std::uint64_t worker_wakeups = 0;
};

inline RingStats& operator+=(RingStats& a, const RingStats& b) {
  a.jobs_switchless += b.jobs_switchless;
  a.fallback_ecalls += b.fallback_ecalls;
  a.ring_full_rejects += b.ring_full_rejects;
  a.worker_parks += b.worker_parks;
  a.worker_wakeups += b.worker_wakeups;
  return a;
}

/// The deadline of the request currently executing trusted code on this
/// thread, visible to host-side ocall handlers (the proxy's `send` handler
/// sheds engine round trips whose budget is already gone). Default-infinite.
[[nodiscard]] Deadline host_request_deadline();

/// RAII save/restore of host_request_deadline() for the current thread.
/// Nesting-safe: submit()'s internal ecall fallback re-scopes inside a
/// caller's scope and restores the previous value on exit, not infinite.
class HostDeadlineScope {
 public:
  explicit HostDeadlineScope(Deadline deadline);
  ~HostDeadlineScope();

  HostDeadlineScope(const HostDeadlineScope&) = delete;
  HostDeadlineScope& operator=(const HostDeadlineScope&) = delete;

 private:
  Deadline previous_;
};

class EnclaveRuntime {
 public:
  struct Config {
    /// Bytes measured as the enclave's code identity (MRENCLAVE input).
    Bytes code_identity;
    std::size_t usable_epc_bytes = kDefaultUsableEpcBytes;
  };

  explicit EnclaveRuntime(Config config);
  ~EnclaveRuntime();

  EnclaveRuntime(const EnclaveRuntime&) = delete;
  EnclaveRuntime& operator=(const EnclaveRuntime&) = delete;

  /// The enclave's measurement hash (computed once at initialization).
  [[nodiscard]] const Measurement& measurement() const { return measurement_; }

  // --- Boundary ---------------------------------------------------------

  using Handler = std::function<Result<Bytes>(ByteSpan)>;

  /// Registers trusted code reachable from outside (an ecall entry point).
  void register_ecall(EcallId id, Handler handler);

  /// Registers untrusted host functionality the enclave may call out to.
  void register_ocall(OcallId id, Handler handler);

  /// Invokes an ecall; input/output are copied across the boundary and the
  /// transition counter advances. Unregistered slots yield NOT_FOUND.
  /// Dispatch indexes a fixed array under a shared lock only (the tables
  /// are written solely by register_*), so concurrent transitions never
  /// serialize on lookup — the boundary itself is not a contention point.
  [[nodiscard]] Result<Bytes> ecall(EcallId id, ByteSpan input);

  /// Invoked by trusted code to reach host services; counted separately.
  [[nodiscard]] Result<Bytes> ocall(OcallId id, ByteSpan input);

  /// Host-side destruction of the enclave (power event, EREMOVE, the host
  /// process dying under it). The enclave's volatile state is conceptually
  /// gone: every subsequent ecall fails with UNAVAILABLE — which is exactly
  /// what a fleet supervisor's heartbeat probe observes on a crashed worker.
  /// Only *sealed* state survives a crash; the recovery tests and the fig5
  /// kill-and-recover bench crash enclaves through this. Parked switchless
  /// workers wake and exit their run_workers ecall.
  void crash();
  [[nodiscard]] bool crashed() const {
    return crashed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] TransitionStats transition_stats() const;

  // --- Switchless (exitless) path ----------------------------------------

  /// Spawns `options.workers` persistent trusted workers, each entering the
  /// enclave once through a long-running `run_workers` ecall and polling
  /// the job ring until stop/crash. Idempotent restart: stops any previous
  /// worker set first.
  void start_switchless(SwitchlessOptions options);

  /// Signals workers, rings the doorbell, and joins them. Jobs still queued
  /// are never picked up; their submitters shed them via pickup_patience
  /// and fall back to a plain ecall. Safe to call repeatedly.
  void stop_switchless();

  /// Chaos hook: paused workers re-park without draining the ring, so
  /// in-flight submitters must degrade to the ecall path (fallback, not
  /// hang). Pausing QUIESCES: it returns only once every live worker is
  /// parked (a worker mid-poll-pass may drain one last job first), so
  /// after it returns no submit can ride the ring. Unpausing rings the
  /// doorbell and returns immediately.
  void pause_switchless(bool paused);

  [[nodiscard]] bool switchless_running() const {
    return switchless_running_.load(std::memory_order_acquire);
  }

  /// Submits a request to the exitless path, falling back to `ecall(id)`
  /// when the ring is not running or full, and shedding jobs whose deadline
  /// expires before any worker picks them up. The deadline is published to
  /// host_request_deadline() on whichever thread executes the handler.
  [[nodiscard]] Result<Bytes> submit(EcallId id, ByteSpan input,
                                     Deadline deadline = Deadline());

  [[nodiscard]] RingStats ring_stats() const;

  // --- Memory ------------------------------------------------------------

  [[nodiscard]] EpcAccountant& epc() { return epc_; }
  [[nodiscard]] const EpcAccountant& epc() const { return epc_; }

  // --- Sealing -----------------------------------------------------------

  /// Encrypts `plaintext` under the enclave's sealing key (derived from the
  /// measurement, like SGX's MRENCLAVE key policy). Output embeds a nonce.
  [[nodiscard]] Bytes seal(ByteSpan plaintext);

  /// Decrypts data sealed by an enclave with the same measurement.
  [[nodiscard]] Result<Bytes> unseal(ByteSpan sealed) const;

 private:
  /// Body of the long-running `run_workers` ecall: poll, execute, park.
  Result<Bytes> worker_loop();

  /// Runs one claimed job: CAS kPending->kPicked (drops jobs the submitter
  /// already shed), dispatches WITHOUT advancing ecall_count_ — the job
  /// entered through the ring, not a transition — and publishes the result.
  void execute_job(Job& job);

  /// Bumps the doorbell so parked workers re-check ring/stop/pause state.
  void ring_doorbell(bool wake_all);

  void stop_switchless_locked() XS_REQUIRES(lifecycle_mutex_);

  Measurement measurement_;
  crypto::AeadKey sealing_key_;
  EpcAccountant epc_;

  // Written only by register_* (exclusive); dispatch reads take a shared
  // lock and copy the handler out before invoking it outside the lock.
  // The ring pointer rides the same lock: submit()/worker_loop() copy the
  // shared_ptr out, so the ring is never freed under a concurrent user.
  mutable SharedMutex mutex_;
  std::array<Handler, kEcallCount> ecalls_ XS_GUARDED_BY(mutex_);
  std::array<Handler, kOcallCount> ocalls_ XS_GUARDED_BY(mutex_);
  std::shared_ptr<JobRing> ring_ XS_GUARDED_BY(mutex_);

  std::atomic<bool> crashed_{false};
  std::atomic<std::uint64_t> ecall_count_{0};
  std::atomic<std::uint64_t> ocall_count_{0};
  std::atomic<std::uint64_t> seal_counter_{0};

  // Switchless lifecycle. start/stop serialize on lifecycle_mutex_; the
  // hot path only touches the atomics and the doorbell.
  Mutex lifecycle_mutex_;
  std::vector<std::thread> worker_threads_ XS_GUARDED_BY(lifecycle_mutex_);
  SwitchlessOptions switchless_options_;  // workers copy it at thread start
  // Hot-path copy of pickup_patience: submitters may race a restart's
  // rewrite of switchless_options_, so they read this atomic instead.
  std::atomic<Nanos> pickup_patience_ns_{2 * kMilli};
  std::atomic<bool> switchless_running_{false};
  std::atomic<bool> stop_workers_{false};
  std::atomic<bool> paused_{false};

  // Doorbell: submitters bump ticks after enqueue; workers record ticks
  // before their empty-poll pass and park only while nothing changed, so
  // the classic missed-wakeup race cannot happen.
  Mutex bell_mutex_;
  CondVar bell_cv_;
  std::uint64_t bell_ticks_ XS_GUARDED_BY(bell_mutex_) = 0;

  std::atomic<std::uint64_t> jobs_switchless_{0};
  std::atomic<std::uint64_t> fallback_ecalls_{0};
  std::atomic<std::uint64_t> ring_full_rejects_{0};
  std::atomic<std::uint64_t> worker_parks_{0};
  std::atomic<std::uint64_t> worker_wakeups_{0};
  // Gauge (not a counter): workers currently parked on the doorbell.
  // pause_switchless(true) waits on it to quiesce the poll crews.
  std::atomic<std::size_t> parked_now_{0};
};

/// STL-compatible allocator charging an EpcAccountant, so containers owned
/// by enclave code are metered automatically.
template <typename T>
class EnclaveAllocator {
 public:
  using value_type = T;

  explicit EnclaveAllocator(EpcAccountant* epc) noexcept : epc_(epc) {}
  template <typename U>
  EnclaveAllocator(const EnclaveAllocator<U>& other) noexcept : epc_(other.epc()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    epc_->charge(n * sizeof(T));
    return std::allocator<T>().allocate(n);
  }

  void deallocate(T* p, std::size_t n) noexcept {
    epc_->release(n * sizeof(T));
    std::allocator<T>().deallocate(p, n);
  }

  [[nodiscard]] EpcAccountant* epc() const noexcept { return epc_; }

  friend bool operator==(const EnclaveAllocator& a, const EnclaveAllocator& b) {
    return a.epc_ == b.epc_;
  }

 private:
  EpcAccountant* epc_;
};

}  // namespace xsearch::sgx
