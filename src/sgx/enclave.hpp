// Simulated SGX enclave runtime.
//
// Models the pieces of the SGX programming model that X-Search's design and
// evaluation depend on (paper §2.3, §5.3.3):
//
//  * a *measurement* (hash of the enclave code) fixed at initialization —
//    the quantity remote attestation vouches for;
//  * an explicit *ecall/ocall boundary*: all data enters and leaves through
//    registered handlers, and every crossing is counted (transitions are the
//    paper's primary SGX overhead, hence its deliberately narrow interface
//    of 2 ecalls / 4 ocalls);
//  * *EPC metering* of all enclave-resident state via EpcAccountant;
//  * *sealed storage*: AEAD encryption under a key derived from the
//    measurement, so only the same enclave code can unseal.
//
// What hardware SGX adds beyond this model — actual memory encryption and
// isolation enforcement — does not change control flow or capacity limits,
// which is what the reproduced figures measure (see DESIGN.md §2).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/hash.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "crypto/aead.hpp"
#include "crypto/sha256.hpp"
#include "sgx/epc.hpp"

namespace xsearch::sgx {

using Measurement = crypto::Sha256Digest;

/// Counters for enclave boundary crossings.
struct TransitionStats {
  std::uint64_t ecalls = 0;
  std::uint64_t ocalls = 0;
};

class EnclaveRuntime {
 public:
  struct Config {
    /// Bytes measured as the enclave's code identity (MRENCLAVE input).
    Bytes code_identity;
    std::size_t usable_epc_bytes = kDefaultUsableEpcBytes;
  };

  explicit EnclaveRuntime(Config config);

  EnclaveRuntime(const EnclaveRuntime&) = delete;
  EnclaveRuntime& operator=(const EnclaveRuntime&) = delete;

  /// The enclave's measurement hash (computed once at initialization).
  [[nodiscard]] const Measurement& measurement() const { return measurement_; }

  // --- Boundary ---------------------------------------------------------

  using Handler = std::function<Result<Bytes>(ByteSpan)>;

  /// Registers trusted code reachable from outside (an ecall entry point).
  void register_ecall(std::string name, Handler handler);

  /// Registers untrusted host functionality the enclave may call out to.
  void register_ocall(std::string name, Handler handler);

  /// Invokes an ecall; input/output are copied across the boundary and the
  /// transition counter advances. Unknown names yield NOT_FOUND.
  /// Dispatch takes a shared lock only (handler tables are written solely
  /// by register_*), so concurrent transitions never serialize on lookup —
  /// the boundary itself is not a contention point.
  [[nodiscard]] Result<Bytes> ecall(std::string_view name, ByteSpan input);

  /// Host-side destruction of the enclave (power event, EREMOVE, the host
  /// process dying under it). The enclave's volatile state is conceptually
  /// gone: every subsequent ecall fails with UNAVAILABLE — which is exactly
  /// what a fleet supervisor's heartbeat probe observes on a crashed worker.
  /// Only *sealed* state survives a crash; the recovery tests and the fig5
  /// kill-and-recover bench crash enclaves through this.
  void crash();
  [[nodiscard]] bool crashed() const {
    return crashed_.load(std::memory_order_acquire);
  }

  /// Invoked by trusted code to reach host services; counted separately.
  [[nodiscard]] Result<Bytes> ocall(std::string_view name, ByteSpan input);

  [[nodiscard]] TransitionStats transition_stats() const;

  // --- Memory ------------------------------------------------------------

  [[nodiscard]] EpcAccountant& epc() { return epc_; }
  [[nodiscard]] const EpcAccountant& epc() const { return epc_; }

  // --- Sealing -----------------------------------------------------------

  /// Encrypts `plaintext` under the enclave's sealing key (derived from the
  /// measurement, like SGX's MRENCLAVE key policy). Output embeds a nonce.
  [[nodiscard]] Bytes seal(ByteSpan plaintext);

  /// Decrypts data sealed by an enclave with the same measurement.
  [[nodiscard]] Result<Bytes> unseal(ByteSpan sealed) const;

 private:
  Measurement measurement_;
  crypto::AeadKey sealing_key_;
  EpcAccountant epc_;

  using HandlerMap =
      std::unordered_map<std::string, Handler, StringHash, std::equal_to<>>;

  // Written only by register_* (exclusive); dispatch reads take a shared
  // lock and copy the handler out before invoking it outside the lock.
  mutable SharedMutex mutex_;
  HandlerMap ecalls_ XS_GUARDED_BY(mutex_);
  HandlerMap ocalls_ XS_GUARDED_BY(mutex_);
  std::atomic<bool> crashed_{false};
  std::atomic<std::uint64_t> ecall_count_{0};
  std::atomic<std::uint64_t> ocall_count_{0};
  std::atomic<std::uint64_t> seal_counter_{0};
};

/// STL-compatible allocator charging an EpcAccountant, so containers owned
/// by enclave code are metered automatically.
template <typename T>
class EnclaveAllocator {
 public:
  using value_type = T;

  explicit EnclaveAllocator(EpcAccountant* epc) noexcept : epc_(epc) {}
  template <typename U>
  EnclaveAllocator(const EnclaveAllocator<U>& other) noexcept : epc_(other.epc()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    epc_->charge(n * sizeof(T));
    return std::allocator<T>().allocate(n);
  }

  void deallocate(T* p, std::size_t n) noexcept {
    epc_->release(n * sizeof(T));
    std::allocator<T>().deallocate(p, n);
  }

  [[nodiscard]] EpcAccountant* epc() const noexcept { return epc_; }

  friend bool operator==(const EnclaveAllocator& a, const EnclaveAllocator& b) {
    return a.epc_ == b.epc_;
  }

 private:
  EpcAccountant* epc_;
};

}  // namespace xsearch::sgx
