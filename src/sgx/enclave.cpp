#include "sgx/enclave.hpp"

#include <cstring>

#include "crypto/hmac.hpp"

namespace xsearch::sgx {

namespace {
constexpr char kSealingInfo[] = "sgx-sealing-key-mrenclave-v1";
constexpr std::uint32_t kSealNoncePrefix = 0x5345414c;  // "SEAL"
}  // namespace

EnclaveRuntime::EnclaveRuntime(Config config)
    : measurement_(crypto::Sha256::hash(config.code_identity)),
      epc_(config.usable_epc_bytes) {
  // Sealing key: HKDF(measurement) — the simulation analogue of the
  // MRENCLAVE-policy EGETKEY derivation. slice() keeps the key secret-typed
  // end to end (no raw staging buffer exists).
  sealing_key_ = crypto::hkdf(/*salt=*/{}, measurement_, to_bytes(kSealingInfo),
                              crypto::kAeadKeySize)
                     .slice<crypto::kAeadKeySize>();
}

void EnclaveRuntime::register_ecall(std::string name, Handler handler) {
  WriterLock lock(mutex_);
  ecalls_[std::move(name)] = std::move(handler);
}

void EnclaveRuntime::register_ocall(std::string name, Handler handler) {
  WriterLock lock(mutex_);
  ocalls_[std::move(name)] = std::move(handler);
}

void EnclaveRuntime::crash() { crashed_.store(true, std::memory_order_release); }

Result<Bytes> EnclaveRuntime::ecall(std::string_view name, ByteSpan input) {
  if (crashed_.load(std::memory_order_acquire)) {
    return unavailable("enclave crashed: no trusted code is running");
  }
  Handler handler;
  {
    ReaderLock lock(mutex_);
    const auto it = ecalls_.find(name);  // transparent: no temporary string
    if (it == ecalls_.end()) {
      return not_found("unknown ecall: " + std::string(name));
    }
    handler = it->second;
  }
  ecall_count_.fetch_add(1, std::memory_order_relaxed);
  // Parameters are copied into enclave memory at the boundary; the copy is
  // implicit in the ByteSpan-to-Bytes conversions done by handlers.
  return handler(input);
}

Result<Bytes> EnclaveRuntime::ocall(std::string_view name, ByteSpan input) {
  Handler handler;
  {
    ReaderLock lock(mutex_);
    const auto it = ocalls_.find(name);  // transparent: no temporary string
    if (it == ocalls_.end()) {
      return not_found("unknown ocall: " + std::string(name));
    }
    handler = it->second;
  }
  ocall_count_.fetch_add(1, std::memory_order_relaxed);
  return handler(input);
}

TransitionStats EnclaveRuntime::transition_stats() const {
  return TransitionStats{ecall_count_.load(std::memory_order_relaxed),
                         ocall_count_.load(std::memory_order_relaxed)};
}

Bytes EnclaveRuntime::seal(ByteSpan plaintext) {
  const std::uint64_t counter = seal_counter_.fetch_add(1, std::memory_order_relaxed);
  const crypto::AeadNonce nonce = crypto::make_nonce(kSealNoncePrefix, counter);
  Bytes out(nonce.begin(), nonce.end());
  const Bytes sealed = crypto::aead_seal(sealing_key_, nonce, measurement_, plaintext);
  append(out, sealed);
  return out;
}

Result<Bytes> EnclaveRuntime::unseal(ByteSpan sealed) const {
  if (sealed.size() < crypto::kAeadNonceSize + crypto::kAeadTagSize) {
    return invalid_argument("sealed blob too short");
  }
  crypto::AeadNonce nonce;
  std::memcpy(nonce.data(), sealed.data(), nonce.size());
  auto plain = crypto::aead_open(sealing_key_, nonce, measurement_,
                                 sealed.subspan(nonce.size()));
  if (!plain) {
    return permission_denied("unseal failed: wrong enclave measurement or tampering");
  }
  return *std::move(plain);
}

}  // namespace xsearch::sgx
