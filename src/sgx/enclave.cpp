#include "sgx/enclave.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "crypto/hmac.hpp"

namespace xsearch::sgx {

namespace {
constexpr char kSealingInfo[] = "sgx-sealing-key-mrenclave-v1";
constexpr std::uint32_t kSealNoncePrefix = 0x5345414c;  // "SEAL"

// Submitter-side wait tuning: a short yield burst (the common case on a
// loaded box is sub-microsecond pickup) before dropping to a coarse sleep
// so a parked-worker stall does not burn a core for the whole
// pickup_patience window.
constexpr std::uint32_t kSubmitYieldBurst = 64;
constexpr std::chrono::microseconds kSubmitNap(50);

thread_local Deadline t_host_request_deadline;  // default: infinite
}  // namespace

Deadline host_request_deadline() { return t_host_request_deadline; }

HostDeadlineScope::HostDeadlineScope(Deadline deadline)
    : previous_(t_host_request_deadline) {
  t_host_request_deadline = deadline;
}

HostDeadlineScope::~HostDeadlineScope() {
  t_host_request_deadline = previous_;
}

EnclaveRuntime::EnclaveRuntime(Config config)
    : measurement_(crypto::Sha256::hash(config.code_identity)),
      epc_(config.usable_epc_bytes) {
  // Sealing key: HKDF(measurement) — the simulation analogue of the
  // MRENCLAVE-policy EGETKEY derivation. slice() keeps the key secret-typed
  // end to end (no raw staging buffer exists).
  sealing_key_ = crypto::hkdf(/*salt=*/{}, measurement_, to_bytes(kSealingInfo),
                              crypto::kAeadKeySize)
                     .slice<crypto::kAeadKeySize>();
  // The run_workers entry is part of the runtime, not application code: it
  // parks a switchless worker in the enclave until stop/crash.
  WriterLock lock(mutex_);
  ecalls_[index_of(EcallId::kRunWorkers)] = [this](ByteSpan) {
    return worker_loop();
  };
}

EnclaveRuntime::~EnclaveRuntime() { stop_switchless(); }

void EnclaveRuntime::register_ecall(EcallId id, Handler handler) {
  WriterLock lock(mutex_);
  ecalls_[index_of(id)] = std::move(handler);
}

void EnclaveRuntime::register_ocall(OcallId id, Handler handler) {
  WriterLock lock(mutex_);
  ocalls_[index_of(id)] = std::move(handler);
}

void EnclaveRuntime::crash() {
  crashed_.store(true, std::memory_order_release);
  // Parked workers must notice and exit their run_workers ecall.
  ring_doorbell(/*wake_all=*/true);
}

Result<Bytes> EnclaveRuntime::ecall(EcallId id, ByteSpan input) {
  if (crashed_.load(std::memory_order_acquire)) {
    return unavailable("enclave crashed: no trusted code is running");
  }
  Handler handler;
  {
    ReaderLock lock(mutex_);
    handler = ecalls_[index_of(id)];
  }
  if (!handler) {
    return not_found("unregistered ecall: " + std::string(ecall_name(id)));
  }
  ecall_count_.fetch_add(1, std::memory_order_relaxed);
  // Parameters are copied into enclave memory at the boundary; the copy is
  // implicit in the ByteSpan-to-Bytes conversions done by handlers.
  return handler(input);
}

Result<Bytes> EnclaveRuntime::ocall(OcallId id, ByteSpan input) {
  Handler handler;
  {
    ReaderLock lock(mutex_);
    handler = ocalls_[index_of(id)];
  }
  if (!handler) {
    return not_found("unregistered ocall: " + std::string(ocall_name(id)));
  }
  ocall_count_.fetch_add(1, std::memory_order_relaxed);
  return handler(input);
}

TransitionStats EnclaveRuntime::transition_stats() const {
  return TransitionStats{ecall_count_.load(std::memory_order_relaxed),
                         ocall_count_.load(std::memory_order_relaxed)};
}

// --- Switchless path ---------------------------------------------------------

void EnclaveRuntime::ring_doorbell(bool wake_all) {
  {
    MutexLock lock(bell_mutex_);
    ++bell_ticks_;
  }
  if (wake_all) {
    bell_cv_.notify_all();
  } else {
    bell_cv_.notify_one();
  }
}

void EnclaveRuntime::start_switchless(SwitchlessOptions options) {
  MutexLock lifecycle(lifecycle_mutex_);
  stop_switchless_locked();
  if (crashed()) return;
  if (options.ring_depth == 0) options.ring_depth = 1;
  if (options.workers == 0) options.workers = 1;
  {
    WriterLock lock(mutex_);
    ring_ = std::make_shared<JobRing>(options.ring_depth);
  }
  switchless_options_ = options;
  pickup_patience_ns_.store(options.pickup_patience, std::memory_order_relaxed);
  stop_workers_.store(false, std::memory_order_release);
  paused_.store(false, std::memory_order_release);
  switchless_running_.store(true, std::memory_order_release);
  worker_threads_.reserve(options.workers);
  for (std::size_t i = 0; i < options.workers; ++i) {
    // Each worker is ONE long-running ecall for its whole lifetime: this is
    // the only transition the exitless path ever pays per worker.
    worker_threads_.emplace_back(
        [this] { (void)ecall(EcallId::kRunWorkers, ByteSpan()); });
  }
}

void EnclaveRuntime::stop_switchless() {
  MutexLock lifecycle(lifecycle_mutex_);
  stop_switchless_locked();
}

void EnclaveRuntime::stop_switchless_locked() {
  switchless_running_.store(false, std::memory_order_release);
  stop_workers_.store(true, std::memory_order_release);
  ring_doorbell(/*wake_all=*/true);
  for (auto& thread : worker_threads_) {
    if (thread.joinable()) thread.join();
  }
  worker_threads_.clear();
  // ring_ stays allocated: a concurrent submitter may still hold a
  // reference; its jobs are simply never picked up and it falls back.
}

void EnclaveRuntime::pause_switchless(bool paused) {
  paused_.store(paused, std::memory_order_release);
  ring_doorbell(/*wake_all=*/true);
  if (!paused) return;
  // Quiesce: a worker mid-poll-pass has not observed the flag yet and may
  // drain one more job. Wait until every live worker is parked — the flag
  // is doorbell-synchronized, so once parked under pause a worker can only
  // re-park, never poll. stop/crash empty the crew and end the wait.
  MutexLock lifecycle(lifecycle_mutex_);
  const std::size_t crew = worker_threads_.size();
  while (switchless_running() && !crashed() &&
         parked_now_.load(std::memory_order_acquire) < crew) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

RingStats EnclaveRuntime::ring_stats() const {
  RingStats stats;
  stats.jobs_switchless = jobs_switchless_.load(std::memory_order_relaxed);
  stats.fallback_ecalls = fallback_ecalls_.load(std::memory_order_relaxed);
  stats.ring_full_rejects = ring_full_rejects_.load(std::memory_order_relaxed);
  stats.worker_parks = worker_parks_.load(std::memory_order_relaxed);
  stats.worker_wakeups = worker_wakeups_.load(std::memory_order_relaxed);
  return stats;
}

Result<Bytes> EnclaveRuntime::worker_loop() {
  std::shared_ptr<JobRing> ring;
  {
    ReaderLock lock(mutex_);
    ring = ring_;
  }
  if (!ring) return Bytes{};
  // Copied once at worker start (ordered by thread creation), so a later
  // restart rewriting switchless_options_ cannot race this worker.
  const std::uint32_t spin_budget = switchless_options_.spin_budget;
  for (;;) {
    if (stop_workers_.load(std::memory_order_acquire) || crashed()) {
      return Bytes{};
    }
    // Record the doorbell BEFORE the empty-poll pass: an enqueue that lands
    // after a failed poll necessarily bumps the ticks we compare against,
    // so parking below can never miss it.
    std::uint64_t seen;
    {
      MutexLock lock(bell_mutex_);
      seen = bell_ticks_;
    }
    if (!paused_.load(std::memory_order_acquire)) {
      bool executed = false;
      for (std::uint32_t spin = 0; spin <= spin_budget; ++spin) {
        Job job;
        if (ring->try_dequeue(job)) {
          execute_job(job);
          executed = true;
          break;
        }
        std::this_thread::yield();
      }
      if (executed) continue;
    }
    // Spin budget exhausted (or paused): park until the doorbell moves.
    bool parked = false;
    {
      MutexLock lock(bell_mutex_);
      while (bell_ticks_ == seen &&
             !stop_workers_.load(std::memory_order_acquire) && !crashed()) {
        if (!parked) {
          parked = true;
          worker_parks_.fetch_add(1, std::memory_order_relaxed);
          parked_now_.fetch_add(1, std::memory_order_release);
        }
        bell_cv_.wait(bell_mutex_);
      }
    }
    if (parked) {
      parked_now_.fetch_sub(1, std::memory_order_release);
      worker_wakeups_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void EnclaveRuntime::execute_job(Job& job) {
  const std::shared_ptr<JobCompletion> completion = std::move(job.completion);
  if (!completion) return;
  std::uint32_t expected = JobCompletion::kPending;
  if (!completion->state.compare_exchange_strong(expected,
                                                 JobCompletion::kPicked,
                                                 std::memory_order_acq_rel)) {
    return;  // submitter already shed it (deadline or fallback): drop
  }
  Handler handler;
  {
    ReaderLock lock(mutex_);
    handler = ecalls_[index_of(job.id)];
  }
  Result<Bytes> result = [&]() -> Result<Bytes> {
    if (crashed()) {
      return unavailable("enclave crashed: no trusted code is running");
    }
    if (!handler) {
      return not_found("unregistered ecall: " +
                       std::string(ecall_name(job.id)));
    }
    // Publish the job's deadline to host-side ocall handlers on THIS
    // thread (the submitter's thread-local is invisible here). Note: no
    // ecall_count_ bump — the job entered through the ring, not a
    // transition; that is the exitless win transition_stats() reports.
    HostDeadlineScope scope(job.deadline);
    return handler(ByteSpan(job.input));
  }();
  {
    MutexLock lock(completion->mutex);
    if (result.is_ok()) {
      completion->output = std::move(result).value();
    } else {
      completion->status = result.status();
    }
    // State store + notify under the mutex so the submitter's CondVar wait
    // (which checks state under the same mutex) cannot miss the wakeup.
    completion->state.store(JobCompletion::kDone, std::memory_order_release);
    completion->done_cv.notify_all();
  }
}

Result<Bytes> EnclaveRuntime::submit(EcallId id, ByteSpan input,
                                     Deadline deadline) {
  if (crashed()) {
    return unavailable("enclave crashed: no trusted code is running");
  }
  if (deadline.expired()) {
    return deadline_exceeded("deadline expired before submission: job shed");
  }
  if (!switchless_running()) {
    fallback_ecalls_.fetch_add(1, std::memory_order_relaxed);
    HostDeadlineScope scope(deadline);
    return ecall(id, input);
  }
  std::shared_ptr<JobRing> ring;
  {
    ReaderLock lock(mutex_);
    ring = ring_;
  }
  auto completion = std::make_shared<JobCompletion>();
  if (!ring ||
      !ring->try_enqueue(id, Bytes(input.begin(), input.end()), deadline,
                         completion)) {
    // Backpressure: a full ring means the workers are saturated; adding a
    // transition is cheaper than queueing unboundedly.
    ring_full_rejects_.fetch_add(1, std::memory_order_relaxed);
    fallback_ecalls_.fetch_add(1, std::memory_order_relaxed);
    HostDeadlineScope scope(deadline);
    return ecall(id, input);
  }
  ring_doorbell(/*wake_all=*/false);

  // Await pickup. The submitter owns the job until a worker's
  // kPending->kPicked CAS wins; until then it may still shed (deadline) or
  // reclaim (patience) the job with a kPending->kCancelled CAS and walk
  // away — the shared completion block keeps the loser's pointer valid.
  const Deadline patience =
      Deadline::after(pickup_patience_ns_.load(std::memory_order_relaxed))
          .min(deadline);
  std::uint32_t state = completion->state.load(std::memory_order_acquire);
  std::uint32_t spins = 0;
  while (state == JobCompletion::kPending) {
    if (deadline.expired()) {
      std::uint32_t expected = JobCompletion::kPending;
      if (completion->state.compare_exchange_strong(
              expected, JobCompletion::kCancelled,
              std::memory_order_acq_rel)) {
        return deadline_exceeded(
            "deadline expired before enclave pickup: job shed");
      }
      state = expected;  // a worker won the race: it owns the job now
      continue;
    }
    if (patience.expired()) {
      std::uint32_t expected = JobCompletion::kPending;
      if (completion->state.compare_exchange_strong(
              expected, JobCompletion::kCancelled,
              std::memory_order_acq_rel)) {
        // Workers parked/paused/wedged: degrade to the 2-ecall path.
        fallback_ecalls_.fetch_add(1, std::memory_order_relaxed);
        HostDeadlineScope scope(deadline);
        return ecall(id, input);
      }
      state = expected;
      continue;
    }
    if (++spins <= kSubmitYieldBurst) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(kSubmitNap);
    }
    state = completion->state.load(std::memory_order_acquire);
  }

  // Picked: the worker owns the slot's input and WILL publish a result;
  // waiting untimed here is what keeps the shared state machine simple.
  Status status;
  Bytes output;
  {
    MutexLock lock(completion->mutex);
    while (completion->state.load(std::memory_order_acquire) !=
           JobCompletion::kDone) {
      completion->done_cv.wait(completion->mutex);
    }
    status = std::move(completion->status);
    output = std::move(completion->output);
  }
  jobs_switchless_.fetch_add(1, std::memory_order_relaxed);
  if (!status.is_ok()) return status;
  return output;
}

// --- Sealing -----------------------------------------------------------------

Bytes EnclaveRuntime::seal(ByteSpan plaintext) {
  const std::uint64_t counter = seal_counter_.fetch_add(1, std::memory_order_relaxed);
  const crypto::AeadNonce nonce = crypto::make_nonce(kSealNoncePrefix, counter);
  Bytes out(nonce.begin(), nonce.end());
  const Bytes sealed = crypto::aead_seal(sealing_key_, nonce, measurement_, plaintext);
  append(out, sealed);
  return out;
}

Result<Bytes> EnclaveRuntime::unseal(ByteSpan sealed) const {
  if (sealed.size() < crypto::kAeadNonceSize + crypto::kAeadTagSize) {
    return invalid_argument("sealed blob too short");
  }
  crypto::AeadNonce nonce;
  std::memcpy(nonce.data(), sealed.data(), nonce.size());
  auto plain = crypto::aead_open(sealing_key_, nonce, measurement_,
                                 sealed.subspan(nonce.size()));
  if (!plain) {
    return permission_denied("unseal failed: wrong enclave measurement or tampering");
  }
  return *std::move(plain);
}

}  // namespace xsearch::sgx
