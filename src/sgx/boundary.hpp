// The typed enclave-boundary table.
//
// The paper's design rule is a deliberately *narrow* interface: 2 ecalls in,
// 4 ocalls out (§5.3.3). This header pins that surface as enums with a
// compile-time-sized name table, so:
//
//  * dispatch is an array index, not a string hash — ring slots on the
//    exitless path (see enclave.hpp) carry a one-byte id;
//  * the surface cannot drift silently: tools/tcb_lint.py cross-checks the
//    name arrays below against the pinned lists in tools/tcb_boundary.toml,
//    and adding an enumerator without updating the toml fails CI;
//  * call sites read as what they are (`ecall(EcallId::kRequest, ...)`),
//    and an id outside the table is unrepresentable rather than NOT_FOUND
//    at runtime.
//
// `kRunWorkers` is the one addition over the paper's 2-ecall surface: the
// long-running entry that parks persistent trusted workers inside the
// enclave for the switchless job ring. It is entered once per worker at
// startup, so it does not change the per-request crossing count — that is
// the whole point.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace xsearch::sgx {

/// Trusted entry points reachable from the untrusted host.
enum class EcallId : std::uint8_t {
  kInit = 0,        // one-time enclave state bootstrap (+ checkpoint restore)
  kRequest = 1,     // tagged request mux: handshake/query/heartbeat/checkpoint
  kRunWorkers = 2,  // long-running: parks a switchless worker in the enclave
};

/// Untrusted host services the enclave may call out to.
enum class OcallId : std::uint8_t {
  kSockConnect = 0,
  kSend = 1,
  kRecv = 2,
  kClose = 3,
};

inline constexpr std::size_t kEcallCount = 3;
inline constexpr std::size_t kOcallCount = 4;

/// Wire/debug names, indexed by enumerator value. Must match [boundary] in
/// tools/tcb_boundary.toml entry-for-entry (tcb_lint.py enforces this).
inline constexpr std::array<std::string_view, kEcallCount> kEcallNames = {
    "init", "request", "run_workers"};
inline constexpr std::array<std::string_view, kOcallCount> kOcallNames = {
    "sock_connect", "send", "recv", "close"};

[[nodiscard]] constexpr std::size_t index_of(EcallId id) {
  return static_cast<std::size_t>(id);
}
[[nodiscard]] constexpr std::size_t index_of(OcallId id) {
  return static_cast<std::size_t>(id);
}

[[nodiscard]] constexpr std::string_view ecall_name(EcallId id) {
  return kEcallNames[index_of(id)];
}
[[nodiscard]] constexpr std::string_view ocall_name(OcallId id) {
  return kOcallNames[index_of(id)];
}

}  // namespace xsearch::sgx
