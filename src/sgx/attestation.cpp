#include "sgx/attestation.hpp"

#include <cstring>

#include "crypto/hmac.hpp"

namespace xsearch::sgx {

namespace {
Bytes mac_input(const Measurement& measurement, ByteSpan report_data) {
  Bytes data;
  data.reserve(measurement.size() + report_data.size());
  append(data, measurement);
  append(data, report_data);
  return data;
}
}  // namespace

Bytes Quote::serialize() const {
  Bytes out;
  out.reserve(measurement.size() + 4 + report_data.size() + mac.size());
  append(out, measurement);
  std::uint8_t len[4];
  store_be32(len, static_cast<std::uint32_t>(report_data.size()));
  append(out, ByteSpan(len, 4));
  append(out, report_data);
  append(out, mac);
  return out;
}

Result<Quote> Quote::deserialize(ByteSpan raw) {
  constexpr std::size_t kFixed = crypto::kSha256DigestSize + 4 + crypto::kSha256DigestSize;
  if (raw.size() < kFixed) return invalid_argument("quote too short");
  Quote q;
  std::memcpy(q.measurement.data(), raw.data(), q.measurement.size());
  const std::uint32_t len = load_be32(raw.data() + q.measurement.size());
  const std::size_t expected = kFixed + len;
  if (raw.size() != expected) return invalid_argument("quote length mismatch");
  const auto* data_start = raw.data() + q.measurement.size() + 4;
  q.report_data.assign(data_start, data_start + len);
  std::memcpy(q.mac.data(), data_start + len, q.mac.size());
  return q;
}

Quote AttestationAuthority::issue(const Measurement& measurement,
                                  ByteSpan report_data) const {
  Quote quote;
  quote.measurement = measurement;
  quote.report_data.assign(report_data.begin(), report_data.end());
  quote.mac = crypto::hmac_sha256(root_key_.expose(SecretSink::kCipherCore),
                                  mac_input(measurement, report_data));
  return quote;
}

bool AttestationAuthority::verify(const Quote& quote) const {
  const auto expected =
      crypto::hmac_sha256(root_key_.expose(SecretSink::kCipherCore),
                          mac_input(quote.measurement, quote.report_data));
  return constant_time_equal(expected, quote.mac);
}

Status AttestationAuthority::verify_enclave(const Quote& quote,
                                            const Measurement& expected) const {
  if (!verify(quote)) {
    return permission_denied("attestation: quote MAC invalid (forged or modified)");
  }
  if (!constant_time_equal(quote.measurement, expected)) {
    return permission_denied(
        "attestation: measurement mismatch (unexpected enclave code)");
  }
  return Status::ok();
}

Quote quote_channel_key(const AttestationAuthority& authority,
                        const EnclaveRuntime& enclave,
                        const crypto::X25519Key& channel_public_key) {
  return authority.issue(enclave.measurement(), channel_public_key);
}

Result<crypto::X25519Key> verify_and_extract_channel_key(
    const AttestationAuthority& authority, const Quote& quote,
    const Measurement& expected_measurement) {
  XS_RETURN_IF_ERROR(authority.verify_enclave(quote, expected_measurement));
  if (quote.report_data.size() != crypto::kX25519KeySize) {
    return invalid_argument("attestation: report data is not a channel key");
  }
  crypto::X25519Key key;
  std::memcpy(key.data(), quote.report_data.data(), key.size());
  return key;
}

}  // namespace xsearch::sgx
