#include "sgx/epc.hpp"

namespace xsearch::sgx {

void EpcAccountant::charge(std::size_t bytes) {
  const std::size_t before = in_use_.fetch_add(bytes, std::memory_order_relaxed);
  const std::size_t after = before + bytes;

  // Maintain the high-water mark.
  std::size_t seen = peak_.load(std::memory_order_relaxed);
  while (after > seen &&
         !peak_.compare_exchange_weak(seen, after, std::memory_order_relaxed)) {
  }

  // Pages newly pushed beyond the usable limit count as faults.
  if (after > limit_) {
    const std::size_t over_before = before > limit_ ? before - limit_ : 0;
    const std::size_t over_after = after - limit_;
    const std::uint64_t pages_before = over_before / kEpcPageSize;
    const std::uint64_t pages_after =
        (over_after + kEpcPageSize - 1) / kEpcPageSize;
    if (pages_after > pages_before) {
      page_faults_.fetch_add(pages_after - pages_before, std::memory_order_relaxed);
    }
  }
}

void EpcAccountant::release(std::size_t bytes) {
  std::size_t current = in_use_.load(std::memory_order_relaxed);
  std::size_t desired;
  do {
    desired = current >= bytes ? current - bytes : 0;
  } while (!in_use_.compare_exchange_weak(current, desired, std::memory_order_relaxed));
}

}  // namespace xsearch::sgx
