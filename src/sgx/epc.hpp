// Enclave Page Cache (EPC) accounting.
//
// On real SGX hardware all enclaves share ~128 MiB of protected memory of
// which ~90 MiB is usable by a single enclave (paper §2.3); exceeding it
// does not fail allocations but triggers costly encrypted paging handled by
// the untrusted OS. The simulation reproduces exactly those semantics: an
// EpcAccountant meters every enclave-resident byte, reports the usable
// limit, and counts page-ins once usage crosses it — the quantity plotted
// in Figure 6.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace xsearch::sgx {

/// Usable per-enclave EPC assumed by the paper (~90 MB).
inline constexpr std::size_t kDefaultUsableEpcBytes = 90ull * 1024 * 1024;

/// SGX page granularity.
inline constexpr std::size_t kEpcPageSize = 4096;

/// Thread-safe byte accounting against the EPC budget.
class EpcAccountant {
 public:
  explicit EpcAccountant(std::size_t usable_bytes = kDefaultUsableEpcBytes)
      : limit_(usable_bytes) {}

  /// Records an allocation of `bytes` inside the enclave.
  void charge(std::size_t bytes);

  /// Records a deallocation. Releasing more than charged is a programming
  /// error and clamps at zero.
  void release(std::size_t bytes);

  [[nodiscard]] std::size_t in_use() const {
    return in_use_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t peak() const {
    return peak_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t limit() const { return limit_; }
  [[nodiscard]] bool over_limit() const { return in_use() > limit_; }

  /// Number of simulated EPC page-ins: every 4 KiB page of usage beyond the
  /// limit that has been touched by a charge. Non-zero page faults mean the
  /// enclave would be paging (orders-of-magnitude slowdown on hardware).
  [[nodiscard]] std::uint64_t page_faults() const {
    return page_faults_.load(std::memory_order_relaxed);
  }

 private:
  const std::size_t limit_;
  std::atomic<std::size_t> in_use_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::uint64_t> page_faults_{0};
};

}  // namespace xsearch::sgx
