// Simulated SGX remote attestation.
//
// On hardware, a Quoting Enclave signs a report containing the enclave
// measurement plus 64 bytes of caller-chosen report data, and Intel's
// attestation service (IAS) vouches for the signature. The simulation
// collapses QE + IAS into one AttestationAuthority holding a root MAC key:
// quotes are HMACs over (measurement || report_data). The client-side
// verification flow — check the quote, check the expected measurement,
// extract the enclave's channel public key from report data — is identical
// to the hardware flow, which is what X-Search's unlinkability argument
// (§4.2) relies on.
#pragma once

#include "common/bytes.hpp"
#include "common/secret.hpp"
#include "common/status.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"
#include "sgx/enclave.hpp"

namespace xsearch::sgx {

/// An attestation quote binding report data to an enclave measurement.
struct Quote {
  Measurement measurement{};
  Bytes report_data;           // typically the enclave's channel public key
  crypto::Sha256Digest mac{};  // authority's MAC over the above

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static Result<Quote> deserialize(ByteSpan raw);
};

/// Combined quoting-enclave + attestation-service role.
class AttestationAuthority {
 public:
  /// `root_key` stands in for Intel's EPID group keys. The buffer is
  /// adopted into a SecretBytes (zeroized on destruction, never printable).
  explicit AttestationAuthority(Bytes root_key)
      : root_key_(SecretBytes(std::move(root_key))) {}

  /// Issues a quote for an enclave (QE side).
  [[nodiscard]] Quote issue(const Measurement& measurement, ByteSpan report_data) const;

  /// Verifies a quote's authenticity (IAS side).
  [[nodiscard]] bool verify(const Quote& quote) const;

  /// Full client-side check: authentic quote *and* expected measurement.
  [[nodiscard]] Status verify_enclave(const Quote& quote,
                                      const Measurement& expected) const;

 private:
  SecretBytes root_key_;
};

/// Convenience: quote an enclave binding its X25519 channel public key.
[[nodiscard]] Quote quote_channel_key(const AttestationAuthority& authority,
                                      const EnclaveRuntime& enclave,
                                      const crypto::X25519Key& channel_public_key);

/// Client-side: verify the quote and extract the channel key it vouches for.
[[nodiscard]] Result<crypto::X25519Key> verify_and_extract_channel_key(
    const AttestationAuthority& authority, const Quote& quote,
    const Measurement& expected_measurement);

}  // namespace xsearch::sgx
