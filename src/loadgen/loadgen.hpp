// Open-loop constant-throughput load generator (wrk2-style).
//
// The paper measures Figure 5 with wrk2, which fixes the *offered* request
// rate and measures latency from each request's scheduled send time — the
// discipline that avoids coordinated omission (a closed-loop generator
// would slow down with the server and hide queueing delay). This module
// reproduces that: a dispatcher emits requests on a fixed schedule into a
// bounded queue served by a worker pool, and per-request latency is
// completion_time - scheduled_time.
#pragma once

#include <cstdint>
#include <functional>

#include "common/clock.hpp"
#include "common/histogram.hpp"

namespace xsearch::loadgen {

struct LoadConfig {
  /// Offered request rate (requests/second).
  double target_rps = 1000.0;
  /// Measurement duration.
  Nanos duration = 500 * kMilli;
  /// Server worker threads consuming the queue.
  std::size_t workers = 4;
  /// Pending-request queue capacity; overflowing requests are dropped and
  /// counted (a saturated real server would reset connections similarly).
  std::size_t queue_capacity = 1 << 16;
};

struct LoadReport {
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t dropped = 0;
  Histogram latency;  // nanoseconds, scheduled-send to completion

  [[nodiscard]] double p50_ms() const {
    return static_cast<double>(latency.percentile(50)) / static_cast<double>(kMilli);
  }
  [[nodiscard]] double p99_ms() const {
    return static_cast<double>(latency.percentile(99)) / static_cast<double>(kMilli);
  }
  [[nodiscard]] double mean_ms() const {
    return latency.mean() / static_cast<double>(kMilli);
  }
};

/// Runs `handler` under the configured offered load and reports latency.
/// `handler` is invoked concurrently from `config.workers` threads and must
/// be thread-safe.
[[nodiscard]] LoadReport run_open_loop(const std::function<void()>& handler,
                                       const LoadConfig& config);

}  // namespace xsearch::loadgen
