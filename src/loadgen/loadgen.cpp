#include "loadgen/loadgen.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/queue.hpp"

namespace xsearch::loadgen {

namespace {
struct Ticket {
  Nanos scheduled = 0;
};
}  // namespace

LoadReport run_open_loop(const std::function<void()>& handler,
                         const LoadConfig& config) {
  LoadReport report;
  report.offered_rps = config.target_rps;
  if (config.target_rps <= 0 || config.duration <= 0) return report;

  BoundedQueue<Ticket> queue(config.queue_capacity);
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> dropped{0};

  Mutex histogram_mutex;
  Histogram latency;

  // Workers: pull tickets, run the handler, record scheduled-to-done time.
  std::vector<std::thread> workers;
  workers.reserve(config.workers);
  for (std::size_t w = 0; w < config.workers; ++w) {
    workers.emplace_back([&] {
      Histogram local;
      while (auto ticket = queue.pop()) {
        handler();
        local.record(wall_now() - ticket->scheduled);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
      MutexLock lock(histogram_mutex);
      latency.merge(local);
    });
  }

  // Dispatcher: emit tickets on the fixed schedule. Requests that cannot be
  // queued (server hopelessly behind) are dropped, not delayed — delaying
  // them would reintroduce coordinated omission.
  const double interval_ns = static_cast<double>(kSecond) / config.target_rps;
  const Nanos start = wall_now();
  const Nanos end = start + config.duration;
  std::uint64_t issued = 0;
  while (true) {
    const Nanos scheduled =
        start + static_cast<Nanos>(static_cast<double>(issued) * interval_ns);
    if (scheduled >= end) break;
    // Busy-wait until the scheduled instant (sleep granularity is too
    // coarse at tens of thousands of requests per second).
    while (wall_now() < scheduled) {
    }
    if (queue.try_push(Ticket{scheduled})) {
      ++issued;
    } else {
      dropped.fetch_add(1, std::memory_order_relaxed);
      ++issued;  // the request was offered even though the server lost it
    }
  }

  queue.close();
  for (auto& w : workers) w.join();

  const Nanos elapsed = wall_now() - start;
  report.issued = issued;
  report.completed = completed.load();
  report.dropped = dropped.load();
  report.latency = std::move(latency);
  report.achieved_rps = elapsed > 0 ? static_cast<double>(report.completed) *
                                          static_cast<double>(kSecond) /
                                          static_cast<double>(elapsed)
                                    : 0.0;
  return report;
}

}  // namespace xsearch::loadgen
