#include "baselines/peas/peas.hpp"

#include <cstring>

#include "crypto/hmac.hpp"
#include "text/tokenizer.hpp"
#include "xsearch/filter.hpp"
#include "xsearch/wire.hpp"

namespace xsearch::baselines::peas {

namespace {

constexpr char kEnvelopeInfo[] = "peas-envelope-v1";
constexpr std::uint32_t kNonceRequest = 0x50455152;   // "PEQR"
constexpr std::uint32_t kNonceResponse = 0x50455250;  // "PERP"

crypto::AeadKey derive_envelope_key(crypto::X25519Key shared) {
  // By value on purpose: guaranteed copy elision makes the call-site prvalue
  // this very parameter, so the wipe below reaches the only copy of the DH
  // shared secret (rule: wipe lingering secret temporaries).
  const crypto::AeadKey key =
      crypto::hkdf(/*salt=*/{}, shared, to_bytes(kEnvelopeInfo), crypto::kAeadKeySize)
          .slice<crypto::kAeadKeySize>();
  secure_wipe(shared);
  return key;
}

}  // namespace

// --- FakeQueryGenerator -----------------------------------------------------

FakeQueryGenerator::FakeQueryGenerator(const dataset::QueryLog& past_queries)
    : cooc_(vocab_) {
  for (const auto& record : past_queries.records()) cooc_.add_query(record.text);
}

std::string FakeQueryGenerator::generate(std::string_view reference, Rng& rng) const {
  std::size_t length = text::tokenize_no_stopwords(reference).size();
  if (length == 0) length = 1 + rng.uniform(3);
  return cooc_.generate_fake_query(length, rng);
}

std::vector<std::string> FakeQueryGenerator::generate_k(std::string_view reference,
                                                        std::size_t k, Rng& rng) const {
  std::vector<std::string> fakes;
  fakes.reserve(k);
  for (std::size_t i = 0; i < k; ++i) fakes.push_back(generate(reference, rng));
  return fakes;
}

// --- PeasIssuer --------------------------------------------------------------

PeasIssuer::PeasIssuer(const engine::SearchEngine* engine, std::uint64_t seed)
    : engine_(engine) {
  keys_ = crypto::x25519_keypair_from_seed(
      crypto::domain_seed(seed, /*tag=*/0x15));  // issuer domain separation
}

Result<Bytes> PeasIssuer::handle(ByteSpan envelope) {
  if (envelope.size() < crypto::kX25519KeySize + crypto::kAeadTagSize) {
    return invalid_argument("peas: envelope too short");
  }
  crypto::X25519Key client_eph;
  std::memcpy(client_eph.data(), envelope.data(), client_eph.size());
  const crypto::AeadKey key =
      derive_envelope_key(crypto::x25519(keys_.private_key, client_eph));

  auto plain = crypto::aead_open(key, crypto::make_nonce(kNonceRequest, 0),
                                 to_bytes(kEnvelopeInfo),
                                 envelope.subspan(client_eph.size()));
  if (!plain) return permission_denied("peas: envelope authentication failed");

  auto request = core::wire::parse_engine_request(*plain);
  if (!request) return request.status();

  std::vector<engine::SearchResult> results;
  if (engine_ != nullptr) {
    results = engine_->search_or(request.value().sub_queries,
                                 request.value().top_k_each);
  }
  const Bytes payload = core::wire::serialize_results(results);
  return crypto::aead_seal(key, crypto::make_nonce(kNonceResponse, 0),
                           to_bytes(kEnvelopeInfo), payload);
}

// --- PeasReceiver ------------------------------------------------------------

Result<Bytes> PeasReceiver::forward(std::uint32_t client_id, ByteSpan envelope) {
  // The receiver knows `client_id` (it terminates the client connection)
  // but can only relay the opaque envelope. Nothing about the query leaks
  // here unless receiver and issuer collude.
  (void)client_id;
  ++forwarded_;
  return issuer_->handle(envelope);
}

// --- PeasClient ---------------------------------------------------------------

PeasClient::PeasClient(std::uint32_t client_id, PeasReceiver& receiver,
                       const crypto::X25519Key& issuer_public_key,
                       const FakeQueryGenerator& fakes, std::size_t k,
                       std::uint64_t seed)
    : client_id_(client_id),
      receiver_(&receiver),
      issuer_public_key_(issuer_public_key),
      fakes_(&fakes),
      k_(k),
      rng_(seed),
      secure_rng_(crypto::domain_seed(seed, /*tag=*/0x9e)) {}

std::vector<std::string> PeasClient::protect(std::string_view query) {
  std::vector<std::string> sub_queries = fakes_->generate_k(query, k_, rng_);
  const std::size_t position = rng_.uniform(sub_queries.size() + 1);
  sub_queries.insert(sub_queries.begin() + static_cast<std::ptrdiff_t>(position),
                     std::string(query));
  return sub_queries;
}

Bytes PeasClient::encrypt_to_issuer(const std::vector<std::string>& sub_queries,
                                    std::uint32_t top_k_each) {
  const auto ephemeral = crypto::x25519_keypair_from_seed(secure_rng_.key());
  const crypto::AeadKey key =
      derive_envelope_key(crypto::x25519(ephemeral.private_key, issuer_public_key_));

  core::wire::EngineRequest request;
  request.sub_queries = sub_queries;
  request.top_k_each = top_k_each;

  Bytes envelope(ephemeral.public_key.begin(), ephemeral.public_key.end());
  append(envelope, crypto::aead_seal(key, crypto::make_nonce(kNonceRequest, 0),
                                     to_bytes(kEnvelopeInfo),
                                     core::wire::serialize_engine_request(request)));
  // Remember the session key for the response (stored in the envelope's
  // ephemeral slot client-side).
  last_key_ = key;
  return envelope;
}

Result<std::vector<engine::SearchResult>> PeasClient::search(std::string_view query,
                                                             std::uint32_t top_k_each) {
  const std::vector<std::string> sub_queries = protect(query);
  const Bytes envelope = encrypt_to_issuer(sub_queries, top_k_each);

  auto sealed_response = receiver_->forward(client_id_, envelope);
  if (!sealed_response) return sealed_response.status();

  auto payload = crypto::aead_open(last_key_, crypto::make_nonce(kNonceResponse, 0),
                                   to_bytes(kEnvelopeInfo), sealed_response.value());
  if (!payload) return permission_denied("peas: response authentication failed");

  auto results = core::wire::parse_results(*payload);
  if (!results) return results.status();

  // Client-side filtering: the client knows which sub-query was real.
  std::vector<std::string> fake_only;
  for (const auto& q : sub_queries) {
    if (q != query) fake_only.push_back(q);
  }
  core::ResultFilter filter;
  return filter.filter(query, fake_only, std::move(results).value());
}

}  // namespace xsearch::baselines::peas
