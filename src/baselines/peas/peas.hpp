// PEAS baseline (Petit et al., TrustCom 2015) — the paper's closest
// competitor (§5.2).
//
// PEAS combines unlinkability and indistinguishability under a *weaker*
// adversary model than X-Search: two proxies assumed not to collude.
//
//  * The client obfuscates locally: k fake queries are generated from a
//    co-occurrence graph of past user queries and OR-aggregated with the
//    real one in random order.
//  * The *receiver* proxy sees the client identity but only a ciphertext of
//    the query (hybrid X25519+AEAD to the issuer's key).
//  * The *issuer* proxy decrypts and executes the query against the engine
//    but never learns who asked.
//
// If receiver and issuer collude, the protection collapses — this is the
// adversarial gap X-Search closes with SGX.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "crypto/aead.hpp"
#include "crypto/random.hpp"
#include "crypto/x25519.hpp"
#include "dataset/query_log.hpp"
#include "engine/search_engine.hpp"
#include "text/cooccurrence.hpp"

namespace xsearch::baselines::peas {

/// Client-side fake-query generator: random walks on the term
/// co-occurrence graph of a past-query log.
class FakeQueryGenerator {
 public:
  explicit FakeQueryGenerator(const dataset::QueryLog& past_queries);

  /// One fake query whose word count mimics `reference` (the real query),
  /// as PEAS does to avoid trivially distinguishable lengths.
  [[nodiscard]] std::string generate(std::string_view reference, Rng& rng) const;

  /// `k` fakes for one real query.
  [[nodiscard]] std::vector<std::string> generate_k(std::string_view reference,
                                                    std::size_t k, Rng& rng) const;

 private:
  text::Vocabulary vocab_;
  text::CooccurrenceMatrix cooc_;
};

/// The issuer proxy: decrypts protected queries, queries the engine.
class PeasIssuer {
 public:
  PeasIssuer(const engine::SearchEngine* engine, std::uint64_t seed);

  [[nodiscard]] const crypto::X25519Key& public_key() const {
    return keys_.public_key;
  }

  /// Handles one protected query envelope (no client identity attached):
  /// decrypts, runs the OR query, returns serialized results. When built
  /// without an engine it echoes an empty result list (saturation mode).
  [[nodiscard]] Result<Bytes> handle(ByteSpan envelope);

 private:
  const engine::SearchEngine* engine_;
  crypto::X25519KeyPair keys_;
};

/// The receiver proxy: knows who the client is, forwards the opaque
/// envelope to the issuer, relays the response back.
class PeasReceiver {
 public:
  explicit PeasReceiver(PeasIssuer& issuer) : issuer_(&issuer) {}

  /// `client_id` models the identity the receiver inevitably sees.
  [[nodiscard]] Result<Bytes> forward(std::uint32_t client_id, ByteSpan envelope);

  [[nodiscard]] std::uint64_t forwarded_count() const {
    return forwarded_.load(std::memory_order_relaxed);
  }

 private:
  PeasIssuer* issuer_;
  std::atomic<std::uint64_t> forwarded_{0};
};

/// The PEAS client: obfuscates locally, encrypts to the issuer, talks to
/// the receiver, and filters the merged results for the real query.
class PeasClient {
 public:
  PeasClient(std::uint32_t client_id, PeasReceiver& receiver,
             const crypto::X25519Key& issuer_public_key,
             const FakeQueryGenerator& fakes, std::size_t k, std::uint64_t seed);

  /// The k+1 shuffled sub-queries PEAS would send for `query` — used by the
  /// privacy benches, which attack the protected form directly.
  [[nodiscard]] std::vector<std::string> protect(std::string_view query);

  /// Full round trip: protect, send through both proxies, decrypt, keep the
  /// results matching the real query.
  [[nodiscard]] Result<std::vector<engine::SearchResult>> search(
      std::string_view query, std::uint32_t top_k_each = 20);

  [[nodiscard]] std::size_t k() const { return k_; }

 private:
  [[nodiscard]] Bytes encrypt_to_issuer(const std::vector<std::string>& sub_queries,
                                        std::uint32_t top_k_each);

  std::uint32_t client_id_;
  PeasReceiver* receiver_;
  crypto::X25519Key issuer_public_key_;
  const FakeQueryGenerator* fakes_;
  std::size_t k_;
  Rng rng_;
  crypto::SecureRandom secure_rng_;
  crypto::AeadKey last_key_{};  // session key of the in-flight request
};

}  // namespace xsearch::baselines::peas
