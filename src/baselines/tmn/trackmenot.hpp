// TrackMeNot baseline (Howe & Nissenbaum 2009; paper §2.1.2).
//
// TrackMeNot periodically sends fake queries built from *external* sources
// — RSS news feeds — independently of the user's real queries. The paper's
// Figure 1 shows exactly why this fails: RSS-derived phrases look nothing
// like real search-log queries, so the engine can separate fake from real
// traffic.
//
// The simulation models the RSS feeds as a stream of headline phrases over
// a vocabulary disjoint from the query log's (news language vs search
// language), reproducing the distributional gap the figure measures.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"

namespace xsearch::baselines::tmn {

struct TmnConfig {
  std::uint64_t seed = 0x7353;
  std::size_t feed_headline_count = 2000;  // headlines in the simulated feeds
  std::size_t headline_words_min = 4;
  std::size_t headline_words_max = 9;
  std::size_t rss_vocab_size = 3000;
  double rss_word_zipf = 1.0;
};

/// Generates TrackMeNot-style fake queries: contiguous word windows cut out
/// of simulated RSS headlines.
class TmnGenerator {
 public:
  explicit TmnGenerator(const TmnConfig& config = {});

  /// One fake query of 1-4 words excerpted from a random headline.
  [[nodiscard]] std::string fake_query(Rng& rng) const;

  /// The underlying simulated headlines (for inspection/tests).
  [[nodiscard]] const std::vector<std::string>& headlines() const { return headlines_; }

 private:
  std::vector<std::string> headlines_;
};

}  // namespace xsearch::baselines::tmn
