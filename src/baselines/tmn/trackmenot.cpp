#include "baselines/tmn/trackmenot.hpp"

#include <vector>

#include "text/tokenizer.hpp"

namespace xsearch::baselines::tmn {

namespace {

/// News-flavoured pseudo-words, built from a syllable inventory disjoint
/// from the query-log generator's (see dataset/synthetic.cpp) so RSS
/// vocabulary and search vocabulary do not overlap — the structural gap
/// TrackMeNot's fakes exhibit against the AOL log.
std::string rss_word(std::uint64_t index, std::uint64_t seed) {
  static constexpr const char* kSyllables[] = {
      "ux", "yx", "qua", "quo", "ex", "ix", "ox", "ash", "esh", "ish",
      "osh", "ush", "arn", "ern", "irn", "orn", "urn", "alt", "elt", "ilt",
      "olt", "ult", "amp", "emp", "imp", "omp", "ump", "and", "end", "ind",
      "ond", "und", "ack", "eck", "ick", "ock", "uck", "ydd", "ywn", "yss"};
  constexpr std::size_t kNumSyllables = std::size(kSyllables);

  std::uint64_t state = seed ^ (index * 0xda942042e4dd58b5ULL);
  const std::uint64_t mixed = splitmix64(state);
  const std::size_t syllable_count = 2 + (mixed % 2);
  std::string word;
  for (std::size_t s = 0; s < syllable_count; ++s) {
    word += kSyllables[splitmix64(state) % kNumSyllables];
  }
  return word;
}

}  // namespace

TmnGenerator::TmnGenerator(const TmnConfig& config) {
  Rng rng(config.seed);
  ZipfSampler word_popularity(config.rss_vocab_size, config.rss_word_zipf);

  std::vector<std::string> vocab;
  vocab.reserve(config.rss_vocab_size);
  for (std::size_t i = 0; i < config.rss_vocab_size; ++i) {
    vocab.push_back(rss_word(i, config.seed));
  }

  headlines_.reserve(config.feed_headline_count);
  for (std::size_t h = 0; h < config.feed_headline_count; ++h) {
    const auto words = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(config.headline_words_min),
                        static_cast<std::int64_t>(config.headline_words_max)));
    std::string headline;
    for (std::size_t w = 0; w < words; ++w) {
      if (!headline.empty()) headline += ' ';
      headline += vocab[word_popularity.sample(rng)];
    }
    headlines_.push_back(std::move(headline));
  }
}

std::string TmnGenerator::fake_query(Rng& rng) const {
  const std::string& headline = headlines_[rng.uniform(headlines_.size())];
  const auto tokens = text::tokenize(headline);
  if (tokens.empty()) return headline;

  const std::size_t take = 1 + rng.uniform(std::min<std::size_t>(tokens.size(), 4));
  const std::size_t start = rng.uniform(tokens.size() - take + 1);
  std::string query;
  for (std::size_t i = start; i < start + take; ++i) {
    if (!query.empty()) query += ' ';
    query += tokens[i];
  }
  return query;
}

}  // namespace xsearch::baselines::tmn
