// Direct baseline: the client queries the engine with no protection
// whatsoever (paper §5.2). Both the identity and the query are exposed —
// the lower bound on latency and the upper bound on privacy loss.
#pragma once

#include <string_view>
#include <vector>

#include "engine/search_engine.hpp"

namespace xsearch::baselines::direct {

class DirectClient {
 public:
  explicit DirectClient(const engine::SearchEngine& engine) : engine_(&engine) {}

  /// `top_k` is always explicit: the result budget is routed uniformly
  /// through api::ClientConfig instead of a per-mechanism hard-coded 20.
  [[nodiscard]] std::vector<engine::SearchResult> search(std::string_view query,
                                                         std::size_t top_k) const {
    return engine_->search(query, top_k);
  }

 private:
  const engine::SearchEngine* engine_;
};

}  // namespace xsearch::baselines::direct
