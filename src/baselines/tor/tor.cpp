#include "baselines/tor/tor.hpp"

#include <cstring>

#include "crypto/hmac.hpp"
#include "xsearch/wire.hpp"

namespace xsearch::baselines::tor {

namespace {

constexpr char kCircuitInfo[] = "tor-circuit-key-v1";
constexpr std::uint32_t kNonceForward = 0x544f5246;   // "TORF"
constexpr std::uint32_t kNonceBackward = 0x544f5242;  // "TORB"

crypto::AeadKey derive_circuit_key(crypto::X25519Key shared) {
  // By value on purpose: guaranteed copy elision makes the call-site prvalue
  // this very parameter, so the wipe below reaches the only copy of the DH
  // shared secret (rule: wipe lingering secret temporaries).
  const crypto::AeadKey key =
      crypto::hkdf(/*salt=*/{}, shared, to_bytes(kCircuitInfo), crypto::kAeadKeySize)
          .slice<crypto::kAeadKeySize>();
  secure_wipe(shared);
  return key;
}

}  // namespace

// --- TorRelay ----------------------------------------------------------------

TorRelay::TorRelay(std::uint64_t seed) {
  keys_ = crypto::x25519_keypair_from_seed(
      crypto::domain_seed(seed, /*tag=*/0x70));  // relay domain separation
}

void TorRelay::establish_circuit(CircuitId circuit,
                                 const crypto::X25519Key& client_ephemeral) {
  CircuitState state;
  state.key = derive_circuit_key(crypto::x25519(keys_.private_key, client_ephemeral));
  circuits_[circuit] = state;
}

Result<Bytes> TorRelay::peel(CircuitId circuit, ByteSpan cell) {
  const auto it = circuits_.find(circuit);
  if (it == circuits_.end()) return not_found("tor: unknown circuit");
  auto& state = it->second;
  auto inner =
      crypto::aead_open(state.key, crypto::make_nonce(kNonceForward, state.forward_counter),
                        /*aad=*/{}, cell);
  if (!inner) return permission_denied("tor: forward cell authentication failed");
  ++state.forward_counter;
  return *std::move(inner);
}

Result<Bytes> TorRelay::wrap(CircuitId circuit, ByteSpan payload) {
  const auto it = circuits_.find(circuit);
  if (it == circuits_.end()) return not_found("tor: unknown circuit");
  auto& state = it->second;
  Bytes cell = crypto::aead_seal(
      state.key, crypto::make_nonce(kNonceBackward, state.backward_counter),
      /*aad=*/{}, payload);
  ++state.backward_counter;
  return cell;
}

// --- TorCircuit ----------------------------------------------------------------

TorCircuit::TorCircuit(CircuitId id, std::vector<TorRelay*> path, std::uint64_t seed)
    : id_(id), path_(std::move(path)) {
  crypto::SecureRandom rng(crypto::domain_seed(seed, /*tag=*/0xc2));

  layer_keys_.reserve(path_.size());
  forward_counters_.assign(path_.size(), 0);
  backward_counters_.assign(path_.size(), 0);
  for (TorRelay* relay : path_) {
    const auto ephemeral = crypto::x25519_keypair_from_seed(rng.key());
    relay->establish_circuit(id_, ephemeral.public_key);
    layer_keys_.push_back(
        derive_circuit_key(crypto::x25519(ephemeral.private_key, relay->public_key())));
  }
}

Bytes TorCircuit::build_onion(ByteSpan payload) {
  // Innermost layer first (exit relay peels last).
  Bytes cell(payload.begin(), payload.end());
  for (std::size_t i = path_.size(); i-- > 0;) {
    cell = crypto::aead_seal(layer_keys_[i],
                             crypto::make_nonce(kNonceForward, forward_counters_[i]),
                             /*aad=*/{}, cell);
    ++forward_counters_[i];
  }
  return cell;
}

Result<Bytes> TorCircuit::unwrap_response(ByteSpan cell) {
  // The entry relay wrapped last, so its layer comes off first.
  Bytes current(cell.begin(), cell.end());
  for (std::size_t i = 0; i < path_.size(); ++i) {
    auto inner = crypto::aead_open(
        layer_keys_[i], crypto::make_nonce(kNonceBackward, backward_counters_[i]),
        /*aad=*/{}, current);
    if (!inner) return permission_denied("tor: response layer authentication failed");
    ++backward_counters_[i];
    current = *std::move(inner);
  }
  return current;
}

// --- TorClient ------------------------------------------------------------------

TorClient::TorClient(std::vector<TorRelay*> relays, const engine::SearchEngine* engine,
                     std::uint64_t seed)
    : relays_(std::move(relays)),
      engine_(engine),
      circuit_(/*id=*/seed, relays_, seed) {}

Result<std::vector<engine::SearchResult>> TorClient::search(std::string_view query,
                                                            std::uint32_t top_k) {
  // Forward path: the onion loses one layer per relay.
  Bytes query_payload;
  core::wire::put_u32(query_payload, top_k);
  core::wire::put_string(query_payload, query);

  Bytes cell = circuit_.build_onion(query_payload);
  for (TorRelay* relay : relays_) {
    auto peeled = relay->peel(circuit_.id(), cell);
    if (!peeled) return peeled.status();
    cell = std::move(peeled).value();
  }

  // Exit node: plain query to the engine on behalf of the client.
  std::size_t offset = 0;
  auto k = core::wire::get_u32(cell, offset);
  if (!k) return k.status();
  auto plain_query = core::wire::get_string(cell, offset);
  if (!plain_query) return plain_query.status();

  std::vector<engine::SearchResult> results;
  if (engine_ != nullptr) {
    results = engine_->search(plain_query.value(), k.value());
  }

  // Backward path: each relay (exit first) adds its response layer.
  Bytes response = core::wire::serialize_results(results);
  for (std::size_t i = relays_.size(); i-- > 0;) {
    auto wrapped = relays_[i]->wrap(circuit_.id(), response);
    if (!wrapped) return wrapped.status();
    response = std::move(wrapped).value();
  }

  auto plain = circuit_.unwrap_response(response);
  if (!plain) return plain.status();
  return core::wire::parse_results(plain.value());
}

}  // namespace xsearch::baselines::tor
