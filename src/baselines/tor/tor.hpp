// Tor baseline — unlinkability through 3-hop onion routing (paper §2.1.1,
// §5.2).
//
// The client wraps each query in three authenticated-encryption layers, one
// per relay of its circuit; each relay peels exactly one layer, learning
// only its predecessor and successor. The exit relay submits the *plain*
// query to the search engine (Tor provides no indistinguishability — the
// k = 0 point of Figure 3) and the response travels back through the same
// circuit, each relay adding one response layer which the client removes.
//
// The cryptography is real (X25519 circuit setup, ChaCha20-Poly1305
// layers); only the wide-area latency of the volunteer relay network is a
// model (see netsim/).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "crypto/aead.hpp"
#include "crypto/random.hpp"
#include "crypto/x25519.hpp"
#include "engine/search_engine.hpp"

namespace xsearch::baselines::tor {

using CircuitId = std::uint64_t;

/// One onion router. Holds a long-term key pair and per-circuit session
/// keys established via X25519.
class TorRelay {
 public:
  explicit TorRelay(std::uint64_t seed);

  [[nodiscard]] const crypto::X25519Key& public_key() const {
    return keys_.public_key;
  }

  /// Circuit extension: derive the session key for `circuit` from the
  /// client's ephemeral public key (ntor-style, simplified).
  void establish_circuit(CircuitId circuit, const crypto::X25519Key& client_ephemeral);

  /// Removes this relay's layer from a forward cell.
  [[nodiscard]] Result<Bytes> peel(CircuitId circuit, ByteSpan cell);

  /// Adds this relay's layer to a backward (response) cell.
  [[nodiscard]] Result<Bytes> wrap(CircuitId circuit, ByteSpan payload);

  [[nodiscard]] std::size_t active_circuits() const { return circuits_.size(); }

 private:
  struct CircuitState {
    crypto::AeadKey key{};
    std::uint64_t forward_counter = 0;
    std::uint64_t backward_counter = 0;
  };

  crypto::X25519KeyPair keys_;
  std::unordered_map<CircuitId, CircuitState> circuits_;
};

/// A client-built circuit through an ordered relay path (entry first).
class TorCircuit {
 public:
  /// Establishes session keys with every relay on `path`.
  TorCircuit(CircuitId id, std::vector<TorRelay*> path, std::uint64_t seed);

  /// Builds the onion for a payload: innermost layer for the exit relay.
  [[nodiscard]] Bytes build_onion(ByteSpan payload);

  /// Removes all response layers (entry relay's layer first).
  [[nodiscard]] Result<Bytes> unwrap_response(ByteSpan cell);

  [[nodiscard]] CircuitId id() const { return id_; }
  [[nodiscard]] std::size_t hops() const { return path_.size(); }

 private:
  CircuitId id_;
  std::vector<TorRelay*> path_;
  std::vector<crypto::AeadKey> layer_keys_;  // parallel to path_
  std::vector<std::uint64_t> forward_counters_;
  std::vector<std::uint64_t> backward_counters_;
};

/// End-to-end Tor search client over an in-process relay chain.
class TorClient {
 public:
  /// `relays` is the circuit path (entry, middle, exit).
  TorClient(std::vector<TorRelay*> relays, const engine::SearchEngine* engine,
            std::uint64_t seed);

  /// Routes `query` through the circuit; the exit node queries the engine
  /// (top_k results) and the response returns through the layers. With a
  /// null engine the exit echoes an empty result list (saturation mode).
  [[nodiscard]] Result<std::vector<engine::SearchResult>> search(
      std::string_view query, std::uint32_t top_k = 20);

 private:
  std::vector<TorRelay*> relays_;
  const engine::SearchEngine* engine_;
  TorCircuit circuit_;
};

}  // namespace xsearch::baselines::tor
