// SimAttack — the re-identification attack used in the paper's privacy
// evaluation (Petit et al., "SimAttack: private web search under fire",
// JISA 2016; paper §5.3.1).
//
// The adversary (the honest-but-curious search engine) holds a profile per
// user: the queries that user issued during the training period. Given a
// protected query it computes, for every (sub-query, user) pair, a
// similarity
//
//   sim(q, P_u) = ExpSmooth_{alpha}( sort_asc { cos(q, q_i) : q_i in P_u } )
//
// and declares the attack successful only when a *unique* pair attains the
// maximum — in which case that pair is its guess for (original query,
// requesting user).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dataset/query_log.hpp"
#include "text/sparse_vector.hpp"
#include "text/vocabulary.hpp"

namespace xsearch::attack {

/// Decomposes the engine-side view of an OR query (`"a OR b OR c"`) back
/// into sub-queries, the way the honest-but-curious engine would before
/// attacking it. The inverse of ObfuscatedQuery::to_query_string().
[[nodiscard]] std::vector<std::string> split_or_query(std::string_view observed);

struct SimAttackConfig {
  /// Exponential smoothing factor; the paper empirically sets 0.5.
  double smoothing = 0.5;
};

class SimAttack {
 public:
  /// Builds per-user profiles from the adversary's training log.
  SimAttack(const dataset::QueryLog& training_log, SimAttackConfig config = {});

  /// sim(query, P_user); 0 when the user is unknown.
  [[nodiscard]] double similarity(std::string_view query, dataset::UserId user) const;

  /// The adversary's verdict on one protected query.
  struct Identification {
    dataset::UserId user = 0;
    std::string query;   // the sub-query believed to be the original
    double score = 0.0;
  };

  /// Attacks an obfuscated query (the k+1 sub-queries of the OR query, in
  /// the order the engine sees them). For a plain unlinkability system
  /// (k = 0) pass a single sub-query. Returns nullopt when no unique
  /// maximum exists (the attack reports failure).
  [[nodiscard]] std::optional<Identification> attack(
      const std::vector<std::string>& sub_queries) const;

  [[nodiscard]] const std::vector<dataset::UserId>& users() const { return users_; }

  /// Maximum cosine similarity between `query` and any training query of
  /// any user — the metric of Figure 1 (how "real" a fake query looks).
  [[nodiscard]] double max_similarity_to_any_past_query(std::string_view query) const;

 private:
  [[nodiscard]] text::SparseVector query_vector(std::string_view query) const;

  SimAttackConfig config_;
  text::Vocabulary vocab_;  // frozen after construction
  std::vector<dataset::UserId> users_;
  std::unordered_map<dataset::UserId, std::vector<text::SparseVector>> profiles_;
};

}  // namespace xsearch::attack
