#include "attack/simattack.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "text/tokenizer.hpp"

namespace xsearch::attack {

std::vector<std::string> split_or_query(std::string_view observed) {
  std::vector<std::string> sub_queries;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = observed.find(" OR ", start);
    if (pos == std::string_view::npos) break;
    sub_queries.emplace_back(observed.substr(start, pos - start));
    start = pos + 4;
  }
  sub_queries.emplace_back(observed.substr(start));
  return sub_queries;
}

SimAttack::SimAttack(const dataset::QueryLog& training_log, SimAttackConfig config)
    : config_(config) {
  users_ = training_log.users();
  for (const auto& record : training_log.records()) {
    profiles_[record.user].push_back(text::tf_vector(vocab_, record.text));
  }
}

text::SparseVector SimAttack::query_vector(std::string_view query) const {
  // Words never seen in training still contribute to the query's norm (they
  // make the query *less* similar to every profile). They are mapped to
  // sentinel ids in the upper id half so they can never collide with
  // training vocabulary.
  std::vector<text::SparseEntry> entries;
  for (const auto& token : text::tokenize_no_stopwords(query)) {
    if (const auto id = vocab_.lookup(token)) {
      entries.push_back({*id, 1.0});
    } else {
      std::uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (const char c : token) h = splitmix64(h ^= static_cast<std::uint8_t>(c));
      entries.push_back(
          {static_cast<text::TermId>(0x80000000u | (h & 0x7fffffffu)), 1.0});
    }
  }
  return text::SparseVector::from_pairs(std::move(entries));
}

double SimAttack::similarity(std::string_view query, dataset::UserId user) const {
  const auto it = profiles_.find(user);
  if (it == profiles_.end()) return 0.0;
  const text::SparseVector qv = query_vector(query);
  std::vector<double> sims;
  sims.reserve(it->second.size());
  for (const auto& pv : it->second) sims.push_back(qv.cosine(pv));
  return text::exponential_smoothing(std::move(sims), config_.smoothing);
}

std::optional<SimAttack::Identification> SimAttack::attack(
    const std::vector<std::string>& sub_queries) const {
  double best = -1.0;
  bool unique = false;
  Identification id;

  for (const auto& sub : sub_queries) {
    const text::SparseVector qv = query_vector(sub);
    for (const auto& [user, profile] : profiles_) {
      std::vector<double> sims;
      sims.reserve(profile.size());
      for (const auto& pv : profile) sims.push_back(qv.cosine(pv));
      const double score = text::exponential_smoothing(std::move(sims),
                                                       config_.smoothing);
      if (score > best) {
        best = score;
        unique = true;
        id = Identification{user, sub, score};
      } else if (score == best) {
        unique = false;  // ambiguous maximum: the attack gives up
      }
    }
  }

  if (best <= 0.0 || !unique) return std::nullopt;
  return id;
}

double SimAttack::max_similarity_to_any_past_query(std::string_view query) const {
  const text::SparseVector qv = query_vector(query);
  double best = 0.0;
  for (const auto& [_, profile] : profiles_) {
    for (const auto& pv : profile) best = std::max(best, qv.cosine(pv));
  }
  return best;
}

}  // namespace xsearch::attack
