#include "attack/ml_attack.hpp"

#include <cmath>

#include "text/tokenizer.hpp"

namespace xsearch::attack {

NaiveBayesAttack::NaiveBayesAttack(const dataset::QueryLog& training_log,
                                   NaiveBayesConfig config)
    : config_(config) {
  users_ = training_log.users();
  for (const auto& record : training_log.records()) {
    UserModel& model = models_[record.user];
    ++model.query_count;
    for (const auto& token : text::tokenize_no_stopwords(record.text)) {
      ++model.term_counts[vocab_.intern(token)];
      ++model.total_terms;
    }
  }
  const double total_queries = static_cast<double>(training_log.size());
  for (auto& [user, model] : models_) {
    model.log_prior =
        std::log(static_cast<double>(model.query_count) / total_queries);
  }
}

double NaiveBayesAttack::log_score(std::string_view query, dataset::UserId user) const {
  const auto it = models_.find(user);
  if (it == models_.end()) return -1e300;
  const UserModel& model = it->second;

  const double vocab_size = static_cast<double>(vocab_.size());
  const double denom =
      static_cast<double>(model.total_terms) + config_.laplace_alpha * vocab_size;

  double score = model.log_prior;
  for (const auto& token : text::tokenize_no_stopwords(query)) {
    const auto id = vocab_.lookup(token);
    double count = 0.0;
    if (id) {
      const auto cit = model.term_counts.find(*id);
      if (cit != model.term_counts.end()) count = static_cast<double>(cit->second);
    }
    score += std::log((count + config_.laplace_alpha) / denom);
  }
  return score;
}

std::optional<NaiveBayesAttack::Identification> NaiveBayesAttack::attack(
    const std::vector<std::string>& sub_queries) const {
  double best = -1e300;
  bool found = false;
  bool unique = false;
  Identification id;

  for (const auto& sub : sub_queries) {
    // Skip sub-queries whose terms are all unknown: their likelihood is
    // pure smoothing noise and would only produce arbitrary guesses.
    const auto tokens = text::tokenize_no_stopwords(sub);
    bool any_known = false;
    for (const auto& t : tokens) any_known |= vocab_.lookup(t).has_value();
    if (!any_known) continue;

    for (const auto& [user, model] : models_) {
      (void)model;
      const double score = log_score(sub, user);
      if (!found || score > best) {
        best = score;
        found = true;
        unique = true;
        id = Identification{user, sub, score};
      } else if (score == best) {
        unique = false;
      }
    }
  }

  if (!found || !unique) return std::nullopt;
  return id;
}

}  // namespace xsearch::attack
