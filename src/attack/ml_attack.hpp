// Multinomial Naive Bayes re-identification attack.
//
// The paper's §5.3.1 justifies using SimAttack because it "has been shown
// to outperform previous attacks including a machine learning attack
// presented in [30]" (Peddinti & Saxena). This module implements that
// baseline class of attack — a multinomial Naive Bayes classifier over
// query terms, the standard ML approach for user re-identification from
// search logs — so the claim is checkable (bench/abl6_attack_comparison).
//
// Model: P(user | query) ∝ P(user) · Π_w P(w | user), with Laplace
// smoothing over the training vocabulary.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dataset/query_log.hpp"
#include "text/vocabulary.hpp"

namespace xsearch::attack {

struct NaiveBayesConfig {
  double laplace_alpha = 0.1;  // additive smoothing
};

class NaiveBayesAttack {
 public:
  explicit NaiveBayesAttack(const dataset::QueryLog& training_log,
                            NaiveBayesConfig config = {});

  /// Log-posterior (up to a constant) of `user` given `query`.
  [[nodiscard]] double log_score(std::string_view query, dataset::UserId user) const;

  struct Identification {
    dataset::UserId user = 0;
    std::string query;
    double log_score = 0.0;
  };

  /// Attacks a protected query: picks the (sub-query, user) pair with the
  /// highest posterior. Sub-queries with no known terms are skipped; if
  /// none qualify (or the maximum is ambiguous) the attack fails.
  [[nodiscard]] std::optional<Identification> attack(
      const std::vector<std::string>& sub_queries) const;

  [[nodiscard]] std::size_t user_count() const { return users_.size(); }

 private:
  struct UserModel {
    std::unordered_map<text::TermId, std::uint64_t> term_counts;
    std::uint64_t total_terms = 0;
    std::uint64_t query_count = 0;
    double log_prior = 0.0;
  };

  NaiveBayesConfig config_;
  text::Vocabulary vocab_;
  std::vector<dataset::UserId> users_;
  std::unordered_map<dataset::UserId, UserModel> models_;
};

}  // namespace xsearch::attack
