#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace xsearch {

/// Per-dependency circuit breaker: closed → open → half-open → closed.
///
/// A rolling window of the last `window` call outcomes trips the breaker
/// open when the failure ratio crosses `failure_ratio` (with at least
/// `min_samples` outcomes recorded, so one early failure cannot trip an
/// idle breaker). Open calls are rejected without touching the dependency;
/// after `open_cooldown` the breaker admits up to `half_open_probes` trial
/// calls. Any probe failure re-opens (and restarts the cooldown); all
/// probes succeeding closes the breaker with a cleared window.
///
/// Callers pair one `allow()` with one `record_success()`/`record_failure()`
/// per attempt. Time is injectable (`Options::now`) so tests and the chaos
/// harness step breaker state deterministically instead of sleeping.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  struct Options {
    std::uint32_t window = 16;
    std::uint32_t min_samples = 4;
    double failure_ratio = 0.5;
    Nanos open_cooldown = 50 * kMilli;
    std::uint32_t half_open_probes = 2;
    /// Time source; defaults to the steady clock.
    std::function<Nanos()> now;
  };

  struct Stats {
    State state = State::kClosed;
    std::uint64_t rejected = 0;  // calls refused while open / probe-saturated
    std::uint64_t trips = 0;     // closed-or-half-open → open transitions
  };

  CircuitBreaker() : CircuitBreaker(Options{}) {}
  explicit CircuitBreaker(Options options);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// May this attempt proceed? Open breakers transition to half-open once
  /// the cooldown has elapsed; half-open admits a bounded number of probes.
  [[nodiscard]] bool allow();

  void record_success();
  void record_failure();

  [[nodiscard]] State state() const;
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] static const char* state_name(State state);

 private:
  void trip_open_locked() XS_REQUIRES(mutex_);
  void note_outcome_locked(bool failed) XS_REQUIRES(mutex_);
  [[nodiscard]] State current_state_locked() XS_REQUIRES(mutex_);
  [[nodiscard]] State effective_state_locked() const XS_REQUIRES(mutex_);

  const Options options_;
  const std::function<Nanos()> now_;

  mutable Mutex mutex_;
  State state_ XS_GUARDED_BY(mutex_) = State::kClosed;
  // Rolling outcome ring: outcomes_[i] true = failure.
  std::vector<bool> outcomes_ XS_GUARDED_BY(mutex_);
  std::size_t next_slot_ XS_GUARDED_BY(mutex_) = 0;
  std::size_t samples_ XS_GUARDED_BY(mutex_) = 0;
  std::size_t failures_ XS_GUARDED_BY(mutex_) = 0;
  Nanos opened_at_ XS_GUARDED_BY(mutex_) = 0;
  std::uint32_t half_open_granted_ XS_GUARDED_BY(mutex_) = 0;
  std::uint32_t half_open_successes_ XS_GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_ XS_GUARDED_BY(mutex_) = 0;
  std::uint64_t trips_ XS_GUARDED_BY(mutex_) = 0;
};

}  // namespace xsearch
