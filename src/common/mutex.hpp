// Annotated mutex/condvar wrappers for Clang Thread Safety Analysis.
//
// Thin zero-overhead wrappers over std::mutex / std::shared_mutex /
// std::condition_variable that carry the capability attributes from
// common/thread_annotations.hpp. The analysis only tracks annotated lock
// types, so every mutex-guarded subsystem in the tree (SessionTable,
// QueryHistory, ProxyFleet, the proxy's checkpoint path, BoundedQueue,
// api::PrivateSearchClient's batch engine, ...) uses these instead of the
// raw std types. Under GCC the attributes vanish and the wrappers compile
// down to the std types they hold.
//
// Locking idiom: prefer the RAII guards (MutexLock / ReaderLock /
// WriterLock). For try-lock paths, call `try_lock()` explicitly and adopt
// the held lock into a MutexLock (see XSearchProxy::maybe_checkpoint).
// Condition waits go through CondVar, whose wait() requires the annotated
// Mutex held — the analysis then sees the capability held across the wait,
// which matches reality at entry and exit.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.hpp"

namespace xsearch {

/// Exclusive lock. Satisfies BasicLockable, so std::unique_lock<Mutex>
/// still works operationally — but such uses are invisible to the
/// analysis; use MutexLock wherever the guarded fields are annotated.
class XS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() XS_ACQUIRE() { m_.lock(); }
  void unlock() XS_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() XS_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The wrapped handle, for CondVar's adopt-wait only.
  [[nodiscard]] std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// Reader/writer lock (exclusive writers, shared readers).
class XS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() XS_ACQUIRE() { m_.lock(); }
  void unlock() XS_RELEASE() { m_.unlock(); }
  void lock_shared() XS_ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() XS_RELEASE_SHARED() { m_.unlock_shared(); }

 private:
  std::shared_mutex m_;
};

/// RAII exclusive guard over Mutex.
class XS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) XS_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  /// Adopts a mutex the caller already holds (e.g. via a successful
  /// try_lock), so the try-lock fast path keeps RAII release.
  MutexLock(Mutex& mutex, std::adopt_lock_t) XS_REQUIRES(mutex)
      : mutex_(mutex) {}
  ~MutexLock() XS_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// RAII exclusive guard over SharedMutex.
class XS_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mutex) XS_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~WriterLock() XS_RELEASE_GENERIC() { mutex_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// RAII shared (reader) guard over SharedMutex.
class XS_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mutex) XS_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~ReaderLock() XS_RELEASE_GENERIC() { mutex_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Condition variable bound to the annotated Mutex. wait() requires the
/// mutex held; internally it adopts the native handle for the std wait
/// (which unlocks while parked and relocks before returning), then
/// releases the adoption so ownership stays with the caller's guard.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& mutex) XS_REQUIRES(mutex) {
    std::unique_lock<std::mutex> inner(mutex.native(), std::adopt_lock);
    cv_.wait(inner);
    (void)inner.release();
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mutex,
                          const std::chrono::duration<Rep, Period>& timeout)
      XS_REQUIRES(mutex) {
    std::unique_lock<std::mutex> inner(mutex.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_for(inner, timeout);
    (void)inner.release();
    return status;
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mutex, const std::chrono::time_point<Clock, Duration>& deadline)
      XS_REQUIRES(mutex) {
    std::unique_lock<std::mutex> inner(mutex.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(inner, deadline);
    (void)inner.release();
    return status;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace xsearch
