// Fixed-size thread pool.
//
// The X-Search paper notes the proxy "uses multiple threads" with the query
// table shared among them (§4.1); this pool backs that design in the proxy
// server and the load-generation harness.
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "common/queue.hpp"

namespace xsearch {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads, std::size_t queue_capacity = 4096)
      : tasks_(queue_capacity) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() { shutdown(); }

  /// Enqueues a task; blocks if the queue is full. Returns false after
  /// shutdown() has been called.
  bool submit(std::function<void()> task) { return tasks_.push(std::move(task)); }

  /// Non-blocking enqueue; returns false when the queue is full or closed.
  bool try_submit(std::function<void()> task) {
    return tasks_.try_push(std::move(task));
  }

  /// Drains outstanding tasks and joins all workers. Idempotent.
  void shutdown() {
    tasks_.close();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop() {
    while (auto task = tasks_.pop()) (*task)();
  }

  BoundedQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
};

}  // namespace xsearch
