// Minimal leveled logger.
//
// Output goes to stderr; the level can be raised globally so tests and
// benches stay quiet by default. Not a substrate of the paper — just
// operational plumbing.
#pragma once

#include <cstdio>
#include <string_view>
#include <utility>

namespace xsearch {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void log_line(LogLevel level, std::string_view file, int line, std::string_view msg);

template <typename... Args>
void logf(LogLevel level, std::string_view file, int line, const char* fmt,
          Args&&... args) {
  if (level < log_level()) return;
  char buf[1024];
  if constexpr (sizeof...(Args) == 0) {
    log_line(level, file, line, fmt);
  } else {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wformat-security"
    std::snprintf(buf, sizeof buf, fmt, std::forward<Args>(args)...);
#pragma GCC diagnostic pop
    log_line(level, file, line, buf);
  }
}
}  // namespace detail

}  // namespace xsearch

#define XS_LOG_DEBUG(...) \
  ::xsearch::detail::logf(::xsearch::LogLevel::kDebug, __FILE__, __LINE__, __VA_ARGS__)
#define XS_LOG_INFO(...) \
  ::xsearch::detail::logf(::xsearch::LogLevel::kInfo, __FILE__, __LINE__, __VA_ARGS__)
#define XS_LOG_WARN(...) \
  ::xsearch::detail::logf(::xsearch::LogLevel::kWarn, __FILE__, __LINE__, __VA_ARGS__)
#define XS_LOG_ERROR(...) \
  ::xsearch::detail::logf(::xsearch::LogLevel::kError, __FILE__, __LINE__, __VA_ARGS__)
