#include "common/circuit_breaker.hpp"

#include <algorithm>
#include <utility>

namespace xsearch {

CircuitBreaker::CircuitBreaker(Options options)
    : options_(std::move(options)),
      now_(options_.now ? options_.now : [] { return wall_now(); }),
      outcomes_(options_.window > 0 ? options_.window : 1, false) {}

const char* CircuitBreaker::state_name(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::State CircuitBreaker::current_state_locked() {
  if (state_ == State::kOpen && now_() - opened_at_ >= options_.open_cooldown) {
    state_ = State::kHalfOpen;
    half_open_granted_ = 0;
    half_open_successes_ = 0;
  }
  return state_;
}

CircuitBreaker::State CircuitBreaker::effective_state_locked() const {
  if (state_ == State::kOpen && now_() - opened_at_ >= options_.open_cooldown) {
    return State::kHalfOpen;  // will materialize on the next allow()/record
  }
  return state_;
}

bool CircuitBreaker::allow() {
  MutexLock lock(mutex_);
  switch (current_state_locked()) {
    case State::kClosed:
      return true;
    case State::kOpen:
      ++rejected_;
      return false;
    case State::kHalfOpen:
      if (half_open_granted_ < options_.half_open_probes) {
        ++half_open_granted_;
        return true;
      }
      ++rejected_;
      return false;
  }
  return true;  // unreachable
}

void CircuitBreaker::trip_open_locked() {
  state_ = State::kOpen;
  opened_at_ = now_();
  ++trips_;
}

void CircuitBreaker::note_outcome_locked(bool failed) {
  if (samples_ == outcomes_.size()) {
    // Ring full: the slot being overwritten leaves the window.
    if (outcomes_[next_slot_]) --failures_;
  } else {
    ++samples_;
  }
  outcomes_[next_slot_] = failed;
  if (failed) ++failures_;
  next_slot_ = (next_slot_ + 1) % outcomes_.size();
}

void CircuitBreaker::record_success() {
  MutexLock lock(mutex_);
  if (current_state_locked() == State::kHalfOpen) {
    if (++half_open_successes_ >= options_.half_open_probes) {
      // Dependency looks healthy again: close with a clean window so the
      // pre-outage failures cannot immediately re-trip it.
      state_ = State::kClosed;
      std::fill(outcomes_.begin(), outcomes_.end(), false);
      next_slot_ = 0;
      samples_ = 0;
      failures_ = 0;
    }
    return;
  }
  note_outcome_locked(/*failed=*/false);
}

void CircuitBreaker::record_failure() {
  MutexLock lock(mutex_);
  const State state = current_state_locked();
  if (state == State::kHalfOpen) {
    // A probe failed: the dependency is still down, back to open.
    trip_open_locked();
    return;
  }
  if (state == State::kOpen) return;  // late result from before the trip
  note_outcome_locked(/*failed=*/true);
  if (samples_ >= options_.min_samples &&
      static_cast<double>(failures_) >=
          options_.failure_ratio * static_cast<double>(samples_)) {
    trip_open_locked();
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  MutexLock lock(mutex_);
  return effective_state_locked();
}

CircuitBreaker::Stats CircuitBreaker::stats() const {
  MutexLock lock(mutex_);
  Stats stats;
  stats.state = effective_state_locked();
  stats.rejected = rejected_;
  stats.trips = trips_;
  return stats;
}

}  // namespace xsearch
