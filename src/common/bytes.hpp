// Byte-buffer helpers shared across the code base.
//
// All cryptographic and wire-format code in this project manipulates
// `std::vector<std::uint8_t>` buffers through the small utilities defined
// here (hex encoding, little/big-endian packing, constant-time compare).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace xsearch {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

/// Builds a byte vector from a string's raw contents.
[[nodiscard]] inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Interprets a byte span as text. The bytes are copied.
[[nodiscard]] inline std::string to_string(ByteSpan b) {
  return std::string(b.begin(), b.end());
}

/// Lower-case hex encoding, e.g. {0xde,0xad} -> "dead".
[[nodiscard]] std::string hex_encode(ByteSpan data);

/// Parses lower/upper-case hex. Returns an empty vector on malformed input
/// (odd length or non-hex characters).
[[nodiscard]] Bytes hex_decode(std::string_view hex);

/// Reads a little-endian 32-bit word. `p` must point at >= 4 valid bytes.
[[nodiscard]] inline std::uint32_t load_le32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof v);  // assumes little-endian host (x86)
  return v;
}

/// Writes a little-endian 32-bit word. `p` must point at >= 4 writable bytes.
inline void store_le32(std::uint8_t* p, std::uint32_t v) {
  std::memcpy(p, &v, sizeof v);
}

/// Reads a little-endian 64-bit word.
[[nodiscard]] inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof v);
  return v;
}

/// Writes a little-endian 64-bit word.
inline void store_le64(std::uint8_t* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof v);
}

/// Reads a big-endian 32-bit word.
[[nodiscard]] inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

/// Writes a big-endian 32-bit word.
inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

/// Writes a big-endian 64-bit word.
inline void store_be64(std::uint8_t* p, std::uint64_t v) {
  store_be32(p, static_cast<std::uint32_t>(v >> 32));
  store_be32(p + 4, static_cast<std::uint32_t>(v));
}

/// Appends `src` to `dst`.
inline void append(Bytes& dst, ByteSpan src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Constant-time equality: the running time depends only on the lengths,
/// never on the contents. Used for MAC/tag verification.
[[nodiscard]] bool constant_time_equal(ByteSpan a, ByteSpan b);

/// Zeroes `n` bytes at `p` through a compiler barrier, so the store cannot
/// be dead-store-eliminated even when the buffer is about to go out of
/// scope. This is the one sanctioned way to destroy key material; see
/// common/secret.hpp for the types that call it automatically.
void secure_wipe(void* p, std::size_t n);

/// Convenience overload for contiguous byte containers (std::array, Bytes).
inline void secure_wipe(std::span<std::uint8_t> buffer) {
  secure_wipe(buffer.data(), buffer.size());
}

}  // namespace xsearch
