// Secret-flow typing: wrappers that make key material a distinct type.
//
// Every long-lived secret in the tree (ChaCha/AEAD keys, Poly1305 one-time
// keys, X25519 private scalars and seeds, attestation root keys, HKDF
// output) lives inside Secret<N> or SecretBytes instead of a bare
// std::array/std::vector. The wrapper enforces, at compile time, the rules
// the privacy argument needs:
//
//   * construction is explicit — bytes never silently become secrets;
//   * operator== and operator<< are deleted — equality exists only through
//     constant_time_equal, and secrets cannot be logged or formatted;
//   * destruction and move-from wipe the buffer via secure_wipe(), so key
//     material does not linger in freed stack frames or heap blocks;
//   * the raw bytes are reachable only through expose(<sink>) — every read
//     of secret material is a named, greppable site, and tools/secret_lint.py
//     checks each sink tag against the registry in tools/secret_policy.toml.
//
// What deliberately stays plain (itself documentation): X25519 public keys
// and points, nonces, MAC tags, measurements, and sealed ciphertext.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <span>
#include <utility>

#include "common/bytes.hpp"

namespace xsearch {

/// Registered exposure sinks. Each `expose()` call names the one purpose
/// the raw bytes are read for; tools/secret_policy.toml holds the registry
/// (tag -> why that sink is sound) and tools/secret_lint.py rejects any
/// expose() whose tag is not listed there.
enum class SecretSink {
  kCipherCore,  // keying a cipher/MAC primitive (ChaCha20, Poly1305, HMAC)
  kCtCompare,   // feeding a constant-time comparison
  kSealPayload, // becoming part of an AEAD-sealed payload (e.g. checkpoints)
  kKdf,         // input keying material for a KDF (HKDF extract/expand)
  kTestVector,  // tests only: checking against published known-answer vectors
};

/// Fixed-size secret. N is the key size in bytes.
template <std::size_t N>
class Secret {
 public:
  /// The staging type: fill one of these (e.g. from a DRBG or a wire
  /// buffer), then absorb() it so the staging copy is wiped.
  using Raw = std::array<std::uint8_t, N>;

  /// A default-constructed secret is all zeroes (an obviously-unusable key).
  Secret() = default;

  /// Explicit lift from raw bytes. The caller still owns (and should wipe
  /// or absorb) the source; prefer absorb() for freshly derived material.
  explicit Secret(const Raw& raw) : bytes_(raw) {}

  /// Takes ownership of staged bytes and wipes the staging buffer, so the
  /// only live copy of the material is inside the wrapper.
  [[nodiscard]] static Secret absorb(Raw& raw) {
    Secret secret(raw);
    secure_wipe(raw.data(), raw.size());
    return secret;
  }

  Secret(const Secret&) = default;
  Secret& operator=(const Secret&) = default;
  Secret(Secret&& other) noexcept : bytes_(other.bytes_) { other.wipe(); }
  Secret& operator=(Secret&& other) noexcept {
    if (this != &other) {
      bytes_ = other.bytes_;
      other.wipe();
    }
    return *this;
  }
  ~Secret() { wipe(); }

  /// Secrets have no public identity. Compare with constant_time_equal.
  bool operator==(const Secret&) const = delete;

  [[nodiscard]] static constexpr std::size_t size() { return N; }

  /// The only door to the raw bytes. The sink tag names what the bytes are
  /// about to be used for; tools/secret_lint.py audits every call site.
  [[nodiscard]] std::span<const std::uint8_t, N> expose(SecretSink /*sink*/) const {
    return std::span<const std::uint8_t, N>(bytes_);
  }

  /// Constant-time equality of two secrets. Not an exposure: no raw
  /// pointer escapes, and the comparison never branches on contents.
  friend bool constant_time_equal(const Secret& a, const Secret& b) {
    return xsearch::constant_time_equal(ByteSpan(a.bytes_), ByteSpan(b.bytes_));
  }

  /// Constant-time equality against plain bytes (known-answer tests, tag
  /// checks against wire data).
  friend bool constant_time_equal(const Secret& a, ByteSpan b) {
    return xsearch::constant_time_equal(ByteSpan(a.bytes_), b);
  }

 private:
  void wipe() { secure_wipe(bytes_.data(), bytes_.size()); }

  Raw bytes_{};
};

/// Variable-length secret (HKDF output, attestation root keys). Same
/// discipline as Secret<N>: explicit construction, no ==/<<, wiped on
/// destroy and move-from, raw bytes only via expose(<sink>).
class SecretBytes {
 public:
  SecretBytes() = default;

  /// Adopts the buffer. Taking by && means no second plaintext copy is
  /// created; the moved-from vector holds nothing worth wiping.
  explicit SecretBytes(Bytes&& bytes) noexcept : bytes_(std::move(bytes)) {}

  SecretBytes(const SecretBytes& other) = default;
  SecretBytes& operator=(const SecretBytes& other) {
    if (this != &other) {
      wipe();
      bytes_ = other.bytes_;
    }
    return *this;
  }
  SecretBytes(SecretBytes&& other) noexcept : bytes_(std::move(other.bytes_)) {
    other.bytes_.clear();
  }
  SecretBytes& operator=(SecretBytes&& other) noexcept {
    if (this != &other) {
      wipe();
      bytes_ = std::move(other.bytes_);
      other.bytes_.clear();
    }
    return *this;
  }
  ~SecretBytes() { wipe(); }

  bool operator==(const SecretBytes&) const = delete;

  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  [[nodiscard]] bool empty() const { return bytes_.empty(); }

  [[nodiscard]] ByteSpan expose(SecretSink /*sink*/) const { return bytes_; }

  /// Secret-to-secret transfer: cuts a fixed-size key out of derived
  /// material (e.g. HKDF okm) without any expose() site in between.
  template <std::size_t N>
  [[nodiscard]] Secret<N> slice(std::size_t offset = 0) const {
    assert(offset + N <= bytes_.size());
    typename Secret<N>::Raw raw{};
    std::memcpy(raw.data(), bytes_.data() + offset, N);
    return Secret<N>::absorb(raw);
  }

  friend bool constant_time_equal(const SecretBytes& a, const SecretBytes& b) {
    return xsearch::constant_time_equal(ByteSpan(a.bytes_), ByteSpan(b.bytes_));
  }
  friend bool constant_time_equal(const SecretBytes& a, ByteSpan b) {
    return xsearch::constant_time_equal(ByteSpan(a.bytes_), b);
  }

 private:
  void wipe() { secure_wipe(bytes_.data(), bytes_.size()); }

  Bytes bytes_;
};

/// Secrets are not printable, period. Deleting the stream inserters turns a
/// `log << key` or ostringstream interpolation into a compile error instead
/// of a leak.
template <std::size_t N>
std::ostream& operator<<(std::ostream&, const Secret<N>&) = delete;
std::ostream& operator<<(std::ostream&, const SecretBytes&) = delete;

}  // namespace xsearch
