#pragma once

#include <cstdint>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace xsearch {

/// Retry discipline for a single logical call: capped exponential backoff
/// with decorrelated jitter (AWS architecture-blog variant: each sleep is
/// drawn uniformly from [base, 3 * previous], capped). Jitter is what keeps
/// a fleet of clients that failed together from retrying together.
///
/// The policy is a value type; per-call state lives in RetryState so one
/// policy can be shared by every connection of a client.
struct RetryPolicy {
  /// Total attempts including the first (1 = never retry). The default of 2
  /// matches the brokers' historical "retry exactly once" behaviour.
  std::uint32_t max_attempts = 2;
  Nanos initial_backoff = kMilli;
  Nanos max_backoff = 50 * kMilli;
};

/// Mutable per-call retry state: attempt counter + the jitter chain.
class RetryState {
 public:
  explicit RetryState(const RetryPolicy& policy)
      : policy_(policy), previous_(policy.initial_backoff) {}

  /// True while the policy allows another attempt after `attempts` failures.
  [[nodiscard]] bool should_retry() const {
    return attempts_ < policy_.max_attempts;
  }

  /// Record that an attempt ran (successful or not).
  void note_attempt() { ++attempts_; }

  [[nodiscard]] std::uint32_t attempts() const { return attempts_; }

  /// Next decorrelated-jitter sleep. Advances the chain.
  [[nodiscard]] Nanos next_backoff(Rng& rng) {
    const Nanos lo = policy_.initial_backoff;
    const Nanos hi = previous_ * 3;
    Nanos sleep = lo;
    if (hi > lo) {
      sleep = lo + static_cast<Nanos>(
                       rng.uniform(static_cast<std::uint64_t>(hi - lo) + 1));
    }
    if (sleep > policy_.max_backoff) sleep = policy_.max_backoff;
    previous_ = sleep;
    return sleep;
  }

 private:
  RetryPolicy policy_;
  std::uint32_t attempts_ = 0;
  Nanos previous_;
};

/// Token-bucket retry budget, one per connection: every completed request
/// deposits `deposit_per_request` tokens (clamped to `capacity`); every retry
/// withdraws one. When the bucket is empty, retries stop — a persistently
/// failing dependency degrades to one attempt per request instead of
/// multiplying load by max_attempts (the classic retry-stampede amplifier).
///
/// Not internally synchronized: brokers are single-caller by contract
/// (api::PrivateSearchClient serializes on sync_mutex_).
class RetryBudget {
 public:
  struct Options {
    double capacity = 10.0;
    double deposit_per_request = 0.5;
  };

  RetryBudget() : RetryBudget(Options{}) {}
  explicit RetryBudget(Options options)
      : options_(options), tokens_(options.capacity) {}

  /// A request completed (any outcome): earn back some retry headroom.
  void record_request() {
    tokens_ += options_.deposit_per_request;
    if (tokens_ > options_.capacity) tokens_ = options_.capacity;
  }

  /// Try to pay for one retry.
  [[nodiscard]] bool try_spend() {
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  [[nodiscard]] double tokens() const { return tokens_; }

 private:
  Options options_;
  double tokens_;
};

}  // namespace xsearch
