// Deterministic random number generation.
//
// Every stochastic component of the reproduction (dataset synthesis, query
// obfuscation, network latency models, load generators) draws randomness
// from an explicitly seeded `Rng` so that each experiment is reproducible
// from the seed value printed by the harness.
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded via SplitMix64 —
// fast, high-quality, and trivially portable.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace xsearch {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ pseudo-random generator with convenience distributions.
///
/// Not cryptographically secure — see `crypto::random_bytes` for key
/// material. Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed) {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  /// Next raw 64-bit output.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t uniform(std::uint64_t bound) {
    assert(bound > 0);
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform(range));
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p`.
  bool bernoulli(double p) { return uniform_double() < p; }

  /// Standard normal via Box–Muller.
  double normal(double mean = 0.0, double stddev = 1.0) {
    if (have_cached_normal_) {
      have_cached_normal_ = false;
      return mean + stddev * cached_normal_;
    }
    double u1 = uniform_double();
    while (u1 <= 1e-300) u1 = uniform_double();
    const double u2 = uniform_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    cached_normal_ = r * std::sin(kTwoPi * u2);
    have_cached_normal_ = true;
    return mean + stddev * r * std::cos(kTwoPi * u2);
  }

  /// Log-normal draw: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Exponential draw with rate `lambda` (> 0).
  double exponential(double lambda) {
    assert(lambda > 0);
    double u = uniform_double();
    while (u <= 1e-300) u = uniform_double();
    return -std::log(u) / lambda;
  }

  /// Forks an independent generator; the child stream is a deterministic
  /// function of the parent state, so fork order matters and is stable.
  Rng fork() { return Rng(next()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_normal_ = 0.0;
  bool have_cached_normal_ = false;
};

/// Samples from a Zipf(s) distribution over ranks {0, ..., n-1} in O(log n)
/// per draw using a precomputed CDF. Rank 0 is the most probable element.
///
/// Query-log vocabularies and user activity levels are both heavy-tailed;
/// the synthetic dataset generator leans on this sampler throughout.
class ZipfSampler {
 public:
  /// `n` must be >= 1; `exponent` is the Zipf skew (1.0 ≈ natural language).
  ZipfSampler(std::size_t n, double exponent);

  /// Draws a rank in [0, size()).
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

  /// Probability mass of a given rank.
  [[nodiscard]] double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
};

}  // namespace xsearch
