// Time sources.
//
// `WallClock` wraps std::chrono::steady_clock for real measurements
// (figure-5 throughput bench). `VirtualClock` is a manually advanced
// nanosecond counter used by the discrete-event network simulation
// (figure-7 end-to-end latency bench) so results are fully deterministic.
#pragma once

#include <chrono>
#include <cstdint>

namespace xsearch {

/// Nanoseconds since an arbitrary epoch.
using Nanos = std::int64_t;

constexpr Nanos kMicro = 1'000;
constexpr Nanos kMilli = 1'000'000;
constexpr Nanos kSecond = 1'000'000'000;

/// Monotonic wall-clock time in nanoseconds.
[[nodiscard]] inline Nanos wall_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deterministic, manually advanced clock for discrete-event simulation.
class VirtualClock {
 public:
  [[nodiscard]] Nanos now() const { return now_; }

  /// Advances time forward; `delta` must be non-negative.
  void advance(Nanos delta) {
    if (delta > 0) now_ += delta;
  }

  /// Jumps to an absolute time, never moving backwards.
  void advance_to(Nanos t) {
    if (t > now_) now_ = t;
  }

 private:
  Nanos now_ = 0;
};

/// RAII stopwatch around wall_now().
class Stopwatch {
 public:
  Stopwatch() : start_(wall_now()) {}
  [[nodiscard]] Nanos elapsed() const { return wall_now() - start_; }
  [[nodiscard]] double elapsed_seconds() const {
    return static_cast<double>(elapsed()) / static_cast<double>(kSecond);
  }
  void restart() { start_ = wall_now(); }

 private:
  Nanos start_;
};

}  // namespace xsearch
