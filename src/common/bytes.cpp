#include "common/bytes.hpp"

namespace xsearch {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

[[nodiscard]] int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string hex_encode(ByteSpan data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) return {};
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return {};
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool constant_time_equal(ByteSpan a, ByteSpan b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

void secure_wipe(void* p, std::size_t n) {
  if (p == nullptr || n == 0) return;
  // secret-lint: allow(secret-memset) this IS secure_wipe: this memset plus the asm barrier below is the primitive every other wipe routes through
  std::memset(p, 0, n);
  // The barrier tells the compiler `p`'s contents are observed, so the
  // memset above survives dead-store elimination at -O2.
  asm volatile("" : : "r"(p) : "memory");
}

}  // namespace xsearch
