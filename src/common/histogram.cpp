#include "common/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>

namespace xsearch {

Histogram::Histogram(int sub_bucket_bits)
    : sub_bucket_bits_(sub_bucket_bits),
      sub_bucket_count_(std::int64_t{1} << sub_bucket_bits) {
  assert(sub_bucket_bits >= 1 && sub_bucket_bits <= 16);
  counts_.resize(static_cast<std::size_t>(sub_bucket_count_) * 2, 0);
}

std::size_t Histogram::bucket_index(std::int64_t value) const {
  // Values < sub_bucket_count land linearly in the first two half-ranges;
  // beyond that each power-of-two range contributes sub_bucket_count/2
  // buckets of geometrically growing width.
  const auto v = static_cast<std::uint64_t>(std::max<std::int64_t>(value, 0));
  const int msb = 63 - std::countl_zero(v | 1);
  if (msb < sub_bucket_bits_) return static_cast<std::size_t>(v);
  const int shift = msb - sub_bucket_bits_ + 1;
  const auto sub = static_cast<std::size_t>(v >> shift);  // in [half, count)
  const auto range = static_cast<std::size_t>(shift);
  return range * static_cast<std::size_t>(sub_bucket_count_ / 2) + sub;
}

std::int64_t Histogram::bucket_upper_edge(std::size_t index) const {
  const auto half = static_cast<std::size_t>(sub_bucket_count_ / 2);
  if (index < static_cast<std::size_t>(sub_bucket_count_)) {
    return static_cast<std::int64_t>(index);
  }
  const std::size_t range = (index - half) / half;
  const std::size_t sub = index - range * half;  // in [half, count)
  return static_cast<std::int64_t>(((sub + 1) << range) - 1);
}

void Histogram::ensure_capacity(std::size_t index) {
  if (index >= counts_.size()) counts_.resize(index + 1, 0);
}

void Histogram::record(std::int64_t value) { record_n(value, 1); }

void Histogram::record_n(std::int64_t value, std::uint64_t count) {
  if (count == 0) return;
  value = std::max<std::int64_t>(value, 0);
  const std::size_t idx = bucket_index(value);
  ensure_capacity(idx);
  counts_[idx] += count;
  total_count_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
  max_value_ = std::max(max_value_, value);
  if (min_value_ < 0 || value < min_value_) min_value_ = value;
}

void Histogram::merge(const Histogram& other) {
  assert(sub_bucket_bits_ == other.sub_bucket_bits_);
  ensure_capacity(other.counts_.empty() ? 0 : other.counts_.size() - 1);
  for (std::size_t i = 0; i < other.counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_count_ += other.total_count_;
  sum_ += other.sum_;
  max_value_ = std::max(max_value_, other.max_value_);
  if (other.min_value_ >= 0 && (min_value_ < 0 || other.min_value_ < min_value_)) {
    min_value_ = other.min_value_;
  }
}

std::int64_t Histogram::min() const { return min_value_ < 0 ? 0 : min_value_; }

double Histogram::mean() const {
  return total_count_ == 0 ? 0.0 : sum_ / static_cast<double>(total_count_);
}

std::int64_t Histogram::value_at_quantile(double q) const {
  if (total_count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // The extremes answer exactly, not at bucket precision: q=0 is the
  // recorded minimum and q=1 the recorded maximum. Without this, q=0
  // returned the *upper* edge of the minimum's bucket — above min() by up
  // to the bucket width — which the recovery bench's across-respawn
  // comparisons would read as a phantom regression.
  if (q <= 0.0) return min();
  if (q >= 1.0) return max_value_;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_count_) + 0.5);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= target && counts_[i] > 0) {
      return std::min(bucket_upper_edge(i), max_value_);
    }
  }
  return max_value_;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_count_ = 0;
  max_value_ = 0;
  min_value_ = -1;
  sum_ = 0.0;
}

std::string Histogram::summary(double divisor, std::string_view unit) const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "count=%llu mean=%.3f%.*s p50=%.3f%.*s p99=%.3f%.*s max=%.3f%.*s",
                static_cast<unsigned long long>(total_count_),
                mean() / divisor, static_cast<int>(unit.size()), unit.data(),
                static_cast<double>(percentile(50)) / divisor,
                static_cast<int>(unit.size()), unit.data(),
                static_cast<double>(percentile(99)) / divisor,
                static_cast<int>(unit.size()), unit.data(),
                static_cast<double>(max_value_) / divisor,
                static_cast<int>(unit.size()), unit.data());
  return buf;
}

}  // namespace xsearch
