#include "common/rng.hpp"

#include <algorithm>
#include <cassert>

namespace xsearch {

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  assert(n >= 1);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  assert(rank < cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace xsearch
