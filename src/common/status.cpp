#include "common/status.hpp"

namespace xsearch {

std::string_view status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out(status_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace xsearch
