#include "common/status.hpp"

namespace xsearch {

std::string_view status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kOverloaded: return "OVERLOADED";
    case StatusCode::kUpstreamDown: return "UPSTREAM_DOWN";
  }
  return "UNKNOWN";
}

StatusCode status_code_from_wire(std::uint8_t raw) {
  switch (static_cast<StatusCode>(raw)) {
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kResourceExhausted:
    case StatusCode::kPermissionDenied:
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kDataLoss:
    case StatusCode::kInternal:
    case StatusCode::kOverloaded:
    case StatusCode::kUpstreamDown:
      return static_cast<StatusCode>(raw);
  }
  return StatusCode::kInternal;
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out(status_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace xsearch
