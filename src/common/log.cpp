#include "common/log.hpp"

#include <atomic>
#include <cstdio>

#include "common/mutex.hpp"

namespace xsearch {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_log_mutex;

[[nodiscard]] const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void log_line(LogLevel level, std::string_view file, int line, std::string_view msg) {
  // Strip directories from the file path for compact output.
  const auto slash = file.find_last_of('/');
  if (slash != std::string_view::npos) file.remove_prefix(slash + 1);
  MutexLock lock(g_log_mutex);
  std::fprintf(stderr, "[%s %.*s:%d] %.*s\n", level_tag(level),
               static_cast<int>(file.size()), file.data(), line,
               static_cast<int>(msg.size()), msg.data());
}
}  // namespace detail

}  // namespace xsearch
