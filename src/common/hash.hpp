// Heterogeneous (transparent) string hashing.
//
// Unordered containers keyed by std::string reject std::string_view lookups
// unless their hash and equality functors are transparent; without that,
// every probe materializes a temporary std::string. Hot paths that look up
// tokens, handler names or terms use this functor pair so lookups take any
// string-like argument without allocating:
//
//   std::unordered_map<std::string, T, StringHash, std::equal_to<>> map;
//   map.find(std::string_view{...});  // no temporary
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

namespace xsearch {

struct StringHash {
  using is_transparent = void;

  [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  [[nodiscard]] std::size_t operator()(const std::string& s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  [[nodiscard]] std::size_t operator()(const char* s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

}  // namespace xsearch
