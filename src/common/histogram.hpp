// Log-linear latency histogram (HdrHistogram-flavoured).
//
// Values are recorded in integer units (we use nanoseconds throughout) into
// buckets whose width grows geometrically, giving ~1% relative precision
// over a huge dynamic range at constant memory. Used by the load generator
// and the figure-5/7 benches to report percentiles without coordinated
// omission artefacts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xsearch {

class Histogram {
 public:
  /// `sub_bucket_bits` controls relative precision: each power-of-two range
  /// is split in 2^sub_bucket_bits linear sub-buckets (default 1/128 ≈ 0.8%).
  explicit Histogram(int sub_bucket_bits = 7);

  /// Records one observation (values clamp at 0 below).
  void record(std::int64_t value);

  /// Records `count` identical observations.
  void record_n(std::int64_t value, std::uint64_t count);

  /// Merges another histogram (same precision required).
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return total_count_; }
  [[nodiscard]] std::int64_t min() const;
  [[nodiscard]] std::int64_t max() const { return max_value_; }
  [[nodiscard]] double mean() const;

  /// Value at quantile q; returns 0 for an empty histogram regardless of q.
  /// Out-of-range q is clamped to [0, 1]; q == 0 returns `min()` and
  /// q == 1 returns `max()` exactly (not a bucket edge). Interior quantiles
  /// return the upper edge of the bucket containing q (i.e. "p99 <= value"
  /// semantics, like HdrHistogram), clamped to `max()`.
  [[nodiscard]] std::int64_t value_at_quantile(double q) const;

  /// Convenience: q in percent (e.g. 99.9).
  [[nodiscard]] std::int64_t percentile(double p) const {
    return value_at_quantile(p / 100.0);
  }

  void reset();

  /// One-line summary "count=... mean=... p50=... p99=... max=..." with the
  /// given unit divisor/label (e.g. 1e6, "ms").
  [[nodiscard]] std::string summary(double divisor, std::string_view unit) const;

 private:
  [[nodiscard]] std::size_t bucket_index(std::int64_t value) const;
  [[nodiscard]] std::int64_t bucket_upper_edge(std::size_t index) const;
  void ensure_capacity(std::size_t index);

  int sub_bucket_bits_;
  std::int64_t sub_bucket_count_;       // 2^sub_bucket_bits
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_count_ = 0;
  std::int64_t max_value_ = 0;
  std::int64_t min_value_ = -1;  // -1 = unset
  double sum_ = 0.0;
};

}  // namespace xsearch
