// Clang Thread Safety Analysis attribute macros.
//
// The repo's scaling story (sharded SessionTable, reader/writer history,
// fleet router lock) is enforced at runtime by TSan; these macros add the
// *compile-time* half: every guarded field and locking function declares
// its capability, and Clang's -Wthread-safety analysis proves each access
// is made under the right lock. On compilers without the analysis (GCC)
// the macros expand to nothing, so annotated code builds everywhere.
//
// Use through common/mutex.hpp's annotated Mutex/SharedMutex/CondVar
// wrappers — the analysis only tracks lock types that carry capability
// attributes, which std::mutex (libstdc++) does not.
//
// Naming follows the upstream clang docs (CAPABILITY/REQUIRES/ACQUIRE...)
// with an XS_ prefix.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define XS_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define XS_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Marks a class as a lock ("capability") the analysis tracks.
#define XS_CAPABILITY(x) XS_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks a RAII class whose constructor acquires and destructor releases.
#define XS_SCOPED_CAPABILITY XS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define XS_GUARDED_BY(x) XS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define XS_PT_GUARDED_BY(x) XS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Documents (and checks) lock-ordering between two capabilities.
#define XS_ACQUIRED_BEFORE(...) \
  XS_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define XS_ACQUIRED_AFTER(...) \
  XS_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function requires the capability held (exclusive / shared) on entry.
#define XS_REQUIRES(...) \
  XS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define XS_REQUIRES_SHARED(...) \
  XS_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusive / shared) and does not
/// release it before returning.
#define XS_ACQUIRE(...) \
  XS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define XS_ACQUIRE_SHARED(...) \
  XS_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (exclusive / shared / either).
#define XS_RELEASE(...) \
  XS_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define XS_RELEASE_SHARED(...) \
  XS_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define XS_RELEASE_GENERIC(...) \
  XS_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define XS_TRY_ACQUIRE(...) \
  XS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define XS_TRY_ACQUIRE_SHARED(...) \
  XS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define XS_EXCLUDES(...) XS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime, for the analysis) that the capability is held.
#define XS_ASSERT_CAPABILITY(x) XS_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))
#define XS_ASSERT_SHARED_CAPABILITY(x) \
  XS_THREAD_ANNOTATION_ATTRIBUTE(assert_shared_capability(x))

/// Function returns a reference to the given capability.
#define XS_RETURN_CAPABILITY(x) XS_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch. Every use must carry a written reason — the static
/// analysis self-test and the review checklist treat a bare escape as a
/// finding. Legitimate uses are patterns the analysis cannot express
/// (e.g. a movable RAII handle holding a lock across object boundaries).
#define XS_NO_THREAD_SAFETY_ANALYSIS \
  XS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
