// Lightweight Status / Result<T> error handling.
//
// Fallible operations across module boundaries return `Status` or
// `Result<T>` instead of throwing; exceptions are reserved for programming
// errors surfaced by assertions. This keeps the enclave boundary (which, on
// real SGX, cannot propagate C++ exceptions) honest in the simulation too.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace xsearch {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kResourceExhausted,
  kPermissionDenied,
  kUnavailable,
  kDeadlineExceeded,
  kDataLoss,
  kInternal,
  // Typed load-shedding / dependency-health statuses (failure-domain layer):
  // kOverloaded  - the callee refused the work to protect itself (queue full,
  //                queued past its deadline); retry later, with backoff.
  // kUpstreamDown - the callee's own dependency is unreachable or its circuit
  //                breaker is open; retrying the callee soon will not help.
  kOverloaded,
  kUpstreamDown,
};

/// Human-readable name of a status code, e.g. "INVALID_ARGUMENT".
[[nodiscard]] std::string_view status_code_name(StatusCode code);

/// A status code plus an optional diagnostic message.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return Status(); }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "CODE_NAME: message".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

[[nodiscard]] inline Status invalid_argument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
[[nodiscard]] inline Status not_found(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
[[nodiscard]] inline Status failed_precondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
[[nodiscard]] inline Status resource_exhausted(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
[[nodiscard]] inline Status permission_denied(std::string msg) {
  return {StatusCode::kPermissionDenied, std::move(msg)};
}
[[nodiscard]] inline Status unavailable(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
[[nodiscard]] inline Status deadline_exceeded(std::string msg) {
  return {StatusCode::kDeadlineExceeded, std::move(msg)};
}
[[nodiscard]] inline Status data_loss(std::string msg) {
  return {StatusCode::kDataLoss, std::move(msg)};
}
[[nodiscard]] inline Status internal_error(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
[[nodiscard]] inline Status overloaded(std::string msg) {
  return {StatusCode::kOverloaded, std::move(msg)};
}
[[nodiscard]] inline Status upstream_down(std::string msg) {
  return {StatusCode::kUpstreamDown, std::move(msg)};
}

/// Decodes a wire byte back into a StatusCode; unknown bytes (a newer peer's
/// codes) degrade to kInternal rather than being misread as something typed.
[[nodiscard]] StatusCode status_code_from_wire(std::uint8_t raw);

/// Either a value of type T or an error Status. Accessing `value()` on an
/// error result is a programming error (checked by assertion).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}                 // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {           // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(data_).is_ok() && "OK status carries no value");
  }

  [[nodiscard]] bool is_ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    assert(is_ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    assert(is_ok());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(data_);
  }

  /// Value if OK, otherwise `fallback`.
  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace xsearch

/// Propagates a non-OK Status from an expression, early-returning it.
#define XS_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::xsearch::Status xs_status_ = (expr);        \
    if (!xs_status_.is_ok()) return xs_status_;   \
  } while (false)
