#pragma once

#include <cstdint>
#include <limits>

#include "common/clock.hpp"

namespace xsearch {

/// An absolute point on the steady clock by which an operation must finish.
///
/// Deadlines — not per-call timeouts — are what propagates through a request
/// path: each hop computes `remaining()` against the same absolute point, so
/// time spent queueing in one layer shrinks the budget of every layer below
/// it. A default-constructed Deadline is infinite (never expires), which is
/// also the wire meaning of a zero budget field.
///
/// The wire carries deadlines as a *remaining budget* in milliseconds
/// (u32, 0 = no deadline) rather than an absolute time: the two endpoints do
/// not share a clock. Re-anchoring on receipt loses the network transit time;
/// that error is one-way latency, small against the multi-millisecond budgets
/// this is designed for.
class Deadline {
 public:
  /// Infinite: never expires.
  constexpr Deadline() = default;

  /// Expires `budget` from now. A non-positive budget is already expired.
  [[nodiscard]] static Deadline after(Nanos budget) {
    return Deadline(wall_now() + budget);
  }

  /// Expires at the absolute steady-clock instant `at`.
  [[nodiscard]] static Deadline at(Nanos when) { return Deadline(when); }

  [[nodiscard]] static constexpr Deadline infinite() { return Deadline(); }

  [[nodiscard]] constexpr bool is_infinite() const {
    return at_ == kInfinitePoint;
  }

  /// Remaining budget, clamped to >= 0. Infinite deadlines report the max
  /// representable budget.
  [[nodiscard]] Nanos remaining() const {
    if (is_infinite()) return kInfinitePoint;
    const Nanos left = at_ - wall_now();
    return left > 0 ? left : 0;
  }

  [[nodiscard]] bool expired() const {
    return !is_infinite() && wall_now() >= at_;
  }

  /// The earlier of two deadlines (infinite is the identity).
  [[nodiscard]] constexpr Deadline min(const Deadline& other) const {
    return at_ <= other.at_ ? *this : other;
  }

  /// Remaining budget as the wire's u32 millisecond field. 0 means "no
  /// deadline", so a live-but-nearly-expired deadline rounds up to 1 ms
  /// rather than silently becoming infinite; budgets beyond ~49 days clamp.
  [[nodiscard]] std::uint32_t budget_millis() const {
    if (is_infinite()) return 0;
    const Nanos left = remaining();
    if (left <= 0) return 1;  // expired stays a (tiny) deadline on the wire
    const Nanos millis = (left + kMilli - 1) / kMilli;
    constexpr Nanos kMax = std::numeric_limits<std::uint32_t>::max();
    return static_cast<std::uint32_t>(millis < kMax ? millis : kMax);
  }

  /// Inverse of budget_millis(): re-anchor a wire budget on the local clock.
  [[nodiscard]] static Deadline from_budget_millis(std::uint32_t millis) {
    if (millis == 0) return infinite();
    return after(static_cast<Nanos>(millis) * kMilli);
  }

 private:
  static constexpr Nanos kInfinitePoint = std::numeric_limits<Nanos>::max();

  explicit constexpr Deadline(Nanos at) : at_(at) {}

  Nanos at_ = kInfinitePoint;
};

}  // namespace xsearch
