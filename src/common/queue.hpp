// Bounded multi-producer multi-consumer queue.
//
// The proxy pipelines (X-Search worker pool, PEAS two-proxy chain, Tor relay
// chain) are connected by these queues in the throughput benchmark. The
// queue supports closing, after which pops drain remaining items and then
// report exhaustion — the standard shutdown idiom for worker pools.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace xsearch {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (or the queue is closed).
  /// Returns false if the queue was closed before the item could be added.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available; returns nullopt once the queue is
  /// closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      std::lock_guard lock(mutex_);
      if (items_.empty()) return std::nullopt;
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Closes the queue: pending and future pushes fail, pops drain then stop.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace xsearch
