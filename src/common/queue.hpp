// Bounded multi-producer multi-consumer queue.
//
// The proxy pipelines (X-Search worker pool, PEAS two-proxy chain, Tor relay
// chain) are connected by these queues in the throughput benchmark. The
// queue supports closing, after which pops drain remaining items and then
// report exhaustion — the standard shutdown idiom for worker pools.
//
// Lock discipline is machine-checked: `items_`/`closed_` are guarded by
// `mutex_` (Clang -Wthread-safety), and notifications are issued after the
// guard scope closes so waiters never wake into a still-held lock.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/mutex.hpp"

namespace xsearch {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (or the queue is closed).
  /// Returns false if the queue was closed before the item could be added.
  bool push(T item) {
    {
      MutexLock lock(mutex_);
      while (items_.size() >= capacity_ && !closed_) not_full_.wait(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T item) {
    {
      MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available; returns nullopt once the queue is
  /// closed *and* drained.
  std::optional<T> pop() {
    std::optional<T> out;
    {
      MutexLock lock(mutex_);
      while (items_.empty() && !closed_) not_empty_.wait(mutex_);
      if (items_.empty()) return std::nullopt;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      MutexLock lock(mutex_);
      if (items_.empty()) return std::nullopt;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Closes the queue: pending and future pushes fail, pops drain then stop.
  void close() {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ XS_GUARDED_BY(mutex_);
  bool closed_ XS_GUARDED_BY(mutex_) = false;
};

}  // namespace xsearch
