// Single-shot hybrid public-key encryption ("HPKE-lite").
//
// One X25519 ephemeral key agreement + HKDF + ChaCha20-Poly1305, producing
// an envelope only the recipient's private key can open, plus a symmetric
// response key both sides derive for the reply leg. Used by PEAS's group
// encryption to its issuer proxy and by the optional encrypted
// enclave→engine link (the paper's footnote 2: "Using HTTPS could be also
// supported by the SGX enclave").
#pragma once

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "crypto/aead.hpp"
#include "crypto/random.hpp"
#include "crypto/x25519.hpp"

namespace xsearch::crypto {

/// Result of opening an envelope: the plaintext and the key for the reply.
struct OpenedEnvelope {
  Bytes plaintext;
  AeadKey response_key{};
};

/// Seals `plaintext` to `recipient_pub`. `rng` supplies the ephemeral key.
/// On return `*response_key` holds the key for opening the reply.
[[nodiscard]] Bytes envelope_seal(const X25519Key& recipient_pub, SecureRandom& rng,
                                  ByteSpan aad, ByteSpan plaintext,
                                  AeadKey* response_key);

/// Opens an envelope with the recipient's key pair.
[[nodiscard]] Result<OpenedEnvelope> envelope_open(const X25519KeyPair& recipient,
                                                   ByteSpan aad, ByteSpan envelope);

/// Seals the reply under the envelope's response key.
[[nodiscard]] Bytes envelope_reply_seal(const AeadKey& response_key, ByteSpan aad,
                                        ByteSpan plaintext);

/// Opens a reply on the sender side.
[[nodiscard]] Result<Bytes> envelope_reply_open(const AeadKey& response_key,
                                                ByteSpan aad, ByteSpan sealed);

}  // namespace xsearch::crypto
