// SHA-256 (FIPS 180-4).
//
// Used for enclave measurement hashes, HMAC/HKDF, attestation report MACs
// and content digests. Incremental (init/update/final) and one-shot APIs.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace xsearch::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
inline constexpr std::size_t kSha256BlockSize = 64;

using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(ByteSpan data);
  /// Finalizes and returns the digest; the context must be reset() before
  /// further use.
  [[nodiscard]] Sha256Digest finalize();

  /// One-shot convenience.
  [[nodiscard]] static Sha256Digest hash(ByteSpan data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, kSha256BlockSize> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace xsearch::crypto
