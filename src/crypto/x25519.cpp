#include "crypto/x25519.hpp"

#include <cstring>

namespace xsearch::crypto {

namespace {

// Field element mod p = 2^255 - 19, five 51-bit limbs (radix 2^51).
struct Fe {
  std::uint64_t v[5];
};

constexpr std::uint64_t kMask51 = (std::uint64_t{1} << 51) - 1;

void fe_zero(Fe& h) { h = {{0, 0, 0, 0, 0}}; }
void fe_one(Fe& h) { h = {{1, 0, 0, 0, 0}}; }

void fe_add(Fe& h, const Fe& f, const Fe& g) {
  for (int i = 0; i < 5; ++i) h.v[i] = f.v[i] + g.v[i];
}

// h = f - g, adding a multiple of p (8p spread over the limbs) so limbs
// never go negative. Inputs must have limbs < 2^54.
void fe_sub(Fe& h, const Fe& f, const Fe& g) {
  constexpr std::uint64_t kTwo54m152 = (std::uint64_t{1} << 54) - 152;  // 8*(2^51-19)
  constexpr std::uint64_t kTwo54m8 = (std::uint64_t{1} << 54) - 8;      // 8*(2^51-1)
  h.v[0] = f.v[0] + kTwo54m152 - g.v[0];
  h.v[1] = f.v[1] + kTwo54m8 - g.v[1];
  h.v[2] = f.v[2] + kTwo54m8 - g.v[2];
  h.v[3] = f.v[3] + kTwo54m8 - g.v[3];
  h.v[4] = f.v[4] + kTwo54m8 - g.v[4];
}

using U128 = unsigned __int128;

void fe_carry(Fe& h, U128 t0, U128 t1, U128 t2, U128 t3, U128 t4) {
  std::uint64_t c;
  c = static_cast<std::uint64_t>(t0 >> 51);
  h.v[0] = static_cast<std::uint64_t>(t0) & kMask51;
  t1 += c;
  c = static_cast<std::uint64_t>(t1 >> 51);
  h.v[1] = static_cast<std::uint64_t>(t1) & kMask51;
  t2 += c;
  c = static_cast<std::uint64_t>(t2 >> 51);
  h.v[2] = static_cast<std::uint64_t>(t2) & kMask51;
  t3 += c;
  c = static_cast<std::uint64_t>(t3 >> 51);
  h.v[3] = static_cast<std::uint64_t>(t3) & kMask51;
  t4 += c;
  c = static_cast<std::uint64_t>(t4 >> 51);
  h.v[4] = static_cast<std::uint64_t>(t4) & kMask51;
  h.v[0] += c * 19;
  c = h.v[0] >> 51;
  h.v[0] &= kMask51;
  h.v[1] += c;
}

void fe_mul(Fe& h, const Fe& f, const Fe& g) {
  const std::uint64_t f0 = f.v[0], f1 = f.v[1], f2 = f.v[2], f3 = f.v[3], f4 = f.v[4];
  const std::uint64_t g0 = g.v[0], g1 = g.v[1], g2 = g.v[2], g3 = g.v[3], g4 = g.v[4];
  const std::uint64_t g1_19 = g1 * 19, g2_19 = g2 * 19, g3_19 = g3 * 19, g4_19 = g4 * 19;

  const U128 t0 = static_cast<U128>(f0) * g0 + static_cast<U128>(f1) * g4_19 +
                  static_cast<U128>(f2) * g3_19 + static_cast<U128>(f3) * g2_19 +
                  static_cast<U128>(f4) * g1_19;
  const U128 t1 = static_cast<U128>(f0) * g1 + static_cast<U128>(f1) * g0 +
                  static_cast<U128>(f2) * g4_19 + static_cast<U128>(f3) * g3_19 +
                  static_cast<U128>(f4) * g2_19;
  const U128 t2 = static_cast<U128>(f0) * g2 + static_cast<U128>(f1) * g1 +
                  static_cast<U128>(f2) * g0 + static_cast<U128>(f3) * g4_19 +
                  static_cast<U128>(f4) * g3_19;
  const U128 t3 = static_cast<U128>(f0) * g3 + static_cast<U128>(f1) * g2 +
                  static_cast<U128>(f2) * g1 + static_cast<U128>(f3) * g0 +
                  static_cast<U128>(f4) * g4_19;
  const U128 t4 = static_cast<U128>(f0) * g4 + static_cast<U128>(f1) * g3 +
                  static_cast<U128>(f2) * g2 + static_cast<U128>(f3) * g1 +
                  static_cast<U128>(f4) * g0;
  fe_carry(h, t0, t1, t2, t3, t4);
}

void fe_sq(Fe& h, const Fe& f) { fe_mul(h, f, f); }

void fe_sq_n(Fe& h, const Fe& f, int n) {
  fe_sq(h, f);
  for (int i = 1; i < n; ++i) fe_sq(h, h);
}

// h = f * 121666 (the (A+2)/4 constant of the Montgomery ladder).
void fe_mul121666(Fe& h, const Fe& f) {
  U128 t[5];
  for (int i = 0; i < 5; ++i) t[i] = static_cast<U128>(f.v[i]) * 121666;
  fe_carry(h, t[0], t[1], t[2], t[3], t[4]);
}

// h = f^(p-2) = 1/f, via the standard square-and-multiply chain.
void fe_invert(Fe& out, const Fe& z) {
  Fe z2, z9, z11, z2_5_0, z2_10_0, z2_20_0, z2_50_0, z2_100_0, t;
  fe_sq(z2, z);                    // 2
  fe_sq_n(t, z2, 2);               // 8
  fe_mul(z9, t, z);                // 9
  fe_mul(z11, z9, z2);             // 11
  fe_sq(t, z11);                   // 22
  fe_mul(z2_5_0, t, z9);           // 31 = 2^5 - 2^0
  fe_sq_n(t, z2_5_0, 5);           // 2^10 - 2^5
  fe_mul(z2_10_0, t, z2_5_0);      // 2^10 - 2^0
  fe_sq_n(t, z2_10_0, 10);         // 2^20 - 2^10
  fe_mul(z2_20_0, t, z2_10_0);     // 2^20 - 2^0
  fe_sq_n(t, z2_20_0, 20);         // 2^40 - 2^20
  fe_mul(t, t, z2_20_0);           // 2^40 - 2^0
  fe_sq_n(t, t, 10);               // 2^50 - 2^10
  fe_mul(z2_50_0, t, z2_10_0);     // 2^50 - 2^0
  fe_sq_n(t, z2_50_0, 50);         // 2^100 - 2^50
  fe_mul(z2_100_0, t, z2_50_0);    // 2^100 - 2^0
  fe_sq_n(t, z2_100_0, 100);       // 2^200 - 2^100
  fe_mul(t, t, z2_100_0);          // 2^200 - 2^0
  fe_sq_n(t, t, 50);               // 2^250 - 2^50
  fe_mul(t, t, z2_50_0);           // 2^250 - 2^0
  fe_sq_n(t, t, 5);                // 2^255 - 2^5
  fe_mul(out, t, z11);             // 2^255 - 21 = p - 2
}

void fe_from_bytes(Fe& h, const std::uint8_t* s) {
  const std::uint64_t w0 = xsearch::load_le64(s);
  const std::uint64_t w1 = xsearch::load_le64(s + 8);
  const std::uint64_t w2 = xsearch::load_le64(s + 16);
  const std::uint64_t w3 = xsearch::load_le64(s + 24);
  h.v[0] = w0 & kMask51;
  h.v[1] = ((w0 >> 51) | (w1 << 13)) & kMask51;
  h.v[2] = ((w1 >> 38) | (w2 << 26)) & kMask51;
  h.v[3] = ((w2 >> 25) | (w3 << 39)) & kMask51;
  h.v[4] = (w3 >> 12) & kMask51;  // top bit of the encoding is ignored
}

void fe_to_bytes(std::uint8_t* s, const Fe& f) {
  Fe h = f;
  // Two carry passes bring every limb below 2^51 (+ tiny epsilon).
  for (int pass = 0; pass < 2; ++pass) {
    std::uint64_t c = 0;
    for (int i = 0; i < 5; ++i) {
      h.v[i] += c;
      c = h.v[i] >> 51;
      h.v[i] &= kMask51;
    }
    h.v[0] += c * 19;
  }
  // Conditionally subtract p: compute h + 19, if bit 255 set then h >= p.
  std::uint64_t c = 19;
  std::uint64_t t[5];
  for (int i = 0; i < 5; ++i) {
    t[i] = h.v[i] + c;
    c = t[i] >> 51;
    t[i] &= kMask51;
  }
  const std::uint64_t q = c;  // 1 if h >= p
  // h -= q * p  <=>  h += 19q then drop bit 255.
  h.v[0] += 19 * q;
  c = 0;
  for (int i = 0; i < 5; ++i) {
    h.v[i] += c;
    c = h.v[i] >> 51;
    h.v[i] &= kMask51;
  }
  // c here is the dropped 2^255 carry (equals q).

  const std::uint64_t w0 = h.v[0] | (h.v[1] << 51);
  const std::uint64_t w1 = (h.v[1] >> 13) | (h.v[2] << 38);
  const std::uint64_t w2 = (h.v[2] >> 26) | (h.v[3] << 25);
  const std::uint64_t w3 = (h.v[3] >> 39) | (h.v[4] << 12);
  xsearch::store_le64(s, w0);
  xsearch::store_le64(s + 8, w1);
  xsearch::store_le64(s + 16, w2);
  xsearch::store_le64(s + 24, w3);
}

// Constant-time conditional swap of (f, g) when bit == 1.
void fe_cswap(Fe& f, Fe& g, std::uint64_t bit) {
  const std::uint64_t mask = 0 - bit;
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t x = mask & (f.v[i] ^ g.v[i]);
    f.v[i] ^= x;
    g.v[i] ^= x;
  }
}

}  // namespace

X25519Key x25519(const X25519Secret& scalar, const X25519Key& point) {
  const auto scalar_bytes = scalar.expose(SecretSink::kCipherCore);
  std::array<std::uint8_t, kX25519KeySize> e;
  std::memcpy(e.data(), scalar_bytes.data(), e.size());
  e[0] &= 248;
  e[31] &= 127;
  e[31] |= 64;

  Fe x1;
  fe_from_bytes(x1, point.data());

  Fe x2, z2, x3, z3;
  fe_one(x2);
  fe_zero(z2);
  x3 = x1;
  fe_one(z3);

  std::uint64_t swap = 0;
  for (int t = 254; t >= 0; --t) {
    const std::uint64_t k_t = (e[static_cast<std::size_t>(t / 8)] >> (t % 8)) & 1;
    swap ^= k_t;
    fe_cswap(x2, x3, swap);
    fe_cswap(z2, z3, swap);
    swap = k_t;

    Fe a, aa, b, bb, eo, c, d, da, cb, tmp;
    fe_add(a, x2, z2);
    fe_sq(aa, a);
    fe_sub(b, x2, z2);
    fe_sq(bb, b);
    fe_sub(eo, aa, bb);
    fe_add(c, x3, z3);
    fe_sub(d, x3, z3);
    fe_mul(da, d, a);
    fe_mul(cb, c, b);
    fe_add(tmp, da, cb);
    fe_sq(x3, tmp);
    fe_sub(tmp, da, cb);
    fe_sq(tmp, tmp);
    fe_mul(z3, x1, tmp);
    fe_mul(x2, aa, bb);
    // z2 = E * (AA + a24*E); with a24 = 121665 and AA = BB + E this is
    // equivalently E * (BB + 121666*E), which needs one constant only.
    fe_mul121666(tmp, eo);
    fe_add(tmp, bb, tmp);
    fe_mul(z2, eo, tmp);
  }
  fe_cswap(x2, x3, swap);
  fe_cswap(z2, z3, swap);

  Fe z_inv, out;
  fe_invert(z_inv, z2);
  fe_mul(out, x2, z_inv);

  X25519Key result;
  fe_to_bytes(result.data(), out);
  // secret-flow rule: the clamped scalar copy must not outlive the ladder
  // (this stack copy was a known pre-Secret leak).
  secure_wipe(e);
  return result;
}

X25519Key x25519_public_key(const X25519Secret& private_key) {
  X25519Key base{};
  base[0] = 9;
  return x25519(private_key, base);
}

X25519KeyPair x25519_keypair_from_seed(const X25519Secret& seed) {
  // The stored private key keeps the raw seed bits; clamping happens inside
  // the ladder on every use, so clamp-equivalent seeds still agree on the
  // public key.
  X25519KeyPair kp;
  kp.private_key = seed;
  kp.public_key = x25519_public_key(kp.private_key);
  return kp;
}

}  // namespace xsearch::crypto
