// ChaCha20 stream cipher (RFC 8439 §2.4).
//
// Combined with Poly1305 into the AEAD that protects every record on the
// client↔enclave channel and every onion layer of the Tor baseline.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/secret.hpp"

namespace xsearch::crypto {

inline constexpr std::size_t kChaChaKeySize = 32;
inline constexpr std::size_t kChaChaNonceSize = 12;

// Keys are Secret: zeroized on destroy/move, no ==/<<, raw bytes only via
// expose(<sink>). Nonces are public wire data and stay plain.
using ChaChaKey = Secret<kChaChaKeySize>;
using ChaChaNonce = std::array<std::uint8_t, kChaChaNonceSize>;

/// XORs `data` with the ChaCha20 keystream for (key, nonce) starting at
/// block `counter`. Encryption and decryption are the same operation.
[[nodiscard]] Bytes chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                                 std::uint32_t counter, ByteSpan data);

/// In-place variant: XORs `data` with the keystream where it sits. Lets the
/// AEAD seal path build ciphertext in a buffer reserved with room for the
/// tag, so sealing a record costs exactly one allocation.
void chacha20_xor_inplace(const ChaChaKey& key, const ChaChaNonce& nonce,
                          std::uint32_t counter, std::span<std::uint8_t> data);

/// Produces one raw 64-byte keystream block (used to derive Poly1305 keys).
[[nodiscard]] std::array<std::uint8_t, 64> chacha20_block(const ChaChaKey& key,
                                                          const ChaChaNonce& nonce,
                                                          std::uint32_t counter);

}  // namespace xsearch::crypto
