// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// HKDF derives the per-session record keys of the client↔enclave secure
// channel from the X25519 shared secret; HMAC also signs simulated
// attestation reports.
#pragma once

#include "common/bytes.hpp"
#include "common/secret.hpp"
#include "crypto/sha256.hpp"

namespace xsearch::crypto {

/// HMAC-SHA256 of `data` under `key` (any key length).
[[nodiscard]] Sha256Digest hmac_sha256(ByteSpan key, ByteSpan data);

/// HKDF-Extract: PRK = HMAC(salt, ikm).
[[nodiscard]] Sha256Digest hkdf_extract(ByteSpan salt, ByteSpan ikm);

/// HKDF-Expand: derives `length` bytes (<= 255*32) from a PRK and context
/// string `info`. The output is keying material by definition, so it comes
/// back as SecretBytes (zeroized, sliceable into fixed-size keys).
[[nodiscard]] SecretBytes hkdf_expand(ByteSpan prk, ByteSpan info, std::size_t length);

/// One-shot HKDF (extract + expand).
[[nodiscard]] SecretBytes hkdf(ByteSpan salt, ByteSpan ikm, ByteSpan info,
                               std::size_t length);

}  // namespace xsearch::crypto
