#include "crypto/secure_channel.hpp"

#include <cstring>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace xsearch::crypto {

namespace {
constexpr std::uint32_t kDirInitiatorToResponder = 0x49325200;  // "I2R"
constexpr char kHkdfSalt[] = "xsearch-secure-channel-v1";
}  // namespace

SecureChannel::SecureChannel(ChannelRole role, ByteSpan ss_ee, ByteSpan ss_es,
                             ByteSpan transcript) {
  Bytes ikm;
  ikm.reserve(ss_ee.size() + ss_es.size());
  append(ikm, ss_ee);
  append(ikm, ss_es);

  const Bytes salt = to_bytes(kHkdfSalt);
  const SecretBytes okm = hkdf(salt, ikm, transcript, 2 * kAeadKeySize);
  // secret-flow rule: KDF input keying material (the concatenated DH
  // results) must be wiped as soon as the keys are derived.
  secure_wipe(ikm);

  const AeadKey initiator_key = okm.slice<kAeadKeySize>(0);
  const AeadKey responder_key = okm.slice<kAeadKeySize>(kAeadKeySize);

  if (role == ChannelRole::kInitiator) {
    send_key_ = initiator_key;
    recv_key_ = responder_key;
  } else {
    send_key_ = responder_key;
    recv_key_ = initiator_key;
  }

  const Sha256Digest sid = Sha256::hash(transcript);
  session_id_.assign(sid.begin(), sid.end());
}

SecureChannel SecureChannel::initiator(const X25519KeyPair& local_ephemeral,
                                       const X25519Key& responder_static_pub,
                                       const X25519Key& responder_ephemeral_pub) {
  X25519Key ss_ee = x25519(local_ephemeral.private_key, responder_ephemeral_pub);
  X25519Key ss_es = x25519(local_ephemeral.private_key, responder_static_pub);
  Bytes transcript;
  append(transcript, local_ephemeral.public_key);
  append(transcript, responder_ephemeral_pub);
  append(transcript, responder_static_pub);
  SecureChannel channel(ChannelRole::kInitiator, ss_ee, ss_es, transcript);
  // secret-flow rule: DH shared-secret temporaries must not linger on the
  // stack once mixed into the session keys (a known pre-Secret leak here).
  secure_wipe(ss_ee);
  secure_wipe(ss_es);
  return channel;
}

SecureChannel SecureChannel::responder(const X25519KeyPair& local_static,
                                       const X25519KeyPair& local_ephemeral,
                                       const X25519Key& initiator_ephemeral_pub) {
  X25519Key ss_ee = x25519(local_ephemeral.private_key, initiator_ephemeral_pub);
  X25519Key ss_es = x25519(local_static.private_key, initiator_ephemeral_pub);
  Bytes transcript;
  append(transcript, initiator_ephemeral_pub);
  append(transcript, local_ephemeral.public_key);
  append(transcript, local_static.public_key);
  SecureChannel channel(ChannelRole::kResponder, ss_ee, ss_es, transcript);
  // secret-flow rule: DH shared-secret temporaries must not linger on the
  // stack once mixed into the session keys (a known pre-Secret leak here).
  secure_wipe(ss_ee);
  secure_wipe(ss_es);
  return channel;
}

Bytes SecureChannel::seal(ByteSpan plaintext) {
  // Directions use distinct keys, so a shared nonce prefix is safe.
  const AeadNonce nonce = make_nonce(kDirInitiatorToResponder, send_counter_++);
  return aead_seal(send_key_, nonce, session_id_, plaintext);
}

Result<Bytes> SecureChannel::open(ByteSpan record) {
  const AeadNonce nonce = make_nonce(kDirInitiatorToResponder, recv_counter_);
  auto plain = aead_open(recv_key_, nonce, session_id_, record);
  if (!plain) {
    return permission_denied("secure channel: record authentication failed");
  }
  ++recv_counter_;
  return *std::move(plain);
}

}  // namespace xsearch::crypto
