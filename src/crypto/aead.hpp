// ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//
// The single authenticated-encryption primitive of the project: it protects
// the client↔enclave secure channel, sealed enclave storage, PEAS group
// encryption, and each onion layer of the Tor baseline.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/poly1305.hpp"

namespace xsearch::crypto {

inline constexpr std::size_t kAeadKeySize = kChaChaKeySize;     // 32
inline constexpr std::size_t kAeadNonceSize = kChaChaNonceSize; // 12
inline constexpr std::size_t kAeadTagSize = kPoly1305TagSize;   // 16

using AeadKey = ChaChaKey;
using AeadNonce = ChaChaNonce;

/// Encrypts and authenticates `plaintext` with additional data `aad`.
/// Returns ciphertext || 16-byte tag.
[[nodiscard]] Bytes aead_seal(const AeadKey& key, const AeadNonce& nonce, ByteSpan aad,
                              ByteSpan plaintext);

/// Verifies and decrypts; returns nullopt on any authentication failure.
[[nodiscard]] std::optional<Bytes> aead_open(const AeadKey& key, const AeadNonce& nonce,
                                             ByteSpan aad, ByteSpan sealed);

/// Builds a 12-byte nonce from a 64-bit counter (low 8 bytes, LE) and a
/// 4-byte channel/direction prefix, the standard record-layer construction.
[[nodiscard]] AeadNonce make_nonce(std::uint32_t prefix, std::uint64_t counter);

}  // namespace xsearch::crypto
