#include "crypto/random.hpp"

#include <cstring>
#include <random>

namespace xsearch::crypto {

SecureRandom::SecureRandom() {
  // tcb-lint: allow(trusted-insecure-rng) this IS SecureRandom's entropy ingress: the one sanctioned std::random_device use, stirred into the pool exactly once at seeding
  std::random_device rd;
  ChaChaKey::Raw raw{};
  for (std::size_t i = 0; i < raw.size(); i += 4) {
    const std::uint32_t word = rd();
    std::memcpy(raw.data() + i, &word, 4);
  }
  key_ = ChaChaKey::absorb(raw);
}

SecureRandom::SecureRandom(const ChaChaKey& seed) : key_(seed) {}

void SecureRandom::fill(std::span<std::uint8_t> out) {
  std::size_t offset = 0;
  while (offset < out.size()) {
    // Each request consumes one fresh nonce; block 0 yields 64 bytes.
    const ChaChaNonce nonce = [&] {
      ChaChaNonce n{};
      store_le64(n.data(), counter_++);
      return n;
    }();
    auto block = chacha20_block(key_, nonce, 0);
    const std::size_t n = std::min<std::size_t>(block.size(), out.size() - offset);
    std::memcpy(out.data() + offset, block.data(), n);
    // Unconsumed tail is future output under key_; wipe the whole block.
    secure_wipe(block);
    offset += n;
  }
}

Bytes SecureRandom::bytes(std::size_t n) {
  Bytes out(n);
  fill(out);
  return out;
}

ChaChaKey SecureRandom::key() {
  ChaChaKey::Raw raw;
  fill(raw);
  return ChaChaKey::absorb(raw);
}

}  // namespace xsearch::crypto
