#include "crypto/hmac.hpp"

#include <cassert>
#include <cstring>

namespace xsearch::crypto {

Sha256Digest hmac_sha256(ByteSpan key, ByteSpan data) {
  std::array<std::uint8_t, kSha256BlockSize> block_key{};
  if (key.size() > kSha256BlockSize) {
    const Sha256Digest hashed = Sha256::hash(key);
    std::memcpy(block_key.data(), hashed.data(), hashed.size());
  } else if (!key.empty()) {
    // Guard: memcpy from a null source is UB even for zero bytes, and an
    // empty span's data() may be null (HKDF uses empty salts).
    std::memcpy(block_key.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kSha256BlockSize> ipad;
  std::array<std::uint8_t, kSha256BlockSize> opad;
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad[i] = block_key[i] ^ 0x36;
    opad[i] = block_key[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  const Sha256Digest inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finalize();
}

Sha256Digest hkdf_extract(ByteSpan salt, ByteSpan ikm) { return hmac_sha256(salt, ikm); }

Bytes hkdf_expand(ByteSpan prk, ByteSpan info, std::size_t length) {
  assert(length <= 255 * kSha256DigestSize);
  Bytes okm;
  okm.reserve(length);
  Sha256Digest t{};
  std::size_t t_len = 0;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    Bytes block;
    block.reserve(t_len + info.size() + 1);
    block.insert(block.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(t_len));
    append(block, info);
    block.push_back(counter++);
    t = hmac_sha256(prk, block);
    t_len = t.size();
    const std::size_t take = std::min(t.size(), length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return okm;
}

Bytes hkdf(ByteSpan salt, ByteSpan ikm, ByteSpan info, std::size_t length) {
  const Sha256Digest prk = hkdf_extract(salt, ikm);
  return hkdf_expand(prk, info, length);
}

}  // namespace xsearch::crypto
