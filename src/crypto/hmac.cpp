#include "crypto/hmac.hpp"

#include <cassert>
#include <cstring>

namespace xsearch::crypto {

Sha256Digest hmac_sha256(ByteSpan key, ByteSpan data) {
  std::array<std::uint8_t, kSha256BlockSize> block_key{};
  if (key.size() > kSha256BlockSize) {
    const Sha256Digest hashed = Sha256::hash(key);
    std::memcpy(block_key.data(), hashed.data(), hashed.size());
  } else if (!key.empty()) {
    // Guard: memcpy from a null source is UB even for zero bytes, and an
    // empty span's data() may be null (HKDF uses empty salts).
    std::memcpy(block_key.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kSha256BlockSize> ipad;
  std::array<std::uint8_t, kSha256BlockSize> opad;
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad[i] = block_key[i] ^ 0x36;
    opad[i] = block_key[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  const Sha256Digest inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  const Sha256Digest mac = outer.finalize();

  // secret-flow rule: key-derived scratch (block_key and the ipad/opad
  // schedules, each an XOR of the key) must not outlive the computation.
  secure_wipe(block_key);
  secure_wipe(ipad);
  secure_wipe(opad);
  return mac;
}

Sha256Digest hkdf_extract(ByteSpan salt, ByteSpan ikm) { return hmac_sha256(salt, ikm); }

SecretBytes hkdf_expand(ByteSpan prk, ByteSpan info, std::size_t length) {
  assert(length <= 255 * kSha256DigestSize);
  Bytes okm;
  // Reserved up front so the SecretBytes adoption below owns the only
  // allocation the key material ever touched (no realloc leaves a copy).
  okm.reserve(length);
  Sha256Digest t{};
  std::size_t t_len = 0;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    Bytes block;
    block.reserve(t_len + info.size() + 1);
    block.insert(block.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(t_len));
    append(block, info);
    block.push_back(counter++);
    t = hmac_sha256(prk, block);
    // The block embeds the previous chaining value T(i-1).
    secure_wipe(block);
    t_len = t.size();
    const std::size_t take = std::min(t.size(), length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  secure_wipe(t);
  return SecretBytes(std::move(okm));
}

SecretBytes hkdf(ByteSpan salt, ByteSpan ikm, ByteSpan info, std::size_t length) {
  Sha256Digest prk = hkdf_extract(salt, ikm);
  SecretBytes okm = hkdf_expand(prk, info, length);
  // The PRK alone reconstructs every derived key; wipe it on the way out.
  secure_wipe(prk);
  return okm;
}

}  // namespace xsearch::crypto
