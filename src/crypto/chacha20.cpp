#include "crypto/chacha20.hpp"

#include <bit>

namespace xsearch::crypto {

namespace {

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

using State = std::array<std::uint32_t, 16>;

[[nodiscard]] State make_state(const ChaChaKey& key, const ChaChaNonce& nonce,
                               std::uint32_t counter) {
  const auto key_bytes = key.expose(SecretSink::kCipherCore);
  State s;
  s[0] = 0x61707865;  // "expa"
  s[1] = 0x3320646e;  // "nd 3"
  s[2] = 0x79622d32;  // "2-by"
  s[3] = 0x6b206574;  // "te k"
  for (int i = 0; i < 8; ++i) s[static_cast<std::size_t>(4 + i)] = xsearch::load_le32(key_bytes.data() + 4 * i);
  s[12] = counter;
  for (int i = 0; i < 3; ++i) s[static_cast<std::size_t>(13 + i)] = xsearch::load_le32(nonce.data() + 4 * i);
  return s;
}

void core(const State& input, std::array<std::uint8_t, 64>& out) {
  State x = input;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (std::size_t i = 0; i < 16; ++i) {
    xsearch::store_le32(out.data() + 4 * i, x[i] + input[i]);
  }
}

}  // namespace

std::array<std::uint8_t, 64> chacha20_block(const ChaChaKey& key, const ChaChaNonce& nonce,
                                            std::uint32_t counter) {
  std::array<std::uint8_t, 64> out;
  State state = make_state(key, nonce, counter);
  core(state, out);
  // The state words embed the key; don't leave them on the stack.
  secure_wipe(state.data(), sizeof(state));
  return out;
}

void chacha20_xor_inplace(const ChaChaKey& key, const ChaChaNonce& nonce,
                          std::uint32_t counter, std::span<std::uint8_t> data) {
  State state = make_state(key, nonce, counter);
  std::array<std::uint8_t, 64> keystream;
  std::size_t offset = 0;
  while (offset < data.size()) {
    core(state, keystream);
    ++state[12];
    const std::size_t n = std::min<std::size_t>(64, data.size() - offset);
    for (std::size_t i = 0; i < n; ++i) data[offset + i] ^= keystream[i];
    offset += n;
  }
  // Key schedule and unconsumed keystream are key-equivalent material.
  secure_wipe(state.data(), sizeof(state));
  secure_wipe(keystream);
}

Bytes chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce, std::uint32_t counter,
                   ByteSpan data) {
  Bytes out(data.begin(), data.end());
  chacha20_xor_inplace(key, nonce, counter, out);
  return out;
}

}  // namespace xsearch::crypto
