// X25519 Diffie–Hellman (RFC 7748) over Curve25519.
//
// Provides the key agreement used by (a) the client↔enclave secure-channel
// handshake after attestation and (b) PEAS's hybrid group encryption.
// Implemented with 5×51-bit limbs and a constant-time Montgomery ladder.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/secret.hpp"

namespace xsearch::crypto {

inline constexpr std::size_t kX25519KeySize = 32;

/// Public points / public keys: plain bytes on purpose — they cross the
/// wire in the clear and being plain documents that.
using X25519Key = std::array<std::uint8_t, kX25519KeySize>;

/// Private scalars and key seeds: Secret (zeroized, no ==/<<, expose-only).
using X25519Secret = Secret<kX25519KeySize>;

/// Scalar multiplication: out = scalar * point (u-coordinate only).
/// The scalar is clamped per RFC 7748 before use. The result is a DH
/// shared secret; callers feed it to a KDF and secure_wipe it.
[[nodiscard]] X25519Key x25519(const X25519Secret& scalar, const X25519Key& point);

/// Computes the public key for a private scalar (scalar * base point 9).
[[nodiscard]] X25519Key x25519_public_key(const X25519Secret& private_key);

/// An X25519 key pair. Only the private half is secret-typed.
struct X25519KeyPair {
  X25519Secret private_key;
  X25519Key public_key{};
};

/// Derives a key pair deterministically from 32 bytes of seed material.
[[nodiscard]] X25519KeyPair x25519_keypair_from_seed(const X25519Secret& seed);

}  // namespace xsearch::crypto
