// Cryptographic random byte generation.
//
// A ChaCha20-based deterministic random bit generator. Seeded from
// std::random_device by default; tests and the deterministic simulation
// seed it explicitly so key material is reproducible when desired.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/chacha20.hpp"

namespace xsearch::crypto {

/// ChaCha20-backed DRBG. Not thread-safe; create one per thread.
class SecureRandom {
 public:
  /// Seeds from std::random_device entropy.
  SecureRandom();

  /// Deterministic seeding (tests / reproducible simulations).
  explicit SecureRandom(const ChaChaKey& seed);

  /// Fills `out` with pseudo-random bytes.
  void fill(std::span<std::uint8_t> out);

  /// Returns `n` pseudo-random bytes.
  [[nodiscard]] Bytes bytes(std::size_t n);

  /// Returns a random 32-byte key/seed.
  [[nodiscard]] ChaChaKey key();

 private:
  ChaChaKey key_{};
  std::uint64_t counter_ = 0;
};

}  // namespace xsearch::crypto
