// Cryptographic random byte generation.
//
// A ChaCha20-based deterministic random bit generator. Seeded from
// std::random_device by default; tests and the deterministic simulation
// seed it explicitly so key material is reproducible when desired.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/chacha20.hpp"

namespace xsearch::crypto {

/// ChaCha20-backed DRBG. Not thread-safe; create one per thread.
class SecureRandom {
 public:
  /// Seeds from std::random_device entropy.
  SecureRandom();

  /// Deterministic seeding (tests / reproducible simulations).
  explicit SecureRandom(const ChaChaKey& seed);

  /// Fills `out` with pseudo-random bytes.
  void fill(std::span<std::uint8_t> out);

  /// Returns `n` pseudo-random bytes.
  [[nodiscard]] Bytes bytes(std::size_t n);

  /// Returns a random 32-byte key/seed, already secret-typed.
  [[nodiscard]] ChaChaKey key();

 private:
  ChaChaKey key_;
  std::uint64_t counter_ = 0;
};

/// Deterministic, domain-separated 32-byte seed: the 64-bit configuration
/// seed in bytes 0-7 (LE) and a per-component tag in byte 31, so every
/// component seeded from one simulation seed draws a disjoint ChaCha
/// stream. The staging buffer is absorbed (wiped) before returning.
[[nodiscard]] inline ChaChaKey domain_seed(std::uint64_t seed, std::uint8_t tag) {
  ChaChaKey::Raw raw{};
  store_le64(raw.data(), seed);
  raw[31] = tag;
  return ChaChaKey::absorb(raw);
}

}  // namespace xsearch::crypto
