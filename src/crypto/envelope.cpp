#include "crypto/envelope.hpp"

#include <cstring>

#include "crypto/hmac.hpp"

namespace xsearch::crypto {

namespace {
constexpr char kInfoRequest[] = "xsearch-envelope-request-v1";
constexpr char kInfoResponse[] = "xsearch-envelope-response-v1";
constexpr std::uint32_t kNonceRequest = 0x454e5251;   // "ENRQ"
constexpr std::uint32_t kNonceResponse = 0x454e5250;  // "ENRP"

struct KeyPairKeys {
  AeadKey request;
  AeadKey response;
};

// Takes the DH result by value: the call-site temporary is elided into the
// parameter, so the wipe below reaches the only copy of the shared secret.
[[nodiscard]] KeyPairKeys derive_keys(X25519Key shared) {
  KeyPairKeys keys;
  keys.request =
      hkdf(/*salt=*/{}, shared, to_bytes(kInfoRequest), kAeadKeySize).slice<kAeadKeySize>();
  keys.response =
      hkdf(/*salt=*/{}, shared, to_bytes(kInfoResponse), kAeadKeySize).slice<kAeadKeySize>();
  // secret-flow rule: the DH shared secret is KDF input only.
  secure_wipe(shared);
  return keys;
}
}  // namespace

Bytes envelope_seal(const X25519Key& recipient_pub, SecureRandom& rng, ByteSpan aad,
                    ByteSpan plaintext, AeadKey* response_key) {
  const auto ephemeral = x25519_keypair_from_seed(rng.key());
  const KeyPairKeys keys = derive_keys(x25519(ephemeral.private_key, recipient_pub));
  if (response_key != nullptr) *response_key = keys.response;

  Bytes envelope(ephemeral.public_key.begin(), ephemeral.public_key.end());
  append(envelope,
         aead_seal(keys.request, make_nonce(kNonceRequest, 0), aad, plaintext));
  return envelope;
}

Result<OpenedEnvelope> envelope_open(const X25519KeyPair& recipient, ByteSpan aad,
                                     ByteSpan envelope) {
  if (envelope.size() < kX25519KeySize + kAeadTagSize) {
    return invalid_argument("envelope too short");
  }
  X25519Key sender_eph;
  std::memcpy(sender_eph.data(), envelope.data(), sender_eph.size());
  const KeyPairKeys keys = derive_keys(x25519(recipient.private_key, sender_eph));

  auto plain = aead_open(keys.request, make_nonce(kNonceRequest, 0), aad,
                         envelope.subspan(sender_eph.size()));
  if (!plain) return permission_denied("envelope authentication failed");

  OpenedEnvelope out;
  out.plaintext = *std::move(plain);
  out.response_key = keys.response;
  return out;
}

Bytes envelope_reply_seal(const AeadKey& response_key, ByteSpan aad, ByteSpan plaintext) {
  return aead_seal(response_key, make_nonce(kNonceResponse, 0), aad, plaintext);
}

Result<Bytes> envelope_reply_open(const AeadKey& response_key, ByteSpan aad,
                                  ByteSpan sealed) {
  auto plain = aead_open(response_key, make_nonce(kNonceResponse, 0), aad, sealed);
  if (!plain) return permission_denied("envelope reply authentication failed");
  return *std::move(plain);
}

}  // namespace xsearch::crypto
