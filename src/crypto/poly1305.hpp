// Poly1305 one-time authenticator (RFC 8439 §2.5).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/secret.hpp"

namespace xsearch::crypto {

inline constexpr std::size_t kPoly1305KeySize = 32;
inline constexpr std::size_t kPoly1305TagSize = 16;

// The one-time key is Secret (it is keystream under the AEAD key); the tag
// is public wire data and stays plain.
using Poly1305Key = Secret<kPoly1305KeySize>;
using Poly1305Tag = std::array<std::uint8_t, kPoly1305TagSize>;

/// Computes the Poly1305 tag of `data` under a (one-time!) 32-byte key.
[[nodiscard]] Poly1305Tag poly1305(const Poly1305Key& key, ByteSpan data);

}  // namespace xsearch::crypto
