#include "crypto/aead.hpp"

#include <cstring>

namespace xsearch::crypto {

namespace {

/// Poly1305 key = first 32 bytes of the ChaCha20 keystream at counter 0.
[[nodiscard]] Poly1305Key derive_mac_key(const AeadKey& key, const AeadNonce& nonce) {
  auto block = chacha20_block(key, nonce, 0);
  Poly1305Key::Raw raw;
  std::memcpy(raw.data(), block.data(), raw.size());
  const Poly1305Key mac_key = Poly1305Key::absorb(raw);
  // The whole keystream block is MAC-key material; wipe the staging copy.
  secure_wipe(block);
  return mac_key;
}

/// MAC input = aad || pad16 || ciphertext || pad16 || le64(|aad|) || le64(|ct|).
[[nodiscard]] Poly1305Tag compute_tag(const Poly1305Key& mac_key, ByteSpan aad,
                                      ByteSpan ciphertext) {
  Bytes mac_data;
  mac_data.reserve(aad.size() + ciphertext.size() + 32);
  append(mac_data, aad);
  mac_data.resize((mac_data.size() + 15) / 16 * 16, 0);
  append(mac_data, ciphertext);
  mac_data.resize((mac_data.size() + 15) / 16 * 16, 0);
  std::uint8_t lengths[16];
  store_le64(lengths, aad.size());
  store_le64(lengths + 8, ciphertext.size());
  append(mac_data, ByteSpan(lengths, 16));
  return poly1305(mac_key, mac_data);
}

}  // namespace

Bytes aead_seal(const AeadKey& key, const AeadNonce& nonce, ByteSpan aad,
                ByteSpan plaintext) {
  // One allocation for the whole record: ciphertext is encrypted in place
  // in a buffer reserved with room for the tag.
  Bytes out;
  out.reserve(plaintext.size() + kAeadTagSize);
  out.assign(plaintext.begin(), plaintext.end());
  chacha20_xor_inplace(key, nonce, 1, out);
  const Poly1305Tag tag = compute_tag(derive_mac_key(key, nonce), aad, out);
  append(out, tag);
  return out;
}

std::optional<Bytes> aead_open(const AeadKey& key, const AeadNonce& nonce, ByteSpan aad,
                               ByteSpan sealed) {
  if (sealed.size() < kAeadTagSize) return std::nullopt;
  const ByteSpan ciphertext = sealed.first(sealed.size() - kAeadTagSize);
  const ByteSpan tag = sealed.last(kAeadTagSize);
  const Poly1305Tag expected = compute_tag(derive_mac_key(key, nonce), aad, ciphertext);
  if (!constant_time_equal(expected, tag)) return std::nullopt;
  return chacha20_xor(key, nonce, 1, ciphertext);
}

AeadNonce make_nonce(std::uint32_t prefix, std::uint64_t counter) {
  AeadNonce nonce;
  store_le32(nonce.data(), prefix);
  store_le64(nonce.data() + 4, counter);
  return nonce;
}

}  // namespace xsearch::crypto
