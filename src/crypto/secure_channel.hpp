// Authenticated secure channel between a client broker and an enclave.
//
// A Noise-NK-flavoured handshake: the initiator (client) knows the
// responder's static X25519 key in advance — in X-Search it learns and
// *verifies* that key through SGX remote attestation (see sgx/attestation).
// Two Diffie–Hellman results (ephemeral-ephemeral and ephemeral-static) are
// mixed through HKDF into one AEAD key per direction; records carry a
// per-direction monotonically increasing nonce counter, so replayed or
// reordered records fail authentication.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "crypto/aead.hpp"
#include "crypto/x25519.hpp"

namespace xsearch::crypto {

/// Role disambiguates the two key/nonce directions.
enum class ChannelRole { kInitiator, kResponder };

/// Symmetric state of an established channel.
class SecureChannel {
 public:
  /// Initiator side: combine our ephemeral keys with the responder's static
  /// and ephemeral public keys.
  [[nodiscard]] static SecureChannel initiator(const X25519KeyPair& local_ephemeral,
                                               const X25519Key& responder_static_pub,
                                               const X25519Key& responder_ephemeral_pub);

  /// Responder side: mirror of `initiator`.
  [[nodiscard]] static SecureChannel responder(const X25519KeyPair& local_static,
                                               const X25519KeyPair& local_ephemeral,
                                               const X25519Key& initiator_ephemeral_pub);

  /// Encrypts one record for the peer. Thread-compatible (single writer).
  [[nodiscard]] Bytes seal(ByteSpan plaintext);

  /// Decrypts the next record from the peer; fails on tampering, replay,
  /// truncation or reordering.
  [[nodiscard]] Result<Bytes> open(ByteSpan record);

  /// Session identifier (hash of the handshake transcript); both ends agree.
  [[nodiscard]] const Bytes& session_id() const { return session_id_; }

 private:
  SecureChannel(ChannelRole role, ByteSpan ss_ee, ByteSpan ss_es,
                ByteSpan transcript);

  AeadKey send_key_;
  AeadKey recv_key_;
  std::uint64_t send_counter_ = 0;
  std::uint64_t recv_counter_ = 0;
  Bytes session_id_;
};

}  // namespace xsearch::crypto
