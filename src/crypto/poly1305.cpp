#include "crypto/poly1305.hpp"

#include <cstring>

namespace xsearch::crypto {

// 26-bit limb implementation (after poly1305-donna): the accumulator and
// multiplier are held in five 26-bit limbs so products fit in 64 bits.
Poly1305Tag poly1305(const Poly1305Key& key, ByteSpan data) {
  const auto key_bytes = key.expose(SecretSink::kCipherCore);
  // r is clamped per the RFC.
  const std::uint32_t t0 = load_le32(key_bytes.data() + 0);
  const std::uint32_t t1 = load_le32(key_bytes.data() + 4);
  const std::uint32_t t2 = load_le32(key_bytes.data() + 8);
  const std::uint32_t t3 = load_le32(key_bytes.data() + 12);

  const std::uint32_t r0 = t0 & 0x3ffffff;
  const std::uint32_t r1 = ((t0 >> 26) | (t1 << 6)) & 0x3ffff03;
  const std::uint32_t r2 = ((t1 >> 20) | (t2 << 12)) & 0x3ffc0ff;
  const std::uint32_t r3 = ((t2 >> 14) | (t3 << 18)) & 0x3f03fff;
  const std::uint32_t r4 = (t3 >> 8) & 0x00fffff;

  const std::uint32_t s1 = r1 * 5;
  const std::uint32_t s2 = r2 * 5;
  const std::uint32_t s3 = r3 * 5;
  const std::uint32_t s4 = r4 * 5;

  std::uint32_t h0 = 0, h1 = 0, h2 = 0, h3 = 0, h4 = 0;

  std::size_t offset = 0;
  const std::size_t len = data.size();
  while (offset < len) {
    std::uint8_t block[17] = {0};
    const std::size_t n = std::min<std::size_t>(16, len - offset);
    std::memcpy(block, data.data() + offset, n);
    block[n] = 1;  // append the 2^(8*n) bit
    offset += n;

    const std::uint32_t b0 = load_le32(block + 0);
    const std::uint32_t b1 = load_le32(block + 4);
    const std::uint32_t b2 = load_le32(block + 8);
    const std::uint32_t b3 = load_le32(block + 12);
    const std::uint32_t b4 = block[16];

    h0 += b0 & 0x3ffffff;
    h1 += ((b0 >> 26) | (b1 << 6)) & 0x3ffffff;
    h2 += ((b1 >> 20) | (b2 << 12)) & 0x3ffffff;
    h3 += ((b2 >> 14) | (b3 << 18)) & 0x3ffffff;
    h4 += (b3 >> 8) | (static_cast<std::uint32_t>(b4) << 24);

    // h *= r (mod 2^130 - 5)
    const std::uint64_t d0 =
        static_cast<std::uint64_t>(h0) * r0 + static_cast<std::uint64_t>(h1) * s4 +
        static_cast<std::uint64_t>(h2) * s3 + static_cast<std::uint64_t>(h3) * s2 +
        static_cast<std::uint64_t>(h4) * s1;
    std::uint64_t d1 =
        static_cast<std::uint64_t>(h0) * r1 + static_cast<std::uint64_t>(h1) * r0 +
        static_cast<std::uint64_t>(h2) * s4 + static_cast<std::uint64_t>(h3) * s3 +
        static_cast<std::uint64_t>(h4) * s2;
    std::uint64_t d2 =
        static_cast<std::uint64_t>(h0) * r2 + static_cast<std::uint64_t>(h1) * r1 +
        static_cast<std::uint64_t>(h2) * r0 + static_cast<std::uint64_t>(h3) * s4 +
        static_cast<std::uint64_t>(h4) * s3;
    std::uint64_t d3 =
        static_cast<std::uint64_t>(h0) * r3 + static_cast<std::uint64_t>(h1) * r2 +
        static_cast<std::uint64_t>(h2) * r1 + static_cast<std::uint64_t>(h3) * r0 +
        static_cast<std::uint64_t>(h4) * s4;
    std::uint64_t d4 =
        static_cast<std::uint64_t>(h0) * r4 + static_cast<std::uint64_t>(h1) * r3 +
        static_cast<std::uint64_t>(h2) * r2 + static_cast<std::uint64_t>(h3) * r1 +
        static_cast<std::uint64_t>(h4) * r0;

    std::uint64_t c = d0 >> 26;
    h0 = static_cast<std::uint32_t>(d0) & 0x3ffffff;
    d1 += c;
    c = d1 >> 26;
    h1 = static_cast<std::uint32_t>(d1) & 0x3ffffff;
    d2 += c;
    c = d2 >> 26;
    h2 = static_cast<std::uint32_t>(d2) & 0x3ffffff;
    d3 += c;
    c = d3 >> 26;
    h3 = static_cast<std::uint32_t>(d3) & 0x3ffffff;
    d4 += c;
    c = d4 >> 26;
    h4 = static_cast<std::uint32_t>(d4) & 0x3ffffff;
    h0 += static_cast<std::uint32_t>(c) * 5;
    c = h0 >> 26;
    h0 &= 0x3ffffff;
    h1 += static_cast<std::uint32_t>(c);
  }

  // Full carry and conditional subtraction of p = 2^130 - 5.
  std::uint32_t c = h1 >> 26;
  h1 &= 0x3ffffff;
  h2 += c; c = h2 >> 26; h2 &= 0x3ffffff;
  h3 += c; c = h3 >> 26; h3 &= 0x3ffffff;
  h4 += c; c = h4 >> 26; h4 &= 0x3ffffff;
  h0 += c * 5; c = h0 >> 26; h0 &= 0x3ffffff;
  h1 += c;

  std::uint32_t g0 = h0 + 5;
  c = g0 >> 26; g0 &= 0x3ffffff;
  std::uint32_t g1 = h1 + c;
  c = g1 >> 26; g1 &= 0x3ffffff;
  std::uint32_t g2 = h2 + c;
  c = g2 >> 26; g2 &= 0x3ffffff;
  std::uint32_t g3 = h3 + c;
  c = g3 >> 26; g3 &= 0x3ffffff;
  const std::uint32_t g4 = h4 + c - (1u << 26);

  // Select h if h < p else g, in constant time.
  const std::uint32_t mask = (g4 >> 31) - 1;  // all-ones if g4 did not borrow
  h0 = (h0 & ~mask) | (g0 & mask);
  h1 = (h1 & ~mask) | (g1 & mask);
  h2 = (h2 & ~mask) | (g2 & mask);
  h3 = (h3 & ~mask) | (g3 & mask);
  h4 = (h4 & ~mask) | (g4 & mask);

  // h = h % 2^128, serialized little-endian.
  const std::uint32_t f0 = h0 | (h1 << 26);
  const std::uint32_t f1 = (h1 >> 6) | (h2 << 20);
  const std::uint32_t f2 = (h2 >> 12) | (h3 << 14);
  const std::uint32_t f3 = (h3 >> 18) | (h4 << 8);

  // Add s = key[16..32) with carry.
  std::uint64_t acc = static_cast<std::uint64_t>(f0) + load_le32(key_bytes.data() + 16);
  Poly1305Tag tag;
  store_le32(tag.data() + 0, static_cast<std::uint32_t>(acc));
  acc = (acc >> 32) + static_cast<std::uint64_t>(f1) + load_le32(key_bytes.data() + 20);
  store_le32(tag.data() + 4, static_cast<std::uint32_t>(acc));
  acc = (acc >> 32) + static_cast<std::uint64_t>(f2) + load_le32(key_bytes.data() + 24);
  store_le32(tag.data() + 8, static_cast<std::uint32_t>(acc));
  acc = (acc >> 32) + static_cast<std::uint64_t>(f3) + load_le32(key_bytes.data() + 28);
  store_le32(tag.data() + 12, static_cast<std::uint32_t>(acc));
  return tag;
}

}  // namespace xsearch::crypto
