#include "dataset/aol.hpp"

#include <array>
#include <charconv>
#include <fstream>

namespace xsearch::dataset {

namespace {

/// Days from 1970-01-01 to the given date (proleptic Gregorian). Uses the
/// standard civil-days algorithm (Howard Hinnant's days_from_civil).
[[nodiscard]] std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const auto yoe = static_cast<unsigned>(y - era * 400);              // [0, 399]
  const auto doy = static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 +
                                         static_cast<unsigned>(d) - 1);  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;         // [0, 146096]
  return static_cast<std::int64_t>(era) * 146097 + static_cast<std::int64_t>(doe) -
         719468;
}

[[nodiscard]] bool parse_int(std::string_view s, int& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace

Result<std::int64_t> parse_aol_timestamp(std::string_view text) {
  // "YYYY-MM-DD HH:MM:SS" = exactly 19 characters.
  if (text.size() != 19 || text[4] != '-' || text[7] != '-' || text[10] != ' ' ||
      text[13] != ':' || text[16] != ':') {
    return invalid_argument("aol: bad timestamp format: " + std::string(text));
  }
  int year = 0, month = 0, day = 0, hour = 0, minute = 0, second = 0;
  if (!parse_int(text.substr(0, 4), year) || !parse_int(text.substr(5, 2), month) ||
      !parse_int(text.substr(8, 2), day) || !parse_int(text.substr(11, 2), hour) ||
      !parse_int(text.substr(14, 2), minute) || !parse_int(text.substr(17, 2), second)) {
    return invalid_argument("aol: non-numeric timestamp field");
  }
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour > 23 || minute > 59 ||
      second > 60) {
    return invalid_argument("aol: timestamp field out of range");
  }
  return days_from_civil(year, month, day) * 86400 + hour * 3600 + minute * 60 + second;
}

Result<QueryLog> load_aol_file(const std::filesystem::path& path,
                               const AolLoadOptions& options) {
  std::ifstream in(path);
  if (!in) return unavailable("aol: cannot open " + path.string());

  std::vector<QueryRecord> records;
  std::string line;
  std::size_t line_no = 0;
  UserId last_user = 0;
  std::string last_query;
  bool have_last = false;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line_no == 1 && line.starts_with("AnonID")) continue;  // header row

    // Split the first three tab-separated fields; ItemRank/ClickURL may be
    // absent entirely.
    std::array<std::string_view, 3> fields;
    std::string_view rest = line;
    for (std::size_t f = 0; f < 3; ++f) {
      const auto tab = rest.find('\t');
      if (tab == std::string_view::npos) {
        if (f < 2) {
          return data_loss("aol: too few fields at line " + std::to_string(line_no));
        }
        fields[f] = rest;
        rest = {};
      } else {
        fields[f] = rest.substr(0, tab);
        rest.remove_prefix(tab + 1);
      }
    }

    QueryRecord record;
    {
      unsigned long user = 0;
      const auto [ptr, ec] = std::from_chars(
          fields[0].data(), fields[0].data() + fields[0].size(), user);
      if (ec != std::errc() || ptr != fields[0].data() + fields[0].size()) {
        return data_loss("aol: bad AnonID at line " + std::to_string(line_no));
      }
      record.user = static_cast<UserId>(user);
    }
    record.text = std::string(fields[1]);
    auto ts = parse_aol_timestamp(fields[2]);
    if (!ts) return ts.status();
    record.timestamp = ts.value();

    if (record.text.size() < options.min_query_length) continue;
    if (options.collapse_clickthroughs && have_last && record.user == last_user &&
        record.text == last_query) {
      continue;  // click-through repeat of the same query
    }
    last_user = record.user;
    last_query = record.text;
    have_last = true;

    records.push_back(std::move(record));
    if (options.max_records != 0 && records.size() >= options.max_records) break;
  }
  return QueryLog(std::move(records));
}

}  // namespace xsearch::dataset
