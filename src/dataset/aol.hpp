// Loader for the original AOL query-log distribution format.
//
// The paper evaluates on the 2006 AOL log, which ships as tab-separated
// files with the header
//
//   AnonID\tQuery\tQueryTime\tItemRank\tClickURL
//
// where QueryTime is "YYYY-MM-DD HH:MM:SS". The log cannot be bundled with
// this repository, but anyone holding a copy can load it here and run every
// bench against the real data instead of the synthetic generator (the
// QueryLog type downstream is identical). Click-through records (repeated
// rows with ItemRank/ClickURL set) are collapsed to one query event, as the
// PEAS/SimAttack line of work does.
#pragma once

#include <filesystem>

#include "common/status.hpp"
#include "dataset/query_log.hpp"

namespace xsearch::dataset {

struct AolLoadOptions {
  /// Drop queries shorter than this many characters (AOL noise like "-").
  std::size_t min_query_length = 2;
  /// Hard cap on loaded records (0 = unlimited); useful for sampling runs.
  std::size_t max_records = 0;
  /// Collapse consecutive identical (user, query) rows (click-throughs).
  bool collapse_clickthroughs = true;
};

/// Parses one AOL-format file (with or without the header row).
[[nodiscard]] Result<QueryLog> load_aol_file(const std::filesystem::path& path,
                                             const AolLoadOptions& options = {});

/// Parses "YYYY-MM-DD HH:MM:SS" into seconds since 1970-01-01 (UTC,
/// proleptic Gregorian — no timezone data needed). Returns an error status
/// for malformed input.
[[nodiscard]] Result<std::int64_t> parse_aol_timestamp(std::string_view text);

}  // namespace xsearch::dataset
