#include "dataset/query_log.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace xsearch::dataset {

namespace {
bool record_order(const QueryRecord& a, const QueryRecord& b) {
  if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
  return a.user < b.user;
}
}  // namespace

QueryLog::QueryLog(std::vector<QueryRecord> records) : records_(std::move(records)) {
  std::stable_sort(records_.begin(), records_.end(), record_order);
  for (const auto& r : records_) ++per_user_count_[r.user];
}

std::vector<UserId> QueryLog::users() const {
  std::vector<UserId> ids;
  ids.reserve(per_user_count_.size());
  for (const auto& [user, _] : per_user_count_) ids.push_back(user);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t QueryLog::user_query_count(UserId user) const {
  const auto it = per_user_count_.find(user);
  return it == per_user_count_.end() ? 0 : it->second;
}

std::vector<std::string> QueryLog::queries_of(UserId user) const {
  std::vector<std::string> out;
  for (const auto& r : records_) {
    if (r.user == user) out.push_back(r.text);
  }
  return out;
}

void QueryLog::append(QueryRecord record) {
  ++per_user_count_[record.user];
  if (!records_.empty() && record_order(record, records_.back())) {
    records_.push_back(std::move(record));
    std::stable_sort(records_.begin(), records_.end(), record_order);
  } else {
    records_.push_back(std::move(record));
  }
}

std::vector<UserId> QueryLog::most_active_users(std::size_t n) const {
  std::vector<std::pair<UserId, std::size_t>> counts(per_user_count_.begin(),
                                                     per_user_count_.end());
  std::sort(counts.begin(), counts.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  std::vector<UserId> out;
  out.reserve(std::min(n, counts.size()));
  for (std::size_t i = 0; i < counts.size() && i < n; ++i) out.push_back(counts[i].first);
  return out;
}

QueryLog QueryLog::filter_users(const std::vector<UserId>& keep) const {
  const std::unordered_map<UserId, bool> keep_set = [&] {
    std::unordered_map<UserId, bool> s;
    for (const UserId u : keep) s[u] = true;
    return s;
  }();
  std::vector<QueryRecord> out;
  for (const auto& r : records_) {
    if (keep_set.contains(r.user)) out.push_back(r);
  }
  return QueryLog(std::move(out));
}

TrainTestSplit split_per_user(const QueryLog& log, double train_fraction) {
  std::unordered_map<UserId, std::size_t> total;
  for (const auto& r : log.records()) ++total[r.user];

  std::unordered_map<UserId, std::size_t> taken;
  std::vector<QueryRecord> train, test;
  for (const auto& r : log.records()) {
    const auto cutoff = static_cast<std::size_t>(
        static_cast<double>(total[r.user]) * train_fraction);
    if (taken[r.user] < cutoff) {
      train.push_back(r);
      ++taken[r.user];
    } else {
      test.push_back(r);
    }
  }
  return TrainTestSplit{QueryLog(std::move(train)), QueryLog(std::move(test))};
}

Status save_tsv(const QueryLog& log, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) return unavailable("cannot open for writing: " + path.string());
  for (const auto& r : log.records()) {
    out << r.user << '\t' << r.timestamp << '\t' << r.text << '\n';
  }
  return out.good() ? Status::ok() : data_loss("short write: " + path.string());
}

Result<QueryLog> load_tsv(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return unavailable("cannot open for reading: " + path.string());
  std::vector<QueryRecord> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto tab1 = line.find('\t');
    const auto tab2 = tab1 == std::string::npos ? std::string::npos
                                                : line.find('\t', tab1 + 1);
    if (tab2 == std::string::npos) {
      return data_loss("malformed TSV at line " + std::to_string(line_no));
    }
    QueryRecord r;
    try {
      r.user = static_cast<UserId>(std::stoul(line.substr(0, tab1)));
      r.timestamp = std::stoll(line.substr(tab1 + 1, tab2 - tab1 - 1));
    } catch (const std::exception&) {
      return data_loss("bad numeric field at line " + std::to_string(line_no));
    }
    r.text = line.substr(tab2 + 1);
    records.push_back(std::move(r));
  }
  return QueryLog(std::move(records));
}

}  // namespace xsearch::dataset
