#include "dataset/synthetic.hpp"

#include <algorithm>
#include <cassert>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"

namespace xsearch::dataset {

namespace {

/// Deterministic pseudo-English word for a vocabulary index: 2-4 syllables
/// drawn from a fixed syllable inventory, with a numeric suffix on the rare
/// collision. Pseudo-words keep the generator self-contained (no external
/// word list) while preserving realistic token-length statistics.
std::string make_word(std::uint64_t index, std::uint64_t seed,
                      std::unordered_set<std::string>& used) {
  static constexpr const char* kSyllables[] = {
      "ba", "be", "bi", "bo", "bu", "ca", "ce", "co", "cu", "da", "de", "di",
      "do", "du", "fa", "fe", "fi", "fo", "ga", "ge", "go", "ha", "he", "hi",
      "ho", "ja", "jo", "ka", "ke", "ki", "ko", "la", "le", "li", "lo", "lu",
      "ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu", "pa", "pe",
      "pi", "po", "ra", "re", "ri", "ro", "ru", "sa", "se", "si", "so", "su",
      "ta", "te", "ti", "to", "tu", "va", "ve", "vi", "vo", "wa", "we", "wi",
      "za", "zo", "ster", "tion", "land", "berg", "ford", "ton"};
  constexpr std::size_t kNumSyllables = std::size(kSyllables);

  std::uint64_t state = seed ^ (index * 0x9e3779b97f4a7c15ULL);
  const std::uint64_t mixed = xsearch::splitmix64(state);
  const std::size_t syllable_count = 2 + (mixed % 3);
  std::string word;
  std::uint64_t bits = mixed;
  for (std::size_t s = 0; s < syllable_count; ++s) {
    word += kSyllables[bits % kNumSyllables];
    bits = xsearch::splitmix64(state);
  }
  if (!used.insert(word).second) {
    word += std::to_string(index % 1000);
    while (!used.insert(word).second) word += 'x';
  }
  return word;
}

}  // namespace

QueryLog generate_synthetic_log(const SyntheticLogConfig& config) {
  assert(config.num_users > 0);
  assert(config.vocab_size > 0);
  assert(config.num_topics > 0);
  assert(config.min_query_words >= 1);
  assert(config.min_query_words <= config.max_query_words);
  assert(config.min_topics_per_user >= 1);
  assert(config.min_topics_per_user <= config.max_topics_per_user);

  xsearch::Rng rng(config.seed);

  // --- Vocabulary, ordered by global popularity rank. ---
  std::vector<std::string> vocab;
  vocab.reserve(config.vocab_size);
  std::unordered_set<std::string> used;
  for (std::size_t i = 0; i < config.vocab_size; ++i) {
    vocab.push_back(make_word(i, config.seed, used));
  }
  const xsearch::ZipfSampler word_popularity(config.vocab_size,
                                             config.word_zipf_exponent);

  // --- Topics: word subsets sampled by global popularity, then shuffled so
  // each topic has its own internal ranking. ---
  std::vector<std::vector<std::size_t>> topic_words(config.num_topics);
  for (auto& words : topic_words) {
    std::unordered_set<std::size_t> seen;
    words.reserve(config.words_per_topic);
    // Cap attempts so a tiny vocabulary cannot loop forever.
    std::size_t attempts = 0;
    while (words.size() < config.words_per_topic &&
           attempts < config.words_per_topic * 20) {
      ++attempts;
      const std::size_t w = word_popularity.sample(rng);
      if (seen.insert(w).second) words.push_back(w);
    }
    for (std::size_t i = words.size(); i > 1; --i) {  // Fisher-Yates
      std::swap(words[i - 1], words[rng.uniform(i)]);
    }
  }
  const xsearch::ZipfSampler topic_word_sampler(
      topic_words.front().empty() ? 1 : topic_words.front().size(),
      config.topic_word_zipf);
  const xsearch::ZipfSampler topic_popularity(config.num_topics,
                                              config.topic_popularity_zipf);

  // --- Users: interest mixtures and activity. ---
  struct UserModel {
    std::vector<std::size_t> topics;
    std::vector<std::string> history;
  };
  std::vector<UserModel> user_models(config.num_users);
  for (auto& u : user_models) {
    const std::size_t count = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(config.min_topics_per_user),
        static_cast<std::int64_t>(config.max_topics_per_user)));
    std::unordered_set<std::size_t> seen;
    while (u.topics.size() < count) {
      const std::size_t t = topic_popularity.sample(rng);
      if (seen.insert(t).second) u.topics.push_back(t);
    }
  }
  const xsearch::ZipfSampler user_activity(config.num_users, config.user_activity_zipf);

  // --- Query stream. ---
  auto sample_topic_word = [&](std::size_t topic) -> const std::string& {
    const auto& words = topic_words[topic];
    std::size_t rank = topic_word_sampler.sample(rng);
    if (rank >= words.size()) rank = words.size() - 1;
    return vocab[words[rank]];
  };

  auto make_fresh_query = [&](UserModel& u) {
    // A user's first topic is their dominant interest.
    const std::size_t which =
        u.topics.size() == 1 ? 0 : (rng.bernoulli(0.5) ? 0 : rng.uniform(u.topics.size()));
    const std::size_t topic = u.topics[which];
    const auto n_words = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(config.min_query_words),
                        static_cast<std::int64_t>(config.max_query_words)));
    std::string query;
    std::unordered_set<std::string> in_query;
    for (std::size_t w = 0; w < n_words; ++w) {
      const std::string& word = sample_topic_word(topic);
      if (!in_query.insert(word).second) continue;
      if (!query.empty()) query += ' ';
      query += word;
    }
    return query;
  };

  std::vector<QueryRecord> records;
  records.reserve(config.total_queries);
  const double step = static_cast<double>(config.duration_seconds) /
                      static_cast<double>(std::max<std::size_t>(config.total_queries, 1));

  for (std::size_t i = 0; i < config.total_queries; ++i) {
    const auto user = static_cast<UserId>(user_activity.sample(rng));
    UserModel& u = user_models[user];

    std::string query;
    if (!u.history.empty() && rng.bernoulli(config.repeat_probability)) {
      query = u.history[rng.uniform(u.history.size())];
    } else if (!u.history.empty() && rng.bernoulli(config.refine_probability)) {
      // Refinement: re-issue a past query with one word replaced/added.
      query = u.history[rng.uniform(u.history.size())];
      const std::size_t topic = u.topics[rng.uniform(u.topics.size())];
      const std::string& extra = sample_topic_word(topic);
      const auto space = query.find(' ');
      if (space != std::string::npos && rng.bernoulli(0.5)) {
        query = query.substr(0, space) + ' ' + extra;  // replace the tail
      } else {
        query += ' ';
        query += extra;
      }
    } else {
      query = make_fresh_query(u);
    }
    if (query.empty()) query = vocab[word_popularity.sample(rng)];

    u.history.push_back(query);

    QueryRecord record;
    record.user = user;
    record.timestamp = config.start_timestamp +
                       static_cast<std::int64_t>(static_cast<double>(i) * step) +
                       static_cast<std::int64_t>(rng.uniform(30));
    record.text = std::move(query);
    records.push_back(std::move(record));
  }

  return QueryLog(std::move(records));
}

}  // namespace xsearch::dataset
