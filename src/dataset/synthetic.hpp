// Synthetic AOL-like query-log generator.
//
// The real AOL log cannot be redistributed, so the reproduction synthesizes
// a log with the statistical structure the evaluation depends on:
//
//  * a heavy-tailed shared vocabulary (Zipfian word marginals);
//  * topical structure: words cluster into topics, each user has a small
//    persistent mixture of interest topics — this is what makes users
//    re-identifiable from query content;
//  * heavy-tailed user activity (a few very active users, §5.1 selects the
//    top-100);
//  * within-user repetition: users re-issue and refine past queries, the
//    signal SimAttack's profile similarity keys on;
//  * three months of timestamps.
//
// The generator is fully deterministic given the config seed.
#pragma once

#include <cstdint>

#include "dataset/query_log.hpp"

namespace xsearch::dataset {

struct SyntheticLogConfig {
  std::uint64_t seed = 0x5eed;

  std::size_t num_users = 1000;
  std::size_t total_queries = 200'000;

  // Vocabulary / topic model.
  std::size_t vocab_size = 20'000;
  std::size_t num_topics = 150;
  std::size_t words_per_topic = 400;
  double word_zipf_exponent = 1.05;   // global word popularity skew
  double topic_word_zipf = 0.9;       // skew of word choice inside a topic
  double topic_popularity_zipf = 0.8; // some topics are widely shared

  // User behaviour.
  double user_activity_zipf = 1.25;   // #queries per user skew
  std::size_t min_topics_per_user = 2;
  std::size_t max_topics_per_user = 5;
  double repeat_probability = 0.35;   // chance of re-issuing a past query
  double refine_probability = 0.20;   // chance of editing one word instead
  std::size_t min_query_words = 1;
  std::size_t max_query_words = 4;

  // Timeline: three months, matching the AOL window.
  std::int64_t start_timestamp = 0;
  std::int64_t duration_seconds = 90LL * 24 * 3600;
};

/// Generates a synthetic log according to `config`. Deterministic in
/// `config.seed`; records come out sorted by timestamp.
[[nodiscard]] QueryLog generate_synthetic_log(const SyntheticLogConfig& config);

}  // namespace xsearch::dataset
