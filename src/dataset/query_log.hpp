// Query-log data model.
//
// The paper evaluates on the AOL 2006 log (21M queries / 650k users over
// three months). That dataset is not redistributable, so the reproduction
// works against any QueryLog — including the synthetic AOL-like log
// produced by dataset/synthetic.hpp — and provides the §5.1 methodology
// operations: per-user train/test splitting and most-active-user selection.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"

namespace xsearch::dataset {

using UserId = std::uint32_t;

/// One search query issued by one user at one time.
struct QueryRecord {
  UserId user = 0;
  std::int64_t timestamp = 0;  // seconds since the log's epoch
  std::string text;

  friend bool operator==(const QueryRecord&, const QueryRecord&) = default;
};

/// An ordered collection of query records (by timestamp, ties by user).
class QueryLog {
 public:
  QueryLog() = default;
  explicit QueryLog(std::vector<QueryRecord> records);

  [[nodiscard]] const std::vector<QueryRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }

  /// Distinct users, ascending.
  [[nodiscard]] std::vector<UserId> users() const;

  /// Number of queries issued by `user`.
  [[nodiscard]] std::size_t user_query_count(UserId user) const;

  /// All query texts of one user, in time order.
  [[nodiscard]] std::vector<std::string> queries_of(UserId user) const;

  /// Appends a record, keeping timestamp order (amortized O(1) when records
  /// arrive in order).
  void append(QueryRecord record);

  /// The `n` users with the most queries, most active first.
  [[nodiscard]] std::vector<UserId> most_active_users(std::size_t n) const;

  /// Sub-log containing only the given users.
  [[nodiscard]] QueryLog filter_users(const std::vector<UserId>& keep) const;

 private:
  std::vector<QueryRecord> records_;
  std::unordered_map<UserId, std::size_t> per_user_count_;
};

/// Train/test partition of a log.
struct TrainTestSplit {
  QueryLog train;
  QueryLog test;
};

/// Splits each user's queries chronologically: the first `train_fraction`
/// go to training (the adversary's preliminary knowledge, §3), the rest to
/// test. Matches the paper's 2/3 - 1/3 methodology (§5.1).
[[nodiscard]] TrainTestSplit split_per_user(const QueryLog& log, double train_fraction);

/// Saves as TSV lines "user<TAB>timestamp<TAB>text".
[[nodiscard]] Status save_tsv(const QueryLog& log, const std::filesystem::path& path);

/// Loads a TSV produced by save_tsv.
[[nodiscard]] Result<QueryLog> load_tsv(const std::filesystem::path& path);

}  // namespace xsearch::dataset
