// Result filtering — Algorithm 2 of the paper.
//
// The engine's answer to the OR query mixes results for all k+1 sub-queries.
// For each result, a score is computed per sub-query as the number of common
// words between the sub-query and the result's title plus the number of
// common words with its description; a result is forwarded to the user only
// if the *original* query's score is the maximum. The filter also rewrites
// analytics tracking URLs back to their target (paper §4.1).
//
// The implementation scores tokenize-once: each of the k+1 sub-queries and
// each result's title/description is tokenized exactly once per `filter`
// call — O(k+1+R) tokenizations instead of the O((k+1)·R) a per-pair scorer
// pays — and scoring runs over precomputed token→sub-query postings (the
// cosine ablation shares one vocabulary across the batch). See
// tests/core_filter_equivalence_test.cpp for the proof that this keeps the
// exact result set (including ties) of the paper's per-pair formulation.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "engine/document.hpp"

namespace xsearch::core {

/// Scoring flavour — the paper's common-words metric is the default; the
/// cosine variant exists for the filter-scoring ablation bench.
enum class FilterScoring { kCommonWords, kCosine };

class ResultFilter {
 public:
  explicit ResultFilter(FilterScoring scoring = FilterScoring::kCommonWords)
      : scoring_(scoring) {}

  /// Algorithm 2: keep results whose best-matching sub-query is the
  /// original. Ties in favour of the original (score[original] == max keeps
  /// the result, as in the paper's pseudocode).
  [[nodiscard]] std::vector<engine::SearchResult> filter(
      std::string_view original, const std::vector<std::string>& fakes,
      std::vector<engine::SearchResult> results) const;

  /// Strips analytics redirection from a result list in place.
  static void strip_tracking(std::vector<engine::SearchResult>& results);

 private:
  [[nodiscard]] std::vector<engine::SearchResult> filter_common_words(
      std::string_view original, const std::vector<std::string>& fakes,
      std::vector<engine::SearchResult> results) const;
  [[nodiscard]] std::vector<engine::SearchResult> filter_cosine(
      std::string_view original, const std::vector<std::string>& fakes,
      std::vector<engine::SearchResult> results) const;

  FilterScoring scoring_;
};

}  // namespace xsearch::core
