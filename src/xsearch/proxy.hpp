// The X-Search proxy node.
//
// Runs the paper's trusted logic inside a (simulated) SGX enclave on an
// untrusted cloud host. The enclave interface is the narrowed one of
// §5.3.3 — ecalls `init` and `request` plus the long-running `run_workers`
// switchless entry; ocalls `sock_connect`, `send`, `recv`, `close` — typed
// as sgx::EcallId/OcallId, so every piece of sensitive data crosses the
// boundary encrypted, and transition counts are observable for the
// ablation bench. With Options::switchless enabled, steady-state queries
// ride the exitless job ring instead of paying a per-request transition.
//
// Data flow per query (paper Figure 2):
//   1. client broker sends an encrypted record into the enclave (ecall);
//   2. the enclave decrypts the query, draws k fakes from the in-enclave
//      history, builds the OR query (Algorithm 1) and stores the original;
//   3. the enclave reaches the search engine through the host's socket
//      ocalls — the engine sees only the proxy's identity and the OR query;
//   4. results come back through `recv`, are filtered (Algorithm 2) and
//      scrubbed of analytics redirects inside the enclave;
//   5. the enclave seals the surviving results back to the client.
#pragma once

#include <array>
#include <atomic>
#include <filesystem>
#include <memory>
#include <optional>

#include "common/bytes.hpp"
#include "common/circuit_breaker.hpp"
#include "common/deadline.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "crypto/random.hpp"
#include "crypto/secure_channel.hpp"
#include "engine/search_engine.hpp"
#include "sgx/attestation.hpp"
#include "sgx/enclave.hpp"
#include "xsearch/engine_gateway.hpp"
#include "xsearch/filter.hpp"
#include "xsearch/history.hpp"
#include "xsearch/obfuscator.hpp"
#include "xsearch/session_table.hpp"

namespace xsearch::core {

/// What the host returns to a connecting client: a fresh session, the
/// enclave's attestation quote over its static channel key, and the
/// session's server ephemeral key.
struct HandshakeResponse {
  std::uint64_t session_id = 0;
  sgx::Quote quote;
  crypto::X25519Key server_ephemeral_pub{};
};

/// The narrow host surface a frontend needs from "something that terminates
/// the proxy protocol" — one enclave proxy, or a whole fleet of them behind
/// a router (net::ProxyFleet). Session ids are *untrusted routing metadata*:
/// all confidentiality and integrity comes from the SecureChannel records
/// keyed during the attested handshake, so a router may propose the session
/// id (it picks ids that consistent-hash to the worker it routed the
/// handshake to) without weakening anything — a host lying about ids only
/// produces AEAD failures.
class ProxyHandler {
 public:
  virtual ~ProxyHandler() = default;

  /// Establishes a client session. `proposed_session_id` of 0 lets the
  /// proxy assign the id; a nonzero proposal is honored or refused with
  /// FAILED_PRECONDITION when already in use (the caller proposes another).
  [[nodiscard]] virtual Result<HandshakeResponse> handshake(
      const crypto::X25519Key& client_ephemeral_pub,
      std::uint64_t proposed_session_id) = 0;

  [[nodiscard]] Result<HandshakeResponse> handshake(
      const crypto::X25519Key& client_ephemeral_pub) {
    return handshake(client_ephemeral_pub, 0);
  }

  /// Processes one encrypted record (single query or batch); returns the
  /// encrypted response record.
  [[nodiscard]] virtual Result<Bytes> handle_query_record(
      std::uint64_t session_id, ByteSpan record) = 0;

  /// Deadline-aware variant: the request must finish before `deadline` or
  /// fail DEADLINE_EXCEEDED. Handlers that enforce budgets override this;
  /// the default ignores the deadline (legacy behaviour). A refusal *before*
  /// any trusted work is exactly-once safe — the record was never opened.
  [[nodiscard]] virtual Result<Bytes> handle_query_record(
      std::uint64_t session_id, ByteSpan record, const Deadline& deadline) {
    (void)deadline;
    return handle_query_record(session_id, record);
  }

  /// The enclave code identity clients pin during attestation. By value:
  /// a fleet's workers can be respawned concurrently, so a reference into
  /// a worker's enclave could dangle.
  [[nodiscard]] virtual sgx::Measurement measurement() const = 0;
};

class XSearchProxy : public ProxyHandler {
 public:
  struct Options {
    /// Number of fake queries per user query (the paper's k).
    std::size_t k = 3;
    /// Sliding-window size x of the past-query table.
    std::size_t history_capacity = 1'000'000;
    /// Results fetched per sub-query from the engine.
    std::uint32_t results_per_subquery = 20;
    /// Deterministic seed for enclave-private randomness.
    std::uint64_t seed = 0x5eed;
    /// Usable EPC budget of the enclave.
    std::size_t usable_epc_bytes = sgx::kDefaultUsableEpcBytes;
    /// When false the proxy replies immediately after obfuscation without
    /// contacting the engine — the configuration used for the saturation
    /// measurements of Figure 5 (§6.3).
    bool contact_engine = true;
    /// Filter scoring variant (ablation).
    FilterScoring filter_scoring = FilterScoring::kCommonWords;
    /// When set, the enclave encrypts engine requests end-to-end to this
    /// key (the engine frontend's TLS stand-in; paper footnote 2). Requires
    /// constructing the proxy with a SecureEngineGateway.
    std::optional<crypto::X25519Key> engine_tls_public_key;
    /// Maximum live client sessions the enclave keeps; the least recently
    /// used session is evicted beyond it (its client must re-handshake).
    /// Bounds the EPC held by per-session channel state.
    std::size_t session_capacity = 4096;
    /// Sessions idle longer than this expire (0 = never).
    Nanos session_idle_ttl = 0;
    /// Lock shards of the session table.
    std::size_t session_shards = 8;
    /// When non-empty, the proxy keeps a sealed checkpoint of its history
    /// (format v2, see checkpoint.hpp) at `<checkpoint_dir>/history.ckpt`:
    /// it restores the file at construction (falling back to a cold start
    /// when the file is missing, truncated, or tampered with) and re-seals
    /// every `checkpoint_interval_queries` queries. The host only ever
    /// handles the sealed blob.
    std::filesystem::path checkpoint_dir;
    /// Host-side circuit breaker on the proxy→engine path. The breaker
    /// lives in the `send` ocall *body* — untrusted host code — so trusted
    /// logic never reads a clock: after a rolling window of engine failures
    /// (including deadline expiries) it fast-fails the round trip with
    /// UPSTREAM_DOWN instead of hammering a dead engine. State is surfaced
    /// via engine_breaker_stats() and the fleet's FleetStats.
    bool engine_breaker_enabled = false;
    CircuitBreaker::Options engine_breaker;
    /// Host-side fault injection on the engine path, called in the `send`
    /// ocall body before the engine is contacted; a non-OK status fails the
    /// round trip. Used by the chaos harness and the fig5 degraded bench.
    std::function<Status()> engine_fault_hook;
    /// Exitless request path: when `switchless.enabled`, queries submit
    /// into the enclave's job ring (sgx/job_ring.hpp) and are executed by
    /// persistent trusted workers instead of paying a per-request ecall.
    /// Handshake, heartbeat and checkpoint keep the plain ecall path (rare,
    /// and the supervisor's probe must measure a *transition*). Fallback to
    /// the 2-ecall path is automatic when the ring is full or workers are
    /// parked; see EnclaveRuntime::submit and ring_stats().
    sgx::SwitchlessOptions switchless;
    /// Queries between periodic checkpoints (0 = only explicit
    /// `checkpoint_now` calls write). Ignored without `checkpoint_dir`.
    /// The seal + write runs synchronously on the query thread that
    /// crosses the interval (one full-history snapshot+seal and a file
    /// write), a deliberate tradeoff: it keeps the sealed depth
    /// deterministic w.r.t. the query stream — what the recovery tests
    /// and the warm-vs-cold bench compare — at the cost of a periodic
    /// latency spike on that one query. Size the interval against the
    /// history depth (cost is O(history) per checkpoint).
    std::uint64_t checkpoint_interval_queries = 0;

    /// Rejects configurations the proxy would otherwise silently mishandle:
    /// `k == 0` (no obfuscation), an empty history window, a zero per-sub-
    /// query fetch size, a zero session capacity, a zero-depth switchless
    /// ring, or more in-enclave workers than ring slots. Gateway consistency
    /// is checked by `create`.
    [[nodiscard]] Status validate() const;
  };

  /// Validating factory: surfaces a bad configuration as a Status instead of
  /// constructing a proxy that silently misbehaves. Also rejects
  /// `engine_tls_public_key` without a gateway, and a null engine while
  /// `contact_engine` is set. Prefer this over the raw constructors.
  [[nodiscard]] static Result<std::unique_ptr<XSearchProxy>> create(
      const engine::SearchEngine* engine,
      const sgx::AttestationAuthority& authority, Options options);

  /// Encrypted-engine-link variant of the factory (footnote 2): requests
  /// leave the enclave sealed to `gateway`'s public key;
  /// `options.engine_tls_public_key`, when set, must match it.
  [[nodiscard]] static Result<std::unique_ptr<XSearchProxy>> create(
      const SecureEngineGateway& gateway,
      const sgx::AttestationAuthority& authority, Options options);

  /// Unvalidated construction; `engine` may be null only when
  /// `options.contact_engine` is false. Tests use this to build
  /// deliberately degenerate proxies — production callers use `create`.
  XSearchProxy(const engine::SearchEngine* engine,
               const sgx::AttestationAuthority& authority, Options options);

  /// Unvalidated encrypted engine link variant (footnote 2): requests leave
  /// the enclave sealed to `gateway`'s public key;
  /// `options.engine_tls_public_key` must equal `gateway.public_key()`.
  XSearchProxy(const SecureEngineGateway& gateway,
               const sgx::AttestationAuthority& authority, Options options);

  XSearchProxy(const XSearchProxy&) = delete;
  XSearchProxy& operator=(const XSearchProxy&) = delete;

  /// Joins the switchless workers BEFORE member teardown: the enclave is
  /// declared before the history/session tables, so without this the
  /// workers could execute trusted handlers over already-destroyed state.
  ~XSearchProxy() override;

  // --- untrusted host API -------------------------------------------------

  using HandshakeResponse = ::xsearch::core::HandshakeResponse;

  using ProxyHandler::handshake;

  /// Establishes a client session (routed through the `request` ecall).
  /// A nonzero `proposed_session_id` is used as the session id if free,
  /// refused with FAILED_PRECONDITION otherwise (see ProxyHandler).
  [[nodiscard]] Result<HandshakeResponse> handshake(
      const crypto::X25519Key& client_ephemeral_pub,
      std::uint64_t proposed_session_id) override;

  /// Processes one encrypted query record — a single query or a batch
  /// (one AEAD open/seal per batch); returns the encrypted response record
  /// (routed through the `request` ecall). When periodic checkpointing is
  /// configured, the host persists a freshly sealed checkpoint every
  /// `checkpoint_interval_queries` queries from here.
  [[nodiscard]] Result<Bytes> handle_query_record(std::uint64_t session_id,
                                                  ByteSpan record) override;

  /// Deadline-aware variant: refuses with DEADLINE_EXCEEDED *before* the
  /// ecall when the budget is spent (exactly-once safe — the record was
  /// never opened), and exposes the deadline to the host-side engine path
  /// (checked again before the engine call in the `send` ocall body).
  [[nodiscard]] Result<Bytes> handle_query_record(
      std::uint64_t session_id, ByteSpan record,
      const Deadline& deadline) override;

  // --- recovery -------------------------------------------------------------

  /// Liveness probe: one cheap `request` ecall into the enclave. Fails
  /// (UNAVAILABLE) once the enclave has crashed — what a fleet supervisor's
  /// health probe keys its respawn decision on.
  [[nodiscard]] Status heartbeat();

  /// Seals the current history (+ per-session obfuscator state) inside the
  /// enclave and persists the blob crash-atomically to the checkpoint file.
  /// Requires Options::checkpoint_dir.
  [[nodiscard]] Status checkpoint_now();

  /// Host-side fault injection: destroys the enclave under the proxy (see
  /// sgx::EnclaveRuntime::crash). Every later ecall — handshakes, queries,
  /// heartbeats, checkpoint seals — fails; only previously sealed
  /// checkpoints survive. Used by the recovery tests and the fig5
  /// kill-and-recover bench.
  void crash_enclave() { enclave_->crash(); }

  /// Host-side handle to the enclave runtime. The ocall table is *host*
  /// state — the untrusted side owns its stubs and may legitimately replace
  /// them (which is exactly what the fault-injection tests do to model host
  /// failures). Trusted state behind the boundary is reachable only via
  /// `ecall`, so handing out a mutable runtime does not widen the TCB.
  [[nodiscard]] sgx::EnclaveRuntime& host_enclave() { return *enclave_; }

  /// Checkpoint/restore lifecycle counters.
  struct CheckpointStats {
    bool enabled = false;            // Options::checkpoint_dir set
    bool restore_attempted = false;  // a checkpoint file was found and read
    bool restore_hit = false;        // ...and restored successfully
    std::size_t restored_entries = 0;
    std::size_t restored_sessions = 0;  // v2 per-session states installed
    std::uint64_t written = 0;          // successful checkpoint writes
    std::uint64_t write_failures = 0;
  };
  [[nodiscard]] CheckpointStats checkpoint_stats() const;

  /// Where this proxy persists its sealed history (empty when disabled).
  [[nodiscard]] std::filesystem::path checkpoint_path() const;

  // --- introspection -------------------------------------------------------

  [[nodiscard]] sgx::Measurement measurement() const override {
    return enclave_->measurement();
  }
  [[nodiscard]] const sgx::EnclaveRuntime& enclave() const { return *enclave_; }
  [[nodiscard]] std::size_t history_size() const { return history_->size(); }
  [[nodiscard]] std::size_t history_memory_bytes() const {
    return history_->memory_bytes();
  }
  [[nodiscard]] const Options& options() const { return options_; }

  /// Lifecycle counters of the bounded session table (active/peak/evicted/
  /// expired and the EPC bytes its live sessions hold).
  [[nodiscard]] SessionTable::Stats session_stats() const {
    return sessions_->stats();
  }

  /// Proxy→engine circuit breaker state (closed/zeroes when the breaker is
  /// disabled). Host-side state — see Options::engine_breaker_enabled.
  [[nodiscard]] CircuitBreaker::Stats engine_breaker_stats() const {
    if (engine_breaker_ == nullptr) return {};
    return engine_breaker_->stats();
  }

  /// Switchless-path counters (all zero when Options::switchless.enabled is
  /// false and nothing ever submitted). Aggregated into net::FleetStats.
  [[nodiscard]] sgx::RingStats ring_stats() const {
    return enclave_->ring_stats();
  }

  /// Chaos hook: park/unpark the in-enclave switchless workers without
  /// stopping them. While parked, submitted queries must degrade to the
  /// plain ecall path via pickup_patience — never hang.
  void pause_switchless_workers(bool paused) {
    enclave_->pause_switchless(paused);
  }

  /// Outcome of the `init` ecall performed at construction. The raw
  /// constructors record a failure here instead of aborting; `create`
  /// surfaces it as its returned Status.
  [[nodiscard]] const Status& init_status() const { return init_status_; }

  /// Simulation warm-up: preloads the in-enclave history as if `queries`
  /// had arrived as earlier users' traffic (the §5.1 bench methodology).
  /// Not part of the deployed protocol surface.
  void warm_history(const std::vector<std::string>& queries);

  /// The byte string measured as this proxy's enclave code identity. All
  /// X-Search proxies built from this library share it, so clients pin one
  /// expected measurement.
  [[nodiscard]] static Bytes code_identity();

 private:
  // Trusted-side implementations of the two ecalls.
  [[nodiscard]] Result<Bytes> ecall_init(ByteSpan payload);
  [[nodiscard]] Result<Bytes> ecall_request(ByteSpan payload);

  [[nodiscard]] Result<Bytes> trusted_handshake(ByteSpan payload);
  [[nodiscard]] Result<Bytes> trusted_query(ByteSpan payload);
  [[nodiscard]] Result<Bytes> trusted_heartbeat();
  [[nodiscard]] Result<Bytes> trusted_checkpoint();

  /// Restores the sealed checkpoint (if any) into the fresh history during
  /// construction; a bad blob falls back to a cold start, never a partial
  /// window.
  void restore_checkpoint();

  /// Periodic-checkpoint poll on the host path; skips when another thread
  /// is already writing.
  void maybe_checkpoint();

  /// Seal + persist. Caller holds `checkpoint_mutex_`.
  [[nodiscard]] Status checkpoint_locked() XS_REQUIRES(checkpoint_mutex_);

  /// One query's trusted work — obfuscate, engine round trip, filter —
  /// shared by the single-query and batch paths. The caller holds the
  /// session lock (the RNG streams and channel ordering depend on it).
  [[nodiscard]] Result<std::vector<engine::SearchResult>> run_trusted_query(
      const std::string& query, SessionTable::LockedSession& session);

  /// Performs the engine round trip through the four socket ocalls.
  /// `session_rng` is the calling session's private DRBG (used for the
  /// encrypted engine link's envelope seal); the caller holds the session
  /// lock for the duration.
  [[nodiscard]] Result<std::vector<engine::SearchResult>> query_engine(
      const ObfuscatedQuery& obfuscated, crypto::SecureRandom& session_rng);

  [[nodiscard]] Status install_boundary();

  const engine::SearchEngine* engine_;
  const SecureEngineGateway* gateway_ = nullptr;
  const sgx::AttestationAuthority* authority_;
  Options options_;

  std::unique_ptr<sgx::EnclaveRuntime> enclave_;

  // ---- enclave-private state (conceptually inside the TEE) ----
  crypto::X25519KeyPair static_keys_{};
  std::unique_ptr<QueryHistory> history_;
  std::unique_ptr<Obfuscator> obfuscator_;
  ResultFilter filter_;
  // Key-derivation DRBG used at construction and by the handshake path
  // only. The steady-state query path never touches it: each session draws
  // from its own RNG streams held in the session table, so concurrent
  // sessions obfuscate and seal without any shared RNG lock.
  Mutex handshake_mutex_;
  crypto::SecureRandom secure_rng_ XS_GUARDED_BY(handshake_mutex_);

  // Bounded session subsystem: per-session channel locking + RNG streams,
  // LRU + idle-TTL eviction, EPC accounting (see session_table.hpp for the
  // locking order).
  std::unique_ptr<SessionTable> sessions_;
  Status init_status_;

  // ---- recovery state ----
  // Queries processed since the last checkpoint (bumped on the trusted
  // side, polled by the host to decide when a periodic checkpoint is due).
  std::atomic<std::uint64_t> queries_since_checkpoint_{0};
  // Serializes checkpoint writes; periodic polls skip when contended.
  Mutex checkpoint_mutex_;
  std::atomic<std::uint64_t> checkpoints_written_{0};
  std::atomic<std::uint64_t> checkpoint_write_failures_{0};
  bool restore_attempted_ = false;  // set during single-threaded construction
  bool restore_hit_ = false;
  std::size_t restored_entries_ = 0;
  std::size_t restored_sessions_ = 0;

  // ---- untrusted host state: engine-path circuit breaker ----
  // Owned by the host half of the proxy and touched only from the `send`
  // ocall body and stats accessors; null when disabled.
  std::unique_ptr<CircuitBreaker> engine_breaker_;

  // ---- untrusted host state: the "sockets" behind the ocalls ----
  // Sharded by socket id so concurrent sessions' engine round trips do not
  // serialize on one lock (each shard's critical sections are O(1) map
  // bookkeeping; the engine search itself runs outside any lock).
  struct SocketShard {
    Mutex mutex;
    std::unordered_map<std::uint64_t, Bytes> buffers XS_GUARDED_BY(mutex);
  };
  static constexpr std::size_t kSocketShards = 8;
  [[nodiscard]] SocketShard& socket_shard(std::uint64_t sock) {
    return socket_shards_[sock % kSocketShards];
  }
  std::array<SocketShard, kSocketShards> socket_shards_;
  std::atomic<std::uint64_t> next_socket_id_{1};
};

}  // namespace xsearch::core
