#include "xsearch/proxy.hpp"

#include <cassert>
#include <cstring>

#include "crypto/envelope.hpp"
#include "xsearch/checkpoint.hpp"
#include "xsearch/wire.hpp"

namespace xsearch::core {

namespace {

// Request-ecall framing: one tag byte selects the trusted entry point.
// kTagHeartbeat and kTagCheckpoint are host-invoked (like kTagHandshake):
// the supervisor's liveness probe and the sealed-history export.
constexpr std::uint8_t kTagHandshake = 1;
constexpr std::uint8_t kTagQuery = 2;
constexpr std::uint8_t kTagHeartbeat = 3;
constexpr std::uint8_t kTagCheckpoint = 4;

constexpr char kCheckpointFileName[] = "history.ckpt";

constexpr char kCodeIdentity[] =
    "xsearch-enclave v1.1: history+obfuscation+filtering, "
    "ecalls{init,request,run_workers} ocalls{sock_connect,send,recv,close}";

// Per-request deadline context now lives in sgx::host_request_deadline():
// with the switchless ring, the thread *executing* trusted code (and thus
// triggering the ocalls) may be an in-enclave worker rather than the
// submitter, so the runtime — which knows which thread runs the job —
// owns the thread_local. Trusted code never reads it (or any clock); the
// deadline is host input, enforced host-side only: before submission
// (EnclaveRuntime::submit) and before the engine call (`send` ocall).

}  // namespace

Bytes XSearchProxy::code_identity() { return to_bytes(kCodeIdentity); }

Status XSearchProxy::Options::validate() const {
  if (k == 0) {
    return invalid_argument("options.k must be >= 1: k = 0 sends the user's "
                            "query without any obfuscation");
  }
  if (history_capacity == 0) {
    return invalid_argument("options.history_capacity must be >= 1: the "
                            "obfuscator draws fakes from the history window");
  }
  if (results_per_subquery == 0) {
    return invalid_argument("options.results_per_subquery must be >= 1: the "
                            "engine would return nothing to filter");
  }
  if (session_capacity == 0) {
    return invalid_argument("options.session_capacity must be >= 1: the "
                            "proxy could never hold a client session");
  }
  if (switchless.enabled && switchless.ring_depth == 0) {
    return invalid_argument("options.switchless.ring_depth must be >= 1: a "
                            "zero-depth ring could never carry a job");
  }
  if (switchless.enabled &&
      (switchless.workers == 0 || switchless.workers > switchless.ring_depth)) {
    return invalid_argument(
        "options.switchless.workers must be in [1, ring_depth]: more "
        "workers than slots just spin on an empty ring");
  }
  return Status::ok();
}

Result<std::unique_ptr<XSearchProxy>> XSearchProxy::create(
    const engine::SearchEngine* engine, const sgx::AttestationAuthority& authority,
    Options options) {
  XS_RETURN_IF_ERROR(options.validate());
  if (options.engine_tls_public_key.has_value()) {
    return invalid_argument(
        "engine_tls_public_key requires the SecureEngineGateway overload");
  }
  if (engine == nullptr && options.contact_engine) {
    return failed_precondition(
        "an engine is required unless contact_engine is disabled");
  }
  auto proxy = std::unique_ptr<XSearchProxy>(
      new XSearchProxy(engine, authority, options));
  XS_RETURN_IF_ERROR(proxy->init_status_);
  return proxy;
}

Result<std::unique_ptr<XSearchProxy>> XSearchProxy::create(
    const SecureEngineGateway& gateway, const sgx::AttestationAuthority& authority,
    Options options) {
  XS_RETURN_IF_ERROR(options.validate());
  if (options.engine_tls_public_key.has_value() &&
      !(options.engine_tls_public_key == gateway.public_key())) {
    return invalid_argument(
        "engine_tls_public_key must match the gateway's public key");
  }
  auto proxy = std::unique_ptr<XSearchProxy>(
      new XSearchProxy(gateway, authority, options));
  XS_RETURN_IF_ERROR(proxy->init_status_);
  return proxy;
}

void XSearchProxy::warm_history(const std::vector<std::string>& queries) {
  for (const auto& query : queries) history_->add(query);
}

XSearchProxy::XSearchProxy(const engine::SearchEngine* engine,
                           const sgx::AttestationAuthority& authority, Options options)
    : engine_(engine),
      authority_(&authority),
      options_(options),
      filter_(options.filter_scoring),
      secure_rng_(crypto::domain_seed(options.seed, /*tag=*/0x42)) {
  assert((engine_ != nullptr || !options_.contact_engine) &&
         "engine required unless contact_engine is disabled");
  assert(!options_.engine_tls_public_key.has_value() &&
         "encrypted engine link requires the gateway constructor");
  init_status_ = install_boundary();
}

XSearchProxy::XSearchProxy(const SecureEngineGateway& gateway,
                           const sgx::AttestationAuthority& authority, Options options)
    : engine_(nullptr),
      gateway_(&gateway),
      authority_(&authority),
      options_(options),
      filter_(options.filter_scoring),
      secure_rng_(crypto::domain_seed(options.seed, /*tag=*/0x42)) {
  if (!options_.engine_tls_public_key.has_value()) {
    options_.engine_tls_public_key = gateway.public_key();
  }
  assert(options_.engine_tls_public_key == gateway.public_key() &&
         "pinned engine key must match the gateway");
  init_status_ = install_boundary();
}

Status XSearchProxy::install_boundary() {
  if (options_.engine_breaker_enabled) {
    engine_breaker_ = std::make_unique<CircuitBreaker>(options_.engine_breaker);
  }
  sgx::EnclaveRuntime::Config config;
  config.code_identity = code_identity();
  config.usable_epc_bytes = options_.usable_epc_bytes;
  enclave_ = std::make_unique<sgx::EnclaveRuntime>(std::move(config));

  // Enclave-private key material and query table. Construction is
  // single-threaded, but the DRBG is guarded uniformly so the analysis has
  // one rule to check (the lock is free of contention here). The seed stays
  // secret-typed from DRBG to key pair — no raw staging buffer.
  crypto::X25519Secret seed;
  {
    MutexLock lock(handshake_mutex_);
    seed = secure_rng_.key();
  }
  static_keys_ = crypto::x25519_keypair_from_seed(seed);
  history_ = std::make_unique<QueryHistory>(options_.history_capacity, &enclave_->epc());
  obfuscator_ = std::make_unique<Obfuscator>(*history_, options_.k);
  sessions_ = std::make_unique<SessionTable>(
      SessionTable::Options{.capacity = options_.session_capacity,
                            .idle_ttl = options_.session_idle_ttl,
                            .shards = options_.session_shards,
                            .rng_seed = options_.seed},
      &enclave_->epc());

  // The paper's narrowed enclave interface, keyed by the typed boundary
  // table (sgx/boundary.hpp) — no string dispatch anywhere on the path.
  enclave_->register_ecall(sgx::EcallId::kInit,
                           [this](ByteSpan p) { return ecall_init(p); });
  enclave_->register_ecall(sgx::EcallId::kRequest,
                           [this](ByteSpan p) { return ecall_request(p); });

  enclave_->register_ocall(sgx::OcallId::kSockConnect, [this](ByteSpan) -> Result<Bytes> {
    const std::uint64_t id =
        next_socket_id_.fetch_add(1, std::memory_order_relaxed);
    {
      SocketShard& shard = socket_shard(id);
      MutexLock lock(shard.mutex);
      shard.buffers[id] = {};
    }
    Bytes out;
    wire::put_u64(out, id);
    return out;
  });

  enclave_->register_ocall(sgx::OcallId::kSend, [this](ByteSpan payload) -> Result<Bytes> {
    std::size_t offset = 0;
    auto sock = wire::get_u64(payload, offset);
    if (!sock) return sock.status();
    const ByteSpan body = payload.subspan(offset);

    // Failure-domain checks, all host-side (this lambda is the untrusted
    // half of the boundary): a request whose budget is already spent, or
    // whose engine dependency the breaker has declared down, fails here
    // without touching the engine.
    if (engine_breaker_ != nullptr && !engine_breaker_->allow()) {
      return upstream_down("engine: circuit breaker open");
    }
    if (options_.engine_fault_hook) {
      // Injected chaos (latency and/or failure) stands in for a degraded
      // engine; its failures feed the breaker like real ones.
      const Status injected = options_.engine_fault_hook();
      if (!injected.is_ok()) {
        if (engine_breaker_ != nullptr) engine_breaker_->record_failure();
        return injected;
      }
    }
    if (sgx::host_request_deadline().expired()) {
      // The engine (real or injected-slow) would answer too late anyway;
      // an engine path that burns whole budgets counts against the breaker.
      if (engine_breaker_ != nullptr) engine_breaker_->record_failure();
      return deadline_exceeded("engine: request budget exhausted");
    }

    // The untrusted host relays the request and parks the response in the
    // socket buffer until the enclave recv()s it. With the encrypted engine
    // link the host only ever sees envelope ciphertext here.
    Bytes response;
    if (gateway_ != nullptr) {
      auto sealed = gateway_->handle(body);
      if (!sealed) {
        if (engine_breaker_ != nullptr) engine_breaker_->record_failure();
        return sealed.status();
      }
      response = std::move(sealed).value();
    } else {
      auto request = wire::parse_engine_request(body);
      if (!request) return request.status();
      if (engine_ == nullptr) {
        if (engine_breaker_ != nullptr) engine_breaker_->record_failure();
        return unavailable("no engine connected");
      }
      response = wire::serialize_results(engine_->search_or(
          request.value().sub_queries, request.value().top_k_each));
    }
    if (engine_breaker_ != nullptr) engine_breaker_->record_success();
    SocketShard& shard = socket_shard(sock.value());
    MutexLock lock(shard.mutex);
    const auto it = shard.buffers.find(sock.value());
    if (it == shard.buffers.end()) return not_found("send: bad socket");
    it->second = std::move(response);
    return Bytes{};
  });

  enclave_->register_ocall(sgx::OcallId::kRecv, [this](ByteSpan payload) -> Result<Bytes> {
    std::size_t offset = 0;
    auto sock = wire::get_u64(payload, offset);
    if (!sock) return sock.status();
    SocketShard& shard = socket_shard(sock.value());
    MutexLock lock(shard.mutex);
    const auto it = shard.buffers.find(sock.value());
    if (it == shard.buffers.end()) return not_found("recv: bad socket");
    // Moved out, not copied: the response crosses the boundary exactly once
    // and the subsequent `close` erases the (now empty) slot anyway.
    return std::move(it->second);
  });

  enclave_->register_ocall(sgx::OcallId::kClose, [this](ByteSpan payload) -> Result<Bytes> {
    std::size_t offset = 0;
    auto sock = wire::get_u64(payload, offset);
    if (!sock) return sock.status();
    SocketShard& shard = socket_shard(sock.value());
    MutexLock lock(shard.mutex);
    shard.buffers.erase(sock.value());
    return Bytes{};
  });

  // Warm restart: replay the sealed checkpoint (if one exists) into the
  // fresh history before serving. Runs at construction, conceptually part
  // of enclave init — the host supplies only the opaque blob.
  restore_checkpoint();

  // Configure the trusted side through the init ecall, as the SDK would.
  // A failure here (the enclave refusing the host's configuration) is
  // recorded and surfaced by `create`, not swallowed.
  Bytes init_payload;
  wire::put_u32(init_payload, static_cast<std::uint32_t>(options_.k));
  wire::put_u32(init_payload, options_.results_per_subquery);
  const Status inited = enclave_->ecall(sgx::EcallId::kInit, init_payload).status();
  if (!inited.is_ok()) return inited;

  // Exitless path: park persistent trusted workers in the enclave AFTER the
  // trusted state is configured. Each worker is one long-running ecall.
  if (options_.switchless.enabled) {
    enclave_->start_switchless(options_.switchless);
  }
  return Status::ok();
}

std::filesystem::path XSearchProxy::checkpoint_path() const {
  if (options_.checkpoint_dir.empty()) return {};
  return options_.checkpoint_dir / kCheckpointFileName;
}

void XSearchProxy::restore_checkpoint() {
  if (options_.checkpoint_dir.empty()) return;
  auto blob = read_checkpoint_file(checkpoint_path());
  if (!blob) return;  // no checkpoint yet: plain cold start
  restore_attempted_ = true;

  SessionObfuscationCounts sessions;
  const Status restored =
      restore_history(*enclave_, blob.value(), *history_, &sessions);
  if (!restored.is_ok()) {
    // Tampered or truncated blob: discard the (possibly partial) replay
    // and fall back to a clean cold start rather than a corrupt window.
    history_ =
        std::make_unique<QueryHistory>(options_.history_capacity, &enclave_->epc());
    obfuscator_ = std::make_unique<Obfuscator>(*history_, options_.k);
    return;
  }
  restore_hit_ = true;
  restored_entries_ = history_->size();
  restored_sessions_ = sessions.size();
  sessions_->set_resume_generations(std::move(sessions));
}

Status XSearchProxy::checkpoint_now() {
  if (options_.checkpoint_dir.empty()) {
    return failed_precondition("checkpointing disabled: no checkpoint_dir");
  }
  MutexLock lock(checkpoint_mutex_);
  return checkpoint_locked();
}

void XSearchProxy::maybe_checkpoint() {
  if (options_.checkpoint_dir.empty() ||
      options_.checkpoint_interval_queries == 0) {
    return;
  }
  if (queries_since_checkpoint_.load(std::memory_order_relaxed) <
      options_.checkpoint_interval_queries) {
    return;
  }
  // Contended means a checkpoint is being written right now — skip instead
  // of queueing a redundant one behind it.
  if (!checkpoint_mutex_.try_lock()) return;
  MutexLock lock(checkpoint_mutex_, std::adopt_lock);
  (void)checkpoint_locked();
}

Status XSearchProxy::checkpoint_locked() {
  queries_since_checkpoint_.store(0, std::memory_order_relaxed);
  // The sealing runs inside the enclave (the checkpoint tag of the
  // `request` ecall); the host persists the opaque blob it gets back.
  Bytes payload;
  payload.push_back(kTagCheckpoint);
  auto sealed = enclave_->ecall(sgx::EcallId::kRequest, payload);
  if (!sealed) {
    checkpoint_write_failures_.fetch_add(1, std::memory_order_relaxed);
    return sealed.status();
  }
  const Status written = write_checkpoint_file(checkpoint_path(), sealed.value());
  if (written.is_ok()) {
    checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
  } else {
    checkpoint_write_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  return written;
}

Status XSearchProxy::heartbeat() {
  // Deliberately a *plain* ecall even when switchless is on: the probe must
  // measure an enclave transition (what a supervisor keys respawns on), not
  // the ring's health.
  Bytes payload;
  payload.push_back(kTagHeartbeat);
  return enclave_->ecall(sgx::EcallId::kRequest, payload).status();
}

XSearchProxy::CheckpointStats XSearchProxy::checkpoint_stats() const {
  CheckpointStats out;
  out.enabled = !options_.checkpoint_dir.empty();
  out.restore_attempted = restore_attempted_;
  out.restore_hit = restore_hit_;
  out.restored_entries = restored_entries_;
  out.restored_sessions = restored_sessions_;
  out.written = checkpoints_written_.load(std::memory_order_relaxed);
  out.write_failures = checkpoint_write_failures_.load(std::memory_order_relaxed);
  return out;
}

Result<Bytes> XSearchProxy::ecall_init(ByteSpan payload) {
  std::size_t offset = 0;
  auto k = wire::get_u32(payload, offset);
  if (!k) return k.status();
  auto per_subquery = wire::get_u32(payload, offset);
  if (!per_subquery) return per_subquery.status();
  // k and results_per_subquery already live in options_; the ecall verifies
  // the host passed a configuration consistent with the measured one.
  if (k.value() != options_.k || per_subquery.value() != options_.results_per_subquery) {
    return invalid_argument("init: configuration mismatch");
  }
  return Bytes{};
}

Result<Bytes> XSearchProxy::ecall_request(ByteSpan payload) {
  if (payload.empty()) return invalid_argument("request: empty payload");
  const std::uint8_t tag = payload[0];
  const ByteSpan body = payload.subspan(1);
  switch (tag) {
    case kTagHandshake:
      return trusted_handshake(body);
    case kTagQuery:
      return trusted_query(body);
    case kTagHeartbeat:
      return trusted_heartbeat();
    case kTagCheckpoint:
      return trusted_checkpoint();
    default:
      return invalid_argument("request: unknown tag");
  }
}

Result<Bytes> XSearchProxy::trusted_handshake(ByteSpan payload) {
  // Either a bare client key, or key || u64 host-proposed session id (the
  // fleet router's consistent-hash ids — untrusted routing metadata).
  std::uint64_t proposed_id = 0;
  if (payload.size() == crypto::kX25519KeySize + 8) {
    std::size_t offset = crypto::kX25519KeySize;
    auto proposed = wire::get_u64(payload, offset);
    if (!proposed) return proposed.status();
    proposed_id = proposed.value();
  } else if (payload.size() != crypto::kX25519KeySize) {
    return invalid_argument("handshake: bad client key size");
  }
  crypto::X25519Key client_pub;
  std::memcpy(client_pub.data(), payload.data(), client_pub.size());

  crypto::X25519Secret eph_seed;
  {
    MutexLock lock(handshake_mutex_);
    eph_seed = secure_rng_.key();
  }
  const crypto::X25519KeyPair ephemeral = crypto::x25519_keypair_from_seed(eph_seed);

  // The table is bounded: this may evict the least-recently-used session
  // (whose client will be told "unknown session" and must re-handshake).
  const std::uint64_t session_id = sessions_->insert(
      crypto::SecureChannel::responder(static_keys_, ephemeral, client_pub),
      proposed_id);
  if (session_id == 0) {
    return failed_precondition("handshake: proposed session id already in use");
  }

  const sgx::Quote quote =
      quote_channel_key(*authority_, *enclave_, static_keys_.public_key);

  Bytes out;
  wire::put_u64(out, session_id);
  const Bytes quote_bytes = quote.serialize();
  wire::put_u32(out, static_cast<std::uint32_t>(quote_bytes.size()));
  append(out, quote_bytes);
  append(out, ephemeral.public_key);
  return out;
}

Result<Bytes> XSearchProxy::trusted_query(ByteSpan payload) {
  std::size_t offset = 0;
  auto session_id = wire::get_u64(payload, offset);
  if (!session_id) return session_id.status();

  // The locked handle serializes this session's channel (its nonce counters
  // require records to be processed in seal order) and keeps the session
  // alive even if the table evicts it mid-request. It is held through the
  // engine round trip so the sealed response order matches too; queries on
  // other sessions are untouched by this lock.
  auto session = sessions_->acquire(session_id.value());
  if (!session) {
    return not_found("query: unknown session (never opened, idle-expired, "
                     "or evicted by the bounded session table)");
  }
  crypto::SecureChannel& channel = session.channel();

  auto plaintext = channel.open(payload.subspan(offset));
  if (!plaintext) return plaintext.status();
  auto message = wire::parse_client_message(plaintext.value());
  if (!message) return message.status();

  if (message.value().type == wire::ClientMessageType::kQuery) {
    auto filtered = run_trusted_query(message.value().query, session);
    if (!filtered) {
      return Bytes(channel.seal(wire::frame_error(filtered.status().to_string())));
    }
    return Bytes(channel.seal(wire::frame_results(filtered.value())));
  }

  if (message.value().type == wire::ClientMessageType::kQueryBatch) {
    // The whole batch was opened with ONE AEAD operation and is answered
    // with one sealed reply — the per-query channel-crypto and boundary
    // cost amortizes over the batch. Item failures (engine refusing one
    // query) stay per-item so they cannot poison their neighbours.
    std::vector<wire::BatchItem> items;
    items.reserve(message.value().queries.size());
    for (const auto& query : message.value().queries) {
      wire::BatchItem item;
      auto filtered = run_trusted_query(query, session);
      if (filtered) {
        item.ok = true;
        item.results = std::move(filtered).value();
      } else {
        item.error = filtered.status().to_string();
      }
      items.push_back(std::move(item));
    }
    return Bytes(channel.seal(wire::frame_results_batch(items)));
  }

  return invalid_argument("query: expected a query or query-batch message");
}

Result<Bytes> XSearchProxy::trusted_heartbeat() {
  // Proof of life from inside the TEE: the probe answers with the history
  // depth, so a supervisor can watch decoy quality recover after a warm
  // restart without any extra ecall surface.
  Bytes out;
  wire::put_u64(out, history_->size());
  return out;
}

Result<Bytes> XSearchProxy::trusted_checkpoint() {
  // Seal the history plus each session's cumulative stream generation
  // (format v2). Runs inside the enclave; only the sealed blob crosses out.
  return Bytes(
      seal_history(*enclave_, *history_, sessions_->checkpoint_generations()));
}

Result<std::vector<engine::SearchResult>> XSearchProxy::run_trusted_query(
    const std::string& query, SessionTable::LockedSession& session) {
  // Algorithm 1 inside the enclave. Randomness comes from this session's
  // private stream (guarded by the held session lock), so concurrent
  // sessions obfuscate in parallel: no global RNG lock exists on this path.
  ObfuscatedQuery obfuscated = obfuscator_->obfuscate(query, session.rng());
  session.note_obfuscation();
  queries_since_checkpoint_.fetch_add(1, std::memory_order_relaxed);

  std::vector<engine::SearchResult> filtered;
  if (options_.contact_engine) {
    auto results = query_engine(obfuscated, session.secure_rng());
    if (!results) return results.status();
    // Algorithm 2 inside the enclave, plus analytics scrubbing.
    filtered = filter_.filter(obfuscated.original, obfuscated.fakes,
                              std::move(results).value());
  }
  return filtered;
}

Result<std::vector<engine::SearchResult>> XSearchProxy::query_engine(
    const ObfuscatedQuery& obfuscated, crypto::SecureRandom& session_rng) {
  // sock_connect
  auto sock_raw =
      enclave_->ocall(sgx::OcallId::kSockConnect, to_bytes("search.example:443"));
  if (!sock_raw) return sock_raw.status();
  std::size_t offset = 0;
  auto sock = wire::get_u64(sock_raw.value(), offset);
  if (!sock) return sock.status();

  // send: the OR query leaves the enclave; only the obfuscated form is
  // visible to the host and the engine — and with the encrypted engine link
  // (footnote 2) the host sees only envelope ciphertext.
  wire::EngineRequest request;
  request.sub_queries = obfuscated.sub_queries;
  request.top_k_each = options_.results_per_subquery;
  const Bytes request_bytes = wire::serialize_engine_request(request);

  crypto::AeadKey response_key{};
  Bytes send_payload;
  wire::put_u64(send_payload, sock.value());
  if (options_.engine_tls_public_key.has_value()) {
    append(send_payload,
           crypto::envelope_seal(*options_.engine_tls_public_key, session_rng,
                                 to_bytes("xsearch-engine-link-v1"), request_bytes,
                                 &response_key));
  } else {
    append(send_payload, request_bytes);
  }
  if (auto sent = enclave_->ocall(sgx::OcallId::kSend, send_payload); !sent) {
    return sent.status();
  }

  // recv
  Bytes recv_payload;
  wire::put_u64(recv_payload, sock.value());
  auto response = enclave_->ocall(sgx::OcallId::kRecv, recv_payload);
  if (!response) return response.status();

  // close
  Bytes close_payload;
  wire::put_u64(close_payload, sock.value());
  (void)enclave_->ocall(sgx::OcallId::kClose, close_payload);

  if (options_.engine_tls_public_key.has_value()) {
    auto plain = crypto::envelope_reply_open(
        response_key, to_bytes("xsearch-engine-link-v1"), response.value());
    if (!plain) return plain.status();
    return wire::parse_results(plain.value());
  }
  return wire::parse_results(response.value());
}

Result<XSearchProxy::HandshakeResponse> XSearchProxy::handshake(
    const crypto::X25519Key& client_ephemeral_pub,
    std::uint64_t proposed_session_id) {
  Bytes payload;
  payload.push_back(kTagHandshake);
  append(payload, client_ephemeral_pub);
  if (proposed_session_id != 0) wire::put_u64(payload, proposed_session_id);
  // Handshakes are rare and order-sensitive; they keep the ecall path.
  auto raw = enclave_->ecall(sgx::EcallId::kRequest, payload);
  if (!raw) return raw.status();

  std::size_t offset = 0;
  HandshakeResponse out;
  auto session_id = wire::get_u64(raw.value(), offset);
  if (!session_id) return session_id.status();
  out.session_id = session_id.value();
  auto quote_len = wire::get_u32(raw.value(), offset);
  if (!quote_len) return quote_len.status();
  if (offset + quote_len.value() + crypto::kX25519KeySize != raw.value().size()) {
    return data_loss("handshake: malformed enclave response");
  }
  auto quote = sgx::Quote::deserialize(
      ByteSpan(raw.value().data() + offset, quote_len.value()));
  if (!quote) return quote.status();
  out.quote = std::move(quote).value();
  offset += quote_len.value();
  std::memcpy(out.server_ephemeral_pub.data(), raw.value().data() + offset,
              out.server_ephemeral_pub.size());
  return out;
}

Result<Bytes> XSearchProxy::handle_query_record(std::uint64_t session_id,
                                                ByteSpan record) {
  return handle_query_record(session_id, record, Deadline());
}

Result<Bytes> XSearchProxy::handle_query_record(std::uint64_t session_id,
                                                ByteSpan record,
                                                const Deadline& deadline) {
  if (deadline.expired()) {
    // Refused before the ecall: the record was never opened, so the channel
    // stays consistent from the proxy's view and a client retry (after its
    // session reset) is exactly-once safe.
    return deadline_exceeded("proxy: request budget exhausted before the ecall");
  }
  Bytes payload;
  payload.push_back(kTagQuery);
  wire::put_u64(payload, session_id);
  append(payload, record);
  // The exitless path: with switchless configured this enqueues into the
  // job ring (no transition); when the ring is full or the workers parked,
  // submit() degrades to the plain request ecall. The deadline rides along
  // for the engine ocall's budget check on whichever thread executes the
  // trusted handler. With switchless off entirely, this is the historical
  // one-ecall-per-request path and every RingStats counter stays zero.
  auto response = [&]() -> Result<Bytes> {
    if (options_.switchless.enabled) {
      return enclave_->submit(sgx::EcallId::kRequest, payload, deadline);
    }
    sgx::HostDeadlineScope scope(deadline);
    return enclave_->ecall(sgx::EcallId::kRequest, payload);
  }();
  // Periodic checkpoint poll, host side: the trusted counter says how many
  // queries (including batch items, which the host cannot see inside the
  // sealed record) ran since the last seal.
  if (response.is_ok()) maybe_checkpoint();
  return response;
}

XSearchProxy::~XSearchProxy() {
  // Member destruction runs in reverse declaration order, which would tear
  // down the session/history tables while in-enclave workers may still be
  // executing trusted handlers over them. Join the workers first.
  if (enclave_ != nullptr) enclave_->stop_switchless();
}

}  // namespace xsearch::core
