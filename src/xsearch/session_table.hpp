// Bounded, sharded table of client sessions.
//
// The paper's proxy is multi-threaded with shared in-enclave state (§4.1);
// this table is the session half of that claim. Each established client
// channel lives here behind two levels of locking:
//
//  * a *shard* mutex guards the id → session map and the shard's LRU list —
//    held only for O(1) bookkeeping, never across crypto or the engine trip;
//  * a *per-session* mutex serializes SecureChannel open/seal — the channel
//    carries per-direction nonce counters, so concurrent records on one
//    session must be processed in the order the client sealed them, while
//    queries on *different* sessions proceed in parallel.
//
// Locking order: a shard mutex and a session mutex are never held at the
// same time. `acquire` takes the shard lock, refreshes the LRU position,
// extracts a shared_ptr, releases the shard lock, and only then blocks on
// the session lock. Eviction concurrent with use is safe: the map drops its
// reference but the in-flight `LockedSession` keeps the session alive until
// the request finishes.
//
// The table is bounded two ways, so sessions cannot exhaust the ~90 MiB EPC
// no matter how many clients connect (the unbounded map this replaces grew
// forever): a capacity cap with LRU eviction, and an optional idle TTL.
// Every live session is charged against the enclave's EpcAccountant, which
// is how the Figure 6 methodology meters enclave occupancy.
//
// Each session also owns its *random number streams*: a fast Rng for
// obfuscation sampling and a ChaCha-based SecureRandom for engine-link
// envelope seals, both derived deterministically from (Options::rng_seed,
// session id). They live behind the per-session lock, so the query hot path
// draws randomness with no cross-session serialization — this is what let
// the proxy drop its global rng_mutex_ (see ARCHITECTURE.md "Hot path &
// performance").
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "crypto/random.hpp"
#include "crypto/secure_channel.hpp"
#include "sgx/epc.hpp"

namespace xsearch::core {

class SessionTable {
 public:
  struct Options {
    /// Maximum live sessions across all shards. Enforced per shard with
    /// quotas summing exactly to `capacity` (the remainder of
    /// capacity/shards is spread over the first shards); session ids are
    /// assigned round-robin, so the shards fill evenly.
    std::size_t capacity = 4096;
    /// Sessions idle longer than this are expired (0 = never expire).
    Nanos idle_ttl = 0;
    /// Lock shards; more shards = less contention between sessions.
    std::size_t shards = 8;
    /// Base seed the per-session RNG streams are forked from. Every
    /// session's streams are a pure function of (rng_seed, session id), so
    /// a given seed replays each session's random draws exactly. The
    /// obfuscation decisions built from those draws also depend on the
    /// shared QueryHistory's contents at query time, which track the
    /// global order of add() calls — full replay needs the query
    /// interleaving too, not just the seed.
    std::uint64_t rng_seed = 0x5eed;
  };

  struct Stats {
    std::size_t active = 0;
    std::size_t peak_active = 0;
    std::uint64_t created = 0;
    std::uint64_t evicted_lru = 0;
    std::uint64_t expired_ttl = 0;
    std::uint64_t erased = 0;
    std::uint64_t misses = 0;  // acquires of unknown/evicted/expired ids
    /// Bytes currently charged to the EPC for live sessions.
    std::size_t epc_bytes = 0;
  };

  /// Injectable time source (tests pass a fake; default is wall_now).
  using Clock = std::function<Nanos()>;

  explicit SessionTable(Options options, sgx::EpcAccountant* epc = nullptr,
                        Clock clock = {});
  ~SessionTable();

  SessionTable(const SessionTable&) = delete;
  SessionTable& operator=(const SessionTable&) = delete;

 private:
  struct Session;

 public:
  /// RAII view of one live session: holds the session alive and its lock,
  /// so the caller may use the channel without racing other threads on the
  /// same session. Falsy when the session is unknown, expired, or evicted.
  class LockedSession {
   public:
    LockedSession() = default;
    LockedSession(LockedSession&&) = default;
    // Member-wise move *assignment* would destroy the old session before
    // releasing its lock (declaration order), so it is not offered.
    LockedSession& operator=(LockedSession&&) = delete;

    [[nodiscard]] explicit operator bool() const { return session_ != nullptr; }
    [[nodiscard]] crypto::SecureChannel& channel();

    /// The session's private obfuscation RNG stream (deterministic fork of
    /// the table seed). Guarded by the held per-session lock.
    [[nodiscard]] Rng& rng();
    /// The session's private ChaCha DRBG for envelope seals. Guarded by the
    /// held per-session lock.
    [[nodiscard]] crypto::SecureRandom& secure_rng();

    /// Records one obfuscation performed on this session (the proxy calls
    /// it per query). The count is what v2 checkpoints seal as per-session
    /// obfuscator state.
    void note_obfuscation();
    [[nodiscard]] std::uint64_t obfuscations() const;

   private:
    friend class SessionTable;
    explicit LockedSession(std::shared_ptr<Session> session);

    std::shared_ptr<Session> session_;
    std::unique_lock<Mutex> lock_;
  };

  /// Registers an established channel and returns its session id. May evict
  /// the least-recently-used session of the target shard to stay bounded.
  /// A nonzero `proposed_id` is used as the session id when free (a fleet
  /// router proposes ids that consistent-hash back to the worker it chose);
  /// returns 0 — no session inserted — when the id is already taken.
  [[nodiscard]] std::uint64_t insert(crypto::SecureChannel channel,
                                     std::uint64_t proposed_id = 0);

  /// Looks up a session, refreshes its LRU/idle position, and returns it
  /// locked. Expired sessions encountered on the way are evicted.
  [[nodiscard]] LockedSession acquire(std::uint64_t session_id);

  /// Removes a session explicitly (client teardown). False when unknown.
  bool erase(std::uint64_t session_id);

  /// Evicts every idle-expired session; returns how many were removed.
  std::size_t sweep_expired();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const Options& options() const { return options_; }

  /// The per-session obfuscator state a v2 checkpoint seals: for every
  /// live session its *cumulative* stream position (restored base
  /// generation + obfuscations performed since), plus the carried-forward
  /// entries of restored ids that never resumed. Cumulative so generations
  /// only ever advance across repeated crash/restore cycles — a regressed
  /// generation would re-derive an already-spent decoy stream.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  checkpoint_generations() const;

  /// Installs restored per-session obfuscator state: a session later
  /// inserted under one of these ids derives its RNG streams from
  /// (rng_seed, id, generation) instead of (rng_seed, id), so a session
  /// resumed under its pre-crash id never replays the decoy draws it
  /// already spent. Must be called before the table is used concurrently
  /// (the proxy calls it during construction); the map is immutable after.
  void set_resume_generations(
      std::vector<std::pair<std::uint64_t, std::uint64_t>> generations);

  /// EPC bytes accounted per live session (channel state + table node
  /// bookkeeping) — what `insert` charges and eviction releases.
  [[nodiscard]] static std::size_t session_epc_bytes();

 private:
  struct Shard {
    std::size_t capacity = 0;  // this shard's share of Options::capacity
    Mutex mutex;
    std::unordered_map<std::uint64_t, std::shared_ptr<Session>> sessions
        XS_GUARDED_BY(mutex);
    std::list<std::uint64_t> lru XS_GUARDED_BY(mutex);  // front = most recent
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t session_id) {
    return *shards_[session_id % shards_.size()];
  }
  [[nodiscard]] const Shard& shard_for(std::uint64_t session_id) const {
    return *shards_[session_id % shards_.size()];
  }

  /// Removes the session `it` points at. Caller holds the shard mutex.
  void remove_locked(Shard& shard,
                     std::unordered_map<std::uint64_t,
                                        std::shared_ptr<Session>>::iterator it)
      XS_REQUIRES(shard.mutex);
  /// Evicts idle-expired sessions from the shard's cold end. Caller holds
  /// the shard mutex. Returns the number evicted.
  std::size_t evict_expired_locked(Shard& shard, Nanos now)
      XS_REQUIRES(shard.mutex);

  const Options options_;
  sgx::EpcAccountant* epc_;
  Clock now_;

  // Restored (session id -> generation) map; written once during
  // single-threaded construction, read-only afterwards (see
  // set_resume_generations).
  std::unordered_map<std::uint64_t, std::uint64_t> resume_generations_;

  // Cumulative stream positions of sessions that were evicted, expired, or
  // erased — checkpoints must remember spent streams of departed ids, not
  // just live ones. 16 bytes per departed session with draws; reset by a
  // restart (the checkpoint round-trips the entries that matter). Locking
  // order: a shard mutex may be held when taking this mutex, never the
  // reverse.
  mutable Mutex retained_generations_mutex_;
  std::unordered_map<std::uint64_t, std::uint64_t> retained_generations_
      XS_GUARDED_BY(retained_generations_mutex_);

  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::size_t> active_{0};
  std::atomic<std::size_t> peak_active_{0};
  std::atomic<std::uint64_t> created_{0};
  std::atomic<std::uint64_t> evicted_lru_{0};
  std::atomic<std::uint64_t> expired_ttl_{0};
  std::atomic<std::uint64_t> erased_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::size_t> epc_bytes_{0};
};

}  // namespace xsearch::core
