// In-enclave table of past queries.
//
// The obfuscation mechanism draws its fake queries from "a table containing
// the last x past queries" kept "in the private memory of the X-Search
// proxy ... shared among all threads" with *no association to user
// identities* (paper §4.1, §4.3). The size bound x makes the table a
// sliding window so it fits the ~90 MiB EPC (Figure 6).
//
// Every byte the table holds is charged against the enclave's
// EpcAccountant, which is how the Figure 6 bench measures occupancy.
//
// Locking is reader/writer: `sample` (the per-query hot path, k string
// copies) takes a shared lock so concurrent sessions sample in parallel;
// only `add` (one string move plus O(1) accounting) takes the exclusive
// lock. The previous single mutex serialized every session's sampling.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "sgx/epc.hpp"

namespace xsearch::core {

class QueryHistory {
 public:
  /// `capacity` is the window size x; `epc` (optional) meters memory.
  explicit QueryHistory(std::size_t capacity, sgx::EpcAccountant* epc = nullptr);
  ~QueryHistory();

  QueryHistory(const QueryHistory&) = delete;
  QueryHistory& operator=(const QueryHistory&) = delete;

  /// Inserts a query, evicting the oldest once the window is full.
  /// Thread-safe (exclusive lock).
  void add(std::string_view query);

  /// Samples `k` past queries uniformly at random (with replacement across
  /// calls, without replacement within one call when possible). Returns
  /// fewer than `k` when the table holds fewer entries. Thread-safe, and
  /// concurrent samples proceed in parallel (shared lock).
  [[nodiscard]] std::vector<std::string> sample(std::size_t k, Rng& rng) const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// All live entries, oldest first (for sealed checkpoints). Thread-safe.
  [[nodiscard]] std::vector<std::string> snapshot() const;

  /// Estimated bytes of enclave memory held by the table.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  /// Accounting estimate for one stored query string: the string object,
  /// its heap buffer, and the ring slot bookkeeping.
  [[nodiscard]] static std::size_t entry_bytes(const std::string& s) {
    return sizeof(std::string) + s.capacity() + 1;
  }

  const std::size_t capacity_;
  sgx::EpcAccountant* epc_;

  mutable SharedMutex mutex_;
  std::vector<std::string> ring_ XS_GUARDED_BY(mutex_);
  // Exact bytes charged for each slot. std::string assignment may keep or
  // swap buffers, so the amount to release on eviction must be remembered,
  // not recomputed from the slot's current capacity.
  std::vector<std::size_t> charged_ XS_GUARDED_BY(mutex_);
  std::size_t head_ XS_GUARDED_BY(mutex_) = 0;   // next insert position
  std::size_t count_ XS_GUARDED_BY(mutex_) = 0;  // live entries
  std::size_t bytes_ XS_GUARDED_BY(mutex_) = 0;  // current accounting total
};

}  // namespace xsearch::core
