#include "xsearch/checkpoint.hpp"

#include <fstream>

#include "xsearch/wire.hpp"

namespace xsearch::core {

namespace {
constexpr std::uint32_t kCheckpointMagic = 0x58534850;  // "XSHP"
constexpr std::uint32_t kCheckpointVersion = 1;
}  // namespace

Bytes seal_history(sgx::EnclaveRuntime& enclave, const QueryHistory& history) {
  const auto entries = history.snapshot();
  Bytes plain;
  wire::put_u32(plain, kCheckpointMagic);
  wire::put_u32(plain, kCheckpointVersion);
  wire::put_u32(plain, static_cast<std::uint32_t>(entries.size()));
  for (const auto& q : entries) wire::put_string(plain, q);
  return enclave.seal(plain);
}

Status restore_history(const sgx::EnclaveRuntime& enclave, ByteSpan sealed,
                       QueryHistory& history) {
  auto plain = enclave.unseal(sealed);
  if (!plain) return plain.status();

  const ByteSpan raw(plain.value());
  std::size_t offset = 0;
  auto magic = wire::get_u32(raw, offset);
  if (!magic || magic.value() != kCheckpointMagic) {
    return data_loss("checkpoint: bad magic");
  }
  auto version = wire::get_u32(raw, offset);
  if (!version || version.value() != kCheckpointVersion) {
    return data_loss("checkpoint: unsupported version");
  }
  auto count = wire::get_u32(raw, offset);
  if (!count) return count.status();
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto q = wire::get_string(raw, offset);
    if (!q) return q.status();
    history.add(q.value());
  }
  if (offset != raw.size()) return data_loss("checkpoint: trailing bytes");
  return Status::ok();
}

Status write_checkpoint_file(const std::filesystem::path& path, ByteSpan sealed) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return unavailable("cannot open checkpoint for writing: " + path.string());
  out.write(reinterpret_cast<const char*>(sealed.data()),
            static_cast<std::streamsize>(sealed.size()));
  return out.good() ? Status::ok()
                    : data_loss("short checkpoint write: " + path.string());
}

Result<Bytes> read_checkpoint_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return unavailable("cannot open checkpoint: " + path.string());
  const std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in.good()) return data_loss("short checkpoint read: " + path.string());
  return data;
}

}  // namespace xsearch::core
