#include "xsearch/checkpoint.hpp"

#include <fstream>
#include <system_error>

#include "xsearch/wire.hpp"

namespace xsearch::core {

namespace {
constexpr std::uint32_t kCheckpointMagic = 0x58534850;  // "XSHP"
constexpr std::uint32_t kCheckpointVersionV1 = 1;
constexpr std::uint32_t kCheckpointVersionV2 = 2;
}  // namespace

Bytes seal_history(sgx::EnclaveRuntime& enclave, const QueryHistory& history) {
  return seal_history(enclave, history, {});
}

Bytes seal_history(sgx::EnclaveRuntime& enclave, const QueryHistory& history,
                   const SessionObfuscationCounts& sessions) {
  const auto entries = history.snapshot();
  Bytes plain;
  wire::put_u32(plain, kCheckpointMagic);
  wire::put_u32(plain, kCheckpointVersionV2);
  wire::put_u32(plain, static_cast<std::uint32_t>(entries.size()));
  for (const auto& q : entries) wire::put_string(plain, q);
  wire::put_u32(plain, static_cast<std::uint32_t>(sessions.size()));
  for (const auto& [id, obfuscations] : sessions) {
    wire::put_u64(plain, id);
    wire::put_u64(plain, obfuscations);
  }
  return enclave.seal(plain);
}

Status restore_history(const sgx::EnclaveRuntime& enclave, ByteSpan sealed,
                       QueryHistory& history, SessionObfuscationCounts* sessions) {
  if (sessions != nullptr) sessions->clear();
  auto plain = enclave.unseal(sealed);
  if (!plain) return plain.status();

  const ByteSpan raw(plain.value());
  std::size_t offset = 0;
  auto magic = wire::get_u32(raw, offset);
  if (!magic || magic.value() != kCheckpointMagic) {
    return data_loss("checkpoint: bad magic");
  }
  auto version = wire::get_u32(raw, offset);
  if (!version || (version.value() != kCheckpointVersionV1 &&
                   version.value() != kCheckpointVersionV2)) {
    return data_loss("checkpoint: unsupported version");
  }
  auto count = wire::get_u32(raw, offset);
  if (!count) return count.status();
  // A checkpoint wider than the restored window would spend the whole
  // window on entries the replay itself immediately evicts; every parsed
  // entry still validates the blob, only the add() is skipped.
  const std::uint64_t skip =
      count.value() > history.capacity() ? count.value() - history.capacity() : 0;
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto q = wire::get_string(raw, offset);
    if (!q) return q.status();
    if (i >= skip) history.add(q.value());
  }
  if (version.value() >= kCheckpointVersionV2) {
    auto session_count = wire::get_u32(raw, offset);
    if (!session_count) return session_count.status();
    for (std::uint32_t i = 0; i < session_count.value(); ++i) {
      auto id = wire::get_u64(raw, offset);
      if (!id) return id.status();
      auto obfuscations = wire::get_u64(raw, offset);
      if (!obfuscations) return obfuscations.status();
      if (sessions != nullptr) {
        sessions->emplace_back(id.value(), obfuscations.value());
      }
    }
  }
  if (offset != raw.size()) return data_loss("checkpoint: trailing bytes");
  return Status::ok();
}

Status write_checkpoint_file(const std::filesystem::path& path, ByteSpan sealed) {
  std::error_code ec;
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path(), ec);  // best effort
  }
  // Crash atomicity: a temp file in the same directory (rename does not
  // cross filesystems) replaces the target only once fully written. A crash
  // at any point leaves the previous checkpoint intact or an ignorable
  // *.tmp — never a truncated blob at `path`.
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return unavailable("cannot open checkpoint for writing: " + tmp.string());
    out.write(reinterpret_cast<const char*>(sealed.data()),
              static_cast<std::streamsize>(sealed.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return data_loss("short checkpoint write: " + tmp.string());
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return data_loss("checkpoint rename failed: " + path.string());
  }
  return Status::ok();
}

Result<Bytes> read_checkpoint_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return unavailable("cannot open checkpoint: " + path.string());
  const std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in.good()) return data_loss("short checkpoint read: " + path.string());
  return data;
}

}  // namespace xsearch::core
