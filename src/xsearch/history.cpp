#include "xsearch/history.hpp"

#include <cassert>
#include <unordered_map>
#include <utility>

namespace xsearch::core {

QueryHistory::QueryHistory(std::size_t capacity, sgx::EpcAccountant* epc)
    : capacity_(capacity), epc_(epc) {
  assert(capacity_ > 0);
}

QueryHistory::~QueryHistory() {
  if (epc_) epc_->release(bytes_);
}

void QueryHistory::add(std::string_view query) {
  WriterLock lock(mutex_);
  std::string incoming(query);

  if (count_ < capacity_) {
    // Growing phase: the slot and its contents are newly enclave-resident.
    ring_.push_back(std::move(incoming));
    const std::size_t new_bytes = entry_bytes(ring_.back());
    charged_.push_back(new_bytes);
    bytes_ += new_bytes;
    if (epc_) epc_->charge(new_bytes);
    ++count_;
    head_ = (head_ + 1) % capacity_;
  } else {
    // Sliding phase: evict the oldest entry (the slot head_ points at),
    // releasing exactly what that slot was charged for.
    std::string& slot = ring_[head_];
    const std::size_t old_bytes = charged_[head_];
    slot = std::move(incoming);
    const std::size_t new_bytes = entry_bytes(slot);
    charged_[head_] = new_bytes;
    if (epc_) {
      epc_->release(old_bytes);
      epc_->charge(new_bytes);
    }
    bytes_ += new_bytes;
    bytes_ -= old_bytes;
    head_ = (head_ + 1) % capacity_;
  }
}

std::vector<std::string> QueryHistory::sample(std::size_t k, Rng& rng) const {
  ReaderLock lock(mutex_);
  std::vector<std::string> out;
  if (count_ == 0 || k == 0) return out;
  out.reserve(k);

  if (k >= count_) {
    // Degenerate window: return everything we have (shuffled).
    out.assign(ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(count_));
    for (std::size_t i = out.size(); i > 1; --i) {
      std::swap(out[i - 1], out[rng.uniform(i)]);
    }
    return out;
  }

  // Sample k distinct positions with a partial Fisher–Yates shuffle over a
  // sparse displacement map: O(k) draws regardless of how close k is to
  // count (rejection sampling degraded toward O(k·count) there).
  std::unordered_map<std::size_t, std::size_t> displaced;
  displaced.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform(count_ - i));
    const auto at_j = displaced.find(j);
    const std::size_t pick = at_j == displaced.end() ? j : at_j->second;
    const auto at_i = displaced.find(i);
    displaced[j] = at_i == displaced.end() ? i : at_i->second;
    out.push_back(ring_[pick]);
  }
  return out;
}

std::vector<std::string> QueryHistory::snapshot() const {
  ReaderLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(count_);
  if (count_ < capacity_) {
    // Still growing: insertion order is vector order.
    out.assign(ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(count_));
  } else {
    // Full ring: head_ points at the oldest entry.
    for (std::size_t i = 0; i < count_; ++i) {
      out.push_back(ring_[(head_ + i) % capacity_]);
    }
  }
  return out;
}

std::size_t QueryHistory::size() const {
  ReaderLock lock(mutex_);
  return count_;
}

std::size_t QueryHistory::memory_bytes() const {
  ReaderLock lock(mutex_);
  return bytes_;
}

}  // namespace xsearch::core
