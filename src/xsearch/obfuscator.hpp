// Query obfuscation — Algorithm 1 of the paper.
//
// The obfuscated query aggregates the user's query with k fake queries in
// random order using the logical OR operator. Crucially, the fakes are
// *real past queries of other users* drawn from the in-enclave history
// table, which is what makes them indistinguishable from real traffic
// (every sub-query maps to some real user profile, §4.3 / Figure 3).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "xsearch/history.hpp"

namespace xsearch::core {

/// The output of the obfuscation step. The proxy keeps the decomposition
/// private (inside the enclave) for the later filtering step; the search
/// engine only ever sees `to_query_string()`.
struct ObfuscatedQuery {
  std::string original;                 // the user's query
  std::vector<std::string> fakes;       // k past queries
  std::vector<std::string> sub_queries; // original + fakes, shuffled

  /// The single OR query string sent to the engine.
  [[nodiscard]] std::string to_query_string() const;
};

class Obfuscator {
 public:
  /// `k` is the number of fake queries aggregated with each user query.
  Obfuscator(QueryHistory& history, std::size_t k) : history_(&history), k_(k) {}

  /// Algorithm 1: draw k random past queries, shuffle the original among
  /// them, then store the original in the history. When the history holds
  /// fewer than k entries (cold start), fewer fakes are used.
  [[nodiscard]] ObfuscatedQuery obfuscate(std::string_view query, Rng& rng) const;

  [[nodiscard]] std::size_t k() const { return k_; }

 private:
  QueryHistory* history_;
  std::size_t k_;
};

}  // namespace xsearch::core
