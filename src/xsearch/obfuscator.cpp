#include "xsearch/obfuscator.hpp"

namespace xsearch::core {

std::string ObfuscatedQuery::to_query_string() const {
  std::string out;
  for (const auto& q : sub_queries) {
    if (!out.empty()) out += " OR ";
    out += q;
  }
  return out;
}

ObfuscatedQuery Obfuscator::obfuscate(std::string_view query, Rng& rng) const {
  ObfuscatedQuery result;
  result.original = std::string(query);
  result.fakes = history_->sample(k_, rng);

  // Insert the original at a random position among the fakes (the random
  // `index` of Algorithm 1).
  result.sub_queries = result.fakes;
  const std::size_t position = rng.uniform(result.sub_queries.size() + 1);
  result.sub_queries.insert(
      result.sub_queries.begin() + static_cast<std::ptrdiff_t>(position),
      result.original);

  // Algorithm 1 line 9: H <- Q. Done after sampling so a query is never its
  // own decoy.
  history_->add(query);
  return result;
}

}  // namespace xsearch::core
