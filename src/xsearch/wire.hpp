// Wire formats used across the X-Search deployment:
//
//  * client <-> proxy: framed handshake / query / response messages carried
//    inside SecureChannel records;
//  * enclave <-> host <-> engine: the "socket" payloads crossing the ocall
//    boundary (an OR-query request and a serialized result list).
//
// Formats are length-prefixed binary; parsers are total (they never read
// out of bounds and report malformed input as Status).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "engine/document.hpp"

namespace xsearch::core::wire {

// --- primitives ----------------------------------------------------------

/// Appends a u32-length-prefixed string.
void put_string(Bytes& out, std::string_view s);

/// Reads a u32-length-prefixed string, advancing `offset`.
[[nodiscard]] Result<std::string> get_string(ByteSpan in, std::size_t& offset);

void put_u32(Bytes& out, std::uint32_t v);
[[nodiscard]] Result<std::uint32_t> get_u32(ByteSpan in, std::size_t& offset);

void put_u64(Bytes& out, std::uint64_t v);
[[nodiscard]] Result<std::uint64_t> get_u64(ByteSpan in, std::size_t& offset);

void put_double(Bytes& out, double v);
[[nodiscard]] Result<double> get_double(ByteSpan in, std::size_t& offset);

// --- result lists ---------------------------------------------------------

[[nodiscard]] Bytes serialize_results(const std::vector<engine::SearchResult>& results);
[[nodiscard]] Result<std::vector<engine::SearchResult>> parse_results(ByteSpan raw);

// --- engine request (crosses the ocall "socket") --------------------------

/// What the enclave writes to the engine socket: the sub-queries of the OR
/// query plus how many results to retrieve per sub-query.
struct EngineRequest {
  std::vector<std::string> sub_queries;
  std::uint32_t top_k_each = 20;
};

[[nodiscard]] Bytes serialize_engine_request(const EngineRequest& request);
[[nodiscard]] Result<EngineRequest> parse_engine_request(ByteSpan raw);

// --- client messages (inside SecureChannel records) ------------------------

enum class ClientMessageType : std::uint8_t {
  kQuery = 1,
  kResults = 2,
  kError = 3,
  kQueryBatch = 4,    // many queries sealed as ONE channel record
  kResultsBatch = 5,  // per-item results/errors, sealed as one record
};

/// Upper bound on queries per batch message. Bounds the work one sealed
/// record can demand from the enclave and the allocation a parsed batch can
/// force; parsers reject bigger (and empty) batches as malformed.
inline constexpr std::size_t kMaxBatchQueries = 64;

/// Outcome of one query inside a batch: either a result list or an error
/// string. Item failures (engine unavailable for one query) must not poison
/// the batch, so each slot carries its own verdict.
struct BatchItem {
  bool ok = false;
  std::vector<engine::SearchResult> results;  // ok
  std::string error;                          // !ok
};

/// Frames a query message (client -> enclave plaintext).
[[nodiscard]] Bytes frame_query(std::string_view query);

/// Frames a results message (enclave -> client plaintext).
[[nodiscard]] Bytes frame_results(const std::vector<engine::SearchResult>& results);

/// Frames an error message.
[[nodiscard]] Bytes frame_error(std::string_view message);

/// Frames a query batch (client -> enclave plaintext): 1..kMaxBatchQueries
/// queries carried in one sealed record, so a batch costs one AEAD
/// seal/open instead of one per query.
[[nodiscard]] Bytes frame_query_batch(const std::vector<std::string>& queries);

/// Frames the per-item outcomes of a batch (enclave -> client plaintext).
[[nodiscard]] Bytes frame_results_batch(const std::vector<BatchItem>& items);

struct ClientMessage {
  ClientMessageType type = ClientMessageType::kError;
  std::string query;                          // kQuery
  std::vector<engine::SearchResult> results;  // kResults
  std::string error;                          // kError
  std::vector<std::string> queries;           // kQueryBatch
  std::vector<BatchItem> batch;               // kResultsBatch
};

[[nodiscard]] Result<ClientMessage> parse_client_message(ByteSpan raw);

}  // namespace xsearch::core::wire
