#include "xsearch/engine_gateway.hpp"

#include "crypto/random.hpp"
#include "xsearch/wire.hpp"

namespace xsearch::core {

namespace {
constexpr char kLinkAad[] = "xsearch-engine-link-v1";
}

SecureEngineGateway::SecureEngineGateway(const engine::SearchEngine* engine,
                                         std::uint64_t seed)
    : engine_(engine) {
  keys_ = crypto::x25519_keypair_from_seed(
      crypto::domain_seed(seed, /*tag=*/0x71));  // gateway domain separation
}

Result<Bytes> SecureEngineGateway::handle(ByteSpan envelope) const {
  auto opened = crypto::envelope_open(keys_, to_bytes(kLinkAad), envelope);
  if (!opened) return opened.status();

  auto request = wire::parse_engine_request(opened.value().plaintext);
  if (!request) return request.status();

  std::vector<engine::SearchResult> results;
  if (engine_ != nullptr) {
    results = engine_->search_or(request.value().sub_queries,
                                 request.value().top_k_each);
  }
  return crypto::envelope_reply_seal(opened.value().response_key, to_bytes(kLinkAad),
                                     wire::serialize_results(results));
}

}  // namespace xsearch::core
