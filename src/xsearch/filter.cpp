#include "xsearch/filter.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/hash.hpp"
#include "engine/analytics.hpp"
#include "text/sparse_vector.hpp"
#include "text/tokenizer.hpp"
#include "text/vocabulary.hpp"

namespace xsearch::core {

namespace {

// Token → sub-query postings for one filter batch. Sub-query 0 is the
// original; 1..k are the fakes. Each sub-query's lower-cased text is kept
// alive for the batch so the map can key on views into it — result tokens
// are only ever *looked up* (a token that appears in no sub-query cannot
// contribute to any common-words score), so the reused per-result buffer
// never needs to back a stored key.
class QueryTokenPostings {
 public:
  QueryTokenPostings(std::string_view original, const std::vector<std::string>& fakes) {
    buffers_.reserve(fakes.size() + 1);
    add_query(original);
    for (const auto& fake : fakes) add_query(fake);
    query_count_ = fakes.size() + 1;
  }

  [[nodiscard]] std::size_t query_count() const { return query_count_; }

  /// The distinct sub-queries containing token id `token`.
  [[nodiscard]] const std::vector<std::uint32_t>& queries_of(std::uint32_t token) const {
    return postings_[token];
  }

  /// Id of a result token, if any sub-query contains it.
  [[nodiscard]] std::optional<std::uint32_t> lookup(std::string_view token) const {
    const auto it = ids_.find(token);
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

 private:
  void add_query(std::string_view query) {
    const auto q = static_cast<std::uint32_t>(buffers_.size());
    buffers_.emplace_back();
    tokens_.clear();
    text::tokenize_views_into(query, buffers_.back(), tokens_);
    for (const std::string_view token : tokens_) {
      const auto [it, inserted] =
          ids_.try_emplace(token, static_cast<std::uint32_t>(postings_.size()));
      if (inserted) postings_.emplace_back();
      auto& queries = postings_[it->second];
      // One query is processed at a time, so a duplicate token inside this
      // query shows up as a trailing `q` (scores count distinct words).
      if (queries.empty() || queries.back() != q) queries.push_back(q);
    }
  }

  std::vector<std::string> buffers_;  // lower-cased sub-queries; keys view these
  std::vector<std::string_view> tokens_;
  std::unordered_map<std::string_view, std::uint32_t, StringHash, std::equal_to<>>
      ids_;
  std::vector<std::vector<std::uint32_t>> postings_;  // token id → sub-queries
  std::size_t query_count_ = 0;
};

}  // namespace

std::vector<engine::SearchResult> ResultFilter::filter(
    std::string_view original, const std::vector<std::string>& fakes,
    std::vector<engine::SearchResult> results) const {
  std::vector<engine::SearchResult> kept =
      scoring_ == FilterScoring::kCommonWords
          ? filter_common_words(original, fakes, std::move(results))
          : filter_cosine(original, fakes, std::move(results));
  strip_tracking(kept);
  return kept;
}

std::vector<engine::SearchResult> ResultFilter::filter_common_words(
    std::string_view original, const std::vector<std::string>& fakes,
    std::vector<engine::SearchResult> results) const {
  const QueryTokenPostings postings(original, fakes);

  std::vector<engine::SearchResult> kept;
  kept.reserve(results.size());

  // Per-result scratch, reused across the batch (allocations amortize out).
  std::string buffer;
  std::vector<std::string_view> tokens;
  std::vector<std::uint32_t> matched;
  std::vector<std::size_t> scores(postings.query_count());

  // score[q] = distinct title tokens shared with q + distinct description
  // tokens shared with q — nbCommonWords(q, title) + nbCommonWords(q, desc).
  const auto accumulate_field = [&](std::string_view field) {
    tokens.clear();
    matched.clear();
    text::tokenize_views_into(field, buffer, tokens);
    for (const std::string_view token : tokens) {
      if (const auto id = postings.lookup(token)) matched.push_back(*id);
    }
    std::sort(matched.begin(), matched.end());
    matched.erase(std::unique(matched.begin(), matched.end()), matched.end());
    for (const std::uint32_t id : matched) {
      for (const std::uint32_t q : postings.queries_of(id)) ++scores[q];
    }
  };

  for (auto& r : results) {
    std::fill(scores.begin(), scores.end(), 0);
    accumulate_field(r.title);
    accumulate_field(r.description);
    const std::size_t original_score = scores[0];
    bool is_max = true;
    for (std::size_t q = 1; q < scores.size(); ++q) {
      if (scores[q] > original_score) {
        is_max = false;
        break;
      }
    }
    if (is_max) kept.push_back(std::move(r));
  }
  return kept;
}

std::vector<engine::SearchResult> ResultFilter::filter_cosine(
    std::string_view original, const std::vector<std::string>& fakes,
    std::vector<engine::SearchResult> results) const {
  // One vocabulary for the whole batch; each sub-query's TF vector is built
  // exactly once. Cosine depends only on term identity, not id values, so
  // sharing the vocabulary leaves every score unchanged.
  text::Vocabulary vocab;
  std::vector<text::SparseVector> query_vecs;
  query_vecs.reserve(fakes.size() + 1);
  query_vecs.push_back(text::tf_vector(vocab, original));
  for (const auto& fake : fakes) query_vecs.push_back(text::tf_vector(vocab, fake));

  std::vector<engine::SearchResult> kept;
  kept.reserve(results.size());
  std::string textual;
  for (auto& r : results) {
    textual.assign(r.title);
    textual += ' ';
    textual += r.description;
    const text::SparseVector r_vec = text::tf_vector(vocab, textual);
    const double original_score = query_vecs[0].cosine(r_vec);
    bool is_max = true;
    for (std::size_t q = 1; q < query_vecs.size(); ++q) {
      if (query_vecs[q].cosine(r_vec) > original_score) {
        is_max = false;
        break;
      }
    }
    if (is_max) kept.push_back(std::move(r));
  }
  return kept;
}

void ResultFilter::strip_tracking(std::vector<engine::SearchResult>& results) {
  for (auto& r : results) {
    if (auto target = engine::extract_target_url(r.url)) {
      r.url = *std::move(target);
    }
  }
}

}  // namespace xsearch::core
