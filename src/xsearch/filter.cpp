#include "xsearch/filter.hpp"

#include "engine/analytics.hpp"
#include "text/sparse_vector.hpp"
#include "text/tokenizer.hpp"

namespace xsearch::core {

double ResultFilter::score(std::string_view query,
                           const engine::SearchResult& result) const {
  if (scoring_ == FilterScoring::kCommonWords) {
    // nbCommonWords(q, title(r)) + nbCommonWords(q, desc(r)) — Algorithm 2.
    const auto tokens = text::tokenize(query);
    const std::unordered_set<std::string> words(tokens.begin(), tokens.end());
    return static_cast<double>(text::common_word_count(words, result.title) +
                               text::common_word_count(words, result.description));
  }
  // Cosine ablation: TF vectors of the query vs title+description.
  text::Vocabulary vocab;
  const auto q_vec = text::tf_vector(vocab, query);
  const auto r_vec = text::tf_vector(vocab, result.title + " " + result.description);
  return q_vec.cosine(r_vec);
}

std::vector<engine::SearchResult> ResultFilter::filter(
    std::string_view original, const std::vector<std::string>& fakes,
    std::vector<engine::SearchResult> results) const {
  std::vector<engine::SearchResult> kept;
  kept.reserve(results.size());
  for (auto& r : results) {
    const double original_score = score(original, r);
    bool is_max = true;
    for (const auto& fake : fakes) {
      if (score(fake, r) > original_score) {
        is_max = false;
        break;
      }
    }
    if (is_max) kept.push_back(std::move(r));
  }
  strip_tracking(kept);
  return kept;
}

void ResultFilter::strip_tracking(std::vector<engine::SearchResult>& results) {
  for (auto& r : results) {
    if (auto target = engine::extract_target_url(r.url)) {
      r.url = *std::move(target);
    }
  }
}

}  // namespace xsearch::core
