// Sealed checkpoints of the query history.
//
// The obfuscation quality of a freshly started proxy is poor until its
// history warms up (cold start = no decoys). SGX's sealed storage solves
// this: the enclave serializes the table, seals it under its measurement
// key, and the *untrusted* host persists the blob. After a restart, an
// enclave running the same code — and only such an enclave — can restore
// it. The queries never touch the host in plaintext.
//
// This is an extension beyond the paper's prototype, built from the
// sealing primitive its §2.3 describes.
#pragma once

#include <filesystem>

#include "common/status.hpp"
#include "sgx/enclave.hpp"
#include "xsearch/history.hpp"

namespace xsearch::core {

/// Serializes the full history contents (oldest first) and seals them to
/// `enclave`'s measurement. Runs inside the trusted side.
[[nodiscard]] Bytes seal_history(sgx::EnclaveRuntime& enclave,
                                 const QueryHistory& history);

/// Unseals a checkpoint and replays it into `history` (appending, in the
/// checkpointed order). Fails if the blob was sealed by different enclave
/// code or tampered with.
[[nodiscard]] Status restore_history(const sgx::EnclaveRuntime& enclave,
                                     ByteSpan sealed, QueryHistory& history);

/// Host-side helpers: persist / load the opaque blob.
[[nodiscard]] Status write_checkpoint_file(const std::filesystem::path& path,
                                           ByteSpan sealed);
[[nodiscard]] Result<Bytes> read_checkpoint_file(const std::filesystem::path& path);

}  // namespace xsearch::core
