// Sealed checkpoints of the query history.
//
// The obfuscation quality of a freshly started proxy is poor until its
// history warms up (cold start = no decoys). SGX's sealed storage solves
// this: the enclave serializes the table, seals it under its measurement
// key, and the *untrusted* host persists the blob. After a restart, an
// enclave running the same code — and only such an enclave — can restore
// it. The queries never touch the host in plaintext.
//
// Format v2 (still restorable from v1 blobs) additionally carries
// per-session obfuscator state: how many obfuscations each live session had
// performed at seal time. A restored proxy folds those counts into the
// per-session RNG derivation, so a session resumed under its old id draws a
// *fresh* decoy stream instead of replaying the pre-crash one — replayed
// decoys would let an engine-side observer link pre- and post-restart
// traffic of the same session.
//
// This is an extension beyond the paper's prototype, built from the
// sealing primitive its §2.3 describes.
#pragma once

#include <cstdint>
#include <filesystem>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "sgx/enclave.hpp"
#include "xsearch/history.hpp"

namespace xsearch::core {

/// Per-session obfuscator state carried by a v2 checkpoint: (session id,
/// obfuscations performed). Ids are untrusted routing metadata; the counts
/// are privacy-relevant (see header comment) and therefore sealed.
using SessionObfuscationCounts =
    std::vector<std::pair<std::uint64_t, std::uint64_t>>;

/// Serializes the full history contents (oldest first) — plus, when given,
/// the per-session obfuscation counts — and seals them to `enclave`'s
/// measurement (format v2). Runs inside the trusted side.
[[nodiscard]] Bytes seal_history(sgx::EnclaveRuntime& enclave,
                                 const QueryHistory& history);
[[nodiscard]] Bytes seal_history(sgx::EnclaveRuntime& enclave,
                                 const QueryHistory& history,
                                 const SessionObfuscationCounts& sessions);

/// Unseals a v1 or v2 checkpoint and replays it into `history` (appending,
/// in the checkpointed order). A checkpoint holding more entries than
/// `history.capacity()` replays only the *newest* capacity entries — the
/// older ones would be evicted by the very replay that inserted them.
/// When `sessions` is non-null, a v2 blob's per-session obfuscation counts
/// are written there (cleared otherwise). Fails if the blob was sealed by
/// different enclave code or tampered with; `history` may then hold a
/// partial replay and should be discarded.
[[nodiscard]] Status restore_history(const sgx::EnclaveRuntime& enclave,
                                     ByteSpan sealed, QueryHistory& history,
                                     SessionObfuscationCounts* sessions = nullptr);

/// Host-side helpers: persist / load the opaque blob. The write is
/// crash-atomic — the blob lands in a temp file in the target's directory
/// and is rename(2)d into place — so a crash mid-write leaves either the
/// previous checkpoint or none, never a truncated blob that poisons the
/// next restore.
[[nodiscard]] Status write_checkpoint_file(const std::filesystem::path& path,
                                           ByteSpan sealed);
[[nodiscard]] Result<Bytes> read_checkpoint_file(const std::filesystem::path& path);

}  // namespace xsearch::core
