#include "xsearch/broker.hpp"

#include <chrono>
#include <thread>

#include "xsearch/wire.hpp"

namespace xsearch::core {

Status check_batch_request_size(std::size_t count) {
  if (count == 0 || count > wire::kMaxBatchQueries) {
    return invalid_argument("broker: batch size must be 1.." +
                            std::to_string(wire::kMaxBatchQueries));
  }
  return Status::ok();
}

Result<std::vector<BatchOutcome>> decode_batch_reply(wire::ClientMessage message,
                                                     std::size_t expected) {
  if (message.type == wire::ClientMessageType::kError) {
    return unavailable("proxy error: " + message.error);
  }
  if (message.type != wire::ClientMessageType::kResultsBatch) {
    return data_loss("broker: expected a results batch from the proxy");
  }
  if (message.batch.size() != expected) {
    return data_loss("broker: batch reply size mismatch");
  }
  std::vector<BatchOutcome> outcomes;
  outcomes.reserve(expected);
  for (auto& item : message.batch) {
    BatchOutcome outcome;
    if (item.ok) {
      outcome.results = std::move(item.results);
    } else {
      outcome.status = unavailable("proxy error: " + item.error);
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

ClientBroker::ClientBroker(ProxyHandler& proxy,
                           const sgx::AttestationAuthority& authority,
                           const sgx::Measurement& expected_measurement,
                           std::uint64_t seed, RetryPolicy retry_policy)
    : proxy_(&proxy),
      authority_(&authority),
      expected_measurement_(expected_measurement),
      rng_(crypto::domain_seed(seed, /*tag=*/0xc1)),  // client domain separation
      retry_policy_(retry_policy),
      jitter_rng_(seed) {}  // backoff jitter needs no crypto strength

Status ClientBroker::connect() {
  if (channel_.has_value()) return Status::ok();

  const auto ephemeral = crypto::x25519_keypair_from_seed(rng_.key());

  auto response = proxy_->handshake(ephemeral.public_key);
  if (!response) return response.status();

  // Attestation: only proceed if the quote is authentic AND the measurement
  // matches the enclave code we expect — this is the client's root of trust.
  auto static_pub = sgx::verify_and_extract_channel_key(
      *authority_, response.value().quote, expected_measurement_);
  if (!static_pub) return static_pub.status();

  channel_.emplace(crypto::SecureChannel::initiator(
      ephemeral, static_pub.value(), response.value().server_ephemeral_pub));
  session_id_ = response.value().session_id;
  return Status::ok();
}

void ClientBroker::prepare_reattempt(RetryState& retry) {
  // NOT_FOUND is uniquely the proxy's "unknown session": the bounded table
  // evicted or idle-expired us, and the dead channel is desynced anyway.
  // Re-attest through a fresh handshake on the next attempt.
  channel_.reset();
  session_id_ = 0;
  ++reconnects_;
  const Nanos pause = retry.next_backoff(jitter_rng_);
  if (pause > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(pause));
  }
}

Result<std::vector<engine::SearchResult>> ClientBroker::search(std::string_view query) {
  RetryState retry(retry_policy_);
  for (;;) {
    auto attempt = search_once(query);
    retry.note_attempt();
    if (attempt.is_ok() || attempt.status().code() != StatusCode::kNotFound ||
        !retry.should_retry()) {
      return attempt;
    }
    prepare_reattempt(retry);
  }
}

Result<std::vector<engine::SearchResult>> ClientBroker::search_once(
    std::string_view query) {
  XS_RETURN_IF_ERROR(connect());

  const Bytes record = channel_->seal(wire::frame_query(query));
  auto response = proxy_->handle_query_record(session_id_, record);
  if (!response) return response.status();

  auto plaintext = channel_->open(response.value());
  if (!plaintext) return plaintext.status();

  auto message = wire::parse_client_message(plaintext.value());
  if (!message) return message.status();
  switch (message.value().type) {
    case wire::ClientMessageType::kResults:
      return std::move(message).value().results;
    case wire::ClientMessageType::kError:
      return unavailable("proxy error: " + message.value().error);
    default:
      break;
  }
  return data_loss("broker: unexpected message type from proxy");
}

Result<std::vector<BatchOutcome>> ClientBroker::search_batch(
    const std::vector<std::string>& queries) {
  // Same recovery as search(): unknown session — re-attest and retry under
  // the policy's attempt cap.
  RetryState retry(retry_policy_);
  for (;;) {
    auto attempt = search_batch_once(queries);
    retry.note_attempt();
    if (attempt.is_ok() || attempt.status().code() != StatusCode::kNotFound ||
        !retry.should_retry()) {
      return attempt;
    }
    prepare_reattempt(retry);
  }
}

Result<std::vector<BatchOutcome>> ClientBroker::search_batch_once(
    const std::vector<std::string>& queries) {
  XS_RETURN_IF_ERROR(check_batch_request_size(queries.size()));
  XS_RETURN_IF_ERROR(connect());

  // One seal for the whole batch: this is the amortization the batched
  // wire format exists for.
  const Bytes record = channel_->seal(wire::frame_query_batch(queries));
  auto response = proxy_->handle_query_record(session_id_, record);
  if (!response) return response.status();

  auto plaintext = channel_->open(response.value());
  if (!plaintext) return plaintext.status();

  auto message = wire::parse_client_message(plaintext.value());
  if (!message) return message.status();
  return decode_batch_reply(std::move(message).value(), queries.size());
}

}  // namespace xsearch::core
