#include "xsearch/broker.hpp"

#include "xsearch/wire.hpp"

namespace xsearch::core {

ClientBroker::ClientBroker(XSearchProxy& proxy,
                           const sgx::AttestationAuthority& authority,
                           const sgx::Measurement& expected_measurement,
                           std::uint64_t seed)
    : proxy_(&proxy),
      authority_(&authority),
      expected_measurement_(expected_measurement),
      rng_([&] {
        crypto::ChaChaKey s{};
        store_le64(s.data(), seed);
        s[31] = 0xc1;  // client domain separation
        return s;
      }()) {}

Status ClientBroker::connect() {
  if (channel_.has_value()) return Status::ok();

  crypto::X25519Key eph_seed{};
  rng_.fill(eph_seed);
  const auto ephemeral = crypto::x25519_keypair_from_seed(eph_seed);

  auto response = proxy_->handshake(ephemeral.public_key);
  if (!response) return response.status();

  // Attestation: only proceed if the quote is authentic AND the measurement
  // matches the enclave code we expect — this is the client's root of trust.
  auto static_pub = sgx::verify_and_extract_channel_key(
      *authority_, response.value().quote, expected_measurement_);
  if (!static_pub) return static_pub.status();

  channel_.emplace(crypto::SecureChannel::initiator(
      ephemeral, static_pub.value(), response.value().server_ephemeral_pub));
  session_id_ = response.value().session_id;
  return Status::ok();
}

Result<std::vector<engine::SearchResult>> ClientBroker::search(std::string_view query) {
  auto first = search_once(query);
  if (first.is_ok() || first.status().code() != StatusCode::kNotFound) {
    return first;
  }
  // NOT_FOUND is uniquely the proxy's "unknown session": the bounded table
  // evicted or idle-expired us, and the dead channel is desynced anyway.
  // Re-attest through a fresh handshake and retry exactly once.
  channel_.reset();
  session_id_ = 0;
  ++reconnects_;
  return search_once(query);
}

Result<std::vector<engine::SearchResult>> ClientBroker::search_once(
    std::string_view query) {
  XS_RETURN_IF_ERROR(connect());

  const Bytes record = channel_->seal(wire::frame_query(query));
  auto response = proxy_->handle_query_record(session_id_, record);
  if (!response) return response.status();

  auto plaintext = channel_->open(response.value());
  if (!plaintext) return plaintext.status();

  auto message = wire::parse_client_message(plaintext.value());
  if (!message) return message.status();
  switch (message.value().type) {
    case wire::ClientMessageType::kResults:
      return std::move(message).value().results;
    case wire::ClientMessageType::kError:
      return unavailable("proxy error: " + message.value().error);
    case wire::ClientMessageType::kQuery:
      break;
  }
  return data_loss("broker: unexpected message type from proxy");
}

}  // namespace xsearch::core
