#include "xsearch/session_table.hpp"

#include <algorithm>
#include <utility>

namespace xsearch::core {

namespace {

// Deterministic fork of the table seed for one session's fast RNG stream.
// `generation` is 0 for fresh sessions; a session resumed from a v2
// checkpoint under its old id forks a new stream per generation so the
// restored proxy never replays decoy draws the crashed one already made.
[[nodiscard]] std::uint64_t fork_seed(std::uint64_t base_seed, std::uint64_t id,
                                      std::uint64_t generation) {
  std::uint64_t state = base_seed ^ (id * 0x9e3779b97f4a7c15ULL) ^
                        (generation * 0xbf58476d1ce4e5b9ULL);
  return splitmix64(state);
}

// Deterministic ChaCha key for one session's SecureRandom. Domain-separated
// from the proxy-level DRBG (which tags byte 31 with 0x42).
[[nodiscard]] crypto::ChaChaKey fork_chacha_seed(std::uint64_t base_seed,
                                                 std::uint64_t id,
                                                 std::uint64_t generation) {
  crypto::ChaChaKey::Raw raw{};
  store_le64(raw.data(), base_seed);
  store_le64(raw.data() + 8, id);
  store_le64(raw.data() + 16, generation);
  raw[31] = 0x53;  // 'S' for session
  return crypto::ChaChaKey::absorb(raw);
}

}  // namespace

// One live client session. `mutex` serializes channel use and the RNG
// streams; `last_used` and `lru_it` are guarded by the owning shard's
// mutex, never by `mutex`.
struct SessionTable::Session {
  Session(crypto::SecureChannel ch, std::uint64_t id, std::uint64_t base_seed,
          std::uint64_t base_generation)
      : channel(std::move(ch)),
        generation(base_generation),
        rng(fork_seed(base_seed, id, base_generation)),
        secure_rng(fork_chacha_seed(base_seed, id, base_generation)) {}

  Mutex mutex;
  crypto::SecureChannel channel XS_GUARDED_BY(mutex);
  // Stream generation this session's RNG forks were derived with (0 for a
  // fresh session, the restored count for a resumed one). Checkpoints seal
  // generation + obfuscations so generations accumulate across crashes
  // instead of regressing to an already-spent stream.
  const std::uint64_t generation;
  Rng rng XS_GUARDED_BY(mutex);
  crypto::SecureRandom secure_rng XS_GUARDED_BY(mutex);
  // Obfuscations performed on this session; atomic because the count is
  // bumped under the session lock but snapshotted (for checkpoints) under
  // only the shard lock.
  std::atomic<std::uint64_t> obfuscations{0};
  Nanos last_used = 0;
  std::list<std::uint64_t>::iterator lru_it;
};

SessionTable::LockedSession::LockedSession(std::shared_ptr<Session> session)
    : session_(std::move(session)), lock_(session_->mutex) {}

// The three accessors below hand out fields guarded by the per-session
// mutex. The capability IS held — LockedSession owns it through `lock_` for
// its whole lifetime — but a movable lock handle crossing an object
// boundary is not expressible as a scoped capability, so the analysis is
// waived here (and the per-session discipline stays covered by TSan).
crypto::SecureChannel& SessionTable::LockedSession::channel()
    XS_NO_THREAD_SAFETY_ANALYSIS {
  return session_->channel;
}

Rng& SessionTable::LockedSession::rng() XS_NO_THREAD_SAFETY_ANALYSIS {
  return session_->rng;
}

crypto::SecureRandom& SessionTable::LockedSession::secure_rng()
    XS_NO_THREAD_SAFETY_ANALYSIS {
  return session_->secure_rng;
}

void SessionTable::LockedSession::note_obfuscation() {
  session_->obfuscations.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t SessionTable::LockedSession::obfuscations() const {
  return session_->obfuscations.load(std::memory_order_relaxed);
}

std::size_t SessionTable::session_epc_bytes() {
  // The session object (channel keys/counters/transcript hash + lock + LRU
  // bookkeeping) plus its shared_ptr control block, hash-map node, and LRU
  // list node. An estimate, like all accounting in the simulation — what
  // matters is that charge and release are exactly symmetric.
  return sizeof(Session) + 64 + 8 * sizeof(void*);
}

SessionTable::SessionTable(Options options, sgx::EpcAccountant* epc, Clock clock)
    : options_([&] {
        Options o = options;
        o.capacity = std::max<std::size_t>(1, o.capacity);
        o.shards = std::max<std::size_t>(1, std::min(o.shards, o.capacity));
        return o;
      }()),
      epc_(epc),
      // tcb-lint: allow(trusted-wall-clock) default Clock for hosts that inject none; expiry uses relative deltas only, so a lying host clock can at worst evict early (availability, not privacy)
      now_(clock ? std::move(clock) : Clock([] { return wall_now(); })) {
  shards_.reserve(options_.shards);
  // Quotas sum to exactly Options::capacity: the division remainder goes
  // one-each to the first shards.
  const std::size_t base = options_.capacity / options_.shards;
  const std::size_t remainder = options_.capacity % options_.shards;
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->capacity = base + (i < remainder ? 1 : 0);
  }
}

SessionTable::~SessionTable() {
  // Release everything still charged; eviction paths released the rest.
  if (epc_) epc_->release(epc_bytes_.load(std::memory_order_relaxed));
}

void SessionTable::remove_locked(
    Shard& shard,
    std::unordered_map<std::uint64_t, std::shared_ptr<Session>>::iterator it) {
  // Remember the departing session's cumulative stream position: its id can
  // recur (the standalone proxy's id counter restarts at 1 across restarts),
  // and a checkpoint that forgot it would hand the recurrence an
  // already-spent decoy stream. Ordering: shard mutex → generations mutex,
  // never the reverse.
  const std::uint64_t spent =
      it->second->generation +
      it->second->obfuscations.load(std::memory_order_relaxed);
  if (spent > 0) {
    MutexLock generations_lock(retained_generations_mutex_);
    retained_generations_[it->first] = spent;
  }
  shard.lru.erase(it->second->lru_it);
  shard.sessions.erase(it);
  active_.fetch_sub(1, std::memory_order_relaxed);
  epc_bytes_.fetch_sub(session_epc_bytes(), std::memory_order_relaxed);
  if (epc_) epc_->release(session_epc_bytes());
}

std::size_t SessionTable::evict_expired_locked(Shard& shard, Nanos now) {
  if (options_.idle_ttl <= 0) return 0;
  std::size_t evicted = 0;
  // The LRU tail holds the longest-idle sessions, so expired ones form a
  // suffix and the sweep stops at the first live entry.
  while (!shard.lru.empty()) {
    const auto it = shard.sessions.find(shard.lru.back());
    if (now - it->second->last_used < options_.idle_ttl) break;
    remove_locked(shard, it);
    ++evicted;
  }
  expired_ttl_.fetch_add(evicted, std::memory_order_relaxed);
  return evicted;
}

std::uint64_t SessionTable::insert(crypto::SecureChannel channel,
                                   std::uint64_t proposed_id) {
  const Nanos now = now_();
  std::uint64_t id = 0;
  for (;;) {
    id = proposed_id != 0 ? proposed_id
                          : next_id_.fetch_add(1, std::memory_order_relaxed);
    // A session resumed under a checkpointed id gets generation = the
    // obfuscation count the crashed proxy sealed, advancing its RNG
    // derivation past the spent stream (see set_resume_generations). The
    // retained map covers the same id departing and returning within one
    // run (eviction must not rewind the stream either); take the furthest
    // position known.
    std::uint64_t generation = 0;
    if (!resume_generations_.empty()) {
      const auto gen_it = resume_generations_.find(id);
      if (gen_it != resume_generations_.end()) generation = gen_it->second;
    }
    {
      MutexLock generations_lock(retained_generations_mutex_);
      const auto gen_it = retained_generations_.find(id);
      if (gen_it != retained_generations_.end()) {
        generation = std::max(generation, gen_it->second);
      }
    }
    auto session = std::make_shared<Session>(std::move(channel), id,
                                             options_.rng_seed, generation);

    Shard& shard = shard_for(id);
    MutexLock lock(shard.mutex);
    evict_expired_locked(shard, now);
    if (shard.sessions.contains(id)) {
      // Occupied either way (a proposed id may have landed ahead of the
      // counter): refuse a proposal, draw the next counter id otherwise —
      // a silent emplace no-op here would orphan an LRU entry and corrupt
      // the table's accounting.
      if (proposed_id != 0) return 0;
      {
        // The session was never published, so its lock is uncontended and
        // taking it under the shard lock cannot invert the documented
        // ordering against any other thread.
        MutexLock reclaim(session->mutex);
        channel = std::move(session->channel);  // reclaim for the retry
      }
      continue;
    }
    session->last_used = now;
    shard.lru.push_front(id);
    session->lru_it = shard.lru.begin();
    shard.sessions.emplace(id, std::move(session));
    active_.fetch_add(1, std::memory_order_relaxed);
    epc_bytes_.fetch_add(session_epc_bytes(), std::memory_order_relaxed);
    if (epc_) epc_->charge(session_epc_bytes());
    while (shard.sessions.size() > shard.capacity) {
      remove_locked(shard, shard.sessions.find(shard.lru.back()));
      evicted_lru_.fetch_add(1, std::memory_order_relaxed);
    }
    break;
  }

  created_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t active = active_.load(std::memory_order_relaxed);
  std::size_t peak = peak_active_.load(std::memory_order_relaxed);
  while (active > peak &&
         !peak_active_.compare_exchange_weak(peak, active,
                                             std::memory_order_relaxed)) {
  }
  return id;
}

SessionTable::LockedSession SessionTable::acquire(std::uint64_t session_id) {
  const Nanos now = now_();
  Shard& shard = shard_for(session_id);
  std::shared_ptr<Session> session;
  {
    MutexLock lock(shard.mutex);
    evict_expired_locked(shard, now);
    const auto it = shard.sessions.find(session_id);
    if (it == shard.sessions.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return LockedSession{};
    }
    session = it->second;
    session->last_used = now;
    shard.lru.splice(shard.lru.begin(), shard.lru, session->lru_it);
  }
  // The shard lock is released before blocking on the (possibly busy)
  // session lock — see the locking-order contract in the header.
  return LockedSession(std::move(session));
}

bool SessionTable::erase(std::uint64_t session_id) {
  Shard& shard = shard_for(session_id);
  MutexLock lock(shard.mutex);
  const auto it = shard.sessions.find(session_id);
  if (it == shard.sessions.end()) return false;
  remove_locked(shard, it);
  erased_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t SessionTable::sweep_expired() {
  const Nanos now = now_();
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    total += evict_expired_locked(*shard, now);
  }
  return total;
}

std::size_t SessionTable::size() const {
  return active_.load(std::memory_order_relaxed);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
SessionTable::checkpoint_generations() const {
  // Merge three layers, most current last, so an id's generation only ever
  // advances across repeated crash/restore cycles (a regressed generation
  // would re-derive a stream the engine already observed):
  //  1. the restored state — ids checkpointed before the crash that never
  //     resumed keep their spent-stream marker;
  //  2. retained positions of sessions evicted/expired/erased since —
  //     eviction must not erase how much of the stream the id spent;
  //  3. live sessions at their cumulative position (base generation +
  //     draws made since).
  std::unordered_map<std::uint64_t, std::uint64_t> merged(resume_generations_);
  {
    MutexLock generations_lock(retained_generations_mutex_);
    for (const auto& [id, generation] : retained_generations_) {
      merged[id] = generation;
    }
  }
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    for (const auto& [id, session] : shard->sessions) {
      merged[id] = session->generation +
                   session->obfuscations.load(std::memory_order_relaxed);
    }
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.reserve(merged.size());
  for (const auto& [id, generation] : merged) {
    if (generation > 0) out.emplace_back(id, generation);
  }
  return out;
}

void SessionTable::set_resume_generations(
    std::vector<std::pair<std::uint64_t, std::uint64_t>> generations) {
  resume_generations_.clear();
  for (const auto& [id, count] : generations) {
    if (count > 0) resume_generations_.emplace(id, count);
  }
}

SessionTable::Stats SessionTable::stats() const {
  Stats out;
  out.active = active_.load(std::memory_order_relaxed);
  out.peak_active = peak_active_.load(std::memory_order_relaxed);
  out.created = created_.load(std::memory_order_relaxed);
  out.evicted_lru = evicted_lru_.load(std::memory_order_relaxed);
  out.expired_ttl = expired_ttl_.load(std::memory_order_relaxed);
  out.erased = erased_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.epc_bytes = epc_bytes_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace xsearch::core
