// Encrypted enclave→engine link (paper footnote 2).
//
// The base design sends the obfuscated OR query to the engine in the clear
// — acceptable because obfuscation protects it. Footnote 2 notes "Using
// HTTPS could be also supported by the SGX enclave": this module provides
// that option. The SecureEngineGateway stands in for the engine's TLS
// frontend; the enclave seals each request to the gateway's public key
// (crypto/envelope), so the untrusted host relaying the "socket" traffic
// sees ciphertext even on the engine leg.
#pragma once

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "crypto/envelope.hpp"
#include "engine/search_engine.hpp"

namespace xsearch::core {

class SecureEngineGateway {
 public:
  /// `engine` may be null (saturation mode: empty result lists).
  SecureEngineGateway(const engine::SearchEngine* engine, std::uint64_t seed);

  /// The key the enclave seals requests to (distributed out of band, like a
  /// TLS certificate).
  [[nodiscard]] const crypto::X25519Key& public_key() const {
    return keys_.public_key;
  }

  /// Decrypts one request envelope, executes the OR query, returns the
  /// sealed response.
  [[nodiscard]] Result<Bytes> handle(ByteSpan envelope) const;

 private:
  const engine::SearchEngine* engine_;
  crypto::X25519KeyPair keys_;
};

}  // namespace xsearch::core
