#include "xsearch/wire.hpp"

#include <cstring>

namespace xsearch::core::wire {

void put_u32(Bytes& out, std::uint32_t v) {
  std::uint8_t buf[4];
  store_be32(buf, v);
  append(out, ByteSpan(buf, 4));
}

Result<std::uint32_t> get_u32(ByteSpan in, std::size_t& offset) {
  if (offset + 4 > in.size()) return data_loss("wire: truncated u32");
  const std::uint32_t v = load_be32(in.data() + offset);
  offset += 4;
  return v;
}

void put_u64(Bytes& out, std::uint64_t v) {
  std::uint8_t buf[8];
  store_be64(buf, v);
  append(out, ByteSpan(buf, 8));
}

Result<std::uint64_t> get_u64(ByteSpan in, std::size_t& offset) {
  if (offset + 8 > in.size()) return data_loss("wire: truncated u64");
  std::uint64_t hi = load_be32(in.data() + offset);
  std::uint64_t lo = load_be32(in.data() + offset + 4);
  offset += 8;
  return (hi << 32) | lo;
}

void put_double(Bytes& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

Result<double> get_double(ByteSpan in, std::size_t& offset) {
  auto bits = get_u64(in, offset);
  if (!bits) return bits.status();
  double v = 0;
  const std::uint64_t b = bits.value();
  std::memcpy(&v, &b, sizeof v);
  return v;
}

void put_string(Bytes& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  append(out, to_bytes(s));
}

Result<std::string> get_string(ByteSpan in, std::size_t& offset) {
  auto len = get_u32(in, offset);
  if (!len) return len.status();
  if (offset + len.value() > in.size()) return data_loss("wire: truncated string");
  std::string s(reinterpret_cast<const char*>(in.data() + offset), len.value());
  offset += len.value();
  return s;
}

namespace {

// Exact wire size of a serialized result list, so the seal/frame path can
// reserve once instead of growing geometrically.
std::size_t results_wire_size(const std::vector<engine::SearchResult>& results) {
  std::size_t size = 4;  // count
  for (const auto& r : results) {
    size += 4 + 8;  // doc + score
    size += 4 + r.title.size() + 4 + r.description.size() + 4 + r.url.size();
  }
  return size;
}

void serialize_results_into(Bytes& out,
                            const std::vector<engine::SearchResult>& results) {
  out.reserve(out.size() + results_wire_size(results));
  put_u32(out, static_cast<std::uint32_t>(results.size()));
  for (const auto& r : results) {
    put_u32(out, r.doc);
    put_string(out, r.title);
    put_string(out, r.description);
    put_string(out, r.url);
    put_double(out, r.score);
  }
}

/// Parses one result list *prefix* of `raw` starting at `offset`. The batch
/// framing concatenates several lists, so unlike parse_results this must
/// not require the list to exhaust the input.
Result<std::vector<engine::SearchResult>> parse_results_at(ByteSpan raw,
                                                           std::size_t& offset) {
  auto count = get_u32(raw, offset);
  if (!count) return count.status();
  std::vector<engine::SearchResult> results;
  results.reserve(std::min<std::uint32_t>(count.value(), 1 << 16));
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    engine::SearchResult r;
    auto doc = get_u32(raw, offset);
    if (!doc) return doc.status();
    r.doc = doc.value();
    auto title = get_string(raw, offset);
    if (!title) return title.status();
    r.title = std::move(title).value();
    auto desc = get_string(raw, offset);
    if (!desc) return desc.status();
    r.description = std::move(desc).value();
    auto url = get_string(raw, offset);
    if (!url) return url.status();
    r.url = std::move(url).value();
    auto score = get_double(raw, offset);
    if (!score) return score.status();
    r.score = score.value();
    results.push_back(std::move(r));
  }
  return results;
}

/// A batch count of zero is as malformed as an oversized one: an empty
/// batch would make the enclave seal a reply for nothing.
Status check_batch_count(std::uint32_t count) {
  if (count == 0) return data_loss("wire: empty batch");
  if (count > kMaxBatchQueries) return data_loss("wire: batch too large");
  return Status::ok();
}

}  // namespace

Bytes serialize_results(const std::vector<engine::SearchResult>& results) {
  Bytes out;
  serialize_results_into(out, results);
  return out;
}

Result<std::vector<engine::SearchResult>> parse_results(ByteSpan raw) {
  std::size_t offset = 0;
  auto results = parse_results_at(raw, offset);
  if (!results) return results.status();
  if (offset != raw.size()) return data_loss("wire: trailing bytes after results");
  return results;
}

Bytes serialize_engine_request(const EngineRequest& request) {
  std::size_t size = 8;
  for (const auto& q : request.sub_queries) size += 4 + q.size();
  Bytes out;
  out.reserve(size);
  put_u32(out, request.top_k_each);
  put_u32(out, static_cast<std::uint32_t>(request.sub_queries.size()));
  for (const auto& q : request.sub_queries) put_string(out, q);
  return out;
}

Result<EngineRequest> parse_engine_request(ByteSpan raw) {
  std::size_t offset = 0;
  EngineRequest req;
  auto top_k = get_u32(raw, offset);
  if (!top_k) return top_k.status();
  req.top_k_each = top_k.value();
  auto count = get_u32(raw, offset);
  if (!count) return count.status();
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto q = get_string(raw, offset);
    if (!q) return q.status();
    req.sub_queries.push_back(std::move(q).value());
  }
  if (offset != raw.size()) return data_loss("wire: trailing bytes after request");
  return req;
}

Bytes frame_query(std::string_view query) {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(ClientMessageType::kQuery));
  put_string(out, query);
  return out;
}

Bytes frame_results(const std::vector<engine::SearchResult>& results) {
  Bytes out;
  out.reserve(1 + results_wire_size(results));
  out.push_back(static_cast<std::uint8_t>(ClientMessageType::kResults));
  serialize_results_into(out, results);
  return out;
}

Bytes frame_error(std::string_view message) {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(ClientMessageType::kError));
  put_string(out, message);
  return out;
}

Bytes frame_query_batch(const std::vector<std::string>& queries) {
  std::size_t size = 1 + 4;
  for (const auto& q : queries) size += 4 + q.size();
  Bytes out;
  out.reserve(size);
  out.push_back(static_cast<std::uint8_t>(ClientMessageType::kQueryBatch));
  put_u32(out, static_cast<std::uint32_t>(queries.size()));
  for (const auto& q : queries) put_string(out, q);
  return out;
}

Bytes frame_results_batch(const std::vector<BatchItem>& items) {
  std::size_t size = 1 + 4;
  for (const auto& item : items) {
    size += 1;
    size += item.ok ? results_wire_size(item.results) : 4 + item.error.size();
  }
  Bytes out;
  out.reserve(size);
  out.push_back(static_cast<std::uint8_t>(ClientMessageType::kResultsBatch));
  put_u32(out, static_cast<std::uint32_t>(items.size()));
  for (const auto& item : items) {
    out.push_back(item.ok ? 1 : 0);
    if (item.ok) {
      serialize_results_into(out, item.results);
    } else {
      put_string(out, item.error);
    }
  }
  return out;
}

Result<ClientMessage> parse_client_message(ByteSpan raw) {
  if (raw.empty()) return data_loss("wire: empty client message");
  ClientMessage msg;
  const auto type = static_cast<ClientMessageType>(raw[0]);
  const ByteSpan payload = raw.subspan(1);
  std::size_t offset = 0;
  switch (type) {
    case ClientMessageType::kQuery: {
      auto q = get_string(payload, offset);
      if (!q) return q.status();
      msg.type = ClientMessageType::kQuery;
      msg.query = std::move(q).value();
      return msg;
    }
    case ClientMessageType::kResults: {
      auto results = parse_results(payload);
      if (!results) return results.status();
      msg.type = ClientMessageType::kResults;
      msg.results = std::move(results).value();
      return msg;
    }
    case ClientMessageType::kError: {
      auto e = get_string(payload, offset);
      if (!e) return e.status();
      msg.type = ClientMessageType::kError;
      msg.error = std::move(e).value();
      return msg;
    }
    case ClientMessageType::kQueryBatch: {
      auto count = get_u32(payload, offset);
      if (!count) return count.status();
      XS_RETURN_IF_ERROR(check_batch_count(count.value()));
      msg.queries.reserve(count.value());
      for (std::uint32_t i = 0; i < count.value(); ++i) {
        auto q = get_string(payload, offset);
        if (!q) return q.status();
        msg.queries.push_back(std::move(q).value());
      }
      if (offset != payload.size()) {
        return data_loss("wire: trailing bytes after query batch");
      }
      msg.type = ClientMessageType::kQueryBatch;
      return msg;
    }
    case ClientMessageType::kResultsBatch: {
      auto count = get_u32(payload, offset);
      if (!count) return count.status();
      XS_RETURN_IF_ERROR(check_batch_count(count.value()));
      msg.batch.reserve(count.value());
      for (std::uint32_t i = 0; i < count.value(); ++i) {
        if (offset >= payload.size()) return data_loss("wire: truncated batch");
        BatchItem item;
        item.ok = payload[offset] != 0;
        ++offset;
        if (item.ok) {
          auto results = parse_results_at(payload, offset);
          if (!results) return results.status();
          item.results = std::move(results).value();
        } else {
          auto e = get_string(payload, offset);
          if (!e) return e.status();
          item.error = std::move(e).value();
        }
        msg.batch.push_back(std::move(item));
      }
      if (offset != payload.size()) {
        return data_loss("wire: trailing bytes after results batch");
      }
      msg.type = ClientMessageType::kResultsBatch;
      return msg;
    }
  }
  return data_loss("wire: unknown client message type");
}

}  // namespace xsearch::core::wire
