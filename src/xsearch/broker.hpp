// Client-side query broker (paper §4.2).
//
// "This broker runs within the client's domain, such as a local daemon
// process executing alongside the client's Web browser. The broker is in
// charge of the SGX attestation step." On first use it performs the
// attested handshake — verifying the enclave quote against the expected
// measurement before trusting the channel key — then encrypts each query
// to the enclave and decrypts the filtered results coming back.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "crypto/random.hpp"
#include "crypto/secure_channel.hpp"
#include "engine/document.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/proxy.hpp"

namespace xsearch::core {

class ClientBroker {
 public:
  /// `expected_measurement` pins the enclave code the client trusts.
  ClientBroker(XSearchProxy& proxy, const sgx::AttestationAuthority& authority,
               const sgx::Measurement& expected_measurement, std::uint64_t seed);

  /// Attests the proxy and establishes the secure channel. Idempotent;
  /// `search` calls it lazily.
  [[nodiscard]] Status connect();

  /// End-to-end private search: encrypt the query, let the enclave
  /// obfuscate/execute/filter, decrypt the result list. When the proxy's
  /// bounded session table evicted or expired our session (NOT_FOUND),
  /// transparently re-attests and retries the query exactly once.
  [[nodiscard]] Result<std::vector<engine::SearchResult>> search(
      std::string_view query);

  [[nodiscard]] bool connected() const { return channel_.has_value(); }

  /// Times `search` had to re-establish an evicted/expired session.
  [[nodiscard]] std::uint64_t reconnects() const { return reconnects_; }

 private:
  [[nodiscard]] Result<std::vector<engine::SearchResult>> search_once(
      std::string_view query);

  XSearchProxy* proxy_;
  const sgx::AttestationAuthority* authority_;
  sgx::Measurement expected_measurement_;
  crypto::SecureRandom rng_;

  std::optional<crypto::SecureChannel> channel_;
  std::uint64_t session_id_ = 0;
  std::uint64_t reconnects_ = 0;
};

}  // namespace xsearch::core
