// Client-side query broker (paper §4.2).
//
// "This broker runs within the client's domain, such as a local daemon
// process executing alongside the client's Web browser. The broker is in
// charge of the SGX attestation step." On first use it performs the
// attested handshake — verifying the enclave quote against the expected
// measurement before trusting the channel key — then encrypts each query
// to the enclave and decrypts the filtered results coming back.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/retry.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "crypto/random.hpp"
#include "crypto/secure_channel.hpp"
#include "engine/document.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/proxy.hpp"
#include "xsearch/wire.hpp"

namespace xsearch::core {

/// Client-side outcome of one query inside a batch round trip. The batch
/// travels as ONE sealed record each way; failures of individual queries
/// (engine refusing one of them) surface here per item.
struct BatchOutcome {
  Status status;
  std::vector<engine::SearchResult> results;
};

/// Validates a client-visible batch size against the wire bound.
[[nodiscard]] Status check_batch_request_size(std::size_t count);

/// Decodes the proxy's reply to a batch of `expected` queries into
/// per-item outcomes — the half of the batch protocol both brokers
/// (in-process and TCP) share.
[[nodiscard]] Result<std::vector<BatchOutcome>> decode_batch_reply(
    wire::ClientMessage message, std::size_t expected);

class ClientBroker {
 public:
  /// `expected_measurement` pins the enclave code the client trusts.
  /// `retry_policy` bounds the evicted-session recovery loop; the default
  /// (two attempts) preserves the historical retry-exactly-once behavior,
  /// now with jittered backoff between attempts.
  ClientBroker(ProxyHandler& proxy, const sgx::AttestationAuthority& authority,
               const sgx::Measurement& expected_measurement, std::uint64_t seed,
               RetryPolicy retry_policy = {});

  /// Attests the proxy and establishes the secure channel. Idempotent;
  /// `search` calls it lazily.
  [[nodiscard]] Status connect();

  /// End-to-end private search: encrypt the query, let the enclave
  /// obfuscate/execute/filter, decrypt the result list. When the proxy's
  /// bounded session table evicted or expired our session (NOT_FOUND),
  /// transparently re-attests and retries the query, with backoff, up to
  /// the retry policy's attempt cap. NOT_FOUND is the only retried code:
  /// it uniquely means "unknown session — the record was never opened".
  [[nodiscard]] Result<std::vector<engine::SearchResult>> search(
      std::string_view query);

  /// Many private searches in ONE sealed record each way (one AEAD
  /// seal/open per batch instead of per query). Batch size is bounded by
  /// wire::kMaxBatchQueries. Whole-batch transport failures are the
  /// returned status; per-query failures are per-item. Retries an
  /// evicted/expired session under the same policy as `search`.
  [[nodiscard]] Result<std::vector<BatchOutcome>> search_batch(
      const std::vector<std::string>& queries);

  [[nodiscard]] bool connected() const { return channel_.has_value(); }

  /// Times `search` had to re-establish an evicted/expired session.
  [[nodiscard]] std::uint64_t reconnects() const { return reconnects_; }

  /// Current session id (0 before connect). Routing metadata only — fleet
  /// tests use it to assert which worker owns this session.
  [[nodiscard]] std::uint64_t session_id() const { return session_id_; }

 private:
  [[nodiscard]] Result<std::vector<engine::SearchResult>> search_once(
      std::string_view query);
  [[nodiscard]] Result<std::vector<BatchOutcome>> search_batch_once(
      const std::vector<std::string>& queries);
  /// Resets the dead session and sleeps out the next backoff pause.
  void prepare_reattempt(RetryState& retry);

  ProxyHandler* proxy_;
  const sgx::AttestationAuthority* authority_;
  sgx::Measurement expected_measurement_;
  crypto::SecureRandom rng_;
  RetryPolicy retry_policy_;
  Rng jitter_rng_;

  std::optional<crypto::SecureChannel> channel_;
  std::uint64_t session_id_ = 0;
  std::uint64_t reconnects_ = 0;
};

}  // namespace xsearch::core
