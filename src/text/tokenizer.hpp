// Query/document tokenization.
//
// All text processing in the reproduction (query similarity, BM25 indexing,
// the common-word filter of Algorithm 2, SimAttack profiles) shares this
// tokenizer so that every component sees the same word boundaries:
// lower-cased maximal runs of ASCII alphanumerics.
#pragma once

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace xsearch::text {

/// Splits `text` into lower-cased alphanumeric tokens.
[[nodiscard]] std::vector<std::string> tokenize(std::string_view text);

/// Tokenizes and removes stopwords (a small fixed English list, matching
/// the preprocessing applied to the AOL log in the PEAS/SimAttack line of
/// work).
[[nodiscard]] std::vector<std::string> tokenize_no_stopwords(std::string_view text);

/// True if `word` is on the built-in stopword list.
[[nodiscard]] bool is_stopword(std::string_view word);

/// Number of distinct tokens the two texts share (the nbCommonWords
/// function of Algorithm 2 in the paper).
[[nodiscard]] std::size_t common_word_count(std::string_view a, std::string_view b);

/// Common words between a pre-tokenized set and a text.
[[nodiscard]] std::size_t common_word_count(
    const std::unordered_set<std::string>& a_words, std::string_view b);

}  // namespace xsearch::text
