// Query/document tokenization.
//
// All text processing in the reproduction (query similarity, BM25 indexing,
// the common-word filter of Algorithm 2, SimAttack profiles) shares this
// tokenizer so that every component sees the same word boundaries:
// lower-cased maximal runs of ASCII alphanumerics.
//
// Classification and case folding go through constexpr lookup tables rather
// than <cctype>, so tokenization is locale-independent (std::isalnum honors
// the global C locale) and branch-light. Hot paths use `tokenize_views`,
// which lower-cases into a caller-owned reusable buffer and returns
// string_views — one amortized allocation per call instead of one
// std::string per token.
#pragma once

#include <array>
#include <string>
#include <string_view>
#include <vector>

namespace xsearch::text {

namespace detail {

inline constexpr std::array<bool, 256> kIsTokenChar = [] {
  std::array<bool, 256> t{};
  for (unsigned c = '0'; c <= '9'; ++c) t[c] = true;
  for (unsigned c = 'a'; c <= 'z'; ++c) t[c] = true;
  for (unsigned c = 'A'; c <= 'Z'; ++c) t[c] = true;
  return t;
}();

inline constexpr std::array<char, 256> kToLower = [] {
  std::array<char, 256> t{};
  for (unsigned c = 0; c < 256; ++c) t[c] = static_cast<char>(c);
  for (unsigned c = 'A'; c <= 'Z'; ++c) t[c] = static_cast<char>(c - 'A' + 'a');
  return t;
}();

}  // namespace detail

/// True for the ASCII alphanumerics that form tokens (locale-independent).
[[nodiscard]] constexpr bool is_token_char(unsigned char c) {
  return detail::kIsTokenChar[c];
}

/// ASCII lower-casing; non-letters pass through unchanged.
[[nodiscard]] constexpr char to_lower_ascii(unsigned char c) {
  return detail::kToLower[c];
}

/// Splits `text` into lower-cased alphanumeric tokens.
[[nodiscard]] std::vector<std::string> tokenize(std::string_view text);

/// Allocation-lean tokenization: lower-cases `text` into `buffer` (reused
/// across calls, so its allocation amortizes away) and returns views of the
/// tokens. The views point into `buffer` and are valid only until the next
/// call that reuses it.
[[nodiscard]] std::vector<std::string_view> tokenize_views(std::string_view text,
                                                           std::string& buffer);

/// Same, but appends into a caller-owned token vector (also reused).
void tokenize_views_into(std::string_view text, std::string& buffer,
                         std::vector<std::string_view>& tokens);

/// Tokenizes and removes stopwords (a small fixed English list, matching
/// the preprocessing applied to the AOL log in the PEAS/SimAttack line of
/// work).
[[nodiscard]] std::vector<std::string> tokenize_no_stopwords(std::string_view text);

/// True if `word` is on the built-in stopword list. Allocation-free: the
/// list is a static set of string_views.
[[nodiscard]] bool is_stopword(std::string_view word);

/// Number of distinct tokens the two texts share (the nbCommonWords
/// function of Algorithm 2 in the paper).
[[nodiscard]] std::size_t common_word_count(std::string_view a, std::string_view b);

}  // namespace xsearch::text
