// Term co-occurrence statistics over a query log.
//
// PEAS builds its fake queries from "the graph of co-occurrence between
// terms in the history of user queries" (paper §5.2 / Petit et al. 2015):
// starting from a seed term, neighbours are sampled proportionally to how
// often they appeared together with the current term in past queries.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "text/vocabulary.hpp"

namespace xsearch::text {

class CooccurrenceMatrix {
 public:
  explicit CooccurrenceMatrix(Vocabulary& vocab) : vocab_(&vocab) {}

  /// Adds one query: every unordered pair of distinct tokens co-occurs once,
  /// and every token's unigram count increments.
  void add_query(std::string_view query);

  /// Total distinct terms seen.
  [[nodiscard]] std::size_t term_count() const { return unigram_.size(); }

  /// Raw co-occurrence count of a term pair.
  [[nodiscard]] std::uint64_t pair_count(std::string_view a, std::string_view b) const;

  /// Unigram frequency of a term.
  [[nodiscard]] std::uint64_t term_frequency(std::string_view term) const;

  /// Samples a neighbour of `term` proportionally to co-occurrence counts.
  /// Falls back to a frequency-weighted global term when the term is unknown
  /// or has no neighbours. Returns empty string when the matrix is empty.
  [[nodiscard]] std::string sample_neighbour(std::string_view term, Rng& rng) const;

  /// Samples a term from the global unigram distribution.
  [[nodiscard]] std::string sample_term(Rng& rng) const;

  /// Generates a fake query of `length` words by a co-occurrence random
  /// walk seeded at a frequency-weighted random term (PEAS's generator).
  [[nodiscard]] std::string generate_fake_query(std::size_t length, Rng& rng) const;

 private:
  void rebuild_sampling_table() const XS_REQUIRES(sampling_mutex_);

  Vocabulary* vocab_;
  // neighbours_[t] = (other term, count) pairs; sampling does a linear
  // weighted pick, which is fine for query-sized neighbour lists. Both maps
  // are written only by add_query (construction-time, single-threaded) and
  // read concurrently afterwards, so they carry no lock.
  std::unordered_map<TermId, std::vector<std::pair<TermId, std::uint64_t>>> neighbours_;
  std::unordered_map<TermId, std::uint64_t> unigram_;

  // Lazily rebuilt cumulative table for global unigram sampling. Unlike the
  // maps above this cache is mutated from const readers, which PEAS batch
  // lanes call concurrently on a shared generator — hence its own lock.
  mutable Mutex sampling_mutex_;
  mutable std::vector<TermId> sample_terms_ XS_GUARDED_BY(sampling_mutex_);
  mutable std::vector<std::uint64_t> sample_cumulative_
      XS_GUARDED_BY(sampling_mutex_);
  mutable bool sampling_dirty_ XS_GUARDED_BY(sampling_mutex_) = true;
};

}  // namespace xsearch::text
