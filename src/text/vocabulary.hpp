// Interned term dictionary: bidirectional string <-> dense id mapping.
//
// Term ids keep the sparse vectors, inverted index and co-occurrence matrix
// compact; every module that handles tokens resolves them through one
// Vocabulary instance so ids are consistent across components. The index is
// keyed with a transparent hash, so lookups by string_view (the form hot
// paths produce via tokenize_views) never materialize a temporary string.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"

namespace xsearch::text {

using TermId = std::uint32_t;

class Vocabulary {
 public:
  /// Returns the id for `term`, interning it on first sight.
  TermId intern(std::string_view term);

  /// Returns the id if the term is known.
  [[nodiscard]] std::optional<TermId> lookup(std::string_view term) const;

  /// The term string for an id. Precondition: `id < size()`.
  [[nodiscard]] const std::string& term(TermId id) const;

  [[nodiscard]] std::size_t size() const { return terms_.size(); }

  /// Interns every token of a token list.
  [[nodiscard]] std::vector<TermId> intern_all(const std::vector<std::string>& tokens);
  [[nodiscard]] std::vector<TermId> intern_all(
      const std::vector<std::string_view>& tokens);

  /// Looks up every token, skipping unknown ones.
  [[nodiscard]] std::vector<TermId> lookup_all(
      const std::vector<std::string>& tokens) const;
  [[nodiscard]] std::vector<TermId> lookup_all(
      const std::vector<std::string_view>& tokens) const;

 private:
  std::unordered_map<std::string, TermId, StringHash, std::equal_to<>> index_;
  std::vector<std::string> terms_;
};

}  // namespace xsearch::text
