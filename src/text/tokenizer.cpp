#include "text/tokenizer.hpp"

#include <algorithm>
#include <unordered_set>

namespace xsearch::text {

namespace {

// A compact English stopword list; enough to strip query glue words. The
// keys are string literals (static storage), so the set stores views and
// `is_stopword` probes it without constructing a std::string.
const std::unordered_set<std::string_view>& stopword_set() {
  static const std::unordered_set<std::string_view> kStopwords = {
      "a",    "an",   "and",  "are",  "as",   "at",   "be",   "by",   "for",
      "from", "has",  "he",   "how",  "in",   "is",   "it",   "its",  "of",
      "on",   "or",   "that", "the",  "to",   "was",  "what", "when", "where",
      "which", "who", "will", "with", "you",  "your", "i",    "my",   "me",
      "we",   "our",  "they", "them", "this", "these", "do",  "does", "not"};
  return kStopwords;
}

}  // namespace

std::vector<std::string> tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string buffer;
  for (const std::string_view view : tokenize_views(text, buffer)) {
    tokens.emplace_back(view);
  }
  return tokens;
}

void tokenize_views_into(std::string_view text, std::string& buffer,
                         std::vector<std::string_view>& tokens) {
  // Lower-case the whole input once into the reusable buffer; token views
  // are slices of it, so no per-token string is ever constructed.
  buffer.resize(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    buffer[i] = to_lower_ascii(static_cast<unsigned char>(text[i]));
  }
  const std::string_view lowered(buffer);
  std::size_t i = 0;
  while (i < lowered.size()) {
    if (!is_token_char(static_cast<unsigned char>(lowered[i]))) {
      ++i;
      continue;
    }
    std::size_t end = i + 1;
    while (end < lowered.size() &&
           is_token_char(static_cast<unsigned char>(lowered[end]))) {
      ++end;
    }
    tokens.push_back(lowered.substr(i, end - i));
    i = end;
  }
}

std::vector<std::string_view> tokenize_views(std::string_view text,
                                             std::string& buffer) {
  std::vector<std::string_view> tokens;
  tokenize_views_into(text, buffer, tokens);
  return tokens;
}

std::vector<std::string> tokenize_no_stopwords(std::string_view text) {
  std::vector<std::string> tokens = tokenize(text);
  std::erase_if(tokens, [](const std::string& t) { return is_stopword(t); });
  return tokens;
}

bool is_stopword(std::string_view word) {
  return stopword_set().contains(word);
}

std::size_t common_word_count(std::string_view a, std::string_view b) {
  std::string a_buffer;
  std::string b_buffer;
  std::unordered_set<std::string_view> a_words;
  for (const std::string_view token : tokenize_views(a, a_buffer)) {
    a_words.insert(token);
  }
  std::size_t count = 0;
  std::unordered_set<std::string_view> seen;
  for (const std::string_view token : tokenize_views(b, b_buffer)) {
    if (a_words.contains(token) && seen.insert(token).second) ++count;
  }
  return count;
}

}  // namespace xsearch::text
