#include "text/tokenizer.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace xsearch::text {

namespace {

// A compact English stopword list; enough to strip query glue words.
const std::unordered_set<std::string>& stopword_set() {
  static const std::unordered_set<std::string> kStopwords = {
      "a",    "an",   "and",  "are",  "as",   "at",   "be",   "by",   "for",
      "from", "has",  "he",   "how",  "in",   "is",   "it",   "its",  "of",
      "on",   "or",   "that", "the",  "to",   "was",  "what", "when", "where",
      "which", "who", "will", "with", "you",  "your", "i",    "my",   "me",
      "we",   "our",  "they", "them", "this", "these", "do",  "does", "not"};
  return kStopwords;
}

}  // namespace

std::vector<std::string> tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char raw : text) {
    const auto c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> tokenize_no_stopwords(std::string_view text) {
  std::vector<std::string> tokens = tokenize(text);
  std::erase_if(tokens, [](const std::string& t) { return is_stopword(t); });
  return tokens;
}

bool is_stopword(std::string_view word) {
  return stopword_set().contains(std::string(word));
}

std::size_t common_word_count(std::string_view a, std::string_view b) {
  const auto a_tokens = tokenize(a);
  const std::unordered_set<std::string> a_words(a_tokens.begin(), a_tokens.end());
  return common_word_count(a_words, b);
}

std::size_t common_word_count(const std::unordered_set<std::string>& a_words,
                              std::string_view b) {
  std::size_t count = 0;
  std::unordered_set<std::string> seen;
  for (auto& token : tokenize(b)) {
    if (a_words.contains(token) && seen.insert(token).second) ++count;
  }
  return count;
}

}  // namespace xsearch::text
