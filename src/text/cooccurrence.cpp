#include "text/cooccurrence.hpp"

#include <algorithm>
#include <cassert>

#include "text/tokenizer.hpp"

namespace xsearch::text {

void CooccurrenceMatrix::add_query(std::string_view query) {
  std::vector<TermId> ids = vocab_->intern_all(tokenize_no_stopwords(query));
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  for (const TermId id : ids) ++unigram_[id];
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      auto bump = [this](TermId a, TermId b) {
        auto& list = neighbours_[a];
        const auto it = std::find_if(list.begin(), list.end(),
                                     [b](const auto& p) { return p.first == b; });
        if (it == list.end()) {
          list.emplace_back(b, 1);
        } else {
          ++it->second;
        }
      };
      bump(ids[i], ids[j]);
      bump(ids[j], ids[i]);
    }
  }
  MutexLock lock(sampling_mutex_);
  sampling_dirty_ = true;
}

std::uint64_t CooccurrenceMatrix::pair_count(std::string_view a, std::string_view b) const {
  const auto ia = vocab_->lookup(a);
  const auto ib = vocab_->lookup(b);
  if (!ia || !ib) return 0;
  const auto it = neighbours_.find(*ia);
  if (it == neighbours_.end()) return 0;
  for (const auto& [term, count] : it->second) {
    if (term == *ib) return count;
  }
  return 0;
}

std::uint64_t CooccurrenceMatrix::term_frequency(std::string_view term) const {
  const auto id = vocab_->lookup(term);
  if (!id) return 0;
  const auto it = unigram_.find(*id);
  return it == unigram_.end() ? 0 : it->second;
}

void CooccurrenceMatrix::rebuild_sampling_table() const {
  sample_terms_.clear();
  sample_cumulative_.clear();
  sample_terms_.reserve(unigram_.size());
  sample_cumulative_.reserve(unigram_.size());
  std::uint64_t total = 0;
  for (const auto& [term, count] : unigram_) {
    total += count;
    sample_terms_.push_back(term);
    sample_cumulative_.push_back(total);
  }
  sampling_dirty_ = false;
}

std::string CooccurrenceMatrix::sample_term(Rng& rng) const {
  if (unigram_.empty()) return {};
  TermId picked;
  {
    // Shared-generator hot path: PEAS batch lanes sample concurrently, and
    // any of them may observe the cache dirty and rebuild it.
    MutexLock lock(sampling_mutex_);
    if (sampling_dirty_) rebuild_sampling_table();
    const std::uint64_t target = rng.uniform(sample_cumulative_.back()) + 1;
    const auto it = std::lower_bound(sample_cumulative_.begin(),
                                     sample_cumulative_.end(), target);
    const auto idx = static_cast<std::size_t>(it - sample_cumulative_.begin());
    picked = sample_terms_[idx];
  }
  return vocab_->term(picked);
}

std::string CooccurrenceMatrix::sample_neighbour(std::string_view term, Rng& rng) const {
  const auto id = vocab_->lookup(term);
  if (id) {
    if (const auto it = neighbours_.find(*id); it != neighbours_.end() && !it->second.empty()) {
      std::uint64_t total = 0;
      for (const auto& [_, count] : it->second) total += count;
      std::uint64_t target = rng.uniform(total) + 1;
      for (const auto& [other, count] : it->second) {
        if (target <= count) return vocab_->term(other);
        target -= count;
      }
    }
  }
  return sample_term(rng);  // fallback
}

std::string CooccurrenceMatrix::generate_fake_query(std::size_t length, Rng& rng) const {
  if (unigram_.empty() || length == 0) return {};
  std::string current = sample_term(rng);
  std::string query = current;
  for (std::size_t i = 1; i < length; ++i) {
    std::string next = sample_neighbour(current, rng);
    if (next.empty()) break;
    query += ' ';
    query += next;
    current = std::move(next);
  }
  return query;
}

}  // namespace xsearch::text
