// Sparse term-weight vectors and cosine similarity.
//
// SimAttack represents queries and user profiles as term-frequency vectors
// and compares them by cosine similarity; the same machinery scores results
// in the accuracy evaluation. Entries are kept sorted by term id so dot
// products run in linear time.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "text/vocabulary.hpp"

namespace xsearch::text {

/// One (term, weight) pair.
struct SparseEntry {
  TermId term;
  double weight;

  friend bool operator==(const SparseEntry&, const SparseEntry&) = default;
};

/// Immutable-after-build sparse vector, sorted by term id.
class SparseVector {
 public:
  SparseVector() = default;

  /// Builds from unordered (term, weight) pairs, merging duplicates by sum.
  static SparseVector from_pairs(std::vector<SparseEntry> entries);

  /// Term-frequency vector of a token id list (weight = occurrence count).
  static SparseVector term_frequency(const std::vector<TermId>& ids);

  [[nodiscard]] const std::vector<SparseEntry>& entries() const { return entries_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// L2 norm (cached at construction).
  [[nodiscard]] double norm() const { return norm_; }

  /// Dot product with another sorted sparse vector, O(n + m).
  [[nodiscard]] double dot(const SparseVector& other) const;

  /// Cosine similarity in [0, 1] for non-negative weights; 0 when either
  /// vector is empty.
  [[nodiscard]] double cosine(const SparseVector& other) const;

  /// In-place scaled accumulate: this += scale * other (re-sorts/merges).
  void add_scaled(const SparseVector& other, double scale);

 private:
  void finalize();

  std::vector<SparseEntry> entries_;
  double norm_ = 0.0;
};

/// Tokenizes `textual` (stopwords removed), interns through `vocab`, and
/// returns its TF vector. Convenience used by profiles and attacks.
[[nodiscard]] SparseVector tf_vector(Vocabulary& vocab, std::string_view textual);

/// Lookup-only variant: unknown terms are dropped, vocabulary not mutated.
[[nodiscard]] SparseVector tf_vector_const(const Vocabulary& vocab,
                                           std::string_view textual);

/// Exponential smoothing of a list of similarity values ranked in ascending
/// order (SimAttack §5.3.1): smooth = alpha*s_n + alpha*(1-alpha)*s_{n-1} ...
/// Values are sorted ascending internally; the highest similarity gets the
/// largest coefficient.
[[nodiscard]] double exponential_smoothing(std::vector<double> similarities,
                                           double alpha);

}  // namespace xsearch::text
