#include "text/sparse_vector.hpp"

#include <algorithm>
#include <cmath>

#include "text/tokenizer.hpp"

namespace xsearch::text {

void SparseVector::finalize() {
  std::sort(entries_.begin(), entries_.end(),
            [](const SparseEntry& a, const SparseEntry& b) { return a.term < b.term; });
  // Merge duplicate terms by summing weights.
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (out > 0 && entries_[out - 1].term == entries_[i].term) {
      entries_[out - 1].weight += entries_[i].weight;
    } else {
      entries_[out++] = entries_[i];
    }
  }
  entries_.resize(out);
  std::erase_if(entries_, [](const SparseEntry& e) { return e.weight == 0.0; });

  double sq = 0.0;
  for (const auto& e : entries_) sq += e.weight * e.weight;
  norm_ = std::sqrt(sq);
}

SparseVector SparseVector::from_pairs(std::vector<SparseEntry> entries) {
  SparseVector v;
  v.entries_ = std::move(entries);
  v.finalize();
  return v;
}

SparseVector SparseVector::term_frequency(const std::vector<TermId>& ids) {
  std::vector<SparseEntry> entries;
  entries.reserve(ids.size());
  for (const TermId id : ids) entries.push_back({id, 1.0});
  return from_pairs(std::move(entries));
}

double SparseVector::dot(const SparseVector& other) const {
  double sum = 0.0;
  std::size_t i = 0, j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    if (entries_[i].term < other.entries_[j].term) {
      ++i;
    } else if (entries_[i].term > other.entries_[j].term) {
      ++j;
    } else {
      sum += entries_[i].weight * other.entries_[j].weight;
      ++i;
      ++j;
    }
  }
  return sum;
}

double SparseVector::cosine(const SparseVector& other) const {
  if (norm_ == 0.0 || other.norm_ == 0.0) return 0.0;
  return dot(other) / (norm_ * other.norm_);
}

void SparseVector::add_scaled(const SparseVector& other, double scale) {
  for (const auto& e : other.entries_) entries_.push_back({e.term, e.weight * scale});
  finalize();
}

namespace {

// Tokenize once into view tokens (one reusable buffer), drop stopwords —
// no per-token std::string is ever constructed.
std::vector<std::string_view> content_tokens(std::string_view textual,
                                             std::string& buffer) {
  std::vector<std::string_view> tokens = tokenize_views(textual, buffer);
  std::erase_if(tokens, [](std::string_view t) { return is_stopword(t); });
  return tokens;
}

}  // namespace

SparseVector tf_vector(Vocabulary& vocab, std::string_view textual) {
  std::string buffer;
  return SparseVector::term_frequency(vocab.intern_all(content_tokens(textual, buffer)));
}

SparseVector tf_vector_const(const Vocabulary& vocab, std::string_view textual) {
  std::string buffer;
  return SparseVector::term_frequency(vocab.lookup_all(content_tokens(textual, buffer)));
}

double exponential_smoothing(std::vector<double> similarities, double alpha) {
  if (similarities.empty()) return 0.0;
  std::sort(similarities.begin(), similarities.end());  // ascending
  double smoothed = similarities.front();
  for (std::size_t i = 1; i < similarities.size(); ++i) {
    smoothed = alpha * similarities[i] + (1.0 - alpha) * smoothed;
  }
  return smoothed;
}

}  // namespace xsearch::text
