#include "text/vocabulary.hpp"

#include <cassert>

namespace xsearch::text {

TermId Vocabulary::intern(std::string_view term) {
  if (const auto it = index_.find(term); it != index_.end()) {
    return it->second;
  }
  const auto id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

std::optional<TermId> Vocabulary::lookup(std::string_view term) const {
  const auto it = index_.find(term);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Vocabulary::term(TermId id) const {
  assert(id < terms_.size());
  return terms_[id];
}

std::vector<TermId> Vocabulary::intern_all(const std::vector<std::string>& tokens) {
  std::vector<TermId> ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) ids.push_back(intern(t));
  return ids;
}

std::vector<TermId> Vocabulary::intern_all(
    const std::vector<std::string_view>& tokens) {
  std::vector<TermId> ids;
  ids.reserve(tokens.size());
  for (const auto t : tokens) ids.push_back(intern(t));
  return ids;
}

std::vector<TermId> Vocabulary::lookup_all(const std::vector<std::string>& tokens) const {
  std::vector<TermId> ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) {
    if (const auto id = lookup(t)) ids.push_back(*id);
  }
  return ids;
}

std::vector<TermId> Vocabulary::lookup_all(
    const std::vector<std::string_view>& tokens) const {
  std::vector<TermId> ids;
  ids.reserve(tokens.size());
  for (const auto t : tokens) {
    if (const auto id = lookup(t)) ids.push_back(*id);
  }
  return ids;
}

}  // namespace xsearch::text
