// Synthetic web corpus generation.
//
// Builds a document collection that is topically coherent with a query log:
// each document is seeded from a (frequency-weighted) log query, its title
// repeats and extends the query's words via the log's term co-occurrence
// graph, and its body adds further related and background words. This
// guarantees that queries have on-topic results — the property the accuracy
// evaluation (Figure 4) exercises — without requiring a real web crawl.
#pragma once

#include <cstdint>
#include <vector>

#include "dataset/query_log.hpp"
#include "engine/document.hpp"
#include "text/cooccurrence.hpp"
#include "text/vocabulary.hpp"

namespace xsearch::engine {

struct CorpusConfig {
  std::uint64_t seed = 0xd0c5;
  std::size_t num_documents = 20'000;
  std::size_t title_extra_words = 3;   // co-occurring words added to titles
  std::size_t body_min_words = 20;
  std::size_t body_max_words = 60;
  double body_related_fraction = 0.7;  // rest is background vocabulary
};

/// A generated document collection plus the vocabulary/co-occurrence model
/// it shares with the query log (reused by PEAS and the attack).
class Corpus {
 public:
  Corpus(const dataset::QueryLog& log, const CorpusConfig& config);

  [[nodiscard]] const std::vector<Document>& documents() const { return documents_; }
  [[nodiscard]] std::size_t size() const { return documents_.size(); }

 private:
  std::vector<Document> documents_;
};

}  // namespace xsearch::engine
