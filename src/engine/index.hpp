// Inverted index with BM25 ranking.
//
// The retrieval core of the simulated search engine: documents are indexed
// by their title and body terms (title terms carry a configurable field
// boost) and queries are scored with Okapi BM25.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "engine/document.hpp"
#include "text/vocabulary.hpp"

namespace xsearch::engine {

struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
  double title_boost = 2.0;  // weight of a title occurrence vs a body one
};

/// A scored document id.
struct ScoredDoc {
  DocId doc = 0;
  double score = 0.0;
};

class InvertedIndex {
 public:
  explicit InvertedIndex(Bm25Params params = {}) : params_(params) {}

  /// Indexes one document (id must be unique).
  void add_document(const Document& doc);

  /// Top-k documents for a free-text query, BM25-ranked, deterministic
  /// tie-break by doc id. Unknown terms are ignored.
  [[nodiscard]] std::vector<ScoredDoc> search(std::string_view query,
                                              std::size_t top_k) const;

  [[nodiscard]] std::size_t document_count() const { return doc_lengths_.size(); }
  [[nodiscard]] std::size_t term_count() const { return vocab_.size(); }

 private:
  struct Posting {
    DocId doc;
    float weight;  // field-boosted term frequency
  };

  Bm25Params params_;
  text::Vocabulary vocab_;
  std::unordered_map<text::TermId, std::vector<Posting>> postings_;
  std::vector<double> doc_lengths_;  // boosted length per doc
  double total_length_ = 0.0;
};

}  // namespace xsearch::engine
