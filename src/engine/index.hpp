// Inverted index with BM25 ranking.
//
// The retrieval core of the simulated search engine: documents are indexed
// by their title and body terms (title terms carry a configurable field
// boost) and queries are scored with Okapi BM25.
//
// Scoring accumulates into a dense per-document array owned by a reusable
// `Scratch`, not a per-call hash map: an OR query evaluates its k+1
// sub-queries through one Scratch, so the score state, the touched-doc
// list and the ranking buffer are allocated once per OR query instead of
// once per sub-query.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "engine/document.hpp"
#include "text/vocabulary.hpp"

namespace xsearch::engine {

struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
  double title_boost = 2.0;  // weight of a title occurrence vs a body one
};

/// A scored document id.
struct ScoredDoc {
  DocId doc = 0;
  double score = 0.0;
};

class InvertedIndex {
 public:
  explicit InvertedIndex(Bm25Params params = {}) : params_(params) {}

  /// Reusable per-search state; see the header comment. A default-
  /// constructed Scratch works with any index and grows on first use.
  /// First touch of a doc is detected by epoch stamp, not by a zero score
  /// (a zero-weight posting, e.g. title_boost = 0, must not re-touch).
  struct Scratch {
    std::vector<double> scores;            // dense per-doc accumulator
    std::vector<std::uint32_t> stamps;     // epoch of each doc's last touch
    std::uint32_t epoch = 0;               // current search's stamp value
    std::vector<DocId> touched;            // docs scored by the current query
    std::vector<text::TermId> terms;       // deduplicated query terms
    std::string token_buffer;              // tokenize_views backing store
    std::vector<std::string_view> tokens;  // token views into token_buffer
  };

  /// Indexes one document (id must be unique).
  void add_document(const Document& doc);

  /// Top-k documents for a free-text query, BM25-ranked, deterministic
  /// tie-break by doc id. Unknown terms are ignored.
  [[nodiscard]] std::vector<ScoredDoc> search(std::string_view query,
                                              std::size_t top_k) const;

  /// Same, accumulating through caller-owned scratch so consecutive
  /// searches (the k+1 sub-queries of an OR query) share one allocation.
  /// `out` is cleared and filled with the ranked top-k.
  void search_with(std::string_view query, std::size_t top_k, Scratch& scratch,
                   std::vector<ScoredDoc>& out) const;

  [[nodiscard]] std::size_t document_count() const { return doc_lengths_.size(); }
  [[nodiscard]] std::size_t term_count() const { return vocab_.size(); }

 private:
  struct Posting {
    DocId doc;
    float weight;  // field-boosted term frequency
  };

  Bm25Params params_;
  text::Vocabulary vocab_;
  std::unordered_map<text::TermId, std::vector<Posting>> postings_;
  std::vector<double> doc_lengths_;  // boosted length per doc
  double total_length_ = 0.0;
};

}  // namespace xsearch::engine
