// The simulated web search engine (Bing stand-in).
//
// Serves ranked results with titles, description snippets and analytics
// tracking URLs. Mirrors the paper's own methodology for OR queries
// (§5.3.2): since Bing's OR operator only worked on single-word queries,
// the authors submitted each sub-query independently and merged the k+1
// result sets — `search_or` does exactly that.
//
// The engine is "honest but curious" (§3): it answers correctly, and it
// additionally exposes a query observation hook so the SimAttack adversary
// can record what the engine sees.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/corpus.hpp"
#include "engine/document.hpp"
#include "engine/index.hpp"

namespace xsearch::engine {

class SearchEngine {
 public:
  /// Indexes the corpus; `snippet_words` controls description length.
  explicit SearchEngine(const Corpus& corpus, std::size_t snippet_words = 25,
                        Bm25Params params = {});

  /// Single query, top-k decorated results.
  [[nodiscard]] std::vector<SearchResult> search(std::string_view query,
                                                 std::size_t top_k) const;

  /// OR query over several sub-queries: each sub-query is evaluated
  /// independently for `top_k_each` results and the result sets are merged
  /// (deduplicated by document, keeping the best score, interleaved by
  /// per-sub-query rank so no sub-query dominates the head of the list).
  [[nodiscard]] std::vector<SearchResult> search_or(
      const std::vector<std::string>& sub_queries, std::size_t top_k_each) const;

  /// Registers an observer invoked with every query string the engine
  /// receives — the adversary's vantage point.
  void set_observer(std::function<void(std::string_view)> observer) {
    observer_ = std::move(observer);
  }

  [[nodiscard]] std::size_t document_count() const { return index_.document_count(); }

 private:
  [[nodiscard]] SearchResult decorate(const ScoredDoc& sd) const;

  const std::vector<Document>* documents_;
  InvertedIndex index_;
  std::size_t snippet_words_;
  std::function<void(std::string_view)> observer_;
};

}  // namespace xsearch::engine
