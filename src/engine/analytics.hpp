// Analytics URL redirection, as real engines apply to result links.
//
// The paper notes (§4.1) that X-Search "tampers" results "to remove any URL
// redirection used for analytics". The simulated engine therefore serves
// tracking URLs of the form
//   https://search.example/l/?track=<opaque>&target=<real-url>
// and the proxy's filtering stage rewrites them back to the target.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace xsearch::engine {

/// Wraps `target_url` in a tracking redirect carrying an opaque token.
[[nodiscard]] std::string make_tracking_url(std::string_view target_url,
                                            std::uint64_t token);

/// True if `url` is a tracking redirect of this engine.
[[nodiscard]] bool is_tracking_url(std::string_view url);

/// Recovers the target URL from a tracking redirect; nullopt if `url` is
/// not a tracking URL.
[[nodiscard]] std::optional<std::string> extract_target_url(std::string_view url);

}  // namespace xsearch::engine
