// Web document model returned by the simulated search engine.
#pragma once

#include <cstdint>
#include <string>

namespace xsearch::engine {

using DocId = std::uint32_t;

/// One indexed web page.
struct Document {
  DocId id = 0;
  std::string title;
  std::string body;  // description text; the snippet is a prefix of this
  std::string url;   // canonical target URL
};

/// One entry of a result list as the engine serves it: title, description
/// snippet and a *tracking* URL that bounces through the engine's analytics
/// redirector (X-Search's proxy strips this, paper §4.1).
struct SearchResult {
  DocId doc = 0;
  std::string title;
  std::string description;
  std::string url;  // tracking URL as served; see analytics.hpp
  double score = 0.0;

  friend bool operator==(const SearchResult&, const SearchResult&) = default;
};

}  // namespace xsearch::engine
