#include "engine/index.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "text/tokenizer.hpp"

namespace xsearch::engine {

void InvertedIndex::add_document(const Document& doc) {
  assert(doc.id == doc_lengths_.size() && "documents must be added with dense ids");

  std::unordered_map<text::TermId, double> weights;
  double length = 0.0;
  for (const auto& token : text::tokenize(doc.title)) {
    weights[vocab_.intern(token)] += params_.title_boost;
    length += params_.title_boost;
  }
  for (const auto& token : text::tokenize(doc.body)) {
    weights[vocab_.intern(token)] += 1.0;
    length += 1.0;
  }

  for (const auto& [term, weight] : weights) {
    postings_[term].push_back(Posting{doc.id, static_cast<float>(weight)});
  }
  doc_lengths_.push_back(length);
  total_length_ += length;
}

std::vector<ScoredDoc> InvertedIndex::search(std::string_view query,
                                             std::size_t top_k) const {
  const std::size_t n_docs = doc_lengths_.size();
  if (n_docs == 0 || top_k == 0) return {};
  const double avg_len = total_length_ / static_cast<double>(n_docs);

  // Deduplicate query terms; BM25 treats repeated query terms linearly but
  // short web queries rarely repeat words, and dedup keeps scores stable.
  std::vector<text::TermId> terms;
  for (const auto& token : text::tokenize(query)) {
    if (const auto id = vocab_.lookup(token)) {
      if (std::find(terms.begin(), terms.end(), *id) == terms.end()) {
        terms.push_back(*id);
      }
    }
  }
  if (terms.empty()) return {};

  std::unordered_map<DocId, double> scores;
  for (const text::TermId term : terms) {
    const auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    const auto& plist = it->second;
    const double df = static_cast<double>(plist.size());
    const double idf = std::log(
        1.0 + (static_cast<double>(n_docs) - df + 0.5) / (df + 0.5));
    for (const Posting& p : plist) {
      const double tf = p.weight;
      const double norm =
          params_.k1 * (1.0 - params_.b +
                        params_.b * doc_lengths_[p.doc] / avg_len);
      scores[p.doc] += idf * (tf * (params_.k1 + 1.0)) / (tf + norm);
    }
  }

  std::vector<ScoredDoc> ranked;
  ranked.reserve(scores.size());
  for (const auto& [doc, score] : scores) ranked.push_back({doc, score});
  const std::size_t keep = std::min(top_k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(keep),
                    ranked.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.doc < b.doc;
                    });
  ranked.resize(keep);
  return ranked;
}

}  // namespace xsearch::engine
