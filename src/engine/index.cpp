#include "engine/index.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "text/tokenizer.hpp"

namespace xsearch::engine {

void InvertedIndex::add_document(const Document& doc) {
  assert(doc.id == doc_lengths_.size() && "documents must be added with dense ids");

  std::unordered_map<text::TermId, double> weights;
  double length = 0.0;
  for (const auto& token : text::tokenize(doc.title)) {
    weights[vocab_.intern(token)] += params_.title_boost;
    length += params_.title_boost;
  }
  for (const auto& token : text::tokenize(doc.body)) {
    weights[vocab_.intern(token)] += 1.0;
    length += 1.0;
  }

  for (const auto& [term, weight] : weights) {
    postings_[term].push_back(Posting{doc.id, static_cast<float>(weight)});
  }
  doc_lengths_.push_back(length);
  total_length_ += length;
}

std::vector<ScoredDoc> InvertedIndex::search(std::string_view query,
                                             std::size_t top_k) const {
  Scratch scratch;
  std::vector<ScoredDoc> out;
  search_with(query, top_k, scratch, out);
  return out;
}

void InvertedIndex::search_with(std::string_view query, std::size_t top_k,
                                Scratch& scratch, std::vector<ScoredDoc>& out) const {
  out.clear();
  const std::size_t n_docs = doc_lengths_.size();
  if (n_docs == 0 || top_k == 0) return;
  const double avg_len = total_length_ / static_cast<double>(n_docs);

  // Deduplicate query terms; BM25 treats repeated query terms linearly but
  // short web queries rarely repeat words, and dedup keeps scores stable.
  scratch.tokens.clear();
  text::tokenize_views_into(query, scratch.token_buffer, scratch.tokens);
  auto& terms = scratch.terms;
  terms.clear();
  for (const std::string_view token : scratch.tokens) {
    if (const auto id = vocab_.lookup(token)) {
      if (std::find(terms.begin(), terms.end(), *id) == terms.end()) {
        terms.push_back(*id);
      }
    }
  }
  if (terms.empty()) return;

  // Dense accumulator, reset lazily: a doc's score is live only when its
  // epoch stamp matches the current search, so the O(n_docs) clear happens
  // once per Scratch (plus once per epoch-counter wrap).
  auto& scores = scratch.scores;
  auto& stamps = scratch.stamps;
  if (scores.size() < n_docs) {
    scores.resize(n_docs, 0.0);
    stamps.resize(n_docs, 0);
  }
  if (++scratch.epoch == 0) {  // wrapped: stamp 0 must mean "never touched"
    std::fill(stamps.begin(), stamps.end(), 0);
    scratch.epoch = 1;
  }
  const std::uint32_t epoch = scratch.epoch;
  auto& touched = scratch.touched;
  touched.clear();

  for (const text::TermId term : terms) {
    const auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    const auto& plist = it->second;
    const double df = static_cast<double>(plist.size());
    const double idf = std::log(
        1.0 + (static_cast<double>(n_docs) - df + 0.5) / (df + 0.5));
    for (const Posting& p : plist) {
      const double tf = p.weight;
      const double norm =
          params_.k1 * (1.0 - params_.b +
                        params_.b * doc_lengths_[p.doc] / avg_len);
      if (stamps[p.doc] != epoch) {
        stamps[p.doc] = epoch;
        scores[p.doc] = 0.0;
        touched.push_back(p.doc);
      }
      scores[p.doc] += idf * (tf * (params_.k1 + 1.0)) / (tf + norm);
    }
  }

  out.reserve(touched.size());
  for (const DocId doc : touched) out.push_back({doc, scores[doc]});
  const std::size_t keep = std::min(top_k, out.size());
  std::partial_sort(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(keep),
                    out.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.doc < b.doc;
                    });
  out.resize(keep);
}

}  // namespace xsearch::engine
