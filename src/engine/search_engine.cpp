#include "engine/search_engine.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/rng.hpp"
#include "engine/analytics.hpp"
#include "text/tokenizer.hpp"

namespace xsearch::engine {

SearchEngine::SearchEngine(const Corpus& corpus, std::size_t snippet_words,
                           Bm25Params params)
    : documents_(&corpus.documents()), index_(params), snippet_words_(snippet_words) {
  for (const auto& doc : *documents_) index_.add_document(doc);
}

SearchResult SearchEngine::decorate(const ScoredDoc& sd) const {
  const Document& doc = (*documents_)[sd.doc];
  SearchResult result;
  result.doc = sd.doc;
  result.title = doc.title;
  result.score = sd.score;

  // Snippet: leading words of the body.
  std::size_t words = 0;
  std::size_t end = 0;
  while (end < doc.body.size() && words < snippet_words_) {
    const auto space = doc.body.find(' ', end);
    if (space == std::string::npos) {
      end = doc.body.size();
      break;
    }
    end = space + 1;
    ++words;
  }
  result.description = doc.body.substr(0, end);
  if (!result.description.empty() && result.description.back() == ' ') {
    result.description.pop_back();
  }

  // Analytics redirect with an opaque (but deterministic) token.
  std::uint64_t token_state = 0x414e41ull ^ (std::uint64_t{sd.doc} << 17);
  result.url = make_tracking_url(doc.url, splitmix64(token_state));
  return result;
}

std::vector<SearchResult> SearchEngine::search(std::string_view query,
                                               std::size_t top_k) const {
  if (observer_) observer_(query);
  std::vector<SearchResult> out;
  for (const ScoredDoc& sd : index_.search(query, top_k)) {
    out.push_back(decorate(sd));
  }
  return out;
}

std::vector<SearchResult> SearchEngine::search_or(
    const std::vector<std::string>& sub_queries, std::size_t top_k_each) const {
  if (observer_) {
    // The engine sees one OR query, exactly as the proxy sends it.
    std::string combined;
    std::size_t total = 0;
    for (const auto& q : sub_queries) total += q.size() + 4;
    combined.reserve(total);
    for (const auto& q : sub_queries) {
      if (!combined.empty()) combined += " OR ";
      combined += q;
    }
    observer_(combined);
  }

  // Evaluate each sub-query independently (paper §5.3.2), all k+1 of them
  // through one scratch so the per-doc score state is allocated once ...
  InvertedIndex::Scratch scratch;
  std::vector<std::vector<ScoredDoc>> per_query(sub_queries.size());
  for (std::size_t i = 0; i < sub_queries.size(); ++i) {
    index_.search_with(sub_queries[i], top_k_each, scratch, per_query[i]);
  }

  // ... merge rank-by-rank so every sub-query contributes near the top,
  // deduplicating documents on first sight ...
  std::vector<ScoredDoc> merged;
  std::unordered_set<DocId> seen;
  for (std::size_t rank = 0; rank < top_k_each; ++rank) {
    for (const auto& ranked : per_query) {
      if (rank >= ranked.size()) continue;
      if (seen.insert(ranked[rank].doc).second) merged.push_back(ranked[rank]);
    }
  }

  // ... and decorate only the survivors: duplicate and merged-away hits
  // never pay title/snippet/tracking-URL construction.
  std::vector<SearchResult> out;
  out.reserve(merged.size());
  for (const ScoredDoc& sd : merged) out.push_back(decorate(sd));
  return out;
}

}  // namespace xsearch::engine
