#include "engine/corpus.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "text/tokenizer.hpp"

namespace xsearch::engine {

Corpus::Corpus(const dataset::QueryLog& log, const CorpusConfig& config) {
  xsearch::Rng rng(config.seed);

  // Build the term co-occurrence model of the log once.
  text::Vocabulary vocab;
  text::CooccurrenceMatrix cooc(vocab);
  for (const auto& record : log.records()) cooc.add_query(record.text);

  const auto& records = log.records();
  documents_.reserve(config.num_documents);

  for (std::size_t d = 0; d < config.num_documents; ++d) {
    Document doc;
    doc.id = static_cast<DocId>(d);

    // Seed document from a random log query (frequency-weighted by
    // construction: popular queries appear more often in the log).
    std::string seed_query;
    if (!records.empty()) {
      seed_query = records[rng.uniform(records.size())].text;
    } else {
      seed_query = cooc.sample_term(rng);
    }

    // Title: the seed query's words plus a few co-occurring words.
    doc.title = seed_query;
    std::string last_word;
    {
      const auto tokens = text::tokenize(seed_query);
      if (!tokens.empty()) last_word = tokens.back();
    }
    for (std::size_t i = 0; i < config.title_extra_words; ++i) {
      const std::string extra =
          last_word.empty() ? cooc.sample_term(rng) : cooc.sample_neighbour(last_word, rng);
      if (extra.empty()) break;
      doc.title += ' ';
      doc.title += extra;
      last_word = extra;
    }

    // Body: mostly words related to the title, with background noise.
    const auto body_len = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(config.body_min_words),
                        static_cast<std::int64_t>(config.body_max_words)));
    std::string current = last_word.empty() ? cooc.sample_term(rng) : last_word;
    for (std::size_t w = 0; w < body_len; ++w) {
      std::string word;
      if (rng.bernoulli(config.body_related_fraction)) {
        word = cooc.sample_neighbour(current, rng);
        current = word;
      } else {
        word = cooc.sample_term(rng);
      }
      if (word.empty()) continue;
      if (!doc.body.empty()) doc.body += ' ';
      doc.body += word;
    }

    // Canonical URL derived from the title's first words.
    doc.url = "https://www.site" + std::to_string(d % 997) + ".example/";
    const auto title_tokens = text::tokenize(doc.title);
    for (std::size_t t = 0; t < title_tokens.size() && t < 3; ++t) {
      doc.url += title_tokens[t];
      doc.url += (t + 1 < title_tokens.size() && t + 1 < 3) ? "-" : "";
    }

    documents_.push_back(std::move(doc));
  }
}

}  // namespace xsearch::engine
