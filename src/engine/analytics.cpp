#include "engine/analytics.hpp"

#include <string>

namespace xsearch::engine {

namespace {
constexpr std::string_view kPrefix = "https://search.example/l/?track=";
constexpr std::string_view kTargetParam = "&target=";
}  // namespace

std::string make_tracking_url(std::string_view target_url, std::uint64_t token) {
  std::string out(kPrefix);
  out += std::to_string(token);
  out += kTargetParam;
  out += target_url;
  return out;
}

bool is_tracking_url(std::string_view url) { return url.starts_with(kPrefix); }

std::optional<std::string> extract_target_url(std::string_view url) {
  if (!is_tracking_url(url)) return std::nullopt;
  const auto pos = url.find(kTargetParam);
  if (pos == std::string_view::npos) return std::nullopt;
  return std::string(url.substr(pos + kTargetParam.size()));
}

}  // namespace xsearch::engine
