// Unified client API over the five private web search mechanisms.
//
// The paper's argument is comparative — X-Search against Direct, TrackMeNot,
// Tor and PEAS on the same workload (§5.2) — so every bench, attack harness
// and example talks to this one interface instead of the five unrelated
// concrete APIs. A `PrivateSearchClient` owns a mechanism's whole stack
// (relays, proxies, enclave, ...), exposes an explicit session lifecycle,
// a synchronous `search`, an asynchronous batch path (`submit`/`poll`/`wait`
// executed on a `common::ThreadPool`), and uniform introspection of the
// mechanism's privacy properties. Concrete mechanisms are produced by name
// through `api/registry.hpp`.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "engine/document.hpp"

namespace xsearch::api {

/// Crash-recovery knobs of checkpointing deployments (X-Search only; other
/// mechanisms hold no server-side state worth restoring). With
/// `checkpoint_dir` set, the proxy (or each fleet worker, under its own
/// subdirectory) periodically seals its query history to disk and restores
/// it on restart — a warm restart instead of the cold-start obfuscation
/// window a crash otherwise opens. The supervisor knobs drive
/// net::FleetSupervisor for fleet deployments.
struct RecoveryConfig {
  /// Directory for sealed history checkpoints (empty = checkpointing off).
  std::string checkpoint_dir;
  /// Queries between periodic checkpoints (0 = explicit/drain-time only).
  std::uint64_t checkpoint_interval_queries = 256;
  /// Supervisor pause between heartbeat sweeps over the fleet.
  Nanos probe_interval = 20 * kMilli;
  /// Consecutive heartbeat failures before a worker is auto-respawned.
  std::uint32_t failure_threshold = 3;
  /// Deadline for one heartbeat probe; a probe overrunning it means the
  /// worker is HUNG (not crashed) and counts as a failure. 0 = probe
  /// without a deadline (a hung worker then wedges the probe loop).
  Nanos probe_budget = kSecond;
};

/// End-to-end robustness knobs for the remote X-Search transport: request
/// deadlines, budgeted retries with backoff, and a client-side circuit
/// breaker. All default to the historical behavior (no deadline, retry
/// exactly once, breaker off); in-process mechanisms ignore the transport
/// knobs but share the retry attempt cap.
struct RobustnessConfig {
  /// End-to-end budget per search/batch call, covering every attempt,
  /// backoff pause and socket operation; also carried on the wire so the
  /// server sheds work it cannot finish in time. 0 = unbounded.
  Nanos request_budget = 0;
  /// Budget for TCP connect + attested handshake (0 = unbounded).
  Nanos connect_budget = 0;
  /// Total attempts per call, including the first (1 = never retry).
  std::uint32_t retry_attempts = 2;
  /// Backoff curve between attempts (capped decorrelated jitter).
  Nanos retry_initial_backoff = kMilli;
  Nanos retry_max_backoff = 50 * kMilli;
  /// Client-side circuit breaker: while open, calls fail fast with
  /// UPSTREAM_DOWN and never touch the wire.
  bool breaker_enabled = false;
};

/// Enclave-boundary knobs for X-Search mechanisms: the switchless
/// (exitless) request path. When enabled, each proxy enclave starts
/// persistent trusted workers — entered once via a long-running
/// `run_workers` ecall — that drain a bounded job ring in untrusted
/// memory, so steady-state queries stop paying the per-request enclave
/// transition. Requests fall back to the classic 2-ecall path whenever
/// the ring is full or workers are not running. Ignored by mechanisms
/// without an enclave (Direct, Tor, TrackMeNot, PEAS).
struct EnclaveConfig {
  /// Master switch for the switchless request path (off = historical
  /// one-ecall-per-request behavior).
  bool switchless = false;
  /// Job-ring depth in slots; rounded up to a power of two. Must be > 0
  /// when switchless is on.
  std::size_t ring_depth = 64;
  /// Persistent in-enclave worker threads. Must be in [1, ring_depth].
  std::size_t enclave_workers = 1;
  /// Empty polls a worker burns before parking on the doorbell.
  std::uint32_t spin_budget = 256;
};

/// Mechanism-agnostic client configuration. Every knob that several
/// mechanisms interpret (top_k, k, seeds) is routed through here so no
/// mechanism hard-codes its own default.
struct ClientConfig {
  /// Results the user wants per query. For obfuscating mechanisms this is
  /// also the per-sub-query fetch size (the paper's "first 20 results").
  std::size_t top_k = 20;
  /// Number of fake queries aggregated with each real one (TrackMeNot,
  /// PEAS, X-Search; ignored by Direct and Tor).
  std::size_t k = 3;
  /// Deterministic seed for all client-side randomness.
  std::uint64_t seed = 1;
  /// Client identity as seen by identity-observing components (PEAS
  /// receiver; also used to diversify batch-lane siblings).
  std::uint32_t client_id = 0;
  /// When false, mechanisms reply without contacting the engine — the
  /// saturation configuration of the Figure 5 bench (§6.3).
  bool contact_engine = true;
  /// Sliding-window size of the X-Search in-enclave history table.
  std::size_t history_capacity = 100'000;
  /// Bound on live X-Search client sessions held in enclave memory; the
  /// least recently used session beyond it is evicted and its client must
  /// re-handshake (both the in-process and remote brokers do so
  /// transparently).
  std::size_t session_capacity = 4096;
  /// Idle time after which an X-Search session expires (0 = never).
  Nanos session_idle_ttl = 0;
  /// Lock shards of the X-Search session table (more shards = less
  /// contention between concurrent sessions).
  std::size_t session_shards = 8;
  /// Calibrated per-request service cost charged (as busy CPU) before each
  /// search — the proxy network/OS-stack work the in-process simulation
  /// does not otherwise execute (Figure 5 saturation bench; 0 = off).
  Nanos stack_cost_per_request = 0;
  /// Worker threads of the asynchronous batch path.
  std::size_t batch_workers = 4;
  /// Pending-request capacity of the batch queue; `try_submit` reports
  /// overflow instead of blocking.
  std::size_t batch_queue_capacity = 4096;
  /// Maximum `submit()`s coalesced into ONE mechanism round trip (1 = off).
  /// Mechanisms with a wire protocol (the remote X-Search client) answer a
  /// coalesced batch with one sealed record each way, amortizing AEAD and
  /// syscall cost over the batch; others just loop. Capped by the wire
  /// protocol's batch bound.
  std::size_t batch_coalesce = 1;
  /// Crash-recovery configuration (checkpointing + fleet supervision).
  RecoveryConfig recovery;
  /// Deadlines, retries and circuit breaking (remote transport mostly).
  RobustnessConfig robustness;
  /// Enclave-boundary configuration (switchless request path).
  EnclaveConfig enclave;
};

/// What a mechanism exposes to whom — the §2 taxonomy, made introspectable.
struct PrivacyProperties {
  std::string mechanism;
  /// The engine learns who issued the query.
  bool identity_exposed = false;
  /// The engine can single out the real query content.
  bool query_exposed = false;
  /// Fake queries per real query actually in effect (0 = none).
  std::size_t k = 0;
  /// Who must be honest for the protection to hold.
  std::string trust_assumption;
  /// Enclave boundary crossings so far (0 for mechanisms without a TEE);
  /// the ablation benches chart these.
  std::uint64_t enclave_transitions = 0;
};

/// Uniform operation counters, same fields for every mechanism.
struct Stats {
  std::uint64_t connects = 0;
  std::uint64_t searches = 0;   // sync + batch searches executed
  std::uint64_t failures = 0;   // searches that returned a non-OK status
  std::uint64_t submitted = 0;  // batch requests accepted
  std::uint64_t completed = 0;  // batch requests finished (either way)
};

using SearchResults = std::vector<engine::SearchResult>;

/// Handle for one asynchronous batch request.
using Ticket = std::uint64_t;
constexpr Ticket kInvalidTicket = 0;

/// Completion record of one batch request.
struct SearchOutcome {
  Ticket ticket = kInvalidTicket;
  Status status;
  SearchResults results;
  /// submit() entry to completion, wall clock — queueing included, so an
  /// open-loop driver sees coordinated-omission-free latency.
  Nanos latency = 0;
};

class PrivateSearchClient {
 public:
  virtual ~PrivateSearchClient();

  PrivateSearchClient(const PrivateSearchClient&) = delete;
  PrivateSearchClient& operator=(const PrivateSearchClient&) = delete;

  // --- session lifecycle ----------------------------------------------------

  /// Establishes the mechanism's session: attestation + secure channel for
  /// X-Search, key agreement for PEAS, circuit setup for Tor, nothing for
  /// Direct/TrackMeNot. Idempotent; `search` calls it lazily.
  [[nodiscard]] Status connect();

  /// Stops the batch path (draining in-flight requests) and tears down the
  /// session. The client may be `connect`ed again afterwards. Must not be
  /// called concurrently with submit/poll/wait/drain — quiesce batch
  /// producers first (the batch lanes themselves are drained here).
  void close();

  [[nodiscard]] virtual bool connected() const = 0;

  // --- synchronous path -----------------------------------------------------

  /// One private search for `config().top_k` results. Thread-safe
  /// (serialized on this client; use the batch path for parallelism).
  [[nodiscard]] Result<SearchResults> search(std::string_view query);

  /// Same, with an explicit result budget (0 means `config().top_k`).
  [[nodiscard]] Result<SearchResults> search(std::string_view query,
                                             std::size_t top_k);

  /// Many searches in one mechanism round trip. Outcomes are index-aligned
  /// with `queries`; per-query failures do not poison the batch (a
  /// transport-level failure repeats on every slot). Thread-safe like
  /// `search`. `top_k` of 0 means `config().top_k`.
  struct BatchQuery {
    std::string query;
    std::size_t top_k = 0;
  };
  [[nodiscard]] std::vector<Result<SearchResults>> search_batch(
      std::vector<BatchQuery> queries);

  // --- asynchronous batch path ---------------------------------------------

  /// Enqueues a search on the batch thread pool and returns its ticket.
  /// Blocks for back-pressure when the batch queue is full.
  [[nodiscard]] Ticket submit(std::string query, std::size_t top_k = 0);

  /// Non-blocking variant for open-loop load generation: returns
  /// `kInvalidTicket` when the batch queue is full (the request is dropped,
  /// as a saturated server would reset it).
  [[nodiscard]] Ticket try_submit(std::string query, std::size_t top_k = 0);

  /// Fire-and-forget variant: `on_done` is invoked from a batch worker
  /// thread instead of parking the outcome for `poll`.
  void submit(std::string query, std::size_t top_k,
              std::function<void(SearchOutcome)> on_done);

  /// Non-blocking completion check. Empty optional: still in flight.
  /// Engaged with `kNotFound`: unknown (or already collected) ticket.
  /// Each completed outcome is returned exactly once.
  [[nodiscard]] std::optional<SearchOutcome> poll(Ticket ticket);

  /// Blocks until `ticket` completes and returns its outcome (or an
  /// outcome carrying `kNotFound` for unknown/collected tickets).
  [[nodiscard]] SearchOutcome wait(Ticket ticket);

  /// Blocks until no batch request is in flight.
  void drain();

  // --- introspection --------------------------------------------------------

  [[nodiscard]] virtual PrivacyProperties privacy_properties() const = 0;
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const ClientConfig& config() const { return config_; }

  /// Preloads mechanism state as if `past_queries` had been searched by
  /// earlier users (X-Search: the in-enclave history table; default no-op).
  /// The benches use this for the §5.1 warm-up methodology.
  [[nodiscard]] virtual Status prime(const std::vector<std::string>& past_queries);

 protected:
  explicit PrivateSearchClient(ClientConfig config);

  // --- mechanism hooks ------------------------------------------------------

  /// Idempotent session establishment.
  [[nodiscard]] virtual Status do_connect() = 0;
  virtual void do_close() {}
  /// One search; `top_k` is already resolved (never 0).
  [[nodiscard]] virtual Result<SearchResults> do_search(std::string_view query,
                                                        std::size_t top_k) = 0;

  /// One round trip for many searches; `top_k`s are already resolved. The
  /// default loops over `do_search`; mechanisms with a batched wire format
  /// (remote X-Search) override it to send one frame. Must return exactly
  /// `queries.size()` outcomes, index-aligned.
  [[nodiscard]] virtual std::vector<Result<SearchResults>> do_search_batch(
      const std::vector<BatchQuery>& queries);

  /// A new client sharing this one's backend (same proxy/relays/issuer),
  /// used as an independent batch lane so batch workers run in parallel.
  /// Called serially before batch workers start. Returning nullptr makes
  /// the batch path fall back to serializing through this client.
  [[nodiscard]] virtual std::unique_ptr<PrivateSearchClient> spawn_sibling(
      std::uint64_t seed);

  /// Stops the batch pool and destroys the lane siblings. Subclasses whose
  /// siblings reference subclass-owned state MUST call this first thing in
  /// their destructor (the base destructor would run too late).
  void shutdown_async();

 private:
  struct AsyncEngine;
  struct PendingRequest;

  [[nodiscard]] AsyncEngine& async();
  [[nodiscard]] AsyncEngine* async_if_built();
  [[nodiscard]] Ticket submit_impl(std::string query, std::size_t top_k,
                                   std::function<void(SearchOutcome)> on_done,
                                   bool blocking);
  [[nodiscard]] Ticket submit_coalesced(
      AsyncEngine& engine, std::string query, std::size_t top_k,
      std::function<void(SearchOutcome)> on_done, bool blocking);
  void flush_loop(AsyncEngine& engine);
  [[nodiscard]] std::size_t resolve_top_k(std::size_t top_k) const {
    return top_k == 0 ? config_.top_k : top_k;
  }

  ClientConfig config_;

  mutable Mutex sync_mutex_;  // serializes do_connect/do_search
  // Guards the engine *slot*; the engine itself has its own mutex and
  // stays alive until shutdown_async() reclaims it, so references
  // handed out by async() remain valid outside this lock.
  Mutex async_init_mutex_;
  std::unique_ptr<AsyncEngine> async_ XS_GUARDED_BY(async_init_mutex_);

  std::atomic<std::uint64_t> connects_{0};
  std::atomic<std::uint64_t> searches_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
};

using ClientPtr = std::unique_ptr<PrivateSearchClient>;

}  // namespace xsearch::api
