// Open-loop load driver for the asynchronous batch path.
//
// The sync counterpart (loadgen::run_open_loop) drives an opaque handler
// from its own worker pool; this driver instead drives one
// PrivateSearchClient through submit/poll, exercising the client's batch
// lanes at a fixed offered rate. Same discipline (latency is measured from
// each request's scheduled send time, overflowing requests are dropped, not
// delayed — no coordinated omission) and the same LoadReport fields, so the
// two paths are directly comparable in the Figure 5 bench.
#pragma once

#include <functional>
#include <string>

#include "api/client.hpp"
#include "loadgen/loadgen.hpp"

namespace xsearch::api {

/// Offers `config.target_rps` requests/s to `client` via `try_submit`,
/// collects completions via `poll`/`wait`, and reports the same percentile
/// fields as the synchronous path. `next_query` supplies one query text per
/// request (called from the dispatcher thread only). `config.workers` is
/// ignored — parallelism comes from the client's own batch lanes.
[[nodiscard]] loadgen::LoadReport run_open_loop_batch(
    PrivateSearchClient& client, const std::function<std::string()>& next_query,
    const loadgen::LoadConfig& config);

}  // namespace xsearch::api
