#include "api/remote.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "api/xsearch_options.hpp"
#include "net/remote_broker.hpp"
#include "xsearch/wire.hpp"

namespace xsearch::api {
namespace {

class RemoteAdapter final : public PrivateSearchClient {
 public:
  RemoteAdapter(std::string host, std::uint16_t port,
                const sgx::AttestationAuthority& authority,
                const sgx::Measurement& expected_measurement,
                const ClientConfig& config)
      : PrivateSearchClient(config),
        host_(std::move(host)),
        port_(port),
        authority_(&authority),
        expected_measurement_(expected_measurement) {}
  ~RemoteAdapter() override { shutdown_async(); }

  [[nodiscard]] bool connected() const override {
    return broker_.has_value() && broker_->connected();
  }

  [[nodiscard]] PrivacyProperties privacy_properties() const override {
    PrivacyProperties props;
    props.mechanism = "xsearch-remote";
    props.identity_exposed = false;
    props.query_exposed = false;
    props.k = config().k;
    props.trust_assumption =
        "SGX attestation only; no proxy operator trust (over TCP)";
    return props;
  }

 protected:
  [[nodiscard]] Status do_connect() override {
    if (!broker_.has_value()) {
      broker_.emplace(host_, port_, *authority_, expected_measurement_,
                      config().seed, remote_broker_options(config()));
    }
    return broker_->connect();
  }
  void do_close() override { broker_.reset(); }

  [[nodiscard]] Result<SearchResults> do_search(std::string_view query,
                                                std::size_t top_k) override {
    auto results = broker_->search(query);
    if (!results.is_ok()) return results.status();
    auto list = std::move(results).value();
    if (list.size() > top_k) list.resize(top_k);
    return list;
  }

  [[nodiscard]] std::vector<Result<SearchResults>> do_search_batch(
      const std::vector<BatchQuery>& queries) override {
    // One kBatchQuery frame per chunk: one TCP round trip and one AEAD
    // seal/open regardless of chunk size (chunks only appear when the
    // caller coalesces beyond the wire bound).
    std::vector<Result<SearchResults>> outcomes;
    outcomes.reserve(queries.size());
    for (std::size_t start = 0; start < queries.size();
         start += core::wire::kMaxBatchQueries) {
      const std::size_t count =
          std::min(core::wire::kMaxBatchQueries, queries.size() - start);
      std::vector<std::string> chunk;
      chunk.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        chunk.push_back(queries[start + i].query);
      }
      auto batch = broker_->search_batch(chunk);
      if (!batch.is_ok()) {
        for (std::size_t i = 0; i < count; ++i) {
          outcomes.emplace_back(batch.status());
        }
        continue;
      }
      for (std::size_t i = 0; i < count; ++i) {
        auto& outcome = batch.value()[i];
        if (!outcome.status.is_ok()) {
          outcomes.emplace_back(outcome.status);
          continue;
        }
        auto list = std::move(outcome.results);
        if (list.size() > queries[start + i].top_k) {
          list.resize(queries[start + i].top_k);
        }
        outcomes.emplace_back(std::move(list));
      }
    }
    return outcomes;
  }

  [[nodiscard]] ClientPtr spawn_sibling(std::uint64_t seed) override {
    ClientConfig sibling_config = config();
    sibling_config.seed = seed;
    return std::make_unique<RemoteAdapter>(host_, port_, *authority_,
                                           expected_measurement_, sibling_config);
  }

 private:
  std::string host_;
  std::uint16_t port_;
  const sgx::AttestationAuthority* authority_;
  sgx::Measurement expected_measurement_;
  std::optional<net::RemoteBroker> broker_;
};

}  // namespace

ClientPtr make_remote_client(std::string host, std::uint16_t port,
                             const sgx::AttestationAuthority& authority,
                             const sgx::Measurement& expected_measurement,
                             const ClientConfig& config) {
  return std::make_unique<RemoteAdapter>(std::move(host), port, authority,
                                         expected_measurement, config);
}

}  // namespace xsearch::api
