#include "api/remote.hpp"

#include <memory>
#include <optional>
#include <utility>

#include "net/remote_broker.hpp"

namespace xsearch::api {
namespace {

class RemoteAdapter final : public PrivateSearchClient {
 public:
  RemoteAdapter(std::string host, std::uint16_t port,
                const sgx::AttestationAuthority& authority,
                const sgx::Measurement& expected_measurement,
                const ClientConfig& config)
      : PrivateSearchClient(config),
        host_(std::move(host)),
        port_(port),
        authority_(&authority),
        expected_measurement_(expected_measurement) {}
  ~RemoteAdapter() override { shutdown_async(); }

  [[nodiscard]] bool connected() const override {
    return broker_.has_value() && broker_->connected();
  }

  [[nodiscard]] PrivacyProperties privacy_properties() const override {
    PrivacyProperties props;
    props.mechanism = "xsearch-remote";
    props.identity_exposed = false;
    props.query_exposed = false;
    props.k = config().k;
    props.trust_assumption =
        "SGX attestation only; no proxy operator trust (over TCP)";
    return props;
  }

 protected:
  [[nodiscard]] Status do_connect() override {
    if (!broker_.has_value()) {
      broker_.emplace(host_, port_, *authority_, expected_measurement_,
                      config().seed);
    }
    return broker_->connect();
  }
  void do_close() override { broker_.reset(); }

  [[nodiscard]] Result<SearchResults> do_search(std::string_view query,
                                                std::size_t top_k) override {
    auto results = broker_->search(query);
    if (!results.is_ok()) return results.status();
    auto list = std::move(results).value();
    if (list.size() > top_k) list.resize(top_k);
    return list;
  }

  [[nodiscard]] ClientPtr spawn_sibling(std::uint64_t seed) override {
    ClientConfig sibling_config = config();
    sibling_config.seed = seed;
    return std::make_unique<RemoteAdapter>(host_, port_, *authority_,
                                           expected_measurement_, sibling_config);
  }

 private:
  std::string host_;
  std::uint16_t port_;
  const sgx::AttestationAuthority* authority_;
  sgx::Measurement expected_measurement_;
  std::optional<net::RemoteBroker> broker_;
};

}  // namespace

ClientPtr make_remote_client(std::string host, std::uint16_t port,
                             const sgx::AttestationAuthority& authority,
                             const sgx::Measurement& expected_measurement,
                             const ClientConfig& config) {
  return std::make_unique<RemoteAdapter>(std::move(host), port, authority,
                                         expected_measurement, config);
}

}  // namespace xsearch::api
