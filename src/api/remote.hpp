// PrivateSearchClient over a networked X-Search deployment.
//
// Wraps net::RemoteBroker — the per-user local daemon of §4.2 speaking the
// framed TCP protocol to a ProxyServer — in the unified client API, so a
// workload written against PrivateSearchClient runs unchanged against an
// in-process proxy or a remote one (mechanism × transport is a config
// choice, not a code path).
#pragma once

#include <cstdint>
#include <string>

#include "api/client.hpp"
#include "sgx/attestation.hpp"

namespace xsearch::api {

/// Builds a client whose searches travel over TCP to the ProxyServer at
/// `host:port`. `authority`/`expected_measurement` gate attestation exactly
/// as the in-process broker does; both must outlive the client. Sessions
/// (including batch-lane siblings) each open their own connection.
[[nodiscard]] ClientPtr make_remote_client(
    std::string host, std::uint16_t port,
    const sgx::AttestationAuthority& authority,
    const sgx::Measurement& expected_measurement, const ClientConfig& config);

}  // namespace xsearch::api
