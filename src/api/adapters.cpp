// The five built-in mechanisms behind the unified PrivateSearchClient API.
//
// Each adapter owns its mechanism's whole stack — Direct nothing, TrackMeNot
// a simulated RSS feed, Tor an in-process relay chain, PEAS the two-proxy
// chain, X-Search the enclave proxy — and exposes it through the same
// session/search/batch surface. Batch lanes are `spawn_sibling` clients
// sharing the stack (same relays, same issuer, same enclave proxy), which is
// exactly the multi-client deployment the paper load-tests in Figure 5.
#include <cassert>
#include <memory>
#include <optional>
#include <utility>

#include "api/client.hpp"
#include "api/registry.hpp"
#include "baselines/direct/direct.hpp"
#include "baselines/peas/peas.hpp"
#include "baselines/tmn/trackmenot.hpp"
#include "baselines/tor/tor.hpp"
#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/broker.hpp"
#include "api/xsearch_options.hpp"
#include "xsearch/proxy.hpp"

namespace xsearch::api {
namespace {

/// Truncates a result list to the caller's budget (for mechanisms whose
/// backend fetch size is fixed at session setup).
SearchResults take_top(SearchResults results, std::size_t top_k) {
  if (results.size() > top_k) results.resize(top_k);
  return results;
}

// --- Direct ------------------------------------------------------------------

class DirectAdapter final : public PrivateSearchClient {
 public:
  DirectAdapter(const Backend& backend, const ClientConfig& config)
      : PrivateSearchClient(config), engine_(backend.engine) {}
  ~DirectAdapter() override { shutdown_async(); }

  [[nodiscard]] bool connected() const override { return connected_; }

  [[nodiscard]] PrivacyProperties privacy_properties() const override {
    PrivacyProperties props;
    props.mechanism = "direct";
    props.identity_exposed = true;
    props.query_exposed = true;
    props.k = 0;
    props.trust_assumption = "the engine sees everything; no protection";
    return props;
  }

 protected:
  [[nodiscard]] Status do_connect() override {
    connected_ = true;
    return Status::ok();
  }
  void do_close() override { connected_ = false; }

  [[nodiscard]] Result<SearchResults> do_search(std::string_view query,
                                                std::size_t top_k) override {
    if (engine_ == nullptr) return SearchResults{};  // saturation mode
    return engine_->search(query, top_k);
  }

  [[nodiscard]] ClientPtr spawn_sibling(std::uint64_t seed) override {
    ClientConfig sibling_config = config();
    sibling_config.seed = seed;
    Backend backend;
    backend.engine = engine_;
    return std::make_unique<DirectAdapter>(backend, sibling_config);
  }

 private:
  const engine::SearchEngine* engine_;
  bool connected_ = false;
};

// --- TrackMeNot --------------------------------------------------------------

class TmnAdapter final : public PrivateSearchClient {
 public:
  TmnAdapter(const Backend& backend, const ClientConfig& config,
             std::shared_ptr<const baselines::tmn::TmnGenerator> generator)
      : PrivateSearchClient(config),
        engine_(backend.engine),
        generator_(std::move(generator)),
        rng_(config.seed) {}
  ~TmnAdapter() override { shutdown_async(); }

  [[nodiscard]] bool connected() const override { return connected_; }

  [[nodiscard]] PrivacyProperties privacy_properties() const override {
    PrivacyProperties props;
    props.mechanism = "tmn";
    props.identity_exposed = true;
    // The paper's Figure 1: RSS-derived fakes are distributionally
    // separable from real queries, so the query is effectively exposed.
    props.query_exposed = true;
    props.k = config().k;
    props.trust_assumption =
        "none claimed; cover traffic from RSS feeds, separable in practice";
    return props;
  }

 protected:
  [[nodiscard]] Status do_connect() override {
    connected_ = true;
    return Status::ok();
  }
  void do_close() override { connected_ = false; }

  [[nodiscard]] Result<SearchResults> do_search(std::string_view query,
                                                std::size_t top_k) override {
    if (engine_ == nullptr) return SearchResults{};  // saturation mode
    // TrackMeNot interleaves machine-generated queries with the user's
    // stream; the user's own query still goes out in the clear. The cover
    // queries ride separate requests in reality (netsim::wan models them as
    // not lengthening the user-perceived path); issuing them inline here
    // adds only their in-process retrieval compute — microseconds against
    // the modelled ~0.5 s WAN round trip.
    for (std::size_t i = 0; i < config().k; ++i) {
      (void)engine_->search(generator_->fake_query(rng_), top_k);
    }
    return engine_->search(query, top_k);
  }

  [[nodiscard]] ClientPtr spawn_sibling(std::uint64_t seed) override {
    ClientConfig sibling_config = config();
    sibling_config.seed = seed;
    Backend backend;
    backend.engine = engine_;
    return std::make_unique<TmnAdapter>(backend, sibling_config, generator_);
  }

 private:
  const engine::SearchEngine* engine_;
  std::shared_ptr<const baselines::tmn::TmnGenerator> generator_;
  Rng rng_;
  bool connected_ = false;
};

// --- Tor ---------------------------------------------------------------------

class TorAdapter final : public PrivateSearchClient {
 public:
  /// The relay chain shared by all siblings of one adapter family.
  struct RelayChain {
    explicit RelayChain(std::uint64_t seed)
        : entry(seed * 3 + 1), middle(seed * 3 + 2), exit(seed * 3 + 3) {}
    baselines::tor::TorRelay entry;
    baselines::tor::TorRelay middle;
    baselines::tor::TorRelay exit;
    // Serializes circuit establishment: relays keep per-circuit session
    // keys in a map that concurrent extensions would race on.
    Mutex establish_mutex;
  };

  TorAdapter(const Backend& backend, const ClientConfig& config,
             std::shared_ptr<RelayChain> chain)
      : PrivateSearchClient(config),
        engine_(backend.engine),
        chain_(std::move(chain)) {}
  ~TorAdapter() override { shutdown_async(); }

  [[nodiscard]] bool connected() const override { return client_.has_value(); }

  [[nodiscard]] PrivacyProperties privacy_properties() const override {
    PrivacyProperties props;
    props.mechanism = "tor";
    props.identity_exposed = false;
    props.query_exposed = true;  // the exit relay submits the plain query
    props.k = 0;
    props.trust_assumption = "no single relay sees both identity and query; "
                             "exit relay sees the plain query";
    return props;
  }

 protected:
  [[nodiscard]] Status do_connect() override {
    if (client_.has_value()) return Status::ok();
    MutexLock lock(chain_->establish_mutex);
    client_.emplace(
        std::vector<baselines::tor::TorRelay*>{&chain_->entry, &chain_->middle,
                                               &chain_->exit},
        engine_, config().seed);
    return Status::ok();
  }
  void do_close() override { client_.reset(); }

  [[nodiscard]] Result<SearchResults> do_search(std::string_view query,
                                                std::size_t top_k) override {
    return client_->search(query, static_cast<std::uint32_t>(top_k));
  }

  [[nodiscard]] ClientPtr spawn_sibling(std::uint64_t seed) override {
    ClientConfig sibling_config = config();
    sibling_config.seed = seed;
    Backend backend;
    backend.engine = engine_;
    return std::make_unique<TorAdapter>(backend, sibling_config, chain_);
  }

 private:
  const engine::SearchEngine* engine_;
  std::shared_ptr<RelayChain> chain_;
  std::optional<baselines::tor::TorClient> client_;
};

// --- PEAS --------------------------------------------------------------------

class PeasAdapter final : public PrivateSearchClient {
 public:
  /// The two-proxy chain and the co-occurrence fake generator, shared by
  /// all siblings of one adapter family.
  struct ProxyChain {
    ProxyChain(const Backend& backend, std::uint64_t seed)
        : fakes(*backend.fake_source),
          issuer(backend.engine, seed),
          receiver(issuer) {}
    baselines::peas::FakeQueryGenerator fakes;
    baselines::peas::PeasIssuer issuer;
    baselines::peas::PeasReceiver receiver;
  };

  PeasAdapter(const Backend& backend, const ClientConfig& config,
              std::shared_ptr<ProxyChain> chain)
      : PrivateSearchClient(config),
        engine_(backend.engine),
        chain_(std::move(chain)) {}
  ~PeasAdapter() override { shutdown_async(); }

  [[nodiscard]] bool connected() const override { return client_.has_value(); }

  [[nodiscard]] PrivacyProperties privacy_properties() const override {
    PrivacyProperties props;
    props.mechanism = "peas";
    props.identity_exposed = false;  // only the receiver sees the identity
    props.query_exposed = false;     // hidden among k synthetic fakes
    props.k = config().k;
    props.trust_assumption = "receiver and issuer proxies must not collude";
    return props;
  }

 protected:
  [[nodiscard]] Status do_connect() override {
    if (client_.has_value()) return Status::ok();
    client_.emplace(config().client_id, chain_->receiver,
                    chain_->issuer.public_key(), chain_->fakes, config().k,
                    config().seed);
    return Status::ok();
  }
  void do_close() override { client_.reset(); }

  [[nodiscard]] Result<SearchResults> do_search(std::string_view query,
                                                std::size_t top_k) override {
    return client_->search(query, static_cast<std::uint32_t>(top_k));
  }

  [[nodiscard]] ClientPtr spawn_sibling(std::uint64_t seed) override {
    ClientConfig sibling_config = config();
    sibling_config.seed = seed;
    sibling_config.client_id =
        config().client_id + 1000 + static_cast<std::uint32_t>(seed % 1000);
    Backend backend;
    backend.engine = engine_;
    return std::make_unique<PeasAdapter>(backend, sibling_config, chain_);
  }

 private:
  const engine::SearchEngine* engine_;
  std::shared_ptr<ProxyChain> chain_;
  std::optional<baselines::peas::PeasClient> client_;
};

// --- X-Search ----------------------------------------------------------------

class XSearchAdapter final : public PrivateSearchClient {
 public:
  /// The cloud-side deployment shared by all siblings: the attestation
  /// root and the enclave proxy it vouches for. The proxy keeps a pointer
  /// to the authority, so the authority member must outlive it (declared
  /// first, destroyed last).
  struct Deployment {
    explicit Deployment(Bytes root_secret)
        : authority(std::move(root_secret)) {}
    sgx::AttestationAuthority authority;
    std::unique_ptr<core::XSearchProxy> proxy;
  };

  XSearchAdapter(const ClientConfig& config, std::shared_ptr<Deployment> deployment)
      : PrivateSearchClient(config), deployment_(std::move(deployment)) {}
  ~XSearchAdapter() override { shutdown_async(); }

  [[nodiscard]] bool connected() const override {
    return broker_.has_value() && broker_->connected();
  }

  [[nodiscard]] PrivacyProperties privacy_properties() const override {
    PrivacyProperties props;
    props.mechanism = "xsearch";
    props.identity_exposed = false;  // the engine sees only the proxy
    props.query_exposed = false;     // hidden among k real past queries
    props.k = deployment_->proxy->options().k;
    props.trust_assumption =
        "SGX attestation only; no proxy operator trust (collusion-resistant)";
    props.enclave_transitions =
        deployment_->proxy->enclave().transition_stats().ecalls +
        deployment_->proxy->enclave().transition_stats().ocalls;
    return props;
  }

  [[nodiscard]] Status prime(const std::vector<std::string>& past_queries) override {
    deployment_->proxy->warm_history(past_queries);
    return Status::ok();
  }

 protected:
  [[nodiscard]] Status do_connect() override {
    if (!broker_.has_value()) {
      broker_.emplace(*deployment_->proxy, deployment_->authority,
                      deployment_->proxy->measurement(), config().seed);
    }
    return broker_->connect();
  }
  void do_close() override { broker_.reset(); }

  [[nodiscard]] Result<SearchResults> do_search(std::string_view query,
                                                std::size_t top_k) override {
    // The per-sub-query fetch size is fixed at proxy construction
    // (config.top_k); a smaller per-call budget truncates the filtered list.
    auto results = broker_->search(query);
    if (!results.is_ok()) return results.status();
    return take_top(std::move(results).value(), top_k);
  }

  [[nodiscard]] ClientPtr spawn_sibling(std::uint64_t seed) override {
    ClientConfig sibling_config = config();
    sibling_config.seed = seed;
    return std::make_unique<XSearchAdapter>(sibling_config, deployment_);
  }

 private:
  std::shared_ptr<Deployment> deployment_;
  std::optional<core::ClientBroker> broker_;
};

// --- factories ---------------------------------------------------------------

Result<ClientPtr> make_direct(const Backend& backend, const ClientConfig& config) {
  return ClientPtr(std::make_unique<DirectAdapter>(backend, config));
}

Result<ClientPtr> make_tmn(const Backend& backend, const ClientConfig& config) {
  baselines::tmn::TmnConfig tmn_config;
  tmn_config.seed = config.seed ^ 0x7353;
  auto generator =
      std::make_shared<const baselines::tmn::TmnGenerator>(tmn_config);
  return ClientPtr(
      std::make_unique<TmnAdapter>(backend, config, std::move(generator)));
}

Result<ClientPtr> make_tor(const Backend& backend, const ClientConfig& config) {
  auto chain = std::make_shared<TorAdapter::RelayChain>(config.seed);
  return ClientPtr(
      std::make_unique<TorAdapter>(backend, config, std::move(chain)));
}

Result<ClientPtr> make_peas(const Backend& backend, const ClientConfig& config) {
  if (backend.fake_source == nullptr) {
    return invalid_argument(
        "peas requires backend.fake_source (a past-query log) to train the "
        "co-occurrence fake generator");
  }
  if (backend.fake_source->size() == 0) {
    return invalid_argument("peas: backend.fake_source is empty");
  }
  auto chain = std::make_shared<PeasAdapter::ProxyChain>(backend, config.seed);
  return ClientPtr(
      std::make_unique<PeasAdapter>(backend, config, std::move(chain)));
}

Result<ClientPtr> make_xsearch(const Backend& backend, const ClientConfig& config) {
  const core::XSearchProxy::Options options = xsearch_proxy_options(config);
  auto deployment = std::make_shared<XSearchAdapter::Deployment>(
      to_bytes("api-attestation-root"));
  auto proxy =
      core::XSearchProxy::create(backend.engine, deployment->authority, options);
  if (!proxy.is_ok()) return proxy.status();
  deployment->proxy = std::move(proxy).value();
  return ClientPtr(
      std::make_unique<XSearchAdapter>(config, std::move(deployment)));
}

}  // namespace

core::XSearchProxy::Options xsearch_proxy_options(const ClientConfig& config) {
  core::XSearchProxy::Options options;
  options.k = config.k;
  options.history_capacity = config.history_capacity;
  options.results_per_subquery = static_cast<std::uint32_t>(config.top_k);
  options.seed = config.seed ^ 0x5eed;
  options.contact_engine = config.contact_engine;
  options.session_capacity = config.session_capacity;
  options.session_idle_ttl = config.session_idle_ttl;
  options.session_shards = config.session_shards;
  options.checkpoint_dir = config.recovery.checkpoint_dir;
  options.checkpoint_interval_queries = config.recovery.checkpoint_interval_queries;
  options.switchless.enabled = config.enclave.switchless;
  options.switchless.ring_depth = config.enclave.ring_depth;
  options.switchless.workers = config.enclave.enclave_workers;
  options.switchless.spin_budget = config.enclave.spin_budget;
  return options;
}

net::FleetSupervisor::Options supervisor_options(const ClientConfig& config) {
  net::FleetSupervisor::Options options;
  options.probe_interval = config.recovery.probe_interval;
  options.failure_threshold = config.recovery.failure_threshold;
  options.probe_budget = config.recovery.probe_budget;
  return options;
}

net::RemoteBroker::Options remote_broker_options(const ClientConfig& config) {
  net::RemoteBroker::Options options;
  options.request_budget = config.robustness.request_budget;
  options.connect_budget = config.robustness.connect_budget;
  options.retry.max_attempts = config.robustness.retry_attempts;
  options.retry.initial_backoff = config.robustness.retry_initial_backoff;
  options.retry.max_backoff = config.robustness.retry_max_backoff;
  options.breaker_enabled = config.robustness.breaker_enabled;
  return options;
}

net::ProxyFleet::Options fleet_options(const ClientConfig& config,
                                       const FleetConfig& fleet) {
  net::ProxyFleet::Options options;
  options.workers = fleet.workers;
  options.virtual_nodes = fleet.virtual_nodes;
  options.proxy = xsearch_proxy_options(config);
  return options;
}

void register_builtin_mechanisms(MechanismRegistry& registry) {
  const auto must = [](Status status) {
    (void)status;
    assert(status.is_ok());
  };
  must(registry.register_mechanism("direct", make_direct));
  must(registry.register_mechanism("tmn", make_tmn));
  must(registry.register_mechanism("tor", make_tor));
  must(registry.register_mechanism("peas", make_peas));
  must(registry.register_mechanism("xsearch", make_xsearch));
}

}  // namespace xsearch::api
