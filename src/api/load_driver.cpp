#include "api/load_driver.hpp"

#include <atomic>
#include <thread>
#include <utility>

#include "common/queue.hpp"

namespace xsearch::api {

loadgen::LoadReport run_open_loop_batch(
    PrivateSearchClient& client, const std::function<std::string()>& next_query,
    const loadgen::LoadConfig& config) {
  loadgen::LoadReport report;
  report.offered_rps = config.target_rps;
  if (config.target_rps <= 0 || config.duration <= 0) return report;

  // Accepted tickets, in submission order, for the collector to reap.
  BoundedQueue<Ticket> tickets(config.queue_capacity);
  std::atomic<std::uint64_t> completed{0};
  Histogram latency;

  std::thread collector([&] {
    while (auto ticket = tickets.pop()) {
      const SearchOutcome outcome = client.wait(*ticket);
      // submit() stamps latency from its own entry, which the dispatcher
      // aligns with the scheduled instant — queueing in the batch lanes is
      // fully visible, as in the synchronous driver.
      latency.record(outcome.latency);
      completed.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const double interval_ns =
      static_cast<double>(kSecond) / config.target_rps;
  const Nanos start = wall_now();
  const Nanos end = start + config.duration;
  std::uint64_t issued = 0;
  std::uint64_t dropped = 0;
  while (true) {
    const Nanos scheduled =
        start + static_cast<Nanos>(static_cast<double>(issued) * interval_ns);
    if (scheduled >= end) break;
    std::string query = next_query();
    while (wall_now() < scheduled) {
    }
    const Ticket ticket = client.try_submit(std::move(query));
    if (ticket == kInvalidTicket) {
      // Batch queue full: the request was offered but the client lost it —
      // dropped, not delayed (delaying would hide the overload).
      ++dropped;
    } else {
      (void)tickets.push(ticket);
    }
    ++issued;
  }

  tickets.close();
  collector.join();

  const Nanos elapsed = wall_now() - start;
  report.issued = issued;
  report.completed = completed.load();
  report.dropped = dropped;
  report.latency = std::move(latency);
  report.achieved_rps = elapsed > 0 ? static_cast<double>(report.completed) *
                                          static_cast<double>(kSecond) /
                                          static_cast<double>(elapsed)
                                    : 0.0;
  return report;
}

}  // namespace xsearch::api
