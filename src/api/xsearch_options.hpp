// Shared ClientConfig → core::XSearchProxy::Options translation.
//
// The built-in "xsearch" mechanism and out-of-process deployments (the
// fig5 `xsearch-remote` bench's ProxyServer) must configure their proxies
// identically — one hand-maintained copy of this mapping per call site
// would silently drift as Options grows. This is the single source.
#pragma once

#include "api/client.hpp"
#include "xsearch/proxy.hpp"

namespace xsearch::api {

/// The exact translation the built-in "xsearch" adapter applies (including
/// seed domain separation). `contact_engine` follows the config; callers
/// deploying without an engine must also clear it there.
[[nodiscard]] core::XSearchProxy::Options xsearch_proxy_options(
    const ClientConfig& config);

}  // namespace xsearch::api
