// Shared ClientConfig → core::XSearchProxy::Options translation.
//
// The built-in "xsearch" mechanism and out-of-process deployments (the
// fig5 `xsearch-remote` bench's ProxyServer) must configure their proxies
// identically — one hand-maintained copy of this mapping per call site
// would silently drift as Options grows. This is the single source.
#pragma once

#include "api/client.hpp"
#include "net/fleet_supervisor.hpp"
#include "net/proxy_fleet.hpp"
#include "net/remote_broker.hpp"
#include "xsearch/proxy.hpp"

namespace xsearch::api {

/// The exact translation the built-in "xsearch" adapter applies (including
/// seed domain separation). `contact_engine` follows the config; callers
/// deploying without an engine must also clear it there.
/// ClientConfig::enclave maps onto Options::switchless (job-ring depth,
/// in-enclave workers, spin budget), mirroring how RecoveryConfig and
/// RobustnessConfig flow through this translation.
[[nodiscard]] core::XSearchProxy::Options xsearch_proxy_options(
    const ClientConfig& config);

/// Scale-out knobs of a proxy-fleet deployment, layered over ClientConfig
/// the same way the single-proxy options are.
struct FleetConfig {
  /// Proxy workers behind the consistent-hash router.
  std::size_t workers = 2;
  /// Virtual nodes per worker on the hash ring.
  std::size_t virtual_nodes = 64;
};

/// ClientConfig + FleetConfig → net::ProxyFleet::Options, through the same
/// per-proxy translation as `xsearch_proxy_options` so fleet workers and a
/// standalone proxy are configured identically (including
/// ClientConfig::recovery — the fleet hands each worker its own checkpoint
/// subdirectory).
[[nodiscard]] net::ProxyFleet::Options fleet_options(const ClientConfig& config,
                                                     const FleetConfig& fleet);

/// ClientConfig::recovery → net::FleetSupervisor::Options, so a deployment
/// configures probing and checkpointing from the one RecoveryConfig.
[[nodiscard]] net::FleetSupervisor::Options supervisor_options(
    const ClientConfig& config);

/// ClientConfig::robustness → net::RemoteBroker::Options (deadlines,
/// budgeted retries, client-side breaker), the transport half of the
/// robustness config. The remote adapter applies this per broker.
[[nodiscard]] net::RemoteBroker::Options remote_broker_options(
    const ClientConfig& config);

}  // namespace xsearch::api
