#include "api/client.hpp"

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/thread_pool.hpp"
#include "netsim/netsim.hpp"

namespace xsearch::api {

/// One submit() parked for coalescing (batch_coalesce > 1): everything a
/// flusher needs to execute and complete the request later.
struct PrivateSearchClient::PendingRequest {
  Ticket ticket = kInvalidTicket;
  std::string query;
  std::size_t top_k = 0;  // already resolved
  std::function<void(SearchOutcome)> on_done;
  Nanos submitted_at = 0;
};

// Batch machinery: a thread pool whose lanes are sibling clients sharing
// the primary's backend, plus the ticket ledger. Workers and lanes are
// matched 1:1 in count, so round-robin lane selection keeps collisions
// (two tasks serializing on one sibling) transient.
//
// With batch_coalesce > 1 the pool stops carrying one task per request:
// submits append to `pending` and up to lanes.size() *flusher* tasks drain
// it, each taking up to batch_coalesce requests per mechanism round trip
// (one sealed frame for the whole batch on the remote client).
struct PrivateSearchClient::AsyncEngine {
  std::vector<ClientPtr> siblings;
  std::vector<PrivateSearchClient*> lanes;  // sibling or the primary itself
  std::unique_ptr<ThreadPool> pool;
  std::atomic<std::size_t> next_lane{0};

  Mutex mutex;
  CondVar done_cv;
  std::unordered_map<Ticket, SearchOutcome> done XS_GUARDED_BY(mutex);
  std::unordered_set<Ticket> inflight XS_GUARDED_BY(mutex);
  Ticket next_ticket XS_GUARDED_BY(mutex) = 1;

  // Coalescing state. `space_cv` signals room in `pending`, which is
  // bounded by batch_queue_capacity like the pool queue.
  std::deque<PendingRequest> pending XS_GUARDED_BY(mutex);
  std::size_t active_flushers XS_GUARDED_BY(mutex) = 0;
  CondVar space_cv;
};

PrivateSearchClient::PrivateSearchClient(ClientConfig config)
    : config_(config) {}

PrivateSearchClient::~PrivateSearchClient() { shutdown_async(); }

Status PrivateSearchClient::connect() {
  MutexLock lock(sync_mutex_);
  const Status status = do_connect();
  if (status.is_ok()) connects_.fetch_add(1, std::memory_order_relaxed);
  return status;
}

void PrivateSearchClient::close() {
  shutdown_async();
  MutexLock lock(sync_mutex_);
  do_close();
}

Result<SearchResults> PrivateSearchClient::search(std::string_view query) {
  return search(query, 0);
}

Result<SearchResults> PrivateSearchClient::search(std::string_view query,
                                                  std::size_t top_k) {
  MutexLock lock(sync_mutex_);
  if (!connected()) {
    XS_RETURN_IF_ERROR(do_connect());
    connects_.fetch_add(1, std::memory_order_relaxed);
  }
  if (config_.stack_cost_per_request > 0) {
    netsim::busy_wait(config_.stack_cost_per_request);
  }
  auto result = do_search(query, resolve_top_k(top_k));
  searches_.fetch_add(1, std::memory_order_relaxed);
  if (!result.is_ok()) failures_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

std::vector<Result<SearchResults>> PrivateSearchClient::search_batch(
    std::vector<BatchQuery> queries) {
  std::vector<Result<SearchResults>> outcomes;
  if (queries.empty()) return outcomes;
  for (auto& q : queries) q.top_k = resolve_top_k(q.top_k);

  MutexLock lock(sync_mutex_);
  if (!connected()) {
    if (const Status status = do_connect(); !status.is_ok()) {
      for (std::size_t i = 0; i < queries.size(); ++i) {
        outcomes.emplace_back(status);
      }
      failures_.fetch_add(queries.size(), std::memory_order_relaxed);
      searches_.fetch_add(queries.size(), std::memory_order_relaxed);
      return outcomes;
    }
    connects_.fetch_add(1, std::memory_order_relaxed);
  }
  // One stack-cost charge per round trip, not per query: amortizing the
  // per-request network/OS work is exactly what batching buys.
  if (config_.stack_cost_per_request > 0) {
    netsim::busy_wait(config_.stack_cost_per_request);
  }
  outcomes = do_search_batch(queries);
  searches_.fetch_add(outcomes.size(), std::memory_order_relaxed);
  for (const auto& outcome : outcomes) {
    if (!outcome.is_ok()) failures_.fetch_add(1, std::memory_order_relaxed);
  }
  return outcomes;
}

std::vector<Result<SearchResults>> PrivateSearchClient::do_search_batch(
    const std::vector<BatchQuery>& queries) {
  // Mechanisms without a batched wire format just loop; the batch still
  // pays connect and stack cost once.
  std::vector<Result<SearchResults>> outcomes;
  outcomes.reserve(queries.size());
  for (const auto& q : queries) {
    outcomes.push_back(do_search(q.query, q.top_k));
  }
  return outcomes;
}

Status PrivateSearchClient::prime(const std::vector<std::string>&) {
  return Status::ok();
}

std::unique_ptr<PrivateSearchClient> PrivateSearchClient::spawn_sibling(
    std::uint64_t) {
  return nullptr;
}

Stats PrivateSearchClient::stats() const {
  Stats out;
  out.connects = connects_.load(std::memory_order_relaxed);
  out.searches = searches_.load(std::memory_order_relaxed);
  out.failures = failures_.load(std::memory_order_relaxed);
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  return out;
}

PrivateSearchClient::AsyncEngine& PrivateSearchClient::async() {
  MutexLock lock(async_init_mutex_);
  if (!async_) {
    auto engine = std::make_unique<AsyncEngine>();
    const std::size_t workers = config_.batch_workers == 0 ? 1 : config_.batch_workers;
    for (std::size_t i = 0; i < workers; ++i) {
      auto sibling = spawn_sibling(config_.seed + 1000 + i);
      if (sibling) {
        // Connect eagerly, while lane setup is still serial: some mechanisms
        // mutate shared backend state on session establishment (Tor circuit
        // extension), which must not race with other lanes' searches.
        (void)sibling->connect();
        engine->lanes.push_back(sibling.get());
        engine->siblings.push_back(std::move(sibling));
      } else {
        engine->lanes.push_back(this);
      }
    }
    engine->pool =
        std::make_unique<ThreadPool>(workers, config_.batch_queue_capacity);
    async_ = std::move(engine);
  }
  return *async_;
}

PrivateSearchClient::AsyncEngine* PrivateSearchClient::async_if_built() {
  MutexLock lock(async_init_mutex_);
  return async_.get();
}

void PrivateSearchClient::shutdown_async() {
  std::unique_ptr<AsyncEngine> engine;
  {
    MutexLock lock(async_init_mutex_);
    engine = std::move(async_);
  }
  // Shutdown drains queued tasks before joining, so every accepted ticket
  // still completes; only then are the lane siblings destroyed.
  if (engine) engine->pool->shutdown();
}

Ticket PrivateSearchClient::submit(std::string query, std::size_t top_k) {
  return submit_impl(std::move(query), top_k, nullptr, /*blocking=*/true);
}

Ticket PrivateSearchClient::try_submit(std::string query, std::size_t top_k) {
  return submit_impl(std::move(query), top_k, nullptr, /*blocking=*/false);
}

void PrivateSearchClient::submit(std::string query, std::size_t top_k,
                                 std::function<void(SearchOutcome)> on_done) {
  (void)submit_impl(std::move(query), top_k, std::move(on_done),
                    /*blocking=*/true);
}

Ticket PrivateSearchClient::submit_impl(
    std::string query, std::size_t top_k,
    std::function<void(SearchOutcome)> on_done, bool blocking) {
  AsyncEngine& engine = async();
  if (config_.batch_coalesce > 1) {
    return submit_coalesced(engine, std::move(query), top_k, std::move(on_done),
                            blocking);
  }

  Ticket ticket = kInvalidTicket;
  {
    MutexLock lock(engine.mutex);
    ticket = engine.next_ticket++;
    engine.inflight.insert(ticket);
  }

  const Nanos submitted_at = wall_now();
  const bool ticketed = on_done == nullptr;
  auto task = [this, &engine, ticket, ticketed, submitted_at,
               top_k = resolve_top_k(top_k), query = std::move(query),
               on_done = std::move(on_done)]() mutable {
    PrivateSearchClient* lane = engine.lanes[engine.next_lane.fetch_add(
                                                 1, std::memory_order_relaxed) %
                                             engine.lanes.size()];
    auto result = lane->search(query, top_k);

    SearchOutcome outcome;
    outcome.ticket = ticket;
    outcome.status = result.status();
    if (result.is_ok()) outcome.results = std::move(result).value();
    outcome.latency = wall_now() - submitted_at;

    // Siblings keep their own search counters; mirror theirs into the
    // primary's. A fallback lane (lane == this) already counted itself.
    if (lane != this) {
      searches_.fetch_add(1, std::memory_order_relaxed);
      if (!outcome.status.is_ok()) {
        failures_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    completed_.fetch_add(1, std::memory_order_relaxed);

    // The callback must finish before the ticket leaves the in-flight set,
    // so drain() returning guarantees every callback has run.
    if (!ticketed) on_done(std::move(outcome));
    {
      MutexLock lock(engine.mutex);
      engine.inflight.erase(ticket);
      if (ticketed) engine.done.emplace(ticket, std::move(outcome));
    }
    engine.done_cv.notify_all();
  };

  const bool accepted = blocking ? engine.pool->submit(std::move(task))
                                 : engine.pool->try_submit(std::move(task));
  if (!accepted) {
    MutexLock lock(engine.mutex);
    engine.inflight.erase(ticket);
    return kInvalidTicket;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return ticket;
}

Ticket PrivateSearchClient::submit_coalesced(
    AsyncEngine& engine, std::string query, std::size_t top_k,
    std::function<void(SearchOutcome)> on_done, bool blocking) {
  PendingRequest request;
  request.query = std::move(query);
  request.top_k = resolve_top_k(top_k);
  request.on_done = std::move(on_done);
  request.submitted_at = wall_now();

  bool spawn_flusher = false;
  Ticket ticket = kInvalidTicket;
  {
    MutexLock lock(engine.mutex);
    if (engine.pending.size() >= config_.batch_queue_capacity) {
      if (!blocking) return kInvalidTicket;
      while (engine.pending.size() >= config_.batch_queue_capacity) {
        engine.space_cv.wait(engine.mutex);
      }
    }
    ticket = engine.next_ticket++;
    request.ticket = ticket;
    engine.inflight.insert(ticket);
    engine.pending.push_back(std::move(request));
    // Keep at most one flusher per lane busy: enough to use every lane,
    // few enough that batches actually fill.
    if (engine.active_flushers < engine.lanes.size()) {
      engine.active_flushers += 1;
      spawn_flusher = true;
    }
  }

  if (spawn_flusher) {
    const bool accepted =
        engine.pool->submit([this, &engine] { flush_loop(engine); });
    if (!accepted) {
      // Pool shutting down: no new flusher will ever drain our parked
      // request. If it is still parked, withdraw it and report rejection
      // (mirroring the per-request path); if a live flusher already took
      // it, it will complete normally.
      MutexLock lock(engine.mutex);
      engine.active_flushers -= 1;
      for (auto it = engine.pending.begin(); it != engine.pending.end(); ++it) {
        if (it->ticket == ticket) {
          engine.pending.erase(it);
          engine.inflight.erase(ticket);
          return kInvalidTicket;
        }
      }
    }
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return ticket;
}

void PrivateSearchClient::flush_loop(AsyncEngine& engine) {
  const std::size_t max_batch = config_.batch_coalesce;
  for (;;) {
    std::vector<PendingRequest> batch;
    {
      MutexLock lock(engine.mutex);
      while (!engine.pending.empty() && batch.size() < max_batch) {
        batch.push_back(std::move(engine.pending.front()));
        engine.pending.pop_front();
      }
      if (batch.empty()) {
        engine.active_flushers -= 1;
        return;
      }
    }
    engine.space_cv.notify_all();

    PrivateSearchClient* lane =
        engine.lanes[engine.next_lane.fetch_add(1, std::memory_order_relaxed) %
                     engine.lanes.size()];
    std::vector<BatchQuery> queries;
    queries.reserve(batch.size());
    for (auto& request : batch) {  // queries are not needed again: move them
      queries.push_back({std::move(request.query), request.top_k});
    }
    auto results = lane->search_batch(std::move(queries));

    for (std::size_t i = 0; i < batch.size(); ++i) {
      SearchOutcome outcome;
      outcome.ticket = batch[i].ticket;
      if (i < results.size()) {
        outcome.status = results[i].status();
        if (results[i].is_ok()) outcome.results = std::move(results[i]).value();
      } else {
        outcome.status = internal_error("batch: missing outcome slot");
      }
      outcome.latency = wall_now() - batch[i].submitted_at;

      // The lane counted its own searches; mirror into the primary like the
      // per-request path does.
      if (lane != this) {
        searches_.fetch_add(1, std::memory_order_relaxed);
        if (!outcome.status.is_ok()) {
          failures_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      completed_.fetch_add(1, std::memory_order_relaxed);

      const bool ticketed = batch[i].on_done == nullptr;
      if (!ticketed) batch[i].on_done(std::move(outcome));
      {
        MutexLock lock(engine.mutex);
        engine.inflight.erase(batch[i].ticket);
        if (ticketed) engine.done.emplace(batch[i].ticket, std::move(outcome));
      }
      engine.done_cv.notify_all();
    }
  }
}

std::optional<SearchOutcome> PrivateSearchClient::poll(Ticket ticket) {
  AsyncEngine* built = async_if_built();
  if (built == nullptr) {
    // Nothing was ever submitted; don't spin up lanes just to say so.
    SearchOutcome unknown;
    unknown.ticket = ticket;
    unknown.status = not_found("poll: unknown or already collected ticket");
    return unknown;
  }
  AsyncEngine& engine = *built;
  MutexLock lock(engine.mutex);
  if (const auto it = engine.done.find(ticket); it != engine.done.end()) {
    SearchOutcome outcome = std::move(it->second);
    engine.done.erase(it);
    return outcome;
  }
  if (engine.inflight.contains(ticket)) return std::nullopt;
  SearchOutcome unknown;
  unknown.ticket = ticket;
  unknown.status = not_found("poll: unknown or already collected ticket");
  return unknown;
}

SearchOutcome PrivateSearchClient::wait(Ticket ticket) {
  AsyncEngine* built = async_if_built();
  if (built == nullptr) {
    SearchOutcome unknown;
    unknown.ticket = ticket;
    unknown.status = not_found("wait: unknown or already collected ticket");
    return unknown;
  }
  AsyncEngine& engine = *built;
  MutexLock lock(engine.mutex);
  while (!engine.done.contains(ticket) && engine.inflight.contains(ticket)) {
    engine.done_cv.wait(engine.mutex);
  }
  if (const auto it = engine.done.find(ticket); it != engine.done.end()) {
    SearchOutcome outcome = std::move(it->second);
    engine.done.erase(it);
    return outcome;
  }
  SearchOutcome unknown;
  unknown.ticket = ticket;
  unknown.status = not_found("wait: unknown or already collected ticket");
  return unknown;
}

void PrivateSearchClient::drain() {
  AsyncEngine* built = async_if_built();
  if (built == nullptr) return;
  MutexLock lock(built->mutex);
  while (!built->inflight.empty()) built->done_cv.wait(built->mutex);
}

}  // namespace xsearch::api
