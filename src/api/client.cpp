#include "api/client.hpp"

#include <condition_variable>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/thread_pool.hpp"
#include "netsim/netsim.hpp"

namespace xsearch::api {

// Batch machinery: a thread pool whose lanes are sibling clients sharing
// the primary's backend, plus the ticket ledger. Workers and lanes are
// matched 1:1 in count, so round-robin lane selection keeps collisions
// (two tasks serializing on one sibling) transient.
struct PrivateSearchClient::AsyncEngine {
  std::vector<ClientPtr> siblings;
  std::vector<PrivateSearchClient*> lanes;  // sibling or the primary itself
  std::unique_ptr<ThreadPool> pool;
  std::atomic<std::size_t> next_lane{0};

  std::mutex mutex;
  std::condition_variable done_cv;
  std::unordered_map<Ticket, SearchOutcome> done;
  std::unordered_set<Ticket> inflight;
  Ticket next_ticket = 1;
};

PrivateSearchClient::PrivateSearchClient(ClientConfig config)
    : config_(config) {}

PrivateSearchClient::~PrivateSearchClient() { shutdown_async(); }

Status PrivateSearchClient::connect() {
  std::lock_guard lock(sync_mutex_);
  const Status status = do_connect();
  if (status.is_ok()) connects_.fetch_add(1, std::memory_order_relaxed);
  return status;
}

void PrivateSearchClient::close() {
  shutdown_async();
  std::lock_guard lock(sync_mutex_);
  do_close();
}

Result<SearchResults> PrivateSearchClient::search(std::string_view query) {
  return search(query, 0);
}

Result<SearchResults> PrivateSearchClient::search(std::string_view query,
                                                  std::size_t top_k) {
  std::lock_guard lock(sync_mutex_);
  if (!connected()) {
    XS_RETURN_IF_ERROR(do_connect());
    connects_.fetch_add(1, std::memory_order_relaxed);
  }
  if (config_.stack_cost_per_request > 0) {
    netsim::busy_wait(config_.stack_cost_per_request);
  }
  auto result = do_search(query, resolve_top_k(top_k));
  searches_.fetch_add(1, std::memory_order_relaxed);
  if (!result.is_ok()) failures_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

Status PrivateSearchClient::prime(const std::vector<std::string>&) {
  return Status::ok();
}

std::unique_ptr<PrivateSearchClient> PrivateSearchClient::spawn_sibling(
    std::uint64_t) {
  return nullptr;
}

Stats PrivateSearchClient::stats() const {
  Stats out;
  out.connects = connects_.load(std::memory_order_relaxed);
  out.searches = searches_.load(std::memory_order_relaxed);
  out.failures = failures_.load(std::memory_order_relaxed);
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  return out;
}

PrivateSearchClient::AsyncEngine& PrivateSearchClient::async() {
  std::lock_guard lock(async_init_mutex_);
  if (!async_) {
    auto engine = std::make_unique<AsyncEngine>();
    const std::size_t workers = config_.batch_workers == 0 ? 1 : config_.batch_workers;
    for (std::size_t i = 0; i < workers; ++i) {
      auto sibling = spawn_sibling(config_.seed + 1000 + i);
      if (sibling) {
        // Connect eagerly, while lane setup is still serial: some mechanisms
        // mutate shared backend state on session establishment (Tor circuit
        // extension), which must not race with other lanes' searches.
        (void)sibling->connect();
        engine->lanes.push_back(sibling.get());
        engine->siblings.push_back(std::move(sibling));
      } else {
        engine->lanes.push_back(this);
      }
    }
    engine->pool =
        std::make_unique<ThreadPool>(workers, config_.batch_queue_capacity);
    async_ = std::move(engine);
  }
  return *async_;
}

PrivateSearchClient::AsyncEngine* PrivateSearchClient::async_if_built() {
  std::lock_guard lock(async_init_mutex_);
  return async_.get();
}

void PrivateSearchClient::shutdown_async() {
  std::unique_ptr<AsyncEngine> engine;
  {
    std::lock_guard lock(async_init_mutex_);
    engine = std::move(async_);
  }
  // Shutdown drains queued tasks before joining, so every accepted ticket
  // still completes; only then are the lane siblings destroyed.
  if (engine) engine->pool->shutdown();
}

Ticket PrivateSearchClient::submit(std::string query, std::size_t top_k) {
  return submit_impl(std::move(query), top_k, nullptr, /*blocking=*/true);
}

Ticket PrivateSearchClient::try_submit(std::string query, std::size_t top_k) {
  return submit_impl(std::move(query), top_k, nullptr, /*blocking=*/false);
}

void PrivateSearchClient::submit(std::string query, std::size_t top_k,
                                 std::function<void(SearchOutcome)> on_done) {
  (void)submit_impl(std::move(query), top_k, std::move(on_done),
                    /*blocking=*/true);
}

Ticket PrivateSearchClient::submit_impl(
    std::string query, std::size_t top_k,
    std::function<void(SearchOutcome)> on_done, bool blocking) {
  AsyncEngine& engine = async();

  Ticket ticket = kInvalidTicket;
  {
    std::lock_guard lock(engine.mutex);
    ticket = engine.next_ticket++;
    engine.inflight.insert(ticket);
  }

  const Nanos submitted_at = wall_now();
  const bool ticketed = on_done == nullptr;
  auto task = [this, &engine, ticket, ticketed, submitted_at,
               top_k = resolve_top_k(top_k), query = std::move(query),
               on_done = std::move(on_done)]() mutable {
    PrivateSearchClient* lane = engine.lanes[engine.next_lane.fetch_add(
                                                 1, std::memory_order_relaxed) %
                                             engine.lanes.size()];
    auto result = lane->search(query, top_k);

    SearchOutcome outcome;
    outcome.ticket = ticket;
    outcome.status = result.status();
    if (result.is_ok()) outcome.results = std::move(result).value();
    outcome.latency = wall_now() - submitted_at;

    // Siblings keep their own search counters; mirror theirs into the
    // primary's. A fallback lane (lane == this) already counted itself.
    if (lane != this) {
      searches_.fetch_add(1, std::memory_order_relaxed);
      if (!outcome.status.is_ok()) {
        failures_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    completed_.fetch_add(1, std::memory_order_relaxed);

    // The callback must finish before the ticket leaves the in-flight set,
    // so drain() returning guarantees every callback has run.
    if (!ticketed) on_done(std::move(outcome));
    {
      std::lock_guard lock(engine.mutex);
      engine.inflight.erase(ticket);
      if (ticketed) engine.done.emplace(ticket, std::move(outcome));
    }
    engine.done_cv.notify_all();
  };

  const bool accepted = blocking ? engine.pool->submit(std::move(task))
                                 : engine.pool->try_submit(std::move(task));
  if (!accepted) {
    std::lock_guard lock(engine.mutex);
    engine.inflight.erase(ticket);
    return kInvalidTicket;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return ticket;
}

std::optional<SearchOutcome> PrivateSearchClient::poll(Ticket ticket) {
  AsyncEngine* built = async_if_built();
  if (built == nullptr) {
    // Nothing was ever submitted; don't spin up lanes just to say so.
    SearchOutcome unknown;
    unknown.ticket = ticket;
    unknown.status = not_found("poll: unknown or already collected ticket");
    return unknown;
  }
  AsyncEngine& engine = *built;
  std::lock_guard lock(engine.mutex);
  if (const auto it = engine.done.find(ticket); it != engine.done.end()) {
    SearchOutcome outcome = std::move(it->second);
    engine.done.erase(it);
    return outcome;
  }
  if (engine.inflight.contains(ticket)) return std::nullopt;
  SearchOutcome unknown;
  unknown.ticket = ticket;
  unknown.status = not_found("poll: unknown or already collected ticket");
  return unknown;
}

SearchOutcome PrivateSearchClient::wait(Ticket ticket) {
  AsyncEngine* built = async_if_built();
  if (built == nullptr) {
    SearchOutcome unknown;
    unknown.ticket = ticket;
    unknown.status = not_found("wait: unknown or already collected ticket");
    return unknown;
  }
  AsyncEngine& engine = *built;
  std::unique_lock lock(engine.mutex);
  engine.done_cv.wait(lock, [&] {
    return engine.done.contains(ticket) || !engine.inflight.contains(ticket);
  });
  if (const auto it = engine.done.find(ticket); it != engine.done.end()) {
    SearchOutcome outcome = std::move(it->second);
    engine.done.erase(it);
    return outcome;
  }
  SearchOutcome unknown;
  unknown.ticket = ticket;
  unknown.status = not_found("wait: unknown or already collected ticket");
  return unknown;
}

void PrivateSearchClient::drain() {
  AsyncEngine* built = async_if_built();
  if (built == nullptr) return;
  std::unique_lock lock(built->mutex);
  built->done_cv.wait(lock, [&] { return built->inflight.empty(); });
}

}  // namespace xsearch::api
