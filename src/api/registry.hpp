// Mechanism factory: private search clients selectable by name at runtime.
//
// `make_client("xsearch", backend, config)` turns a mechanism name plus a
// mechanism-agnostic config into a ready `PrivateSearchClient`, so a bench
// or example covers every mechanism × workload combination with a one-line
// config change and zero concrete mechanism headers. The five paper
// mechanisms self-register; out-of-tree mechanisms join through
// `MechanismRegistry::register_mechanism` (see ARCHITECTURE.md for the
// "sixth mechanism" recipe).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "api/client.hpp"
#include "common/mutex.hpp"
#include "dataset/query_log.hpp"
#include "engine/search_engine.hpp"

namespace xsearch::api {

/// The shared world a client is built against. Everything mechanism-side
/// (proxies, relays, enclaves, key material) is owned by the client itself.
struct Backend {
  /// The search engine to query. May be null only when
  /// `ClientConfig::contact_engine` is false (saturation benches).
  const engine::SearchEngine* engine = nullptr;
  /// Past-query log used by mechanisms that synthesize fake queries from
  /// user history (PEAS co-occurrence walks). Required by "peas".
  const dataset::QueryLog* fake_source = nullptr;
};

class MechanismRegistry {
 public:
  using Factory =
      std::function<Result<ClientPtr>(const Backend&, const ClientConfig&)>;

  /// The process-wide registry, with the five built-in mechanisms
  /// ("direct", "tmn", "tor", "peas", "xsearch") already registered.
  [[nodiscard]] static MechanismRegistry& instance();

  /// Registers a mechanism; duplicate names are rejected.
  [[nodiscard]] Status register_mechanism(std::string name, Factory factory);

  /// Builds a client for a registered mechanism name.
  [[nodiscard]] Result<ClientPtr> make_client(std::string_view name,
                                              const Backend& backend,
                                              const ClientConfig& config) const;

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> mechanism_names() const;

 private:
  mutable Mutex mutex_;
  std::map<std::string, Factory, std::less<>> factories_ XS_GUARDED_BY(mutex_);
};

/// Convenience: `MechanismRegistry::instance().make_client(...)`.
[[nodiscard]] Result<ClientPtr> make_client(std::string_view mechanism,
                                            const Backend& backend,
                                            const ClientConfig& config = {});

}  // namespace xsearch::api
