#include "api/registry.hpp"

#include <utility>

namespace xsearch::api {

// Defined in adapters.cpp. Called exactly once, from instance(): explicit
// registration instead of static-initializer registrars, which a static
// archive link would silently drop.
void register_builtin_mechanisms(MechanismRegistry& registry);

MechanismRegistry& MechanismRegistry::instance() {
  static MechanismRegistry* registry = [] {
    auto* r = new MechanismRegistry();
    register_builtin_mechanisms(*r);
    return r;
  }();
  return *registry;
}

Status MechanismRegistry::register_mechanism(std::string name, Factory factory) {
  if (name.empty()) return invalid_argument("mechanism name must be non-empty");
  if (factory == nullptr) {
    return invalid_argument("mechanism factory must be callable");
  }
  MutexLock lock(mutex_);
  if (!factories_.emplace(std::move(name), std::move(factory)).second) {
    return failed_precondition("mechanism already registered");
  }
  return Status::ok();
}

Result<ClientPtr> MechanismRegistry::make_client(std::string_view name,
                                                 const Backend& backend,
                                                 const ClientConfig& config) const {
  Factory factory;
  {
    MutexLock lock(mutex_);
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
      return not_found("unknown mechanism: " + std::string(name));
    }
    factory = it->second;
  }
  if (backend.engine == nullptr && config.contact_engine) {
    return failed_precondition(
        "backend.engine required unless contact_engine is disabled");
  }
  return factory(backend, config);
}

std::vector<std::string> MechanismRegistry::mechanism_names() const {
  MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

Result<ClientPtr> make_client(std::string_view mechanism, const Backend& backend,
                              const ClientConfig& config) {
  return MechanismRegistry::instance().make_client(mechanism, backend, config);
}

}  // namespace xsearch::api
