#include "net/remote_broker.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "xsearch/wire.hpp"

namespace xsearch::net {

RemoteBroker::RemoteBroker(std::string host, std::uint16_t port,
                           const sgx::AttestationAuthority& authority,
                           const sgx::Measurement& expected_measurement,
                           std::uint64_t seed)
    : RemoteBroker(std::move(host), port, authority, expected_measurement, seed,
                   Options{}) {}

RemoteBroker::RemoteBroker(std::string host, std::uint16_t port,
                           const sgx::AttestationAuthority& authority,
                           const sgx::Measurement& expected_measurement,
                           std::uint64_t seed, Options options)
    : host_(std::move(host)),
      port_(port),
      authority_(&authority),
      expected_measurement_(expected_measurement),
      rng_(crypto::domain_seed(seed, /*tag=*/0xb0)),  // remote-broker domain separation
      options_(std::move(options)),
      retry_budget_(options_.retry_budget),
      jitter_rng_(seed) {  // backoff jitter needs no crypto strength
  if (options_.breaker_enabled) {
    breaker_ = std::make_unique<CircuitBreaker>(options_.breaker);
  }
}

Status RemoteBroker::connect() { return connect_within(request_deadline()); }

Status RemoteBroker::connect_within(const Deadline& deadline) {
  if (channel_.has_value()) return Status::ok();

  // The handshake gets its own (tighter) budget on top of the request's:
  // a stalled attestation should fail fast, not eat the whole deadline.
  Deadline effective = deadline;
  if (options_.connect_budget > 0) {
    effective = effective.min(Deadline::after(options_.connect_budget));
  }

  auto stream = TcpStream::connect(host_, port_);
  if (!stream) return stream.status();
  if (options_.wrap_stream) {
    stream_ = options_.wrap_stream(std::move(stream).value());
  } else {
    stream_ = std::make_unique<TcpStream>(std::move(stream).value());
  }

  const auto ephemeral = crypto::x25519_keypair_from_seed(rng_.key());

  FrameWriteOptions write_options;
  write_options.io_deadline = effective;
  XS_RETURN_IF_ERROR(write_frame(*stream_, FrameType::kHello,
                                 ephemeral.public_key, write_options));
  FrameReadOptions read_options;
  read_options.io_deadline = effective;
  auto reply = read_frame(*stream_, read_options);
  if (!reply) return reply.status();
  if (reply.value().type == FrameType::kError) {
    return unavailable("proxy: " + to_string(reply.value().payload));
  }
  if (reply.value().type == FrameType::kErrorStatus) {
    return decode_error_status(reply.value().payload);
  }
  if (reply.value().type != FrameType::kHelloReply) {
    return data_loss("unexpected frame type in handshake");
  }

  const ByteSpan payload(reply.value().payload);
  std::size_t offset = 0;
  auto session = core::wire::get_u64(payload, offset);
  if (!session) return session.status();
  auto quote_len = core::wire::get_u32(payload, offset);
  if (!quote_len) return quote_len.status();
  if (offset + quote_len.value() + crypto::kX25519KeySize != payload.size()) {
    return data_loss("malformed hello reply");
  }
  auto quote = sgx::Quote::deserialize(payload.subspan(offset, quote_len.value()));
  if (!quote) return quote.status();
  offset += quote_len.value();
  crypto::X25519Key server_eph;
  std::memcpy(server_eph.data(), payload.data() + offset, server_eph.size());

  // Attestation gate: refuse to key the channel unless the quote is genuine
  // and names the expected enclave code.
  auto static_pub = sgx::verify_and_extract_channel_key(*authority_, quote.value(),
                                                        expected_measurement_);
  if (!static_pub) return static_pub.status();

  channel_.emplace(
      crypto::SecureChannel::initiator(ephemeral, static_pub.value(), server_eph));
  session_id_ = session.value();
  return Status::ok();
}

void RemoteBroker::reset_session() {
  stream_.reset();
  channel_.reset();
  session_id_ = 0;
}

void RemoteBroker::record_breaker_outcome(const Status& status) {
  if (breaker_ == nullptr) return;
  if (status.is_ok()) {
    breaker_->record_success();
    return;
  }
  switch (status.code()) {
    // Transport/dependency health signals: the proxy (or its engine) is
    // unreachable, shedding, or too slow. These trip the breaker.
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kDataLoss:
    case StatusCode::kOverloaded:
    case StatusCode::kUpstreamDown:
      breaker_->record_failure();
      break;
    default:
      // Deterministic verdicts (bad argument, auth failure, unknown
      // session) say nothing about proxy health.
      break;
  }
}

bool RemoteBroker::prepare_retry(RetryState& retry, const Deadline& deadline,
                                 bool retryable, bool delivered) {
  if (!retryable || !retry.should_retry() || deadline.expired()) return false;
  if (!retry_budget_.try_spend()) {
    // Bucket empty: a persistently failing proxy degrades this connection
    // to one attempt per request instead of multiplying load.
    ++retries_budget_denied_;
    return false;
  }
  if (delivered) ++at_least_once_retries_;
  reset_session();
  ++reconnects_;
  Nanos pause = retry.next_backoff(jitter_rng_);
  if (!deadline.is_infinite() && pause > deadline.remaining()) {
    pause = deadline.remaining();
  }
  if (pause > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(pause));
  }
  return true;
}

Result<std::vector<engine::SearchResult>> RemoteBroker::search(std::string_view query) {
  const Deadline deadline = request_deadline();
  retry_budget_.record_request();
  RetryState retry(options_.retry);
  for (;;) {
    if (breaker_ != nullptr && !breaker_->allow()) {
      // Fast fail: no connect, no frame, no wire bytes while open.
      return upstream_down("broker: circuit breaker open");
    }
    bool retryable = false;
    bool delivered = false;
    auto attempt = search_once(query, deadline, retryable, delivered);
    retry.note_attempt();
    record_breaker_outcome(attempt.status());
    if (attempt.is_ok()) return attempt;
    // The session died under us (bounded-table eviction, idle expiry,
    // broken or shed connection) or the channel desynced: fresh attested
    // handshake, bounded retries with jittered backoff. If the frame had
    // already been delivered, the retry may re-execute the query on the
    // proxy (at-least-once, counted).
    if (!prepare_retry(retry, deadline, retryable, delivered)) return attempt;
  }
}

Result<core::wire::ClientMessage> RemoteBroker::round_trip(
    FrameType type, FrameType reply_type, ByteSpan message,
    const Deadline& deadline, bool& retryable, bool& delivered) {
  XS_RETURN_IF_ERROR(connect_within(deadline));

  Bytes payload;
  core::wire::put_u64(payload, session_id_);
  append(payload, channel_->seal(message));
  FrameWriteOptions write_options;
  write_options.io_deadline = deadline;
  if (!deadline.is_infinite()) {
    // Carry the REMAINING budget (not the original) so every hop downstream
    // sees how much time the request really has left.
    write_options.carry_budget = true;
    write_options.budget_millis = deadline.budget_millis();
  }
  if (auto written = write_frame(*stream_, type, payload, write_options);
      !written.is_ok()) {
    // The frame never reached the transport: retrying cannot duplicate
    // work on the proxy.
    retryable = true;
    return written;
  }
  delivered = true;
  ++frames_sent_;

  FrameReadOptions read_options;
  read_options.io_deadline = deadline;
  auto reply = read_frame(*stream_, read_options);
  if (!reply) {
    retryable = true;
    return reply.status();
  }
  if (reply.value().type == FrameType::kError) {
    // A frame-level error means the proxy never opened our record (unknown
    // session, auth failure, busy server): our send counter advanced but
    // the proxy's receive counter did not, so the channel is unusable —
    // and since nothing was executed, a retry cannot duplicate work.
    retryable = true;
    delivered = false;
    return unavailable("proxy: " + to_string(reply.value().payload));
  }
  if (reply.value().type == FrameType::kErrorStatus) {
    // Same exactly-once refusal, but typed: deadline shed, overload shed,
    // breaker open, unknown session — the caller (and its breaker) can
    // tell them apart.
    retryable = true;
    delivered = false;
    return decode_error_status(reply.value().payload);
  }
  if (reply.value().type != reply_type) {
    retryable = true;
    return data_loss("unexpected frame type in query reply");
  }

  auto plaintext = channel_->open(reply.value().payload);
  if (!plaintext) {
    retryable = true;
    return plaintext.status();
  }
  return core::wire::parse_client_message(plaintext.value());
}

Result<std::vector<engine::SearchResult>> RemoteBroker::search_once(
    std::string_view query, const Deadline& deadline, bool& retryable,
    bool& delivered) {
  auto message =
      round_trip(FrameType::kQuery, FrameType::kQueryReply,
                 core::wire::frame_query(query), deadline, retryable, delivered);
  if (!message) return message.status();
  ++queries_sent_;
  if (message.value().type == core::wire::ClientMessageType::kError) {
    return unavailable("proxy error: " + message.value().error);
  }
  if (message.value().type != core::wire::ClientMessageType::kResults) {
    return data_loss("unexpected message type from proxy");
  }
  return std::move(message).value().results;
}

Result<std::vector<core::BatchOutcome>> RemoteBroker::search_batch(
    const std::vector<std::string>& queries) {
  const Deadline deadline = request_deadline();
  retry_budget_.record_request();
  RetryState retry(options_.retry);
  for (;;) {
    if (breaker_ != nullptr && !breaker_->allow()) {
      return upstream_down("broker: circuit breaker open");
    }
    bool retryable = false;
    bool delivered = false;
    auto attempt = search_batch_once(queries, deadline, retryable, delivered);
    retry.note_attempt();
    record_breaker_outcome(attempt.status());
    if (attempt.is_ok()) return attempt;
    // A parsed reply with per-item failures is NOT retryable (those
    // verdicts are final and a blind batch re-send would duplicate the
    // successful items); only transport/session-level failures reach here.
    // A batch that never hit the wire retries exactly-once; one that did is
    // the counted at-least-once case — the reply was lost, so the whole
    // frame (the smallest unit the proxy can execute) must be re-sent.
    if (!prepare_retry(retry, deadline, retryable, delivered)) return attempt;
  }
}

Result<std::vector<core::BatchOutcome>> RemoteBroker::search_batch_once(
    const std::vector<std::string>& queries, const Deadline& deadline,
    bool& retryable, bool& delivered) {
  XS_RETURN_IF_ERROR(core::check_batch_request_size(queries.size()));
  auto message = round_trip(FrameType::kBatchQuery, FrameType::kBatchReply,
                            core::wire::frame_query_batch(queries), deadline,
                            retryable, delivered);
  if (!message) return message.status();
  queries_sent_ += queries.size();
  return core::decode_batch_reply(std::move(message).value(), queries.size());
}

}  // namespace xsearch::net
