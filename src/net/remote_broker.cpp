#include "net/remote_broker.hpp"

#include <cstring>

#include "xsearch/wire.hpp"

namespace xsearch::net {

RemoteBroker::RemoteBroker(std::string host, std::uint16_t port,
                           const sgx::AttestationAuthority& authority,
                           const sgx::Measurement& expected_measurement,
                           std::uint64_t seed)
    : host_(std::move(host)),
      port_(port),
      authority_(&authority),
      expected_measurement_(expected_measurement),
      rng_(crypto::domain_seed(seed, /*tag=*/0xb0)) {}  // remote-broker domain separation

Status RemoteBroker::connect() {
  if (channel_.has_value()) return Status::ok();

  auto stream = TcpStream::connect(host_, port_);
  if (!stream) return stream.status();
  stream_.emplace(std::move(stream).value());

  const auto ephemeral = crypto::x25519_keypair_from_seed(rng_.key());

  XS_RETURN_IF_ERROR(write_frame(*stream_, FrameType::kHello, ephemeral.public_key));
  auto reply = read_frame(*stream_);
  if (!reply) return reply.status();
  if (reply.value().type == FrameType::kError) {
    return unavailable("proxy: " + to_string(reply.value().payload));
  }
  if (reply.value().type != FrameType::kHelloReply) {
    return data_loss("unexpected frame type in handshake");
  }

  const ByteSpan payload(reply.value().payload);
  std::size_t offset = 0;
  auto session = core::wire::get_u64(payload, offset);
  if (!session) return session.status();
  auto quote_len = core::wire::get_u32(payload, offset);
  if (!quote_len) return quote_len.status();
  if (offset + quote_len.value() + crypto::kX25519KeySize != payload.size()) {
    return data_loss("malformed hello reply");
  }
  auto quote = sgx::Quote::deserialize(payload.subspan(offset, quote_len.value()));
  if (!quote) return quote.status();
  offset += quote_len.value();
  crypto::X25519Key server_eph;
  std::memcpy(server_eph.data(), payload.data() + offset, server_eph.size());

  // Attestation gate: refuse to key the channel unless the quote is genuine
  // and names the expected enclave code.
  auto static_pub = sgx::verify_and_extract_channel_key(*authority_, quote.value(),
                                                        expected_measurement_);
  if (!static_pub) return static_pub.status();

  channel_.emplace(
      crypto::SecureChannel::initiator(ephemeral, static_pub.value(), server_eph));
  session_id_ = session.value();
  return Status::ok();
}

void RemoteBroker::reset_session() {
  stream_.reset();
  channel_.reset();
  session_id_ = 0;
}

Result<std::vector<engine::SearchResult>> RemoteBroker::search(std::string_view query) {
  bool retryable = false;
  bool delivered = false;
  auto first = search_once(query, retryable, delivered);
  if (first.is_ok() || !retryable) return first;
  // The session died under us (bounded-table eviction, idle expiry, broken
  // or shed connection) or the channel desynced: one fresh attested
  // handshake, one retry. If the first frame had already been delivered,
  // the retry may re-execute the query on the proxy (at-least-once).
  if (delivered) ++at_least_once_retries_;
  reset_session();
  ++reconnects_;
  retryable = false;
  delivered = false;
  return search_once(query, retryable, delivered);
}

Result<core::wire::ClientMessage> RemoteBroker::round_trip(
    FrameType type, FrameType reply_type, ByteSpan message, bool& retryable,
    bool& delivered) {
  XS_RETURN_IF_ERROR(connect());

  Bytes payload;
  core::wire::put_u64(payload, session_id_);
  append(payload, channel_->seal(message));
  if (auto written = write_frame(*stream_, type, payload); !written.is_ok()) {
    // The frame never reached the transport: retrying cannot duplicate
    // work on the proxy.
    retryable = true;
    return written;
  }
  delivered = true;
  ++frames_sent_;

  auto reply = read_frame(*stream_);
  if (!reply) {
    retryable = true;
    return reply.status();
  }
  if (reply.value().type == FrameType::kError) {
    // A frame-level error means the proxy never opened our record (unknown
    // session, auth failure, busy server): our send counter advanced but
    // the proxy's receive counter did not, so the channel is unusable —
    // and since nothing was executed, a retry cannot duplicate work.
    retryable = true;
    delivered = false;
    return unavailable("proxy: " + to_string(reply.value().payload));
  }
  if (reply.value().type != reply_type) {
    retryable = true;
    return data_loss("unexpected frame type in query reply");
  }

  auto plaintext = channel_->open(reply.value().payload);
  if (!plaintext) {
    retryable = true;
    return plaintext.status();
  }
  return core::wire::parse_client_message(plaintext.value());
}

Result<std::vector<engine::SearchResult>> RemoteBroker::search_once(
    std::string_view query, bool& retryable, bool& delivered) {
  auto message = round_trip(FrameType::kQuery, FrameType::kQueryReply,
                            core::wire::frame_query(query), retryable, delivered);
  if (!message) return message.status();
  ++queries_sent_;
  if (message.value().type == core::wire::ClientMessageType::kError) {
    return unavailable("proxy error: " + message.value().error);
  }
  if (message.value().type != core::wire::ClientMessageType::kResults) {
    return data_loss("unexpected message type from proxy");
  }
  return std::move(message).value().results;
}

Result<std::vector<core::BatchOutcome>> RemoteBroker::search_batch(
    const std::vector<std::string>& queries) {
  bool retryable = false;
  bool delivered = false;
  auto first = search_batch_once(queries, retryable, delivered);
  if (first.is_ok() || !retryable) return first;
  // A parsed reply with per-item failures is NOT retryable (those verdicts
  // are final and a blind batch re-send would duplicate the successful
  // items); only transport/session-level failures reach here. A batch that
  // never hit the wire retries exactly-once; one that did is the counted
  // at-least-once case — the reply was lost, so the whole frame (the
  // smallest unit the proxy can execute) must be re-sent.
  if (delivered) ++at_least_once_retries_;
  reset_session();
  ++reconnects_;
  retryable = false;
  delivered = false;
  return search_batch_once(queries, retryable, delivered);
}

Result<std::vector<core::BatchOutcome>> RemoteBroker::search_batch_once(
    const std::vector<std::string>& queries, bool& retryable, bool& delivered) {
  XS_RETURN_IF_ERROR(core::check_batch_request_size(queries.size()));
  auto message = round_trip(FrameType::kBatchQuery, FrameType::kBatchReply,
                            core::wire::frame_query_batch(queries), retryable,
                            delivered);
  if (!message) return message.status();
  queries_sent_ += queries.size();
  return core::decode_batch_reply(std::move(message).value(), queries.size());
}

}  // namespace xsearch::net
