#include "net/frame.hpp"

namespace xsearch::net {

FrameCursor::Step FrameCursor::parse(ByteSpan buffered) {
  Step step;
  if (buffered.size() < 4) {
    step.state = State::kNeedHeader;
    step.need = 4;
    return step;
  }
  const std::uint32_t raw = load_be32(buffered.data());
  const bool v2 = (raw & kFrameV2Bit) != 0;
  const std::uint32_t length = raw & ~kFrameV2Bit;
  if (length == 0 || length > kMaxFramePayload + 1) {
    step.state = State::kError;
    step.error = data_loss("frame length out of range");
    return step;
  }
  const std::size_t header_bytes = v2 ? 8 : 4;
  const std::size_t total = header_bytes + length;
  if (buffered.size() < header_bytes) {
    step.state = State::kNeedHeader;
    step.need = header_bytes;
    return step;
  }
  if (buffered.size() < total) {
    step.state = State::kNeedBody;
    step.need = total;
    return step;
  }

  step.state = State::kFrame;
  step.frame.v2 = v2;
  if (v2) step.frame.budget_millis = load_be32(buffered.data() + 4);
  step.frame.type = static_cast<FrameType>(buffered[header_bytes]);
  step.frame.payload = buffered.subspan(header_bytes + 1, length - 1);
  step.frame.frame_bytes = total;
  return step;
}

Result<Bytes> encode_frame_header(FrameType type, std::size_t payload_size,
                                  const FrameWriteOptions& options) {
  if (payload_size > kMaxFramePayload) {
    return invalid_argument("frame payload too large");
  }
  const auto length = static_cast<std::uint32_t>(payload_size + 1);
  Bytes header;
  if (options.carry_budget) {
    header.resize(9);
    store_be32(header.data(), kFrameV2Bit | length);
    store_be32(header.data() + 4, options.budget_millis);
    header[8] = static_cast<std::uint8_t>(type);
  } else {
    header.resize(5);
    store_be32(header.data(), length);
    header[4] = static_cast<std::uint8_t>(type);
  }
  return header;
}

Status write_frame(ByteStream& stream, FrameType type, ByteSpan payload,
                   const FrameWriteOptions& options) {
  auto header = encode_frame_header(type, payload.size(), options);
  if (!header) return header.status();
  XS_RETURN_IF_ERROR(stream.write_all(header.value(), options.io_deadline));
  return stream.write_all(payload, options.io_deadline);
}

Result<Frame> read_frame(ByteStream& stream, const FrameReadOptions& options) {
  // Blocking shim over the incremental parser: one parse logic for both the
  // reactor's zero-copy path and the clients' exact-read path.
  Bytes buffer;
  Deadline deadline = options.io_deadline;
  bool body_bounded = false;
  for (;;) {
    const auto step = FrameCursor::parse(buffer);
    switch (step.state) {
      case FrameCursor::State::kError:
        return step.error;
      case FrameCursor::State::kFrame: {
        Frame frame;
        frame.type = step.frame.type;
        frame.budget_millis = step.frame.budget_millis;
        frame.v2 = step.frame.v2;
        frame.payload.assign(step.frame.payload.begin(),
                             step.frame.payload.end());
        return frame;
      }
      case FrameCursor::State::kNeedHeader:
      case FrameCursor::State::kNeedBody: {
        // Once the length word is in, the frame has started: the (optional)
        // body budget applies on top of the caller's overall deadline.
        if (buffer.size() >= 4 && !body_bounded && options.body_budget > 0) {
          body_bounded = true;
          deadline = deadline.min(Deadline::after(options.body_budget));
        }
        auto chunk = stream.read_exact(step.need - buffer.size(), deadline);
        if (!chunk) return chunk.status();
        append(buffer, chunk.value());
        break;
      }
    }
  }
}

Bytes encode_error_status(const Status& status) {
  Bytes payload;
  payload.reserve(1 + status.message().size());
  payload.push_back(static_cast<std::uint8_t>(status.code()));
  for (const char c : status.message()) {
    payload.push_back(static_cast<std::uint8_t>(c));
  }
  return payload;
}

Status decode_error_status(ByteSpan payload) {
  if (payload.empty()) {
    return internal_error("malformed error-status frame");
  }
  const StatusCode code = status_code_from_wire(payload[0]);
  std::string message(reinterpret_cast<const char*>(payload.data()) + 1,
                      payload.size() - 1);
  if (code == StatusCode::kOk) {
    return internal_error("error-status frame carried OK: " + message);
  }
  return Status(code, std::move(message));
}

}  // namespace xsearch::net
