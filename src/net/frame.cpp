#include "net/frame.hpp"

namespace xsearch::net {

Status write_frame(ByteStream& stream, FrameType type, ByteSpan payload,
                   const FrameWriteOptions& options) {
  if (payload.size() > kMaxFramePayload) {
    return invalid_argument("frame payload too large");
  }
  const auto length = static_cast<std::uint32_t>(payload.size() + 1);
  Bytes header;
  if (options.carry_budget) {
    header.resize(9);
    store_be32(header.data(), kFrameV2Bit | length);
    store_be32(header.data() + 4, options.budget_millis);
    header[8] = static_cast<std::uint8_t>(type);
  } else {
    header.resize(5);
    store_be32(header.data(), length);
    header[4] = static_cast<std::uint8_t>(type);
  }
  XS_RETURN_IF_ERROR(stream.write_all(header, options.io_deadline));
  return stream.write_all(payload, options.io_deadline);
}

Result<Frame> read_frame(ByteStream& stream, const FrameReadOptions& options) {
  auto header = stream.read_exact(4, options.io_deadline);
  if (!header) return header.status();
  const std::uint32_t raw = load_be32(header.value().data());
  const bool v2 = (raw & kFrameV2Bit) != 0;
  const std::uint32_t length = raw & ~kFrameV2Bit;
  if (length == 0 || length > kMaxFramePayload + 1) {
    return data_loss("frame length out of range");
  }

  // The frame has started: from here the (optional) body budget applies on
  // top of the caller's overall deadline.
  const Deadline body_deadline =
      options.body_budget > 0
          ? options.io_deadline.min(Deadline::after(options.body_budget))
          : options.io_deadline;

  Frame frame;
  frame.v2 = v2;
  if (v2) {
    auto budget = stream.read_exact(4, body_deadline);
    if (!budget) return budget.status();
    frame.budget_millis = load_be32(budget.value().data());
  }
  auto body = stream.read_exact(length, body_deadline);
  if (!body) return body.status();

  frame.type = static_cast<FrameType>(body.value()[0]);
  frame.payload.assign(body.value().begin() + 1, body.value().end());
  return frame;
}

Bytes encode_error_status(const Status& status) {
  Bytes payload;
  payload.reserve(1 + status.message().size());
  payload.push_back(static_cast<std::uint8_t>(status.code()));
  for (const char c : status.message()) {
    payload.push_back(static_cast<std::uint8_t>(c));
  }
  return payload;
}

Status decode_error_status(ByteSpan payload) {
  if (payload.empty()) {
    return internal_error("malformed error-status frame");
  }
  const StatusCode code = status_code_from_wire(payload[0]);
  std::string message(reinterpret_cast<const char*>(payload.data()) + 1,
                      payload.size() - 1);
  if (code == StatusCode::kOk) {
    return internal_error("error-status frame carried OK: " + message);
  }
  return Status(code, std::move(message));
}

}  // namespace xsearch::net
