#include "net/frame.hpp"

namespace xsearch::net {

Status write_frame(TcpStream& stream, FrameType type, ByteSpan payload) {
  if (payload.size() > kMaxFramePayload) {
    return invalid_argument("frame payload too large");
  }
  Bytes header(5);
  store_be32(header.data(), static_cast<std::uint32_t>(payload.size() + 1));
  header[4] = static_cast<std::uint8_t>(type);
  XS_RETURN_IF_ERROR(stream.write_all(header));
  return stream.write_all(payload);
}

Result<Frame> read_frame(TcpStream& stream) {
  auto header = stream.read_exact(4);
  if (!header) return header.status();
  const std::uint32_t length = load_be32(header.value().data());
  if (length == 0 || length > kMaxFramePayload + 1) {
    return data_loss("frame length out of range");
  }
  auto body = stream.read_exact(length);
  if (!body) return body.status();

  Frame frame;
  frame.type = static_cast<FrameType>(body.value()[0]);
  frame.payload.assign(body.value().begin() + 1, body.value().end());
  return frame;
}

}  // namespace xsearch::net
