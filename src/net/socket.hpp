// RAII TCP sockets (IPv4, blocking I/O with per-call deadlines plus
// nonblocking readiness-loop primitives).
//
// The deployment frontend of the X-Search proxy: the paper's prototype was
// exercised over the network by third-party HTTP clients and wrk2; this
// module provides the equivalent transport for this reproduction — a
// listener plus connected streams with exact-read/exact-write helpers, all
// file descriptors owned RAII-style.
//
// Every blocking I/O helper takes a `Deadline`: a finite deadline is
// enforced with SO_RCVTIMEO/SO_SNDTIMEO (re-armed with the remaining budget
// on every iteration of a partial read/write, so a peer trickling one byte
// per timeout cannot stretch the call), and expiry surfaces as
// kDeadlineExceeded. The default Deadline is infinite, which preserves the
// historical blocking behaviour.
//
// The nonblocking surface (`set_nonblocking`, `read_some`, `write_some`,
// `accept_nonblocking`) is what net/reactor.hpp drives from its epoll
// loops: single-shot calls that report would-block/EOF as data instead of
// blocking, with gather writes for batched replies and accept-time
// EMFILE/ENFILE detection so fd exhaustion is a typed event rather than an
// accept-loop spin.
//
// `ByteStream` is the seam the frame layer reads/writes through; the chaos
// harness (net/chaos.hpp) wraps a transport behind the same interface to
// inject deterministic wire faults.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>

#include "common/bytes.hpp"
#include "common/deadline.hpp"
#include "common/status.hpp"

namespace xsearch::net {

/// Outcome of one nonblocking I/O attempt. Exactly one of `bytes > 0`,
/// `would_block`, or `eof` describes what happened; hard transport errors
/// surface as a failed Result instead.
struct IoProgress {
  std::size_t bytes = 0;     // bytes moved by this call
  bool would_block = false;  // kernel had no data / no buffer space
  bool eof = false;          // orderly peer close (reads only)
};

/// One gather-write buffer (mirrors struct iovec without leaking the POSIX
/// header into every includer).
struct ConstBuffer {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
};

/// Owning wrapper around a file descriptor.
class FileDescriptor {
 public:
  FileDescriptor() = default;
  explicit FileDescriptor(int fd) : fd_(fd) {}
  ~FileDescriptor() { reset(); }

  FileDescriptor(FileDescriptor&& other) noexcept : fd_(other.release()) {}
  FileDescriptor& operator=(FileDescriptor&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  FileDescriptor(const FileDescriptor&) = delete;
  FileDescriptor& operator=(const FileDescriptor&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Releases ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the descriptor (idempotent).
  void reset();

 private:
  int fd_ = -1;
};

/// Abstract byte transport: what the frame layer needs from a connection.
/// Implemented by TcpStream (the real socket) and ChaosSocket (the
/// deterministic fault-injection wrapper in net/chaos.hpp).
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Writes the whole buffer before `deadline` or fails.
  [[nodiscard]] virtual Status write_all(ByteSpan data,
                                         const Deadline& deadline) = 0;

  /// Reads exactly `n` bytes before `deadline` or fails (peer close
  /// mid-read is DATA_LOSS; deadline expiry is DEADLINE_EXCEEDED).
  [[nodiscard]] virtual Result<Bytes> read_exact(std::size_t n,
                                                 const Deadline& deadline) = 0;

  /// Shuts down both directions: any thread blocked on this stream wakes
  /// up with EOF.
  virtual void shutdown_both() = 0;

  [[nodiscard]] virtual bool valid() const = 0;

  // Deadline-free conveniences (infinite deadline = historical blocking I/O).
  [[nodiscard]] Status write_all(ByteSpan data) {
    return write_all(data, Deadline());
  }
  [[nodiscard]] Result<Bytes> read_exact(std::size_t n) {
    return read_exact(n, Deadline());
  }
};

/// A connected TCP stream.
class TcpStream : public ByteStream {
 public:
  TcpStream() = default;
  explicit TcpStream(FileDescriptor fd) : fd_(std::move(fd)) {}

  TcpStream(TcpStream&&) noexcept = default;
  TcpStream& operator=(TcpStream&&) noexcept = default;

  /// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1").
  [[nodiscard]] static Result<TcpStream> connect(const std::string& host,
                                                 std::uint16_t port);

  using ByteStream::read_exact;
  using ByteStream::write_all;

  [[nodiscard]] Status write_all(ByteSpan data,
                                 const Deadline& deadline) override;
  [[nodiscard]] Result<Bytes> read_exact(std::size_t n,
                                         const Deadline& deadline) override;

  [[nodiscard]] bool valid() const override { return fd_.valid(); }

  /// Switches the socket between blocking and nonblocking mode. The
  /// nonblocking helpers below require nonblocking mode; the deadline-based
  /// helpers above require blocking mode (SO_*TIMEO has no effect on a
  /// nonblocking fd).
  [[nodiscard]] Status set_nonblocking(bool enabled);

  /// Nonblocking single-shot read into `out`. Returns the bytes moved, or
  /// would_block/eof; ECONNRESET and friends fail the Result.
  [[nodiscard]] Result<IoProgress> read_some(std::span<std::uint8_t> out);

  /// Nonblocking gather write (sendmsg with MSG_NOSIGNAL): moves as many
  /// bytes as the socket buffer accepts from the fronts of `buffers`.
  [[nodiscard]] Result<IoProgress> write_some(
      std::span<const ConstBuffer> buffers);

  /// The raw descriptor, for epoll registration only — ownership stays here.
  [[nodiscard]] int native_fd() const { return fd_.get(); }

  /// Half-closes the write side (signals EOF to the peer).
  void shutdown_write();

  /// Shuts down both directions: any thread blocked reading this stream
  /// wakes up with EOF. Used by servers to unblock connection workers on
  /// shutdown.
  void shutdown_both() override;

 private:
  /// Arms SO_RCVTIMEO/SO_SNDTIMEO for the remaining budget (or disarms for
  /// an infinite deadline, skipping the syscall when already disarmed).
  [[nodiscard]] Status arm_timeout(int option, const Deadline& deadline,
                                   bool& armed);

  FileDescriptor fd_;
  bool recv_timeout_armed_ = false;
  bool send_timeout_armed_ = false;
};

/// A listening TCP socket bound to 127.0.0.1.
///
/// `close()` is callable from a different thread than the one blocked in
/// `accept()` — the idiom every server shutdown path uses — so it only
/// marks the listener closed and shuts the socket down (which both wakes a
/// parked accept and makes the kernel refuse new connections). The
/// descriptor itself is released by `release()` or destruction, once no
/// thread can be inside accept() anymore; closing it eagerly in close()
/// would let the kernel reuse the fd number for an unrelated socket while
/// accept() still holds it.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { release(); }

  TcpListener(TcpListener&& other) noexcept
      : fd_(other.fd_.exchange(-1, std::memory_order_acq_rel)),
        port_(other.port_),
        closed_(other.closed_.load(std::memory_order_acquire)) {}
  TcpListener& operator=(TcpListener&& other) noexcept {
    if (this != &other) {
      release();
      fd_.store(other.fd_.exchange(-1, std::memory_order_acq_rel),
                std::memory_order_release);
      port_ = other.port_;
      closed_.store(other.closed_.load(std::memory_order_acquire),
                    std::memory_order_release);
    }
    return *this;
  }
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds to loopback:`port` (0 = ephemeral) and listens.
  [[nodiscard]] static Result<TcpListener> bind(std::uint16_t port);

  /// The actual bound port (useful with port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Blocks until a client connects. Fails with UNAVAILABLE once the
  /// listener has been closed from another thread.
  [[nodiscard]] Result<TcpStream> accept();

  /// Outcome of one nonblocking accept attempt. `stream` is connected (and
  /// already nonblocking + TCP_NODELAY) only when both flags are false.
  struct Accepted {
    TcpStream stream;
    bool would_block = false;
    /// The process is out of descriptors (EMFILE/ENFILE). The pending
    /// connection stays in the kernel backlog; the caller must back off
    /// instead of retrying immediately (the condition does not clear by
    /// itself, so a tight retry loop is a busy spin).
    bool fd_exhausted = false;
  };

  /// Nonblocking accept (requires set_nonblocking(true)). Transient
  /// per-connection errors (ECONNABORTED, EINTR) are retried internally;
  /// UNAVAILABLE once the listener has been closed.
  [[nodiscard]] Result<Accepted> accept_nonblocking();

  /// Switches the listening socket between blocking and nonblocking mode.
  [[nodiscard]] Status set_nonblocking(bool enabled);

  /// The raw descriptor, for epoll registration only — ownership stays here.
  [[nodiscard]] int native_fd() const {
    return fd_.load(std::memory_order_acquire);
  }

  /// Unblocks pending accept()s, refuses new connections, and prevents new
  /// accepts. Idempotent and safe to call concurrently with accept(). The
  /// descriptor (and with it the bound port) is released by `release()` or
  /// destruction, not here — see the class comment.
  void close();

  /// Fully closes the descriptor, freeing the port for rebinding. Only
  /// callable once no thread can be inside accept() anymore (e.g. after a
  /// server joined its accept thread). Idempotent; implied by destruction.
  void release();

  [[nodiscard]] bool valid() const {
    return !closed_.load(std::memory_order_acquire) &&
           fd_.load(std::memory_order_acquire) >= 0;
  }

 private:
  TcpListener(FileDescriptor fd, std::uint16_t port)
      : fd_(fd.release()), port_(port) {}

  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
  std::atomic<bool> closed_{false};
};

}  // namespace xsearch::net
