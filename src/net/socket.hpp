// RAII TCP sockets (IPv4, blocking I/O).
//
// The deployment frontend of the X-Search proxy: the paper's prototype was
// exercised over the network by third-party HTTP clients and wrk2; this
// module provides the equivalent transport for this reproduction — a
// listener plus connected streams with exact-read/exact-write helpers, all
// file descriptors owned RAII-style.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace xsearch::net {

/// Owning wrapper around a file descriptor.
class FileDescriptor {
 public:
  FileDescriptor() = default;
  explicit FileDescriptor(int fd) : fd_(fd) {}
  ~FileDescriptor() { reset(); }

  FileDescriptor(FileDescriptor&& other) noexcept : fd_(other.release()) {}
  FileDescriptor& operator=(FileDescriptor&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  FileDescriptor(const FileDescriptor&) = delete;
  FileDescriptor& operator=(const FileDescriptor&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Releases ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the descriptor (idempotent).
  void reset();

 private:
  int fd_ = -1;
};

/// A connected TCP stream.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(FileDescriptor fd) : fd_(std::move(fd)) {}

  /// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1").
  [[nodiscard]] static Result<TcpStream> connect(const std::string& host,
                                                 std::uint16_t port);

  /// Writes the whole buffer or fails.
  [[nodiscard]] Status write_all(ByteSpan data);

  /// Reads exactly `n` bytes or fails (peer close mid-read is DATA_LOSS).
  [[nodiscard]] Result<Bytes> read_exact(std::size_t n);

  [[nodiscard]] bool valid() const { return fd_.valid(); }

  /// Half-closes the write side (signals EOF to the peer).
  void shutdown_write();

  /// Shuts down both directions: any thread blocked reading this stream
  /// wakes up with EOF. Used by servers to unblock connection workers on
  /// shutdown.
  void shutdown_both();

 private:
  FileDescriptor fd_;
};

/// A listening TCP socket bound to 127.0.0.1.
///
/// `close()` is callable from a different thread than the one blocked in
/// `accept()` — the idiom every server shutdown path uses — so it only
/// marks the listener closed and shuts the socket down (which both wakes a
/// parked accept and makes the kernel refuse new connections). The
/// descriptor itself is released by `release()` or destruction, once no
/// thread can be inside accept() anymore; closing it eagerly in close()
/// would let the kernel reuse the fd number for an unrelated socket while
/// accept() still holds it.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { release(); }

  TcpListener(TcpListener&& other) noexcept
      : fd_(other.fd_.exchange(-1, std::memory_order_acq_rel)),
        port_(other.port_),
        closed_(other.closed_.load(std::memory_order_acquire)) {}
  TcpListener& operator=(TcpListener&& other) noexcept {
    if (this != &other) {
      release();
      fd_.store(other.fd_.exchange(-1, std::memory_order_acq_rel),
                std::memory_order_release);
      port_ = other.port_;
      closed_.store(other.closed_.load(std::memory_order_acquire),
                    std::memory_order_release);
    }
    return *this;
  }
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds to loopback:`port` (0 = ephemeral) and listens.
  [[nodiscard]] static Result<TcpListener> bind(std::uint16_t port);

  /// The actual bound port (useful with port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Blocks until a client connects. Fails with UNAVAILABLE once the
  /// listener has been closed from another thread.
  [[nodiscard]] Result<TcpStream> accept();

  /// Unblocks pending accept()s, refuses new connections, and prevents new
  /// accepts. Idempotent and safe to call concurrently with accept(). The
  /// descriptor (and with it the bound port) is released by `release()` or
  /// destruction, not here — see the class comment.
  void close();

  /// Fully closes the descriptor, freeing the port for rebinding. Only
  /// callable once no thread can be inside accept() anymore (e.g. after a
  /// server joined its accept thread). Idempotent; implied by destruction.
  void release();

  [[nodiscard]] bool valid() const {
    return !closed_.load(std::memory_order_acquire) &&
           fd_.load(std::memory_order_acquire) >= 0;
  }

 private:
  TcpListener(FileDescriptor fd, std::uint16_t port)
      : fd_(fd.release()), port_(port) {}

  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
  std::atomic<bool> closed_{false};
};

}  // namespace xsearch::net
