// HTTP compatibility frontend (paper §6.3 footnote 3).
//
// Lets unmodified third-party clients (wget, curl, wrk2) use X-Search with
// regular `GET /search?q=...` requests. The frontend terminates HTTP,
// forwards the query through an internal attested broker into the enclave,
// and renders the filtered results as JSON.
//
// Connections are served by the same net::Reactor event loops as the
// framed proxy frontend — requests are assembled incrementally out of each
// connection's receive buffer and handled on dispatch workers — so the
// frontend no longer keeps its own thread-per-connection registry.
//
// Privacy note, mirrored from the paper's deployment: a client that speaks
// plain HTTP forgoes the client→proxy channel encryption (it would use TLS
// in production); unlinkability from the *search engine* and query
// obfuscation are unaffected, since both happen at the proxy.
#pragma once

#include <atomic>
#include <memory>

#include "common/mutex.hpp"
#include "net/http.hpp"
#include "net/reactor.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/broker.hpp"
#include "xsearch/proxy.hpp"

namespace xsearch::net {

class HttpProtocol;  // per-connection HTTP state machine (defined in .cpp)

class HttpFrontend {
 public:
  /// Binds loopback:`port` (0 = ephemeral) and serves:
  ///   GET /search?q=<query>   -> JSON result list
  ///   GET /healthz            -> "ok"
  [[nodiscard]] static Result<std::unique_ptr<HttpFrontend>> start(
      core::ProxyHandler& proxy, const sgx::AttestationAuthority& authority,
      std::uint16_t port = 0);

  ~HttpFrontend();

  HttpFrontend(const HttpFrontend&) = delete;
  HttpFrontend& operator=(const HttpFrontend&) = delete;

  [[nodiscard]] std::uint16_t port() const { return reactor_->port(); }

  void stop();

  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  friend class HttpProtocol;

  HttpFrontend(core::ProxyHandler& proxy,
               const sgx::AttestationAuthority& authority);

  [[nodiscard]] Bytes handle_request(const HttpRequest& request);

  core::ProxyHandler* proxy_;
  const sgx::AttestationAuthority* authority_;

  // One attested broker shared by all dispatch workers, serialized: the
  // SecureChannel record counters require ordered use.
  Mutex broker_mutex_;
  std::unique_ptr<core::ClientBroker> broker_ XS_PT_GUARDED_BY(broker_mutex_);

  std::atomic<std::uint64_t> requests_{0};
  std::unique_ptr<Reactor> reactor_;
};

}  // namespace xsearch::net
