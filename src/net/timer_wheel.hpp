// Hashed timer wheel for the reactor's deadline and idle-TTL bookkeeping.
//
// Each reactor shard owns one wheel and drives it from its event loop, so
// the wheel is deliberately single-threaded: no locks, no atomics. Timers
// are lazily validated — `schedule` never cancels and a key may have any
// number of live entries; when an entry fires the shard checks the
// connection's *actual* deadlines and either acts or re-schedules. That
// makes arming O(1) and keeps the hot path (a connection touching its
// idle deadline on every frame) free of bookkeeping: activity just updates
// a timestamp, and the one stale wheel entry re-schedules itself when it
// fires. The cost is bounded spurious wakeups (at most one per connection
// per TTL window), which is the classic trade hashed wheels make.
#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.hpp"

namespace xsearch::net {

class TimerWheel {
 public:
  struct Entry {
    std::uint64_t key = 0;
    Nanos due = 0;
  };

  /// `now` anchors the wheel's tick counter; `tick` is the firing
  /// granularity (deadlines are rounded up to the next tick boundary).
  explicit TimerWheel(Nanos now, Nanos tick = 10 * kMilli,
                      std::size_t slots = 256)
      : tick_(tick > 0 ? tick : kMilli),
        slots_(slots > 0 ? slots : 1),
        last_tick_(tick_index(now)) {}

  /// Arms `key` to fire at (the tick boundary at or after) `due`.
  void schedule(std::uint64_t key, Nanos due) {
    // Round *up* to the boundary at or after `due`: slot T is visited as
    // soon as now reaches T*tick, so rounding down would visit the slot up
    // to one tick early, find the entry not yet due, and strand it for a
    // full revolution.
    std::uint64_t tick = tick_index(due > 0 ? due + tick_ - 1 : 0);
    // An already-due deadline still lands in the *next* slot to be visited,
    // never in one behind the cursor (which would wait a full revolution).
    if (tick <= last_tick_) tick = last_tick_ + 1;
    slots_[tick % slots_.size()].push_back(Entry{key, due});
    ++scheduled_;
  }

  /// Moves every entry due at or before `now` into `fired`. Entries hashed
  /// into a visited slot but due in a later revolution stay put.
  void advance(Nanos now, std::vector<Entry>& fired) {
    const std::uint64_t now_tick = tick_index(now);
    if (now_tick <= last_tick_ || scheduled_ == 0) {
      last_tick_ = now_tick > last_tick_ ? now_tick : last_tick_;
      return;
    }
    // Visit each slot at most once even if we slept through several wheel
    // revolutions.
    const std::uint64_t span = now_tick - last_tick_;
    const std::uint64_t visits =
        span < slots_.size() ? span : static_cast<std::uint64_t>(slots_.size());
    for (std::uint64_t i = 1; i <= visits; ++i) {
      auto& slot = slots_[(last_tick_ + i) % slots_.size()];
      std::size_t kept = 0;
      for (Entry& entry : slot) {
        if (entry.due <= now) {
          fired.push_back(entry);
          --scheduled_;
        } else {
          slot[kept++] = entry;
        }
      }
      slot.resize(kept);
    }
    last_tick_ = now_tick;
  }

  [[nodiscard]] bool empty() const { return scheduled_ == 0; }

  /// epoll_wait timeout hint: milliseconds until the next tick boundary
  /// (rounded up, so a due timer is never slept past), or -1 when nothing
  /// is armed.
  [[nodiscard]] int poll_timeout_millis(Nanos now) const {
    if (scheduled_ == 0) return -1;
    const Nanos boundary = static_cast<Nanos>(tick_index(now) + 1) * tick_;
    const Nanos wait = boundary > now ? boundary - now : 0;
    const Nanos millis = (wait + kMilli - 1) / kMilli;
    return millis > 0 ? static_cast<int>(millis) : 1;
  }

 private:
  [[nodiscard]] std::uint64_t tick_index(Nanos at) const {
    return at <= 0 ? 0 : static_cast<std::uint64_t>(at) /
                             static_cast<std::uint64_t>(tick_);
  }

  Nanos tick_;
  std::vector<std::vector<Entry>> slots_;
  std::uint64_t last_tick_;
  std::size_t scheduled_ = 0;
};

}  // namespace xsearch::net
