#include "net/chaos.hpp"

#include <chrono>
#include <thread>

namespace xsearch::net {

FaultPlan::FaultPlan(Options options)
    : options_(options),
      rng_(options.seed),
      faults_left_(options.fault_ops) {}

FaultPlan::Decision FaultPlan::next(bool reading) {
  MutexLock lock(mutex_);
  Decision decision;
  decision.salt = rng_.next();
  if (faults_left_ == 0) return decision;

  const double u = rng_.uniform_double();
  double edge = options_.delay_p;
  if (u < edge) {
    decision.action = FaultAction::kDelay;
    decision.delay = options_.max_delay > 0
                         ? static_cast<Nanos>(rng_.uniform(
                               static_cast<std::uint64_t>(options_.max_delay)))
                         : 0;
  } else if (u < (edge += options_.partial_p)) {
    decision.action = FaultAction::kPartialThenReset;
  } else if (u < (edge += options_.drop_p)) {
    // A "dropped" read has no meaning at the exact-read seam; the nearest
    // real-world event is the connection dying under the reader.
    decision.action = reading ? FaultAction::kReset : FaultAction::kDrop;
  } else if (u < (edge += options_.reset_p)) {
    decision.action = FaultAction::kReset;
  } else if (u < (edge += options_.garbage_p)) {
    decision.action = FaultAction::kGarbage;
  }
  if (decision.action != FaultAction::kPass) {
    --faults_left_;
    ++injected_;
  }
  return decision;
}

Status FaultPlan::engine_call() {
  Nanos delay = 0;
  bool fail = false;
  {
    MutexLock lock(mutex_);
    if (faults_left_ > 0) {
      if (options_.engine_delay_p > 0 &&
          rng_.uniform_double() < options_.engine_delay_p) {
        delay = options_.engine_delay;
      }
      if (options_.engine_fail_p > 0 &&
          rng_.uniform_double() < options_.engine_fail_p) {
        fail = true;
      }
      if (delay > 0 || fail) {
        --faults_left_;
        ++injected_;
      }
    }
  }
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
  }
  if (fail) return unavailable("chaos: injected engine fault");
  return Status::ok();
}

bool FaultPlan::exhausted() const {
  MutexLock lock(mutex_);
  return faults_left_ == 0;
}

std::uint64_t FaultPlan::faults_injected() const {
  MutexLock lock(mutex_);
  return injected_;
}

void ChaosSocket::bounded_sleep(Nanos delay, const Deadline& deadline) {
  Nanos sleep = delay;
  if (!deadline.is_infinite()) {
    const Nanos cap = deadline.remaining() + kMilli;
    if (sleep > cap) sleep = cap;
  }
  if (sleep > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(sleep));
  }
}

Status ChaosSocket::write_all(ByteSpan data, const Deadline& deadline) {
  const FaultPlan::Decision decision = plan_->next(/*reading=*/false);
  switch (decision.action) {
    case FaultAction::kPass:
      return inner_->write_all(data, deadline);
    case FaultAction::kDelay:
      bounded_sleep(decision.delay, deadline);
      if (deadline.expired()) {
        return deadline_exceeded("chaos: write stalled past deadline");
      }
      return inner_->write_all(data, deadline);
    case FaultAction::kPartialThenReset: {
      if (data.size() > 1) {
        (void)inner_->write_all(data.first(data.size() / 2), deadline);
      }
      inner_->shutdown_both();
      return unavailable("chaos: connection reset mid-write");
    }
    case FaultAction::kDrop:
      // Bytes vanish in flight; the writer believes they were delivered.
      // Only a read deadline on the response can surface this.
      return Status::ok();
    case FaultAction::kReset:
      inner_->shutdown_both();
      return unavailable("chaos: connection reset");
    case FaultAction::kGarbage: {
      Bytes corrupted(data.begin(), data.end());
      if (!corrupted.empty()) {
        corrupted[decision.salt % corrupted.size()] ^= 0xff;
        corrupted[(decision.salt >> 16) % corrupted.size()] ^= 0x55;
      }
      return inner_->write_all(corrupted, deadline);
    }
  }
  return internal_error("chaos: unknown fault action");
}

Result<Bytes> ChaosSocket::read_exact(std::size_t n, const Deadline& deadline) {
  const FaultPlan::Decision decision = plan_->next(/*reading=*/true);
  switch (decision.action) {
    case FaultAction::kPass:
      return inner_->read_exact(n, deadline);
    case FaultAction::kDelay:
      bounded_sleep(decision.delay, deadline);
      if (deadline.expired()) {
        return deadline_exceeded("chaos: read stalled past deadline");
      }
      return inner_->read_exact(n, deadline);
    case FaultAction::kPartialThenReset: {
      if (n > 1) {
        (void)inner_->read_exact(n / 2, deadline);
      }
      inner_->shutdown_both();
      return unavailable("chaos: connection reset mid-read");
    }
    case FaultAction::kDrop:  // never drawn for reads; keep the switch total
    case FaultAction::kReset:
      inner_->shutdown_both();
      return unavailable("chaos: connection reset");
    case FaultAction::kGarbage: {
      auto bytes = inner_->read_exact(n, deadline);
      if (!bytes) return bytes.status();
      Bytes corrupted = std::move(bytes).value();
      if (!corrupted.empty()) {
        corrupted[decision.salt % corrupted.size()] ^= 0xff;
        corrupted[(decision.salt >> 16) % corrupted.size()] ^= 0x55;
      }
      return corrupted;
    }
  }
  return internal_error("chaos: unknown fault action");
}

}  // namespace xsearch::net
