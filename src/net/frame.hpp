// Length-prefixed message framing over a ByteStream.
//
// Every message on the client↔proxy wire is `u32_be length || type byte ||
// payload`. The framing layer is deliberately dumb: all confidentiality and
// integrity comes from the SecureChannel records *inside* the frames, so a
// network attacker tampering with frames only produces authentication
// failures at the enclave boundary.
//
// Version 2 frames carry the request's remaining deadline budget. The top
// bit of the length word (free: payloads are capped at 4 MiB) marks a v2
// frame, which inserts a `u32_be budget_millis` between length and type:
//
//   v1:  u32_be length          || type || payload
//   v2:  u32_be (V2 | length)   || u32_be budget_millis || type || payload
//
// budget_millis is *remaining budget*, not an absolute time (the endpoints
// share no clock); 0 means "no deadline". v1 frames read as "no deadline",
// so old peers interoperate unchanged, and a receiver answers in the version
// the sender spoke (negotiation is per-connection, keyed off the first
// frame received — see ProxyServer).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/deadline.hpp"
#include "common/status.hpp"
#include "net/socket.hpp"

namespace xsearch::net {

/// Frame types of the proxy protocol.
enum class FrameType : std::uint8_t {
  kHello = 0x01,          // client ephemeral public key
  kHelloReply = 0x81,     // session id + quote + server ephemeral key
  kQuery = 0x02,          // session id + encrypted query record
  kQueryReply = 0x82,     // encrypted response record
  kBatchQuery = 0x03,     // session id + encrypted batch record (many
                          // queries, ONE seal/open for the whole batch)
  kBatchReply = 0x83,     // encrypted batch response record
  kErrorStatus = 0x7e,    // u8 status code || human-readable message (v2)
  kError = 0x7f,          // human-readable error string
};

struct Frame {
  FrameType type = FrameType::kError;
  Bytes payload;
  /// Remaining request budget carried by a v2 frame; 0 = no deadline.
  std::uint32_t budget_millis = 0;
  /// Whether the peer sent this frame with the v2 marker.
  bool v2 = false;
};

/// Hard cap keeps a malicious peer from forcing giant allocations.
inline constexpr std::size_t kMaxFramePayload = 4u * 1024 * 1024;

/// Length-word top bit marking a v2 (budget-carrying) frame.
inline constexpr std::uint32_t kFrameV2Bit = 0x8000'0000u;

struct FrameWriteOptions {
  /// Deadline for the socket writes themselves (infinite by default).
  Deadline io_deadline;
  /// Emit a v2 frame carrying `budget_millis`. Off by default: a frame
  /// written without options is byte-identical to the historical protocol.
  bool carry_budget = false;
  std::uint32_t budget_millis = 0;
};

struct FrameReadOptions {
  /// How long to wait for the frame to start (and, absent a body budget,
  /// for the whole frame). Infinite by default — servers idle here between
  /// requests on a healthy connection.
  Deadline io_deadline;
  /// Once the length word has arrived, extra bound on reading the rest of
  /// the frame (0 = none). This is the anti-slowloris knob: an idle peer is
  /// fine, a peer that *starts* a frame must finish it promptly.
  Nanos body_budget = 0;
};

/// Incremental, zero-copy frame parser over a connection's receive buffer.
///
/// Where `read_frame` pulls fresh `Bytes` out of a stream field by field,
/// the cursor examines whatever bytes the reactor has buffered and either
/// reports how many more are needed or yields a `View` whose payload is a
/// span *into the caller's buffer* — no allocation, no copy (the PR 3
/// tokenizer idiom applied to the wire). The caller owns buffer lifetime:
/// a View is valid only until the buffer is mutated or the parsed prefix
/// (`frame_bytes`) is consumed.
class FrameCursor {
 public:
  /// A parsed frame borrowed from the buffer.
  struct View {
    FrameType type = FrameType::kError;
    ByteSpan payload;                  // view into the parsed buffer
    std::uint32_t budget_millis = 0;   // v2 deadline budget (0 = none)
    bool v2 = false;
    std::size_t frame_bytes = 0;       // total wire size; consume this much
  };

  enum class State : std::uint8_t {
    kNeedHeader,  // length word (or v2 budget word) incomplete
    kNeedBody,    // length known, body incomplete
    kFrame,       // `frame` holds one complete frame
    kError,       // malformed input; the connection is unrecoverable
  };

  struct Step {
    State state = State::kNeedHeader;
    View frame;            // valid when state == kFrame
    /// Total buffered bytes required before the next parse can progress
    /// (valid for kNeedHeader/kNeedBody; a read-size hint, not a promise
    /// the frame completes there).
    std::size_t need = 0;
    Status error = Status::ok();  // valid when state == kError
  };

  /// Examines `buffered` (the unconsumed front of a receive buffer) and
  /// parses at most one frame. Pure and stateless: re-invoke with a longer
  /// prefix after reading more, or with the remainder after consuming
  /// `frame_bytes`.
  [[nodiscard]] static Step parse(ByteSpan buffered);
};

/// Serializes a frame header (length word, optional budget word, type
/// byte) for `payload_size` payload bytes. The write side of FrameCursor:
/// queue the header and the payload as separate buffers and a vectored
/// write sends both without gluing them into a fresh allocation.
[[nodiscard]] Result<Bytes> encode_frame_header(
    FrameType type, std::size_t payload_size,
    const FrameWriteOptions& options = {});

/// Writes one frame.
[[nodiscard]] Status write_frame(ByteStream& stream, FrameType type,
                                 ByteSpan payload,
                                 const FrameWriteOptions& options = {});

/// Reads one frame (either version); DATA_LOSS on malformed/oversized input
/// or mid-frame EOF, DEADLINE_EXCEEDED past the read options' deadlines.
[[nodiscard]] Result<Frame> read_frame(ByteStream& stream,
                                       const FrameReadOptions& options = {});

/// Payload helpers for kErrorStatus frames (`u8 code || message`).
[[nodiscard]] Bytes encode_error_status(const Status& status);
/// The carried Status; malformed payloads (or a carried OK) decode to
/// kInternal so an error frame can never read as success.
[[nodiscard]] Status decode_error_status(ByteSpan payload);

}  // namespace xsearch::net
