// Length-prefixed message framing over a TcpStream.
//
// Every message on the client↔proxy wire is `u32_be length || type byte ||
// payload`. The framing layer is deliberately dumb: all confidentiality and
// integrity comes from the SecureChannel records *inside* the frames, so a
// network attacker tampering with frames only produces authentication
// failures at the enclave boundary.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "net/socket.hpp"

namespace xsearch::net {

/// Frame types of the proxy protocol.
enum class FrameType : std::uint8_t {
  kHello = 0x01,          // client ephemeral public key
  kHelloReply = 0x81,     // session id + quote + server ephemeral key
  kQuery = 0x02,          // session id + encrypted query record
  kQueryReply = 0x82,     // encrypted response record
  kBatchQuery = 0x03,     // session id + encrypted batch record (many
                          // queries, ONE seal/open for the whole batch)
  kBatchReply = 0x83,     // encrypted batch response record
  kError = 0x7f,          // human-readable error string
};

struct Frame {
  FrameType type = FrameType::kError;
  Bytes payload;
};

/// Hard cap keeps a malicious peer from forcing giant allocations.
inline constexpr std::size_t kMaxFramePayload = 4u * 1024 * 1024;

/// Writes one frame.
[[nodiscard]] Status write_frame(TcpStream& stream, FrameType type, ByteSpan payload);

/// Reads one frame; DATA_LOSS on malformed/oversized input or mid-frame EOF.
[[nodiscard]] Result<Frame> read_frame(TcpStream& stream);

}  // namespace xsearch::net
