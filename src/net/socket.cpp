#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace xsearch::net {

namespace {

[[nodiscard]] std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

[[nodiscard]] Status set_fd_nonblocking(int fd, bool enabled) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return unavailable(errno_message("fcntl(F_GETFL)"));
  const int wanted = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted != flags && ::fcntl(fd, F_SETFL, wanted) != 0) {
    return unavailable(errno_message("fcntl(F_SETFL)"));
  }
  return Status::ok();
}

}  // namespace

void FileDescriptor::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpStream> TcpStream::connect(const std::string& host, std::uint16_t port) {
  FileDescriptor fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return unavailable(errno_message("socket"));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return invalid_argument("not a numeric IPv4 address: " + host);
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return unavailable(errno_message("connect"));
  }
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpStream(std::move(fd));
}

Status TcpStream::arm_timeout(int option, const Deadline& deadline,
                              bool& armed) {
  if (deadline.is_infinite() && !armed) return Status::ok();
  timeval tv{};
  if (!deadline.is_infinite()) {
    const Nanos remaining = deadline.remaining();
    tv.tv_sec = static_cast<time_t>(remaining / kSecond);
    tv.tv_usec = static_cast<suseconds_t>((remaining % kSecond) / kMicro);
    // A zero timeval means "block forever" to the kernel; a live-but-tiny
    // deadline must still time out, so round it up to the granularity floor.
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  }
  if (::setsockopt(fd_.get(), SOL_SOCKET, option, &tv, sizeof tv) != 0) {
    return unavailable(errno_message("setsockopt(timeout)"));
  }
  armed = !deadline.is_infinite();
  return Status::ok();
}

Status TcpStream::write_all(ByteSpan data, const Deadline& deadline) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    if (deadline.expired()) {
      return deadline_exceeded("send: deadline exceeded");
    }
    // Re-armed with the *remaining* budget each iteration: a peer draining
    // one byte per timeout window cannot stretch the call past its deadline
    // by more than one window.
    XS_RETURN_IF_ERROR(arm_timeout(SO_SNDTIMEO, deadline, send_timeout_armed_));
    const ssize_t n =
        ::send(fd_.get(), data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return deadline_exceeded("send: deadline exceeded");
      }
      return unavailable(errno_message("send"));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Result<Bytes> TcpStream::read_exact(std::size_t n, const Deadline& deadline) {
  Bytes out(n);
  std::size_t got = 0;
  while (got < n) {
    if (deadline.expired()) {
      return deadline_exceeded("recv: deadline exceeded");
    }
    XS_RETURN_IF_ERROR(arm_timeout(SO_RCVTIMEO, deadline, recv_timeout_armed_));
    const ssize_t r = ::recv(fd_.get(), out.data() + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return deadline_exceeded("recv: deadline exceeded");
      }
      return unavailable(errno_message("recv"));
    }
    if (r == 0) return data_loss("peer closed mid-message");
    got += static_cast<std::size_t>(r);
  }
  return out;
}

Status TcpStream::set_nonblocking(bool enabled) {
  return set_fd_nonblocking(fd_.get(), enabled);
}

Result<IoProgress> TcpStream::read_some(std::span<std::uint8_t> out) {
  IoProgress progress;
  if (out.empty()) return progress;
  for (;;) {
    const ssize_t r = ::recv(fd_.get(), out.data(), out.size(), 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        progress.would_block = true;
        return progress;
      }
      return unavailable(errno_message("recv"));
    }
    if (r == 0) {
      progress.eof = true;
      return progress;
    }
    progress.bytes = static_cast<std::size_t>(r);
    return progress;
  }
}

Result<IoProgress> TcpStream::write_some(std::span<const ConstBuffer> buffers) {
  IoProgress progress;
  // Cap the gather list well under IOV_MAX; anything longer flushes over
  // multiple calls anyway once the socket buffer fills.
  constexpr std::size_t kMaxIov = 64;
  iovec iov[kMaxIov];
  std::size_t count = 0;
  for (const ConstBuffer& buffer : buffers) {
    if (buffer.size == 0) continue;
    iov[count].iov_base = const_cast<std::uint8_t*>(buffer.data);
    iov[count].iov_len = buffer.size;
    if (++count == kMaxIov) break;
  }
  if (count == 0) return progress;

  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = count;
  for (;;) {
    const ssize_t n = ::sendmsg(fd_.get(), &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        progress.would_block = true;
        return progress;
      }
      return unavailable(errno_message("sendmsg"));
    }
    progress.bytes = static_cast<std::size_t>(n);
    return progress;
  }
}

void TcpStream::shutdown_write() {
  if (fd_.valid()) (void)::shutdown(fd_.get(), SHUT_WR);
}

void TcpStream::shutdown_both() {
  if (fd_.valid()) (void)::shutdown(fd_.get(), SHUT_RDWR);
}

Result<TcpListener> TcpListener::bind(std::uint16_t port) {
  FileDescriptor fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return unavailable(errno_message("socket"));

  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return unavailable(errno_message("bind"));
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) {
    return unavailable(errno_message("listen"));
  }

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return unavailable(errno_message("getsockname"));
  }
  return TcpListener(std::move(fd), ntohs(bound.sin_port));
}

Result<TcpStream> TcpListener::accept() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0 || closed_.load(std::memory_order_acquire)) {
    return unavailable("listener closed");
  }
  // The fd stays open until destruction, so this call can never land on a
  // kernel-reused descriptor even if close() runs concurrently; a shutdown
  // socket makes ::accept return with an error instead.
  const int client = ::accept(fd, nullptr, nullptr);
  if (client < 0) {
    return unavailable(errno_message("accept"));
  }
  if (closed_.load(std::memory_order_acquire)) {
    ::close(client);
    return unavailable("listener closed");
  }
  const int one = 1;
  (void)::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpStream(FileDescriptor(client));
}

Result<TcpListener::Accepted> TcpListener::accept_nonblocking() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0 || closed_.load(std::memory_order_acquire)) {
    return unavailable("listener closed");
  }
  for (;;) {
    const int client = ::accept4(fd, nullptr, nullptr, SOCK_NONBLOCK);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        Accepted accepted;
        accepted.would_block = true;
        return accepted;
      }
      if (errno == EMFILE || errno == ENFILE) {
        Accepted accepted;
        accepted.fd_exhausted = true;
        return accepted;
      }
      return unavailable(errno_message("accept4"));
    }
    if (closed_.load(std::memory_order_acquire)) {
      ::close(client);
      return unavailable("listener closed");
    }
    const int one = 1;
    (void)::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    Accepted accepted;
    accepted.stream = TcpStream(FileDescriptor(client));
    return accepted;
  }
}

Status TcpListener::set_nonblocking(bool enabled) {
  return set_fd_nonblocking(fd_.load(std::memory_order_acquire), enabled);
}

void TcpListener::close() {
  closed_.store(true, std::memory_order_release);
  const int fd = fd_.load(std::memory_order_acquire);
  // Shutdown wakes any accept() parked on the socket and makes the kernel
  // refuse new connections; the descriptor is released at destruction.
  if (fd >= 0) (void)::shutdown(fd, SHUT_RDWR);
}

void TcpListener::release() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

}  // namespace xsearch::net
