// Event-driven data plane: epoll readiness loops for the proxy frontends.
//
// `Reactor` replaces the thread-per-connection pool that served the paper's
// proxy: N event-loop shards, each owning an epoll descriptor, a hashed
// timer wheel (idle TTL, slow-writer/slow-reader budgets, accept backoff)
// and an eventfd wakeup, drive per-connection state machines
//
//     kReadingHeader → kReadingBody → kDispatched → kWriting
//                 ↖______________________________________↙
//
// over nonblocking sockets with edge-triggered readiness and vectored
// writes. A connection costs a buffer and a table entry instead of a parked
// thread, which is what makes 10k–100k mostly-idle sessions feasible
// (ROADMAP item 2; the userspace-middlebox motivation of MiddleNet/mmb).
//
// Protocol logic lives behind `ConnectionProtocol`: the loop thread feeds
// it buffered bytes (`on_input`, zero-copy — views into the recv buffer),
// and complete requests are copied ONCE into a job and executed on a small
// dispatch worker pool (`run_job`) so slow crypto or enclave work never
// stalls a readiness loop. One request is in flight per connection at a
// time, so a protocol object is only ever touched by one thread at a time
// — the loop while reading/writing, one worker while dispatched — with the
// dispatch queue's lock providing the hand-off ordering.
//
// Shedding is typed and layered: accept past `max_connections` answers
// with the protocol's OVERLOADED bytes and closes; EMFILE/ENFILE pauses
// the accept loop (counted in `fd_exhausted`) and retries after a backoff
// instead of spinning; a job that waited past `queue_timeout` or whose
// request deadline expired while queued is shed by the worker through
// `ConnectionProtocol::shed` without running.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/deadline.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "net/socket.hpp"

namespace xsearch::net {

/// Per-connection protocol state machine, driven by the reactor. One
/// instance per connection; never invoked from two threads at once (see
/// the file comment for the hand-off discipline).
class ConnectionProtocol {
 public:
  virtual ~ConnectionProtocol() = default;

  /// What `on_input` tells the loop to do next.
  struct Action {
    /// Bytes consumed off the front of the buffer (one message at most).
    std::size_t consumed = 0;
    /// Total buffered bytes required before the next on_input can make
    /// progress (0 = call again on any new data). A read-size hint.
    std::size_t need = 0;
    /// A message has started but is incomplete: the reactor arms the
    /// slow-writer (body) budget and parks the connection in kReadingBody.
    bool mid_message = false;
    /// Close the connection once pending writes have flushed.
    bool close = false;
    /// Immediate reply bytes written from the loop thread (cheap errors).
    Bytes reply;
    /// Hand `job` to the dispatch pool (the one copy out of the buffer).
    bool dispatch = false;
    Bytes job;
    /// Request deadline carried by the message (infinite when absent).
    Deadline deadline;
  };

  /// Loop thread: parse buffered input (a view into the connection's recv
  /// buffer, valid only for this call) and consume at most one message.
  [[nodiscard]] virtual Action on_input(ByteSpan buffered) = 0;

  struct JobResult {
    /// Reply chunks, written in order by one vectored write (header and
    /// payload stay separate buffers — no gluing copy).
    std::vector<Bytes> reply;
    bool close = false;
  };

  /// Dispatch worker: execute one job produced by on_input.
  [[nodiscard]] virtual JobResult run_job(ByteSpan job,
                                          const Deadline& deadline) = 0;

  /// Dispatch worker: the job was shed before running (queue expiry,
  /// deadline); produce the typed error reply.
  [[nodiscard]] virtual JobResult shed(const Status& status) = 0;
};

class Reactor {
 public:
  struct Options {
    /// Event-loop shards (0 = 1). Each shard is one thread + one epoll fd;
    /// connections are assigned round-robin at accept.
    std::size_t shards = 0;
    /// Dispatch workers executing run_job (0 = max(8, hw concurrency)).
    std::size_t dispatch_workers = 0;
    /// Jobs that may wait for a free dispatch worker; beyond this new
    /// requests are shed with typed OVERLOADED.
    std::size_t dispatch_queue = 128;
    /// A job queued longer than this is shed (typed OVERLOADED) instead of
    /// run — its client has likely timed out. 0 = wait forever.
    Nanos queue_timeout = 0;
    /// Budget for a peer to finish a started message (slow-writer bound)
    /// and for draining a reply to a slow reader. 0 = unbounded. Waiting
    /// for the NEXT message is always unbounded — idle connections are
    /// legal — unless `idle_ttl` says otherwise.
    Nanos io_budget = 0;
    /// Reap connections idle (no message in progress, nothing to write)
    /// longer than this. 0 = never.
    Nanos idle_ttl = 0;
    /// Hard cap on concurrently live connections, enforced at accept with
    /// a typed OVERLOADED reply. 0 = unbounded. Deployments should set
    /// this safely below RLIMIT_NOFILE so the typed shed fires before the
    /// kernel's EMFILE does.
    std::size_t max_connections = 0;
    /// Creates the per-connection protocol instance. Required.
    std::function<std::unique_ptr<ConnectionProtocol>()> protocol_factory;
    /// Encodes the accept-time shed reply (max_connections exceeded). The
    /// peer has not spoken yet, so this is protocol-wide, not
    /// per-connection. Optional: absent, shed connections are just closed.
    std::function<Bytes(const Status&)> encode_shed;
    /// Test seam (mirrors the proxy's engine_fault_hook idiom): called
    /// before every real accept; a nonzero return simulates that errno at
    /// accept time. Lets tests exercise the EMFILE path deterministically.
    std::function<int()> accept_fault;
  };

  /// Takes ownership of a bound listener and starts the shard loops.
  [[nodiscard]] static Result<std::unique_ptr<Reactor>> start(
      TcpListener listener, Options options);

  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Stops accepting, closes every connection, joins shard threads and the
  /// dispatch pool. Idempotent; the listener port is immediately
  /// rebindable afterwards.
  void stop();

  // ---- stats -----------------------------------------------------------

  /// Connections accepted over the reactor's lifetime (incl. shed ones).
  [[nodiscard]] std::uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  /// Connections fully torn down (finished, failed, or shed).
  [[nodiscard]] std::uint64_t reaped() const {
    return reaped_.load(std::memory_order_relaxed);
  }
  /// Requests/connections refused to protect the server (accept cap,
  /// dispatch queue full, queue expiry).
  [[nodiscard]] std::uint64_t shed() const {
    return shed_.load(std::memory_order_relaxed);
  }
  /// Jobs shed because they waited past `queue_timeout`.
  [[nodiscard]] std::uint64_t queue_expired() const {
    return queue_expired_.load(std::memory_order_relaxed);
  }
  /// Jobs shed because their request deadline expired while queued.
  [[nodiscard]] std::uint64_t deadline_expired() const {
    return deadline_expired_.load(std::memory_order_relaxed);
  }
  /// Accept attempts that hit EMFILE/ENFILE (each backs off, not spins).
  [[nodiscard]] std::uint64_t fd_exhausted() const {
    return fd_exhausted_.load(std::memory_order_relaxed);
  }
  /// Connections reaped by the idle TTL.
  [[nodiscard]] std::uint64_t idle_reaped() const {
    return idle_reaped_.load(std::memory_order_relaxed);
  }
  /// Connections currently live.
  [[nodiscard]] std::size_t active_connections() const {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard;
  struct Connection;

  Reactor(TcpListener listener, Options options);

  void shard_loop(Shard& shard);
  void drain_accept(Shard& shard);
  void pause_accept(Shard& shard);
  void resume_accept(Shard& shard);
  void adopt_connection(Shard& shard, TcpStream stream, std::uint64_t id);
  // Event handlers look connections up by id and re-validate after every
  // step that can destroy one.
  void on_readable(Shard& shard, std::uint64_t id);
  void on_writable(Shard& shard, std::uint64_t id);
  void on_timer(Shard& shard, std::uint64_t id, Nanos now);
  /// Parses buffered input until it blocks, dispatches, or closes.
  void process_input(Shard& shard, Connection& conn);
  void dispatch_job(Shard& shard, Connection& conn, Bytes job,
                    const Deadline& deadline);
  void run_dispatched(Shard& shard, std::uint64_t id, std::uint64_t generation,
                      const std::shared_ptr<ConnectionProtocol>& protocol,
                      Bytes job, const Deadline& deadline,
                      const Deadline& queue_deadline);
  void apply_completion(Shard& shard, std::uint64_t id,
                        std::uint64_t generation,
                        std::vector<Bytes> reply, bool close);
  /// Flushes the write queue; arms EPOLLOUT on would-block. Returns false
  /// if the connection was destroyed.
  [[nodiscard]] bool flush_writes(Shard& shard, Connection& conn);
  /// Reply flushed: resume reading (possibly on already-buffered input).
  void finish_request(Shard& shard, std::uint64_t id);
  void enqueue_reply(Connection& conn, std::vector<Bytes> reply, bool close);
  void destroy_connection(Shard& shard, std::uint64_t id);
  void schedule_conn_timer(Shard& shard, Connection& conn, Nanos due);
  void wake(Shard& shard);

  TcpListener listener_;
  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ThreadPool> pool_;

  std::atomic<bool> stopping_{false};
  Mutex stop_mutex_;
  bool stopped_ XS_GUARDED_BY(stop_mutex_) = false;
  // Accept-side pacing state lives on shard 0's loop thread.
  bool accept_paused_ = false;

  std::atomic<std::uint64_t> next_id_{2};  // 0 = wake tag, 1 = listener tag
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> reaped_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> queue_expired_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> fd_exhausted_{0};
  std::atomic<std::uint64_t> idle_reaped_{0};
  std::atomic<std::size_t> active_{0};
};

}  // namespace xsearch::net
