// Deterministic wire-level fault injection.
//
// `FaultPlan` is a seeded schedule of faults: each stream operation draws
// one decision (pass / delay / partial-then-reset / drop / reset / garbage)
// from the plan's private RNG, so a given seed and call order reproduce the
// exact same fault sequence. The plan hands out at most `fault_ops` faults,
// after which every operation passes clean — the tail of any chaos run is a
// guaranteed recovery window the tests assert on.
//
// `ChaosSocket` wraps a real TcpStream behind the ByteStream seam the frame
// layer reads/writes through, injecting the plan's faults at the byte level:
// exactly where a hostile or flaky network acts. The same plan also drives
// engine-path injection (delay + failure before the engine call) through
// `engine_call()`, wired into XSearchProxy via its host-side fault hook.
#pragma once

#include <cstdint>
#include <memory>

#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/thread_annotations.hpp"
#include "net/socket.hpp"

namespace xsearch::net {

/// What happens to one stream operation.
enum class FaultAction : std::uint8_t {
  kPass,              // no fault
  kDelay,             // sleep before performing the operation
  kPartialThenReset,  // move only part of the bytes, then reset the stream
  kDrop,              // (writes) swallow the bytes, report success
  kReset,             // reset the stream, fail the operation
  kGarbage,           // corrupt the bytes in flight
};

class FaultPlan {
 public:
  struct Options {
    std::uint64_t seed = 1;
    /// Faulty decisions the plan hands out in total (socket + engine);
    /// afterwards everything passes clean. Finite by design.
    std::uint32_t fault_ops = 24;
    // Per-operation fault probabilities; the remainder passes clean.
    double delay_p = 0.15;
    Nanos max_delay = 2 * kMilli;
    double partial_p = 0.08;
    double drop_p = 0.05;
    double reset_p = 0.05;
    double garbage_p = 0.05;
    // Engine-path injection, drawn by engine_call():
    double engine_delay_p = 0.0;
    Nanos engine_delay = 0;
    double engine_fail_p = 0.0;
  };

  struct Decision {
    FaultAction action = FaultAction::kPass;
    Nanos delay = 0;
    /// Deterministic per-decision entropy (garbage offsets etc.).
    std::uint64_t salt = 0;
  };

  explicit FaultPlan(Options options);

  /// Draws the next decision. Thread-safe; deterministic in draw order.
  /// Read operations never draw kDrop (a swallowed read is just a reset).
  [[nodiscard]] Decision next(bool reading);

  /// Engine-path injection: sleeps per the engine delay knobs, then either
  /// passes or fails the call. Thread-safe.
  [[nodiscard]] Status engine_call();

  /// True once every fault has been handed out (recovery window).
  [[nodiscard]] bool exhausted() const;
  [[nodiscard]] std::uint64_t faults_injected() const;

 private:
  const Options options_;
  mutable Mutex mutex_;
  Rng rng_ XS_GUARDED_BY(mutex_);
  std::uint32_t faults_left_ XS_GUARDED_BY(mutex_);
  std::uint64_t injected_ XS_GUARDED_BY(mutex_) = 0;
};

/// A ByteStream that subjects another ByteStream to a FaultPlan.
///
/// The wrapped transport is usually a blocking TcpStream (a chaos client
/// talking to a server), but any ByteStream works — the fault decisions
/// are drawn per *operation*, independent of how the underlying transport
/// moves bytes, so the plan composes unchanged with servers that read
/// those bytes through nonblocking readiness loops (net/reactor.hpp): a
/// kPartialThenReset write, say, surfaces there as a short read followed
/// by EOF mid-frame.
class ChaosSocket final : public ByteStream {
 public:
  /// Wraps any transport (ownership taken).
  ChaosSocket(std::unique_ptr<ByteStream> inner,
              std::shared_ptr<FaultPlan> plan)
      : inner_(std::move(inner)), plan_(std::move(plan)) {}

  /// Convenience for the common case: a connected TcpStream.
  ChaosSocket(TcpStream stream, std::shared_ptr<FaultPlan> plan)
      : ChaosSocket(std::unique_ptr<ByteStream>(
                        std::make_unique<TcpStream>(std::move(stream))),
                    std::move(plan)) {}

  using ByteStream::read_exact;
  using ByteStream::write_all;

  [[nodiscard]] Status write_all(ByteSpan data,
                                 const Deadline& deadline) override;
  [[nodiscard]] Result<Bytes> read_exact(std::size_t n,
                                         const Deadline& deadline) override;
  void shutdown_both() override { inner_->shutdown_both(); }
  [[nodiscard]] bool valid() const override {
    return inner_ != nullptr && inner_->valid();
  }

 private:
  /// Sleeps for `delay`, bounded by the deadline (plus one scheduling
  /// quantum) so an injected stall cannot oversleep far past it.
  static void bounded_sleep(Nanos delay, const Deadline& deadline);

  std::unique_ptr<ByteStream> inner_;
  std::shared_ptr<FaultPlan> plan_;
};

}  // namespace xsearch::net
