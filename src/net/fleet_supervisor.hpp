// Automatic crash recovery for a ProxyFleet.
//
// A production front tier cannot wait for an operator to notice a dead
// enclave: the supervisor closes the detect→drain→respawn→restore loop the
// fleet exposes as manual calls. A background thread probes every worker
// with a heartbeat ecall each `probe_interval`; a worker failing
// `failure_threshold` consecutive probes is declared dead and respawned
// (drain first, so its ring arc migrates before the replacement attests).
// With per-worker checkpointing enabled on the fleet, the respawn is a
// *warm* restart — the replacement proxy restores the crashed worker's
// sealed history, so its decoy quality resumes at the last checkpoint
// instead of the cold-start window the paper's threat model cares about.
//
// The supervisor is untrusted host machinery: it sees only ecall success/
// failure and moves sealed blobs around. Nothing it does (or maliciously
// fails to do) weakens the enclave's guarantees — a supervisor that never
// respawns is availability loss, not privacy loss.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "net/proxy_fleet.hpp"

namespace xsearch::net {

class FleetSupervisor {
 public:
  struct Options {
    /// Pause between probe sweeps over all workers.
    Nanos probe_interval = 20 * kMilli;
    /// Consecutive heartbeat failures before a worker is respawned.
    std::uint32_t failure_threshold = 3;
  };

  struct Stats {
    std::uint64_t probes = 0;          // heartbeats sent
    std::uint64_t probe_failures = 0;  // heartbeats failed
    std::uint64_t auto_respawns = 0;   // workers this supervisor revived
  };

  /// Starts supervising `fleet` (which must outlive this object) on a
  /// background thread. Stops on destruction.
  FleetSupervisor(ProxyFleet& fleet, Options options);
  ~FleetSupervisor();

  FleetSupervisor(const FleetSupervisor&) = delete;
  FleetSupervisor& operator=(const FleetSupervisor&) = delete;

  /// Stops the probe thread. Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] Stats stats() const;

  /// One synchronous probe sweep over all workers (exactly what the
  /// background thread runs per interval). Exposed so tests and the
  /// recovery bench can step the state machine deterministically; safe to
  /// call while the background thread runs (sweeps serialize).
  void probe_once();

 private:
  void run();

  ProxyFleet* fleet_;
  const Options options_;

  /// Serializes probe sweeps and guards `consecutive_failures_`.
  Mutex sweep_mutex_;
  std::vector<std::uint32_t> consecutive_failures_ XS_GUARDED_BY(sweep_mutex_);

  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> probe_failures_{0};
  std::atomic<std::uint64_t> auto_respawns_{0};

  Mutex stop_mutex_;
  CondVar stop_cv_;
  bool stopping_ XS_GUARDED_BY(stop_mutex_) = false;
  std::thread probe_thread_;
};

}  // namespace xsearch::net
