// Automatic crash recovery for a ProxyFleet.
//
// A production front tier cannot wait for an operator to notice a dead
// enclave: the supervisor closes the detect→drain→respawn→restore loop the
// fleet exposes as manual calls. A background thread probes every worker
// with a heartbeat ecall each `probe_interval`; a worker failing
// `failure_threshold` consecutive probes is declared dead and respawned
// (drain first, so its ring arc migrates before the replacement attests).
// With per-worker checkpointing enabled on the fleet, the respawn is a
// *warm* restart — the replacement proxy restores the crashed worker's
// sealed history, so its decoy quality resumes at the last checkpoint
// instead of the cold-start window the paper's threat model cares about.
//
// Probes carry their own deadline (`probe_budget`): the heartbeat ecall is
// a synchronous blocking call, so a worker that HANGS (wedged enclave, not
// a crashed one) would otherwise block the probe loop forever and the
// supervisor would never notice any other worker dying. Each probe runs on
// a dedicated prober thread; when it overruns its budget the supervisor
// abandons that prober (it retires itself when the stuck ecall eventually
// returns), counts a timeout failure, and — at the threshold — drains the
// worker WITHOUT the final checkpoint (a seal ecall on a wedged enclave
// could block forever too) before respawning it.
//
// The supervisor is untrusted host machinery: it sees only ecall success/
// failure and moves sealed blobs around. Nothing it does (or maliciously
// fails to do) weakens the enclave's guarantees — a supervisor that never
// respawns is availability loss, not privacy loss.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "net/proxy_fleet.hpp"

namespace xsearch::net {

class FleetSupervisor {
 public:
  struct Options {
    /// Pause between probe sweeps over all workers.
    Nanos probe_interval = 20 * kMilli;
    /// Consecutive heartbeat failures before a worker is respawned.
    std::uint32_t failure_threshold = 3;
    /// Deadline for one heartbeat probe: a probe still running past it
    /// counts as a failure (the worker is hung, not merely crashed) and
    /// the sweep moves on. 0 = probe inline without a deadline (legacy;
    /// a hung worker then wedges the probe loop).
    Nanos probe_budget = kSecond;
  };

  struct Stats {
    std::uint64_t probes = 0;          // heartbeats sent
    std::uint64_t probe_failures = 0;  // heartbeats failed (incl. timeouts)
    std::uint64_t probe_timeouts = 0;  // probes that overran probe_budget
    std::uint64_t auto_respawns = 0;   // workers this supervisor revived
  };

  /// Starts supervising `fleet` (which must outlive this object) on a
  /// background thread. Stops on destruction.
  FleetSupervisor(ProxyFleet& fleet, Options options);
  ~FleetSupervisor();

  FleetSupervisor(const FleetSupervisor&) = delete;
  FleetSupervisor& operator=(const FleetSupervisor&) = delete;

  /// Stops the probe thread and joins every prober, including abandoned
  /// ones — so a probe stuck in a PERMANENTLY wedged ecall blocks stop()
  /// until the hang releases (tests release the hang first). Idempotent;
  /// the destructor calls it.
  void stop();

  [[nodiscard]] Stats stats() const;

  /// One synchronous probe sweep over all workers (exactly what the
  /// background thread runs per interval). Exposed so tests and the
  /// recovery bench can step the state machine deterministically; safe to
  /// call while the background thread runs (sweeps serialize).
  void probe_once();

 private:
  /// Mailbox between a sweep and its prober thread. Shared ownership: an
  /// abandoned prober keeps its task alive after the sweep moved on.
  struct ProbeTask {
    Mutex mutex;
    CondVar cv;
    bool has_job XS_GUARDED_BY(mutex) = false;
    bool done XS_GUARDED_BY(mutex) = false;
    bool abandoned XS_GUARDED_BY(mutex) = false;
    bool shutdown XS_GUARDED_BY(mutex) = false;
    std::size_t worker XS_GUARDED_BY(mutex) = 0;
    Status result XS_GUARDED_BY(mutex);
  };

  void run();
  /// One deadline-bounded heartbeat. Sets `timed_out` when the probe
  /// overran `probe_budget` (the returned status is DEADLINE_EXCEEDED).
  [[nodiscard]] Status probe_worker(std::size_t index, bool& timed_out)
      XS_REQUIRES(sweep_mutex_);
  /// Spawns the prober thread lazily (and again after an abandonment).
  void ensure_prober() XS_REQUIRES(sweep_mutex_);
  void prober_main(std::shared_ptr<ProbeTask> task);

  ProxyFleet* fleet_;
  const Options options_;

  /// Serializes probe sweeps and guards the per-worker failure counters
  /// plus the prober-thread machinery.
  Mutex sweep_mutex_;
  std::vector<std::uint32_t> consecutive_failures_ XS_GUARDED_BY(sweep_mutex_);
  std::shared_ptr<ProbeTask> probe_task_ XS_GUARDED_BY(sweep_mutex_);
  std::thread prober_thread_ XS_GUARDED_BY(sweep_mutex_);
  /// Probers whose heartbeat overran the budget: each exits on its own
  /// when the stuck ecall returns; stop() joins them.
  std::vector<std::thread> abandoned_probers_ XS_GUARDED_BY(sweep_mutex_);

  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> probe_failures_{0};
  std::atomic<std::uint64_t> probe_timeouts_{0};
  std::atomic<std::uint64_t> auto_respawns_{0};

  Mutex stop_mutex_;
  CondVar stop_cv_;
  bool stopping_ XS_GUARDED_BY(stop_mutex_) = false;
  std::thread probe_thread_;
};

}  // namespace xsearch::net
