#include "net/fleet_supervisor.hpp"

#include <chrono>
#include <utility>

namespace xsearch::net {

FleetSupervisor::FleetSupervisor(ProxyFleet& fleet, Options options)
    : fleet_(&fleet),
      options_(options),
      consecutive_failures_(fleet.worker_count(), 0),
      probe_thread_([this] { run(); }) {}

FleetSupervisor::~FleetSupervisor() { stop(); }

void FleetSupervisor::stop() {
  {
    MutexLock lock(stop_mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (probe_thread_.joinable()) probe_thread_.join();

  // No sweep can start anymore: retire the prober machinery. Abandoned
  // probers exit when their stuck ecall returns, so joining them here can
  // block until the hang releases (callers release it first).
  std::shared_ptr<ProbeTask> task;
  std::thread prober;
  std::vector<std::thread> abandoned;
  {
    MutexLock lock(sweep_mutex_);
    task = std::move(probe_task_);
    prober = std::move(prober_thread_);
    abandoned = std::move(abandoned_probers_);
  }
  if (task != nullptr) {
    MutexLock lock(task->mutex);
    task->shutdown = true;
    task->cv.notify_all();
  }
  if (prober.joinable()) prober.join();
  for (auto& thread : abandoned) {
    if (thread.joinable()) thread.join();
  }
}

void FleetSupervisor::run() {
  for (;;) {
    {
      MutexLock lock(stop_mutex_);
      // Park for one probe interval, waking early when stop() signals.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::nanoseconds(options_.probe_interval);
      while (!stopping_) {
        if (stop_cv_.wait_until(stop_mutex_, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      if (stopping_) return;
    }
    probe_once();
  }
}

void FleetSupervisor::prober_main(std::shared_ptr<ProbeTask> task) {
  for (;;) {
    std::size_t worker = 0;
    {
      MutexLock lock(task->mutex);
      while (!task->has_job && !task->shutdown) task->cv.wait(task->mutex);
      if (task->shutdown) return;
      worker = task->worker;
    }
    // May block arbitrarily long on a hung enclave — that is exactly what
    // this thread exists to absorb.
    Status result = fleet_->heartbeat(worker);
    MutexLock lock(task->mutex);
    task->has_job = false;
    task->result = std::move(result);
    task->done = true;
    task->cv.notify_all();
    if (task->abandoned) return;  // sweep moved on long ago; retire quietly
  }
}

void FleetSupervisor::ensure_prober() {
  if (probe_task_ != nullptr) return;
  probe_task_ = std::make_shared<ProbeTask>();
  prober_thread_ = std::thread(
      [this, task = probe_task_]() mutable { prober_main(std::move(task)); });
}

Status FleetSupervisor::probe_worker(std::size_t index, bool& timed_out) {
  timed_out = false;
  if (options_.probe_budget <= 0) {
    return fleet_->heartbeat(index);  // legacy inline probe, no deadline
  }
  ensure_prober();
  const std::shared_ptr<ProbeTask> task = probe_task_;
  {
    MutexLock lock(task->mutex);
    task->worker = index;
    task->has_job = true;
    task->done = false;
  }
  task->cv.notify_all();

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(options_.probe_budget);
  {
    MutexLock lock(task->mutex);
    while (!task->done) {
      if (task->cv.wait_until(task->mutex, deadline) ==
              std::cv_status::timeout &&
          !task->done) {
        // Probe still running past its budget: the worker is HUNG (a
        // crashed enclave fails the ecall immediately). Abandon this
        // prober — it retires itself when the stuck call returns.
        task->abandoned = true;
        timed_out = true;
        break;
      }
    }
    if (!timed_out) return task->result;
  }
  abandoned_probers_.push_back(std::move(prober_thread_));
  probe_task_.reset();  // next probe gets a fresh prober
  return deadline_exceeded("supervisor: heartbeat probe timed out");
}

void FleetSupervisor::probe_once() {
  MutexLock sweep(sweep_mutex_);
  for (std::size_t i = 0; i < consecutive_failures_.size(); ++i) {
    bool timed_out = false;
    const Status alive = probe_worker(i, timed_out);
    probes_.fetch_add(1, std::memory_order_relaxed);
    if (alive.is_ok()) {
      consecutive_failures_[i] = 0;
      continue;
    }
    probe_failures_.fetch_add(1, std::memory_order_relaxed);
    if (timed_out) probe_timeouts_.fetch_add(1, std::memory_order_relaxed);
    if (++consecutive_failures_[i] < options_.failure_threshold) continue;

    // Declared dead: migrate its arc first (drain is refused for the last
    // live worker and is a no-op on an already-drained one), then bring up
    // the replacement, which restores the sealed checkpoint when there is
    // one. On respawn failure the counter stays saturated, so the next
    // sweep retries immediately. A HUNG worker is drained without the
    // final checkpoint — the seal ecall could wedge just like the probe —
    // so its recovery point is the last periodic checkpoint.
    (void)fleet_->drain(i, /*seal_final=*/!timed_out);
    if (fleet_->auto_respawn(i).is_ok()) {
      auto_respawns_.fetch_add(1, std::memory_order_relaxed);
      consecutive_failures_[i] = 0;
    }
  }
}

FleetSupervisor::Stats FleetSupervisor::stats() const {
  Stats out;
  out.probes = probes_.load(std::memory_order_relaxed);
  out.probe_failures = probe_failures_.load(std::memory_order_relaxed);
  out.probe_timeouts = probe_timeouts_.load(std::memory_order_relaxed);
  out.auto_respawns = auto_respawns_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace xsearch::net
