#include "net/fleet_supervisor.hpp"

#include <chrono>

namespace xsearch::net {

FleetSupervisor::FleetSupervisor(ProxyFleet& fleet, Options options)
    : fleet_(&fleet),
      options_(options),
      consecutive_failures_(fleet.worker_count(), 0),
      probe_thread_([this] { run(); }) {}

FleetSupervisor::~FleetSupervisor() { stop(); }

void FleetSupervisor::stop() {
  {
    MutexLock lock(stop_mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (probe_thread_.joinable()) probe_thread_.join();
}

void FleetSupervisor::run() {
  for (;;) {
    {
      MutexLock lock(stop_mutex_);
      // Park for one probe interval, waking early when stop() signals.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::nanoseconds(options_.probe_interval);
      while (!stopping_) {
        if (stop_cv_.wait_until(stop_mutex_, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      if (stopping_) return;
    }
    probe_once();
  }
}

void FleetSupervisor::probe_once() {
  MutexLock sweep(sweep_mutex_);
  for (std::size_t i = 0; i < consecutive_failures_.size(); ++i) {
    const Status alive = fleet_->heartbeat(i);
    probes_.fetch_add(1, std::memory_order_relaxed);
    if (alive.is_ok()) {
      consecutive_failures_[i] = 0;
      continue;
    }
    probe_failures_.fetch_add(1, std::memory_order_relaxed);
    if (++consecutive_failures_[i] < options_.failure_threshold) continue;

    // Declared dead: migrate its arc first (drain is refused for the last
    // live worker and is a no-op on an already-drained one), then bring up
    // the replacement, which restores the sealed checkpoint when there is
    // one. On respawn failure the counter stays saturated, so the next
    // sweep retries immediately.
    (void)fleet_->drain(i);
    if (fleet_->auto_respawn(i).is_ok()) {
      auto_respawns_.fetch_add(1, std::memory_order_relaxed);
      consecutive_failures_[i] = 0;
    }
  }
}

FleetSupervisor::Stats FleetSupervisor::stats() const {
  Stats out;
  out.probes = probes_.load(std::memory_order_relaxed);
  out.probe_failures = probe_failures_.load(std::memory_order_relaxed);
  out.auto_respawns = auto_respawns_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace xsearch::net
