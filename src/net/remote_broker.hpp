// Network client broker: the client-side daemon of §4.2 speaking to a
// ProxyServer over TCP instead of in-process calls.
//
// Behaviour is identical to core::ClientBroker — attest the enclave behind
// the server before trusting it, then exchange encrypted records — with the
// frames of net/frame.hpp as transport.
//
// The proxy's session table is bounded (LRU + idle TTL), so an established
// session can legitimately disappear between two queries; the connection
// can also die (server restart, shed connection). `search` recovers from
// both by discarding the channel, re-attesting through a fresh handshake,
// and retrying the query exactly once. Failures during the initial
// attestation itself (wrong measurement, rogue authority, refused
// connection) are never retried.
#pragma once

#include <optional>
#include <string>

#include "crypto/random.hpp"
#include "crypto/secure_channel.hpp"
#include "engine/document.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "sgx/attestation.hpp"

namespace xsearch::net {

class RemoteBroker {
 public:
  RemoteBroker(std::string host, std::uint16_t port,
               const sgx::AttestationAuthority& authority,
               const sgx::Measurement& expected_measurement, std::uint64_t seed);

  /// Connects, attests, establishes the channel. Idempotent.
  [[nodiscard]] Status connect();

  /// One private search over the network. Transparently re-handshakes and
  /// retries once when the proxy evicted/expired the session or the
  /// connection broke mid-query.
  [[nodiscard]] Result<std::vector<engine::SearchResult>> search(
      std::string_view query);

  [[nodiscard]] bool connected() const { return channel_.has_value(); }

  /// Times `search` had to tear down and re-establish the session.
  [[nodiscard]] std::uint64_t reconnects() const { return reconnects_; }

 private:
  /// One attempt; sets `retryable` when the failure left the session
  /// unusable (channel nonce desync or dead transport) and a fresh
  /// handshake may succeed.
  [[nodiscard]] Result<std::vector<engine::SearchResult>> search_once(
      std::string_view query, bool& retryable);
  void reset_session();

  std::string host_;
  std::uint16_t port_;
  const sgx::AttestationAuthority* authority_;
  sgx::Measurement expected_measurement_;
  crypto::SecureRandom rng_;

  std::optional<TcpStream> stream_;
  std::optional<crypto::SecureChannel> channel_;
  std::uint64_t session_id_ = 0;
  std::uint64_t reconnects_ = 0;
};

}  // namespace xsearch::net
