// Network client broker: the client-side daemon of §4.2 speaking to a
// ProxyServer over TCP instead of in-process calls.
//
// Behaviour is identical to core::ClientBroker — attest the enclave behind
// the server before trusting it, then exchange encrypted records — with the
// frames of net/frame.hpp as transport.
#pragma once

#include <optional>
#include <string>

#include "crypto/random.hpp"
#include "crypto/secure_channel.hpp"
#include "engine/document.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "sgx/attestation.hpp"

namespace xsearch::net {

class RemoteBroker {
 public:
  RemoteBroker(std::string host, std::uint16_t port,
               const sgx::AttestationAuthority& authority,
               const sgx::Measurement& expected_measurement, std::uint64_t seed);

  /// Connects, attests, establishes the channel. Idempotent.
  [[nodiscard]] Status connect();

  /// One private search over the network.
  [[nodiscard]] Result<std::vector<engine::SearchResult>> search(
      std::string_view query);

  [[nodiscard]] bool connected() const { return channel_.has_value(); }

 private:
  std::string host_;
  std::uint16_t port_;
  const sgx::AttestationAuthority* authority_;
  sgx::Measurement expected_measurement_;
  crypto::SecureRandom rng_;

  std::optional<TcpStream> stream_;
  std::optional<crypto::SecureChannel> channel_;
  std::uint64_t session_id_ = 0;
};

}  // namespace xsearch::net
