// Network client broker: the client-side daemon of §4.2 speaking to a
// ProxyServer over TCP instead of in-process calls.
//
// Behaviour is identical to core::ClientBroker — attest the enclave behind
// the server before trusting it, then exchange encrypted records — with the
// frames of net/frame.hpp as transport.
//
// The proxy's session table is bounded (LRU + idle TTL), so an established
// session can legitimately disappear between two queries; the connection
// can also die (server restart, shed connection). `search` recovers from
// both by discarding the channel, re-attesting through a fresh handshake,
// and retrying the query exactly once. Failures during the initial
// attestation itself (wrong measurement, rogue authority, refused
// connection) are never retried.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "crypto/random.hpp"
#include "crypto/secure_channel.hpp"
#include "engine/document.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/broker.hpp"
#include "xsearch/wire.hpp"

namespace xsearch::net {

class RemoteBroker {
 public:
  RemoteBroker(std::string host, std::uint16_t port,
               const sgx::AttestationAuthority& authority,
               const sgx::Measurement& expected_measurement, std::uint64_t seed);

  /// Connects, attests, establishes the channel. Idempotent.
  [[nodiscard]] Status connect();

  /// One private search over the network. Transparently re-handshakes and
  /// retries once when the proxy evicted/expired the session or the
  /// connection broke mid-query.
  [[nodiscard]] Result<std::vector<engine::SearchResult>> search(
      std::string_view query);

  /// Many private searches in one kBatchQuery frame: ONE sealed record
  /// each way and one TCP round trip, so AEAD and syscall cost amortize
  /// over the batch (bounded by core::wire::kMaxBatchQueries).
  /// Whole-batch transport failures are the returned status; per-query
  /// failures are per-item. Re-handshakes and retries once, like `search`.
  ///
  /// Retry semantics are *at-least-once*, and only where unavoidable. The
  /// batch travels as one frame, so per-item delivery states do not exist:
  ///  * per-item failures in a received reply are final (deterministic
  ///    engine/proxy verdicts) — they are NOT blindly retried;
  ///  * a failure before the frame reached the wire — and a frame-level
  ///    error reply, which means the proxy refused the record without
  ///    opening it — retries with exactly-once semantics;
  ///  * a frame that was sent but whose reply was lost (dead connection,
  ///    garbled reply) is the ambiguous case: the proxy may have executed
  ///    the whole batch, and the retry may execute it again (duplicate
  ///    history entries and engine traffic, no channel-safety impact).
  ///    These retries are counted in `at_least_once_retries()` so
  ///    deployments can observe the duplication risk they actually took.
  [[nodiscard]] Result<std::vector<core::BatchOutcome>> search_batch(
      const std::vector<std::string>& queries);

  [[nodiscard]] bool connected() const { return channel_.has_value(); }

  /// Times `search` had to tear down and re-establish the session.
  [[nodiscard]] std::uint64_t reconnects() const { return reconnects_; }

  /// Retries that re-sent a query/batch frame whose reply was LOST after
  /// delivery (dead connection, garbled reply): the at-least-once window,
  /// where the proxy may have executed the work twice. Never-delivered
  /// frames and frame-level error replies (the proxy refused the record
  /// without opening it) do not count — those retries are exactly-once.
  [[nodiscard]] std::uint64_t at_least_once_retries() const {
    return at_least_once_retries_;
  }

  /// Current session id (0 before connect). Routing metadata only.
  [[nodiscard]] std::uint64_t session_id() const { return session_id_; }

  /// Wire round trips (frames) and queries carried — the amortization the
  /// fleet bench reports as seal/open ops per query.
  [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }
  [[nodiscard]] std::uint64_t queries_sent() const { return queries_sent_; }

 private:
  /// One attempt; sets `retryable` when the failure left the session
  /// unusable (channel nonce desync or dead transport) and a fresh
  /// handshake may succeed, and `delivered` once the request frame was
  /// handed to the transport (after which a retry is at-least-once).
  [[nodiscard]] Result<std::vector<engine::SearchResult>> search_once(
      std::string_view query, bool& retryable, bool& delivered);
  [[nodiscard]] Result<std::vector<core::BatchOutcome>> search_batch_once(
      const std::vector<std::string>& queries, bool& retryable, bool& delivered);
  /// Shared query/batch transport: seals `message`, sends it as `type`,
  /// expects `reply_type`, opens and parses the reply.
  [[nodiscard]] Result<core::wire::ClientMessage> round_trip(
      FrameType type, FrameType reply_type, ByteSpan message, bool& retryable,
      bool& delivered);
  void reset_session();

  std::string host_;
  std::uint16_t port_;
  const sgx::AttestationAuthority* authority_;
  sgx::Measurement expected_measurement_;
  crypto::SecureRandom rng_;

  std::optional<TcpStream> stream_;
  std::optional<crypto::SecureChannel> channel_;
  std::uint64_t session_id_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t at_least_once_retries_ = 0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t queries_sent_ = 0;
};

}  // namespace xsearch::net
