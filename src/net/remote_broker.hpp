// Network client broker: the client-side daemon of §4.2 speaking to a
// ProxyServer over TCP instead of in-process calls.
//
// Behaviour is identical to core::ClientBroker — attest the enclave behind
// the server before trusting it, then exchange encrypted records — with the
// frames of net/frame.hpp as transport.
//
// Robustness model (one request = one `search`/`search_batch` call):
//
//  * Every call runs under an end-to-end deadline derived from
//    `Options::request_budget` (0 = none). The deadline bounds every socket
//    operation, rides the wire as the v2 frame budget so the server can
//    refuse work it cannot finish in time, and caps the retry loop.
//  * The proxy's session table is bounded (LRU + idle TTL), so an
//    established session can legitimately disappear between two queries;
//    the connection can also die (server restart, shed connection). The
//    broker recovers by discarding the channel, re-attesting through a
//    fresh handshake, and retrying under `Options::retry` — capped
//    attempts with decorrelated-jitter backoff — as long as the
//    per-connection `RetryBudget` has tokens and the deadline has time.
//    Failures during the initial attestation itself (wrong measurement,
//    rogue authority, refused connection) are never retried.
//  * A client-side `CircuitBreaker` (optional) watches transport-level
//    outcomes; while it is open, calls fail fast with UPSTREAM_DOWN and
//    never touch the wire, then half-open probes restore service.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/circuit_breaker.hpp"
#include "common/deadline.hpp"
#include "common/retry.hpp"
#include "common/rng.hpp"
#include "crypto/random.hpp"
#include "crypto/secure_channel.hpp"
#include "engine/document.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/broker.hpp"
#include "xsearch/wire.hpp"

namespace xsearch::net {

class RemoteBroker {
 public:
  struct Options {
    /// End-to-end budget for one `search`/`search_batch` call, covering
    /// every attempt, backoff pause, and socket operation. 0 = unbounded
    /// (the historical behavior). Also carried on the wire (v2 frames) so
    /// the server sheds work whose budget already expired.
    Nanos request_budget = 0;
    /// Budget for connect + attested handshake (0 = unbounded). Always
    /// additionally capped by the remaining request budget.
    Nanos connect_budget = 0;
    /// Attempt cap + backoff curve for session-recovery retries. The
    /// default (two attempts) preserves the historical retry-exactly-once.
    RetryPolicy retry;
    /// Token bucket damping retry storms across the connection's lifetime.
    RetryBudget::Options retry_budget;
    /// Client-side breaker over transport-level outcomes. Disabled by
    /// default; when enabled, open-state calls fail fast without wire I/O.
    bool breaker_enabled = false;
    CircuitBreaker::Options breaker;
    /// Test seam: wraps the freshly connected TcpStream (e.g. in a
    /// ChaosSocket). Default: the plain stream.
    std::function<std::unique_ptr<ByteStream>(TcpStream)> wrap_stream;
  };

  RemoteBroker(std::string host, std::uint16_t port,
               const sgx::AttestationAuthority& authority,
               const sgx::Measurement& expected_measurement, std::uint64_t seed);
  RemoteBroker(std::string host, std::uint16_t port,
               const sgx::AttestationAuthority& authority,
               const sgx::Measurement& expected_measurement, std::uint64_t seed,
               Options options);

  /// Connects, attests, establishes the channel. Idempotent.
  [[nodiscard]] Status connect();

  /// One private search over the network, within the request budget.
  /// Transparently re-handshakes and retries (policy- and budget-capped)
  /// when the proxy evicted/expired the session or the connection broke
  /// mid-query.
  [[nodiscard]] Result<std::vector<engine::SearchResult>> search(
      std::string_view query);

  /// Many private searches in one kBatchQuery frame: ONE sealed record
  /// each way and one TCP round trip, so AEAD and syscall cost amortize
  /// over the batch (bounded by core::wire::kMaxBatchQueries).
  /// Whole-batch transport failures are the returned status; per-query
  /// failures are per-item. Re-handshakes and retries like `search`.
  ///
  /// Retry semantics are *at-least-once*, and only where unavoidable. The
  /// batch travels as one frame, so per-item delivery states do not exist:
  ///  * per-item failures in a received reply are final (deterministic
  ///    engine/proxy verdicts) — they are NOT blindly retried;
  ///  * a failure before the frame reached the wire — and a frame-level
  ///    error reply, which means the proxy refused the record without
  ///    opening it — retries with exactly-once semantics;
  ///  * a frame that was sent but whose reply was lost (dead connection,
  ///    garbled reply) is the ambiguous case: the proxy may have executed
  ///    the whole batch, and the retry may execute it again (duplicate
  ///    history entries and engine traffic, no channel-safety impact).
  ///    These retries are counted in `at_least_once_retries()` so
  ///    deployments can observe the duplication risk they actually took.
  [[nodiscard]] Result<std::vector<core::BatchOutcome>> search_batch(
      const std::vector<std::string>& queries);

  [[nodiscard]] bool connected() const { return channel_.has_value(); }

  /// Times the broker had to tear down and re-establish the session.
  [[nodiscard]] std::uint64_t reconnects() const { return reconnects_; }

  /// Retries that re-sent a query/batch frame whose reply was LOST after
  /// delivery (dead connection, garbled reply): the at-least-once window,
  /// where the proxy may have executed the work twice. Never-delivered
  /// frames and frame-level error replies (the proxy refused the record
  /// without opening it) do not count — those retries are exactly-once.
  [[nodiscard]] std::uint64_t at_least_once_retries() const {
    return at_least_once_retries_;
  }

  /// Retries the token bucket refused (storm damping kicked in).
  [[nodiscard]] std::uint64_t retries_budget_denied() const {
    return retries_budget_denied_;
  }

  /// Current session id (0 before connect). Routing metadata only.
  [[nodiscard]] std::uint64_t session_id() const { return session_id_; }

  /// Wire round trips (frames) and queries carried — the amortization the
  /// fleet bench reports as seal/open ops per query.
  [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }
  [[nodiscard]] std::uint64_t queries_sent() const { return queries_sent_; }

  /// Client-side breaker state ({} when the breaker is disabled).
  [[nodiscard]] CircuitBreaker::Stats breaker_stats() const {
    return breaker_ != nullptr ? breaker_->stats() : CircuitBreaker::Stats{};
  }

 private:
  /// One attempt; sets `retryable` when the failure left the session
  /// unusable (channel nonce desync or dead transport) and a fresh
  /// handshake may succeed, and `delivered` once the request frame was
  /// handed to the transport (after which a retry is at-least-once).
  [[nodiscard]] Result<std::vector<engine::SearchResult>> search_once(
      std::string_view query, const Deadline& deadline, bool& retryable,
      bool& delivered);
  [[nodiscard]] Result<std::vector<core::BatchOutcome>> search_batch_once(
      const std::vector<std::string>& queries, const Deadline& deadline,
      bool& retryable, bool& delivered);
  /// Shared query/batch transport: seals `message`, sends it as `type`,
  /// expects `reply_type`, opens and parses the reply.
  [[nodiscard]] Result<core::wire::ClientMessage> round_trip(
      FrameType type, FrameType reply_type, ByteSpan message,
      const Deadline& deadline, bool& retryable, bool& delivered);
  [[nodiscard]] Status connect_within(const Deadline& deadline);
  void reset_session();
  /// Overall deadline for one client call.
  [[nodiscard]] Deadline request_deadline() const {
    return options_.request_budget > 0 ? Deadline::after(options_.request_budget)
                                       : Deadline();
  }
  /// Breaker bookkeeping for one attempt's outcome.
  void record_breaker_outcome(const Status& status);
  /// Decides whether to go around the retry loop again; on yes, resets the
  /// session, sleeps out the backoff (deadline-capped) and returns true.
  [[nodiscard]] bool prepare_retry(RetryState& retry, const Deadline& deadline,
                                   bool retryable, bool delivered);

  std::string host_;
  std::uint16_t port_;
  const sgx::AttestationAuthority* authority_;
  sgx::Measurement expected_measurement_;
  crypto::SecureRandom rng_;
  Options options_;
  RetryBudget retry_budget_;
  std::unique_ptr<CircuitBreaker> breaker_;
  Rng jitter_rng_;

  std::unique_ptr<ByteStream> stream_;
  std::optional<crypto::SecureChannel> channel_;
  std::uint64_t session_id_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t at_least_once_retries_ = 0;
  std::uint64_t retries_budget_denied_ = 0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t queries_sent_ = 0;
};

}  // namespace xsearch::net
