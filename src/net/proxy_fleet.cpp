#include "net/proxy_fleet.hpp"

#include <algorithm>
#include <utility>

namespace xsearch::net {

namespace {

/// Stateless 64-bit mixer for ring points and session-id placement.
/// Session ids come from an Rng (already well mixed), but ring points are
/// built from tiny (worker, replica) integers — without mixing, every
/// worker's nodes would clump at the bottom of the ring.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
  return splitmix64(x);  // splitmix64 advances its state arg; x is a copy
}

constexpr std::size_t kHandshakeIdAttempts = 8;

}  // namespace

Result<std::unique_ptr<ProxyFleet>> ProxyFleet::create(
    const engine::SearchEngine* engine, const sgx::AttestationAuthority& authority,
    Options options) {
  if (options.workers == 0) {
    return invalid_argument("fleet: options.workers must be >= 1");
  }
  if (options.virtual_nodes == 0) {
    return invalid_argument("fleet: options.virtual_nodes must be >= 1");
  }
  auto fleet = std::unique_ptr<ProxyFleet>(
      new ProxyFleet(engine, authority, std::move(options)));
  // Construction is single-threaded, but worker slots and the ring are
  // guarded state: hold the writer lock (uncontended here) so the fill and
  // ring build satisfy the same machine-checked discipline as respawn.
  WriterLock lock(fleet->mutex_);
  for (std::size_t i = 0; i < fleet->options_.workers; ++i) {
    auto proxy = core::XSearchProxy::create(engine, authority,
                                            fleet->worker_options(i));
    if (!proxy) return proxy.status();
    fleet->account_restore(*proxy.value(), /*initial_spawn=*/true);
    auto worker = std::make_unique<Worker>();
    worker->proxy = std::move(proxy).value();
    fleet->workers_.push_back(std::move(worker));
  }
  fleet->rebuild_ring_locked();
  return fleet;
}

ProxyFleet::ProxyFleet(const engine::SearchEngine* engine,
                       const sgx::AttestationAuthority& authority, Options options)
    : engine_(engine),
      authority_(&authority),
      options_(std::move(options)),
      session_id_rng_(mix64(options_.proxy.seed ^ 0xf1ee7)) {}

core::XSearchProxy::Options ProxyFleet::worker_options(std::size_t index) const {
  core::XSearchProxy::Options worker = options_.proxy;
  // Domain-separate each worker's key material and RNG streams; mix with
  // the respawn count so a respawned worker never replays its predecessor's
  // draws.
  const std::uint64_t generation =
      workers_.size() > index ? workers_[index]->respawns : 0;
  worker.seed = mix64(options_.proxy.seed ^ mix64((index + 1) * 0x9e3779b97f4a7c15ULL +
                                                  generation));
  // Each worker checkpoints under its own subdirectory, named by slot (not
  // generation): a respawned worker must find exactly its predecessor's
  // sealed history, and never a sibling's.
  if (!options_.proxy.checkpoint_dir.empty()) {
    worker.checkpoint_dir =
        options_.proxy.checkpoint_dir / ("worker-" + std::to_string(index));
  }
  return worker;
}

void ProxyFleet::account_restore(const core::XSearchProxy& proxy,
                                 bool initial_spawn) {
  const auto stats = proxy.checkpoint_stats();
  if (stats.restore_hit) {
    restore_hits_.fetch_add(1, std::memory_order_relaxed);
  } else if (!initial_spawn) {
    restore_misses_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ProxyFleet::rebuild_ring_locked() {
  ring_.clear();
  ring_.reserve(workers_.size() * options_.virtual_nodes);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!workers_[w]->live) continue;
    for (std::size_t v = 0; v < options_.virtual_nodes; ++v) {
      const std::uint64_t point =
          mix64(mix64(w + 1) ^ (v * 0xbf58476d1ce4e5b9ULL + 0x94d049bb133111ebULL));
      ring_.emplace_back(point, static_cast<std::uint32_t>(w));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t ProxyFleet::owner_locked(std::uint64_t session_id) const {
  if (ring_.empty()) return workers_.size();
  const std::uint64_t point = mix64(session_id);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const auto& node, std::uint64_t p) { return node.first < p; });
  if (it == ring_.end()) it = ring_.begin();  // wrap: first node clockwise
  return it->second;
}

std::size_t ProxyFleet::owner_of(std::uint64_t session_id) const {
  ReaderLock lock(mutex_);
  return owner_locked(session_id);
}

std::size_t ProxyFleet::live_workers() const {
  ReaderLock lock(mutex_);
  std::size_t live = 0;
  for (const auto& worker : workers_) live += worker->live ? 1 : 0;
  return live;
}

ProxyFleet::WorkerStats ProxyFleet::worker_stats(std::size_t index) const {
  ReaderLock lock(mutex_);
  WorkerStats out;
  if (index >= workers_.size()) return out;
  const Worker& worker = *workers_[index];
  out.live = worker.live;
  out.routed = worker.routed.load(std::memory_order_relaxed);
  out.respawns = worker.respawns;
  out.sessions = worker.proxy->session_stats();
  out.checkpoint = worker.proxy->checkpoint_stats();
  out.engine_breaker = worker.proxy->engine_breaker_stats();
  out.ring = worker.proxy->ring_stats();
  return out;
}

ProxyFleet::FleetStats ProxyFleet::fleet_stats() const {
  FleetStats out;
  out.respawns = respawns_total_.load(std::memory_order_relaxed);
  out.auto_respawns = auto_respawns_.load(std::memory_order_relaxed);
  out.restore_hits = restore_hits_.load(std::memory_order_relaxed);
  out.restore_misses = restore_misses_.load(std::memory_order_relaxed);
  const std::uint64_t total = out.restore_hits + out.restore_misses;
  out.warm_start_ratio =
      total == 0 ? 1.0
                 : static_cast<double>(out.restore_hits) / static_cast<double>(total);
  ReaderLock lock(mutex_);
  for (const auto& worker : workers_) {
    const auto breaker = worker->proxy->engine_breaker_stats();
    if (breaker.state != CircuitBreaker::State::kClosed) {
      ++out.engine_breakers_tripped_now;
    }
    out.engine_breaker_rejected += breaker.rejected;
    out.engine_breaker_trips += breaker.trips;
    out.ring += worker->proxy->ring_stats();
  }
  return out;
}

std::size_t ProxyFleet::worker_history_depth(std::size_t index) const {
  ReaderLock lock(mutex_);
  if (index >= workers_.size()) return 0;
  return workers_[index]->proxy->history_size();
}

Status ProxyFleet::heartbeat(std::size_t index) {
  std::shared_ptr<core::XSearchProxy> proxy;
  {
    ReaderLock lock(mutex_);
    if (index >= workers_.size()) return invalid_argument("fleet: no such worker");
    proxy = workers_[index]->proxy;
  }
  // Probe outside the fleet lock: a hung (not crashed) enclave blocks only
  // this probe, never routing or the drain/respawn writer path.
  return proxy->heartbeat();
}

Status ProxyFleet::kill_worker(std::size_t index) {
  ReaderLock lock(mutex_);
  if (index >= workers_.size()) return invalid_argument("fleet: no such worker");
  workers_[index]->proxy->crash_enclave();
  return Status::ok();
}

std::shared_ptr<core::XSearchProxy> ProxyFleet::worker_proxy(
    std::size_t index) const {
  ReaderLock lock(mutex_);
  if (index >= workers_.size()) return nullptr;
  return workers_[index]->proxy;
}

sgx::Measurement ProxyFleet::measurement() const {
  // All workers run the same enclave code (XSearchProxy::code_identity), so
  // worker 0's measurement is the fleet's. Respawn preserves it: a fresh
  // proxy re-measures the same code. Copied out under the lock — a
  // reference would dangle if respawn replaced the worker.
  ReaderLock lock(mutex_);
  return workers_.front()->proxy->measurement();
}

Result<core::HandshakeResponse> ProxyFleet::handshake(
    const crypto::X25519Key& client_ephemeral_pub,
    std::uint64_t proposed_session_id) {
  // A caller-proposed id is routed like any other; otherwise draw ids until
  // the owning worker accepts one (collisions are ~2^-64, but the loop also
  // absorbs an id of 0, which is the "no proposal" sentinel).
  for (std::size_t attempt = 0; attempt < kHandshakeIdAttempts; ++attempt) {
    std::uint64_t session_id = proposed_session_id;
    if (session_id == 0) {
      MutexLock rng_lock(rng_mutex_);
      session_id = session_id_rng_.next();
    }
    if (session_id == 0) continue;

    std::shared_ptr<core::XSearchProxy> proxy;
    {
      ReaderLock lock(mutex_);
      const std::size_t owner = owner_locked(session_id);
      if (owner >= workers_.size()) {
        return unavailable("fleet: no live workers");
      }
      Worker& worker = *workers_[owner];
      worker.routed.fetch_add(1, std::memory_order_relaxed);
      proxy = worker.proxy;
    }
    auto response = proxy->handshake(client_ephemeral_pub, session_id);
    if (response.is_ok() ||
        response.status().code() != StatusCode::kFailedPrecondition ||
        proposed_session_id != 0) {
      return response;
    }
    // Id already in use on that worker — draw another.
  }
  return resource_exhausted("fleet: could not place a session id");
}

Result<Bytes> ProxyFleet::handle_query_record(std::uint64_t session_id,
                                              ByteSpan record) {
  return handle_query_record(session_id, record, Deadline());
}

Result<Bytes> ProxyFleet::handle_query_record(std::uint64_t session_id,
                                              ByteSpan record,
                                              const Deadline& deadline) {
  std::shared_ptr<core::XSearchProxy> proxy;
  {
    ReaderLock lock(mutex_);
    const std::size_t owner = owner_locked(session_id);
    if (owner >= workers_.size()) {
      return unavailable("fleet: no live workers");
    }
    Worker& worker = *workers_[owner];
    worker.routed.fetch_add(1, std::memory_order_relaxed);
    proxy = worker.proxy;
  }
  // The call runs WITHOUT the fleet lock: shared ownership pins the proxy,
  // so respawn can swap the slot under in-flight requests (the retired
  // proxy dies when the last one returns), and a hung worker stalls only
  // its own arc's requests instead of wedging the router.
  return proxy->handle_query_record(session_id, record, deadline);
}

Status ProxyFleet::drain(std::size_t index) { return drain(index, /*seal_final=*/true); }

Status ProxyFleet::drain(std::size_t index, bool seal_final) {
  {
    WriterLock lock(mutex_);
    if (index >= workers_.size()) return invalid_argument("fleet: no such worker");
    if (!workers_[index]->live) return Status::ok();  // idempotent
    std::size_t live = 0;
    for (const auto& worker : workers_) live += worker->live ? 1 : 0;
    if (live <= 1) {
      return failed_precondition("fleet: refusing to drain the last live worker");
    }
    workers_[index]->live = false;
    rebuild_ring_locked();
  }
  // Graceful exit: seal what the worker learned so its successor restores
  // a full window. Best effort — a crashed enclave fails the seal ecall,
  // leaving the last *periodic* checkpoint as the recovery point; a HUNG
  // enclave (probe timeout) is drained with `seal_final = false`, because
  // the seal ecall itself could block forever. The seal runs outside the
  // fleet lock (shared ownership pins the proxy across a concurrent
  // respawn), so it cannot stall queries on healthy workers.
  if (!seal_final) return Status::ok();
  std::shared_ptr<core::XSearchProxy> proxy;
  {
    ReaderLock lock(mutex_);
    Worker& worker = *workers_[index];
    if (!worker.live && !worker.proxy->checkpoint_path().empty()) {
      proxy = worker.proxy;
    }
  }
  if (proxy != nullptr) (void)proxy->checkpoint_now();
  return Status::ok();
}

Status ProxyFleet::respawn(std::size_t index) {
  core::XSearchProxy::Options options;
  {
    WriterLock lock(mutex_);
    if (index >= workers_.size()) return invalid_argument("fleet: no such worker");
    workers_[index]->respawns += 1;
    options = worker_options(index);
  }
  // The expensive part — enclave init plus reading and replaying the
  // sealed checkpoint — runs without the fleet lock, so queries on healthy
  // workers (shared lock) flow while the replacement warms up. Routing
  // still sends the dead arc's records to the old slot until the swap;
  // they fail/migrate exactly as during the outage itself.
  auto proxy =
      core::XSearchProxy::create(engine_, *authority_, options);
  if (!proxy) return proxy.status();
  // The fresh proxy already ran its restore in create(): with a sealed
  // checkpoint on disk this respawn was warm, otherwise cold.
  account_restore(*proxy.value(), /*initial_spawn=*/false);
  respawns_total_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<core::XSearchProxy> retired;
  {
    WriterLock lock(mutex_);
    retired = std::move(workers_[index]->proxy);  // destroyed after unlock
    workers_[index]->proxy = std::move(proxy).value();
    workers_[index]->live = true;
    rebuild_ring_locked();
  }
  return Status::ok();
}

Status ProxyFleet::auto_respawn(std::size_t index) {
  const Status respawned = respawn(index);
  if (respawned.is_ok()) {
    auto_respawns_.fetch_add(1, std::memory_order_relaxed);
  }
  return respawned;
}

}  // namespace xsearch::net
