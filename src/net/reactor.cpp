#include "net/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <thread>
#include <unordered_map>

#include "net/timer_wheel.hpp"

namespace xsearch::net {

namespace {

// epoll_event.data.u64 tags; connection ids start at 2.
constexpr std::uint64_t kWakeTag = 0;
constexpr std::uint64_t kListenerTag = 1;

// How long the accept loop parks after EMFILE/ENFILE before retrying.
constexpr Nanos kAcceptBackoff = 20 * kMilli;

// Read chunk bounds: small enough not to over-allocate for chatty peers,
// large enough to drain a bulk sender in few syscalls.
constexpr std::size_t kMinReadChunk = 4 * 1024;
constexpr std::size_t kMaxReadChunk = 64 * 1024;

std::size_t resolve_shards(std::size_t requested) {
  return requested > 0 ? requested : 1;
}

std::size_t resolve_workers(std::size_t requested) {
  if (requested > 0) return requested;
  return std::max<std::size_t>(8, std::thread::hardware_concurrency());
}

}  // namespace

/// Per-connection state. Owned and touched exclusively by its shard's loop
/// thread; dispatch workers only ever see the (shared_ptr) protocol and
/// communicate back through the shard inbox.
struct Reactor::Connection {
  enum class State : std::uint8_t {
    kReadingHeader,  // between messages (idle TTL applies)
    kReadingBody,    // a message has started (body budget applies)
    kDispatched,     // a job is queued or running on a worker
    kWriting,        // reply (or shed/error bytes) draining to the peer
  };

  TcpStream stream;
  std::uint64_t id = 0;
  State state = State::kReadingHeader;
  std::shared_ptr<ConnectionProtocol> protocol;

  // Receive buffer: unconsumed bytes live in [rpos, rbuf.size()). Consuming
  // advances rpos; the buffer compacts when the dead prefix dominates, so
  // FrameCursor views stay valid between on_input and the consume.
  Bytes rbuf;
  std::size_t rpos = 0;
  std::size_t need = 0;

  // Write queue: reply chunks flushed with vectored writes; wfront is the
  // flushed prefix of the front chunk.
  std::deque<Bytes> wqueue;
  std::size_t wfront = 0;
  bool epollout_armed = false;

  bool peer_eof = false;       // orderly half-close seen; flush, then close
  bool pending_close = false;  // close once writes flush / job completes
  std::uint64_t generation = 0;  // matches completions to the live request

  Nanos last_activity = 0;
  Nanos body_deadline = 0;   // abs ns; 0 = none (message-in-progress bound)
  Nanos write_deadline = 0;  // abs ns; 0 = none (slow-reader bound)
};

/// One event loop: epoll fd + eventfd + timer wheel + the connections it
/// owns. Only `inbox` is shared with other threads.
struct Reactor::Shard {
  explicit Shard(Nanos now) : wheel(now) {}

  FileDescriptor epoll;
  FileDescriptor wakefd;
  TimerWheel wheel;
  std::size_t index = 0;
  bool owns_listener = false;
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns;
  std::thread thread;

  struct Completion {
    std::uint64_t id = 0;
    std::uint64_t generation = 0;
    std::vector<Bytes> reply;
    bool close = false;
  };
  struct Incoming {
    TcpStream stream;
    std::uint64_t id = 0;
  };
  struct Inbox {
    Mutex mutex;
    std::vector<Completion> completions XS_GUARDED_BY(mutex);
    std::vector<Incoming> incoming XS_GUARDED_BY(mutex);
    bool stop XS_GUARDED_BY(mutex) = false;
  };
  Inbox inbox;
};

Result<std::unique_ptr<Reactor>> Reactor::start(TcpListener listener,
                                                Options options) {
  if (!options.protocol_factory) {
    return invalid_argument("reactor needs a protocol factory");
  }
  XS_RETURN_IF_ERROR(listener.set_nonblocking(true));
  auto reactor = std::unique_ptr<Reactor>(
      new Reactor(std::move(listener), std::move(options)));

  const Nanos now = wall_now();
  const std::size_t shard_count = resolve_shards(reactor->options_.shards);
  for (std::size_t i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>(now);
    shard->index = i;
    shard->owns_listener = i == 0;
    shard->epoll = FileDescriptor(::epoll_create1(EPOLL_CLOEXEC));
    if (!shard->epoll.valid()) {
      return unavailable(std::string("epoll_create1: ") + std::strerror(errno));
    }
    shard->wakefd = FileDescriptor(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
    if (!shard->wakefd.valid()) {
      return unavailable(std::string("eventfd: ") + std::strerror(errno));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    if (::epoll_ctl(shard->epoll.get(), EPOLL_CTL_ADD, shard->wakefd.get(),
                    &ev) != 0) {
      return unavailable(std::string("epoll_ctl(wake): ") +
                         std::strerror(errno));
    }
    if (shard->owns_listener) {
      epoll_event lev{};
      lev.events = EPOLLIN;  // level-triggered: drain_accept reads to EAGAIN
      lev.data.u64 = kListenerTag;
      if (::epoll_ctl(shard->epoll.get(), EPOLL_CTL_ADD,
                      reactor->listener_.native_fd(), &lev) != 0) {
        return unavailable(std::string("epoll_ctl(listener): ") +
                           std::strerror(errno));
      }
    }
    reactor->shards_.push_back(std::move(shard));
  }

  reactor->pool_ = std::make_unique<ThreadPool>(
      resolve_workers(reactor->options_.dispatch_workers),
      std::max<std::size_t>(1, reactor->options_.dispatch_queue));
  for (auto& shard : reactor->shards_) {
    Shard* raw = shard.get();
    shard->thread = std::thread([reactor = reactor.get(), raw] {
      reactor->shard_loop(*raw);
    });
  }
  return reactor;
}

Reactor::Reactor(TcpListener listener, Options options)
    : listener_(std::move(listener)), options_(std::move(options)) {}

Reactor::~Reactor() { stop(); }

void Reactor::stop() {
  MutexLock lock(stop_mutex_);
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  listener_.close();
  for (auto& shard : shards_) {
    {
      MutexLock inbox_lock(shard->inbox.mutex);
      shard->inbox.stop = true;
    }
    wake(*shard);
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  // In-flight jobs finish against their shared protocol objects; their
  // completions are dropped at the (now stopping) inboxes.
  if (pool_) pool_->shutdown();
  // No thread can be inside the listener anymore: free the port.
  listener_.release();
}

void Reactor::wake(Shard& shard) {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(shard.wakefd.get(), &one, sizeof one);
}

void Reactor::shard_loop(Shard& shard) {
  std::vector<epoll_event> events(64);
  std::vector<TimerWheel::Entry> fired;
  for (;;) {
    const int timeout = shard.wheel.poll_timeout_millis(wall_now());
    const int n = ::epoll_wait(shard.epoll.get(), events.data(),
                               static_cast<int>(events.size()), timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone: only happens at teardown
    }

    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[static_cast<std::size_t>(i)];
      if (ev.data.u64 == kWakeTag) {
        std::uint64_t drain = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(shard.wakefd.get(), &drain, sizeof drain);
        bool stop_now = false;
        std::vector<Shard::Completion> completions;
        std::vector<Shard::Incoming> incoming;
        {
          MutexLock lock(shard.inbox.mutex);
          stop_now = shard.inbox.stop;
          completions.swap(shard.inbox.completions);
          incoming.swap(shard.inbox.incoming);
        }
        for (auto& in : incoming) {
          adopt_connection(shard, std::move(in.stream), in.id);
        }
        for (auto& c : completions) {
          apply_completion(shard, c.id, c.generation, std::move(c.reply),
                           c.close);
        }
        if (stop_now) {
          // Tear down every connection this shard owns and leave.
          std::vector<std::uint64_t> ids;
          ids.reserve(shard.conns.size());
          for (const auto& [id, conn] : shard.conns) ids.push_back(id);
          for (const std::uint64_t id : ids) destroy_connection(shard, id);
          return;
        }
        continue;
      }
      if (ev.data.u64 == kListenerTag) {
        drain_accept(shard);
        continue;
      }
      const std::uint64_t id = ev.data.u64;
      if ((ev.events & (EPOLLERR | EPOLLHUP)) != 0) {
        // Hard error: nothing more can be read or written.
        destroy_connection(shard, id);
        continue;
      }
      if ((ev.events & EPOLLOUT) != 0) on_writable(shard, id);
      if ((ev.events & (EPOLLIN | EPOLLRDHUP)) != 0) on_readable(shard, id);
    }

    const Nanos now = wall_now();
    fired.clear();
    shard.wheel.advance(now, fired);
    for (const auto& entry : fired) on_timer(shard, entry.key, now);
  }
}

// ---- accept path -----------------------------------------------------------

void Reactor::drain_accept(Shard& shard) {
  if (accept_paused_) return;
  for (;;) {
    if (stopping_.load(std::memory_order_relaxed)) return;
    bool simulated_exhaustion = false;
    if (options_.accept_fault) {
      const int fault = options_.accept_fault();
      if (fault == EMFILE || fault == ENFILE) {
        simulated_exhaustion = true;
      } else if (fault != 0) {
        return;
      }
    }
    TcpStream stream;
    if (!simulated_exhaustion) {
      auto accepted = listener_.accept_nonblocking();
      if (!accepted) return;  // listener closed or fatal
      if (accepted.value().would_block) return;
      if (accepted.value().fd_exhausted) simulated_exhaustion = true;
      if (!simulated_exhaustion) stream = std::move(accepted.value().stream);
    }
    if (simulated_exhaustion) {
      // Out of descriptors: the pending connection stays in the kernel
      // backlog. Retrying immediately would spin on the same error, so
      // park the accept loop and let the timer wheel resume it.
      fd_exhausted_.fetch_add(1, std::memory_order_relaxed);
      pause_accept(shard);
      return;
    }

    accepted_.fetch_add(1, std::memory_order_relaxed);
    if (options_.max_connections > 0 &&
        active_.load(std::memory_order_relaxed) >= options_.max_connections) {
      // Typed accept-time shed: tell the client it hit a full server, not a
      // dead one. Best effort — the socket is fresh, so a single
      // nonblocking write virtually always takes the few error bytes.
      shed_.fetch_add(1, std::memory_order_relaxed);
      reaped_.fetch_add(1, std::memory_order_relaxed);
      if (options_.encode_shed) {
        const Bytes reply = options_.encode_shed(
            overloaded("server busy: connection limit reached"));
        const ConstBuffer buffer{reply.data(), reply.size()};
        (void)stream.write_some(std::span<const ConstBuffer>(&buffer, 1));
      }
      continue;  // stream destructor closes the fd
    }

    active_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t id =
        next_id_.fetch_add(1, std::memory_order_relaxed);
    Shard& target = *shards_[id % shards_.size()];
    if (&target == &shard) {
      adopt_connection(shard, std::move(stream), id);
    } else {
      {
        MutexLock lock(target.inbox.mutex);
        target.inbox.incoming.push_back(
            Shard::Incoming{std::move(stream), id});
      }
      wake(target);
    }
  }
}

void Reactor::pause_accept(Shard& shard) {
  if (accept_paused_) return;
  accept_paused_ = true;
  (void)::epoll_ctl(shard.epoll.get(), EPOLL_CTL_DEL, listener_.native_fd(),
                    nullptr);
  shard.wheel.schedule(kListenerTag, wall_now() + kAcceptBackoff);
}

void Reactor::resume_accept(Shard& shard) {
  if (!accept_paused_) return;
  accept_paused_ = false;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  (void)::epoll_ctl(shard.epoll.get(), EPOLL_CTL_ADD, listener_.native_fd(),
                    &ev);
  drain_accept(shard);
}

void Reactor::adopt_connection(Shard& shard, TcpStream stream,
                               std::uint64_t id) {
  auto conn = std::make_unique<Connection>();
  conn->stream = std::move(stream);
  conn->id = id;
  conn->protocol = options_.protocol_factory();
  conn->last_activity = wall_now();

  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
  ev.data.u64 = id;
  if (::epoll_ctl(shard.epoll.get(), EPOLL_CTL_ADD, conn->stream.native_fd(),
                  &ev) != 0) {
    active_.fetch_sub(1, std::memory_order_relaxed);
    reaped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Connection& ref = *conn;
  shard.conns.emplace(id, std::move(conn));
  if (options_.idle_ttl > 0) {
    schedule_conn_timer(shard, ref, ref.last_activity + options_.idle_ttl);
  }
  // Data may have arrived before the fd joined the epoll set; with
  // edge-triggered registration that edge is already behind us.
  on_readable(shard, id);
}

void Reactor::destroy_connection(Shard& shard, std::uint64_t id) {
  const auto it = shard.conns.find(id);
  if (it == shard.conns.end()) return;
  // If a worker still runs this connection's job it holds its own
  // shared_ptr to the protocol; the completion will miss the id and drop.
  (void)::epoll_ctl(shard.epoll.get(), EPOLL_CTL_DEL,
                    it->second->stream.native_fd(), nullptr);
  shard.conns.erase(it);
  active_.fetch_sub(1, std::memory_order_relaxed);
  reaped_.fetch_add(1, std::memory_order_relaxed);
}

void Reactor::schedule_conn_timer(Shard& shard, Connection& conn, Nanos due) {
  shard.wheel.schedule(conn.id, due);
}

// ---- read path -------------------------------------------------------------

void Reactor::on_readable(Shard& shard, std::uint64_t id) {
  auto it = shard.conns.find(id);
  if (it == shard.conns.end()) return;
  Connection* conn = it->second.get();

  // While a job is dispatched or a reply is draining we stop reading: the
  // kernel socket buffer backpressures the peer, bounding memory at one
  // request per connection. finish_request() re-enters here afterwards.
  for (;;) {
    if (conn->state == Connection::State::kDispatched ||
        conn->state == Connection::State::kWriting || conn->peer_eof) {
      return;
    }
    // Grow the buffer towards the protocol's `need` hint (whole frame) or
    // by a chunk when the need is unknown.
    const std::size_t buffered = conn->rbuf.size() - conn->rpos;
    std::size_t chunk = kMinReadChunk;
    if (conn->need > buffered) {
      chunk = std::clamp(conn->need - buffered, kMinReadChunk, kMaxReadChunk);
    }
    const std::size_t old_size = conn->rbuf.size();
    conn->rbuf.resize(old_size + chunk);
    auto progress = conn->stream.read_some(
        std::span<std::uint8_t>(conn->rbuf.data() + old_size, chunk));
    if (!progress) {
      conn->rbuf.resize(old_size);
      destroy_connection(shard, id);
      return;
    }
    conn->rbuf.resize(old_size + progress.value().bytes);
    if (progress.value().would_block) return;
    if (progress.value().eof) {
      // Orderly half-close. Anything already buffered still gets parsed and
      // answered (a client may legally send-then-shutdown); the connection
      // dies once outstanding work and writes drain.
      conn->peer_eof = true;
      conn->pending_close = true;
      process_input(shard, *conn);
      // process_input may have destroyed the connection or dispatched.
      const auto again = shard.conns.find(id);
      if (again == shard.conns.end()) return;
      conn = again->second.get();
      if (conn->state != Connection::State::kDispatched &&
          conn->state != Connection::State::kWriting) {
        destroy_connection(shard, id);
      }
      return;
    }
    conn->last_activity = wall_now();
    process_input(shard, *conn);
    const auto again = shard.conns.find(id);
    if (again == shard.conns.end()) return;
    conn = again->second.get();
  }
}

void Reactor::process_input(Shard& shard, Connection& conn) {
  const std::uint64_t id = conn.id;
  for (;;) {
    if (conn.state == Connection::State::kDispatched ||
        conn.state == Connection::State::kWriting) {
      return;
    }
    const std::size_t buffered = conn.rbuf.size() - conn.rpos;
    if (buffered < conn.need) return;  // protocol asked for more bytes

    const ConnectionProtocol::Action action = conn.protocol->on_input(
        ByteSpan(conn.rbuf.data() + conn.rpos, buffered));

    if (action.consumed > 0) {
      conn.rpos += std::min(action.consumed, buffered);
      // Compact once the dead prefix dominates; views handed to on_input
      // are never held across iterations, so moving bytes here is safe.
      if (conn.rpos == conn.rbuf.size()) {
        conn.rbuf.clear();
        conn.rpos = 0;
      } else if (conn.rpos >= 4096 && conn.rpos * 2 >= conn.rbuf.size()) {
        conn.rbuf.erase(conn.rbuf.begin(),
                        conn.rbuf.begin() +
                            static_cast<std::ptrdiff_t>(conn.rpos));
        conn.rpos = 0;
      }
    }
    conn.need = action.need;

    // Body-budget bookkeeping: arms when a message starts, disarms when it
    // completes (or the connection goes back to waiting between messages).
    if (action.mid_message) {
      conn.state = Connection::State::kReadingBody;
      if (options_.io_budget > 0 && conn.body_deadline == 0) {
        conn.body_deadline = wall_now() + options_.io_budget;
        schedule_conn_timer(shard, conn, conn.body_deadline);
      }
    } else {
      conn.state = Connection::State::kReadingHeader;
      conn.body_deadline = 0;
    }

    if (action.close) conn.pending_close = true;

    if (!action.reply.empty()) {
      std::vector<Bytes> chunks;
      chunks.push_back(std::move(const_cast<Bytes&>(action.reply)));
      enqueue_reply(conn, std::move(chunks), /*close=*/false);
      conn.state = Connection::State::kWriting;
      if (!flush_writes(shard, conn)) return;
      if (shard.conns.find(id) == shard.conns.end()) return;
      if (conn.state == Connection::State::kWriting) return;
    }

    if (action.dispatch) {
      dispatch_job(shard, conn, std::move(const_cast<Bytes&>(action.job)),
                   action.deadline);
      return;
    }

    if (conn.pending_close && conn.wqueue.empty() &&
        conn.state != Connection::State::kDispatched) {
      destroy_connection(shard, id);
      return;
    }

    if (action.consumed == 0) return;  // no progress without more input
  }
}

// ---- dispatch path ---------------------------------------------------------

void Reactor::dispatch_job(Shard& shard, Connection& conn, Bytes job,
                           const Deadline& deadline) {
  conn.state = Connection::State::kDispatched;
  conn.body_deadline = 0;
  const std::uint64_t generation = ++conn.generation;
  const Deadline queue_deadline =
      options_.queue_timeout > 0 ? Deadline::after(options_.queue_timeout)
                                 : Deadline();
  const std::uint64_t id = conn.id;
  auto protocol = conn.protocol;
  Shard* shard_ptr = &shard;
  const bool queued = pool_->try_submit(
      [this, shard_ptr, id, generation, protocol, job = std::move(job),
       deadline, queue_deadline]() mutable {
        run_dispatched(*shard_ptr, id, generation, protocol, std::move(job),
                       deadline, queue_deadline);
      });
  if (!queued) {
    // Dispatch queue full: shed this request right here on the loop thread
    // (the protocol object is ours again the moment try_submit refused).
    shed_.fetch_add(1, std::memory_order_relaxed);
    auto result =
        conn.protocol->shed(overloaded("server busy: dispatch queue full"));
    apply_completion(shard, id, generation, std::move(result.reply),
                     result.close);
  }
}

void Reactor::run_dispatched(Shard& shard, std::uint64_t id,
                             std::uint64_t generation,
                             const std::shared_ptr<ConnectionProtocol>& protocol,
                             Bytes job, const Deadline& deadline,
                             const Deadline& queue_deadline) {
  if (stopping_.load(std::memory_order_relaxed)) return;
  ConnectionProtocol::JobResult result;
  if (queue_deadline.expired()) {
    // Waited past the queue timeout: its client has likely timed out, so
    // shed instead of burning a worker on abandoned work.
    queue_expired_.fetch_add(1, std::memory_order_relaxed);
    shed_.fetch_add(1, std::memory_order_relaxed);
    result = protocol->shed(
        overloaded("server busy: request expired in dispatch queue"));
  } else if (deadline.expired()) {
    // The request's own end-to-end budget ran out while queued. Refusing
    // before the handler runs is exactly-once safe: no record was opened.
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    result = protocol->shed(
        deadline_exceeded("request deadline expired while queued"));
  } else {
    result = protocol->run_job(job, deadline);
  }
  {
    MutexLock lock(shard.inbox.mutex);
    if (shard.inbox.stop) return;
    shard.inbox.completions.push_back(Shard::Completion{
        id, generation, std::move(result.reply), result.close});
  }
  wake(shard);
}

void Reactor::apply_completion(Shard& shard, std::uint64_t id,
                               std::uint64_t generation,
                               std::vector<Bytes> reply, bool close) {
  const auto it = shard.conns.find(id);
  if (it == shard.conns.end()) return;  // connection died while dispatched
  Connection& conn = *it->second;
  if (conn.generation != generation) return;  // stale completion
  conn.state = Connection::State::kWriting;
  enqueue_reply(conn, std::move(reply), close);
  if (!flush_writes(shard, conn)) return;
  if (conn.state != Connection::State::kWriting) finish_request(shard, id);
}

// ---- write path ------------------------------------------------------------

void Reactor::enqueue_reply(Connection& conn, std::vector<Bytes> reply,
                            bool close) {
  for (Bytes& chunk : reply) {
    if (!chunk.empty()) conn.wqueue.push_back(std::move(chunk));
  }
  if (close) conn.pending_close = true;
}

bool Reactor::flush_writes(Shard& shard, Connection& conn) {
  const std::uint64_t id = conn.id;
  while (!conn.wqueue.empty()) {
    // Gather up to a write's worth of queued chunks into one syscall.
    ConstBuffer buffers[16];
    std::size_t count = 0;
    std::size_t offset = conn.wfront;
    for (const Bytes& chunk : conn.wqueue) {
      buffers[count].data = chunk.data() + offset;
      buffers[count].size = chunk.size() - offset;
      offset = 0;
      if (++count == 16) break;
    }
    auto progress =
        conn.stream.write_some(std::span<const ConstBuffer>(buffers, count));
    if (!progress) {
      destroy_connection(shard, id);
      return false;
    }
    if (progress.value().would_block) {
      // Slow reader: hand the rest to EPOLLOUT and bound the stall.
      if (!conn.epollout_armed) {
        conn.epollout_armed = true;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
        ev.data.u64 = id;
        (void)::epoll_ctl(shard.epoll.get(), EPOLL_CTL_MOD,
                          conn.stream.native_fd(), &ev);
      }
      if (options_.io_budget > 0 && conn.write_deadline == 0) {
        conn.write_deadline = wall_now() + options_.io_budget;
        schedule_conn_timer(shard, conn, conn.write_deadline);
      }
      conn.state = Connection::State::kWriting;
      return true;
    }
    conn.last_activity = wall_now();
    if (options_.io_budget > 0 && conn.write_deadline != 0) {
      // Progress re-arms the slow-reader budget.
      conn.write_deadline = conn.last_activity + options_.io_budget;
    }
    std::size_t remaining = progress.value().bytes;
    while (remaining > 0 && !conn.wqueue.empty()) {
      Bytes& front = conn.wqueue.front();
      const std::size_t left = front.size() - conn.wfront;
      if (remaining >= left) {
        remaining -= left;
        conn.wfront = 0;
        conn.wqueue.pop_front();
      } else {
        conn.wfront += remaining;
        remaining = 0;
      }
    }
  }

  // Fully flushed: the reply (or inline error) is out, so a kWriting
  // connection goes back to waiting for the next message.
  if (conn.state == Connection::State::kWriting) {
    conn.state = Connection::State::kReadingHeader;
  }
  conn.write_deadline = 0;
  if (conn.epollout_armed) {
    conn.epollout_armed = false;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
    ev.data.u64 = id;
    (void)::epoll_ctl(shard.epoll.get(), EPOLL_CTL_MOD,
                      conn.stream.native_fd(), &ev);
  }
  if (conn.pending_close && conn.state != Connection::State::kDispatched) {
    destroy_connection(shard, id);
    return false;
  }
  return true;
}

void Reactor::on_writable(Shard& shard, std::uint64_t id) {
  const auto it = shard.conns.find(id);
  if (it == shard.conns.end()) return;
  Connection& conn = *it->second;
  if (conn.wqueue.empty()) return;
  const bool was_writing = conn.state == Connection::State::kWriting;
  if (!flush_writes(shard, conn)) return;
  if (was_writing && conn.state == Connection::State::kReadingHeader) {
    finish_request(shard, id);
  }
}

void Reactor::finish_request(Shard& shard, std::uint64_t id) {
  const auto it = shard.conns.find(id);
  if (it == shard.conns.end()) return;
  Connection& conn = *it->second;
  conn.state = Connection::State::kReadingHeader;
  if (conn.peer_eof) {
    // Half-closed peer: serve whatever is still buffered, then go away.
    process_input(shard, conn);
    const auto again = shard.conns.find(id);
    if (again == shard.conns.end()) return;
    Connection& after = *again->second;
    if (after.state != Connection::State::kDispatched &&
        after.state != Connection::State::kWriting) {
      destroy_connection(shard, id);
    }
    return;
  }
  // Pipelined requests may already be buffered, and reads were paused while
  // the request was in flight — parse first, then poll the socket for
  // anything that arrived meanwhile (edge-triggered events for it are
  // behind us).
  process_input(shard, conn);
  if (shard.conns.find(id) == shard.conns.end()) return;
  on_readable(shard, id);
}

// ---- timers ----------------------------------------------------------------

void Reactor::on_timer(Shard& shard, std::uint64_t id, Nanos now) {
  if (id == kListenerTag) {
    resume_accept(shard);
    return;
  }
  const auto it = shard.conns.find(id);
  if (it == shard.conns.end()) return;  // timer outlived its connection
  Connection& conn = *it->second;

  // Lazily validated deadlines: act on whichever is genuinely due, else
  // re-arm for the earliest still-pending one.
  if (conn.body_deadline != 0 && now >= conn.body_deadline &&
      conn.state == Connection::State::kReadingBody) {
    // Slow writer: the peer started a message and never finished it.
    destroy_connection(shard, id);
    return;
  }
  if (conn.write_deadline != 0 && now >= conn.write_deadline) {
    // Slow reader: the reply has not drained within the io budget.
    destroy_connection(shard, id);
    return;
  }
  if (options_.idle_ttl > 0 &&
      conn.state == Connection::State::kReadingHeader &&
      conn.wqueue.empty() && conn.rbuf.size() == conn.rpos &&
      now - conn.last_activity >= options_.idle_ttl) {
    idle_reaped_.fetch_add(1, std::memory_order_relaxed);
    destroy_connection(shard, id);
    return;
  }

  Nanos next = 0;
  const auto consider = [&next](Nanos candidate) {
    if (candidate > 0 && (next == 0 || candidate < next)) next = candidate;
  };
  consider(conn.body_deadline);
  consider(conn.write_deadline);
  if (options_.idle_ttl > 0) consider(conn.last_activity + options_.idle_ttl);
  if (next > 0) schedule_conn_timer(shard, conn, next);
}

}  // namespace xsearch::net
