// TCP frontend for the X-Search proxy.
//
// Hosts a core::ProxyHandler — a single XSearchProxy or a net::ProxyFleet —
// behind a loopback TCP listener, speaking the framed protocol of
// net/frame.hpp: HELLO (attested handshake) then any number of QUERY or
// BATCH_QUERY frames per connection. This is the untrusted host component
// of the deployment — it moves ciphertext between sockets and the enclave
// and never sees a plaintext query.
//
// Connections are served by a fixed `common` ThreadPool (the paper's
// "multiple threads" proxy host, §4.1) instead of one thread per
// connection, and every accepted stream is tracked in a registry that is
// reaped as soon as the connection finishes — server memory is O(live
// connections), not O(connections ever served). When all workers are busy
// and the pending queue is full, new connections are shed with a "server
// busy" error rather than queued without bound; queued connections whose
// wait exceeded `queue_timeout` are shed (typed OVERLOADED) when a worker
// finally picks them up, instead of serving requests whose clients gave up.
//
// Deadline handling: v2 frames carry the client's remaining budget; the
// server converts it to a local Deadline, refuses already-expired requests
// before the handler runs (typed DEADLINE_EXCEEDED, exactly-once safe), and
// bounds reply writes by it. Clients that ever sent a v2 frame get typed
// kErrorStatus replies (OVERLOADED/UPSTREAM_DOWN/...); v1 peers keep the
// legacy kError text frames, byte for byte.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>

#include "common/mutex.hpp"
#include "common/thread_pool.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "xsearch/proxy.hpp"

namespace xsearch::net {

class ProxyServer {
 public:
  struct Options {
    /// Connection-serving threads (0 = max(8, hardware_concurrency)).
    /// A worker is occupied for the lifetime of the connection it serves.
    std::size_t workers = 0;
    /// Accepted connections that may wait for a free worker; beyond this
    /// the server sheds new connections with a "server busy" error.
    /// Size `workers` for the expected number of concurrently *live*
    /// sessions and keep this queue small if clients must fail fast.
    std::size_t max_pending_connections = 128;
    /// How long a queued connection may wait for a worker before being
    /// shed with a typed OVERLOADED error instead of served (its client
    /// has likely timed out already). 0 = wait forever (historical).
    Nanos queue_timeout = 0;
    /// Budget for reading a frame's body once its header arrived (slow-
    /// writer bound) and for writing replies. 0 = unbounded. Waiting for
    /// the NEXT frame is always unbounded — idle connections are legal.
    Nanos io_budget = 0;
  };

  /// Binds loopback:`port` (0 = ephemeral) and starts the accept loop.
  [[nodiscard]] static Result<std::unique_ptr<ProxyServer>> start(
      core::ProxyHandler& proxy, std::uint16_t port = 0);
  [[nodiscard]] static Result<std::unique_ptr<ProxyServer>> start(
      core::ProxyHandler& proxy, std::uint16_t port, Options options);

  ~ProxyServer();

  ProxyServer(const ProxyServer&) = delete;
  ProxyServer& operator=(const ProxyServer&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Stops accepting, unblocks and reaps all live connections, joins the
  /// worker pool. Idempotent.
  void stop();

  /// Connections accepted over the server's lifetime.
  [[nodiscard]] std::uint64_t connections_served() const {
    return connections_.load(std::memory_order_relaxed);
  }
  /// Connections removed from the registry (finished or shed).
  [[nodiscard]] std::uint64_t connections_reaped() const {
    return reaped_.load(std::memory_order_relaxed);
  }
  /// Connections refused with "server busy" because the pool was saturated.
  [[nodiscard]] std::uint64_t connections_shed() const {
    return shed_.load(std::memory_order_relaxed);
  }
  /// Queued connections shed because their wait exceeded `queue_timeout`
  /// (also counted in `connections_shed`).
  [[nodiscard]] std::uint64_t queue_expired() const {
    return queue_expired_.load(std::memory_order_relaxed);
  }
  /// Connections currently registered (live or awaiting a worker).
  [[nodiscard]] std::size_t active_connections() const {
    MutexLock lock(connections_mutex_);
    return live_.size();
  }

 private:
  ProxyServer(core::ProxyHandler& proxy, TcpListener listener, Options options);

  void accept_loop();
  void serve_connection(TcpStream& stream);
  void reap(std::uint64_t connection_id);

  core::ProxyHandler* proxy_;
  TcpListener listener_;
  Options options_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> reaped_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> queue_expired_{0};

  // Live connection registry: lets stop() unblock workers parked in recv,
  // and is the quantity `active_connections` reports. Entries are reaped by
  // the worker when its connection closes.
  mutable Mutex connections_mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<TcpStream>> live_
      XS_GUARDED_BY(connections_mutex_);
  std::uint64_t next_connection_id_ XS_GUARDED_BY(connections_mutex_) = 1;

  ThreadPool pool_;
  std::thread accept_thread_;
};

}  // namespace xsearch::net
