// TCP frontend for the X-Search proxy.
//
// Hosts a core::ProxyHandler — a single XSearchProxy or a net::ProxyFleet —
// behind a loopback TCP listener, speaking the framed protocol of
// net/frame.hpp: HELLO (attested handshake) then any number of QUERY or
// BATCH_QUERY frames per connection. This is the untrusted host component
// of the deployment — it moves ciphertext between sockets and the enclave
// and never sees a plaintext query.
//
// Connections are served by a net::Reactor: event-loop shards multiplex
// every socket with epoll instead of parking one pool thread per
// connection, frames are parsed incrementally (zero-copy FrameCursor) out
// of each connection's receive buffer, and only complete requests are
// copied once and executed on a small dispatch worker pool. An idle
// session costs a buffer and a table entry, which is what lets one proxy
// host the paper's tens of thousands of mostly-idle clients.
//
// Overload behavior is typed and layered (all counted in stats): accept
// past `max_connections` answers OVERLOADED and closes; EMFILE/ENFILE at
// accept pauses the accept loop briefly instead of spinning; a request
// that finds the dispatch queue full, waited past `queue_timeout`, or
// whose own deadline expired while queued is shed with a typed error
// before the handler runs.
//
// Deadline handling: v2 frames carry the client's remaining budget; the
// server converts it to a local Deadline, refuses already-expired requests
// before the handler runs (typed DEADLINE_EXCEEDED, exactly-once safe).
// Clients that ever sent a v2 frame get typed kErrorStatus replies
// (OVERLOADED/UPSTREAM_DOWN/...); v1 peers keep the legacy kError text
// frames, byte for byte.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/reactor.hpp"
#include "net/socket.hpp"
#include "xsearch/proxy.hpp"

namespace xsearch::net {

class ProxyServer {
 public:
  struct Options {
    /// Dispatch workers running enclave/handler work (0 = max(8,
    /// hardware_concurrency)). Workers are occupied per *request*, not per
    /// connection — idle sessions hold no worker.
    std::size_t workers = 0;
    /// Requests that may wait for a free dispatch worker; beyond this the
    /// server sheds with a typed "server busy" error.
    std::size_t max_pending_connections = 128;
    /// How long a queued request may wait for a worker before being shed
    /// with a typed OVERLOADED error instead of served (its client has
    /// likely timed out already). 0 = wait forever (historical).
    Nanos queue_timeout = 0;
    /// Budget for reading a frame's body once its header arrived (slow-
    /// writer bound) and for draining replies to slow readers. 0 =
    /// unbounded. Waiting for the NEXT frame is always unbounded — idle
    /// connections are legal — unless `idle_ttl` says otherwise.
    Nanos io_budget = 0;
    /// Event-loop shards (0 = 1). Each shard multiplexes its share of the
    /// connections on one epoll descriptor.
    std::size_t shards = 0;
    /// Reap sessions idle longer than this (no frame in progress, nothing
    /// to write). 0 = never.
    Nanos idle_ttl = 0;
    /// Hard cap on live connections, enforced at accept with a typed
    /// OVERLOADED reply; set below RLIMIT_NOFILE so the typed shed fires
    /// before the kernel's EMFILE. 0 = unbounded.
    std::size_t max_connections = 0;
    /// Test seam: simulate an errno at accept time (see Reactor::Options).
    std::function<int()> accept_fault;
  };

  /// Binds loopback:`port` (0 = ephemeral) and starts the reactor.
  [[nodiscard]] static Result<std::unique_ptr<ProxyServer>> start(
      core::ProxyHandler& proxy, std::uint16_t port = 0);
  [[nodiscard]] static Result<std::unique_ptr<ProxyServer>> start(
      core::ProxyHandler& proxy, std::uint16_t port, Options options);

  ~ProxyServer();

  ProxyServer(const ProxyServer&) = delete;
  ProxyServer& operator=(const ProxyServer&) = delete;

  [[nodiscard]] std::uint16_t port() const { return reactor_->port(); }

  /// Stops accepting, closes every connection, joins the shard loops and
  /// dispatch workers. Idempotent; the port rebinds immediately after.
  void stop();

  /// Connections accepted over the server's lifetime.
  [[nodiscard]] std::uint64_t connections_served() const {
    return reactor_->accepted();
  }
  /// Connections fully torn down (finished, failed, or shed).
  [[nodiscard]] std::uint64_t connections_reaped() const {
    return reactor_->reaped();
  }
  /// Connections/requests refused with a typed "server busy" error.
  [[nodiscard]] std::uint64_t connections_shed() const {
    return reactor_->shed();
  }
  /// Requests shed because they waited past `queue_timeout` (also counted
  /// in `connections_shed`).
  [[nodiscard]] std::uint64_t queue_expired() const {
    return reactor_->queue_expired();
  }
  /// Requests refused (typed DEADLINE_EXCEEDED) because their own deadline
  /// expired while queued, before the handler ran.
  [[nodiscard]] std::uint64_t deadline_expired() const {
    return reactor_->deadline_expired();
  }
  /// Accept attempts that hit EMFILE/ENFILE; each pauses the accept loop
  /// briefly instead of spinning.
  [[nodiscard]] std::uint64_t fd_exhausted() const {
    return reactor_->fd_exhausted();
  }
  /// Sessions reaped by `idle_ttl`.
  [[nodiscard]] std::uint64_t idle_reaped() const {
    return reactor_->idle_reaped();
  }
  /// Connections currently live.
  [[nodiscard]] std::size_t active_connections() const {
    return reactor_->active_connections();
  }

 private:
  ProxyServer(core::ProxyHandler& proxy, std::unique_ptr<Reactor> reactor);

  core::ProxyHandler* proxy_;
  std::unique_ptr<Reactor> reactor_;
};

}  // namespace xsearch::net
