// TCP frontend for the X-Search proxy.
//
// Hosts an XSearchProxy behind a loopback TCP listener, speaking the framed
// protocol of net/frame.hpp: HELLO (attested handshake) then any number of
// QUERY frames per connection. This is the untrusted host component of the
// deployment — it moves ciphertext between sockets and the enclave and
// never sees a plaintext query.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "xsearch/proxy.hpp"

namespace xsearch::net {

class ProxyServer {
 public:
  /// Binds loopback:`port` (0 = ephemeral) and starts the accept loop.
  [[nodiscard]] static Result<std::unique_ptr<ProxyServer>> start(
      core::XSearchProxy& proxy, std::uint16_t port = 0);

  ~ProxyServer();

  ProxyServer(const ProxyServer&) = delete;
  ProxyServer& operator=(const ProxyServer&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Stops accepting, waits for in-flight connections to finish.
  void stop();

  [[nodiscard]] std::uint64_t connections_served() const {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  ProxyServer(core::XSearchProxy& proxy, TcpListener listener);

  void accept_loop();
  void serve_connection(const std::shared_ptr<TcpStream>& stream);

  core::XSearchProxy* proxy_;
  TcpListener listener_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::thread accept_thread_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
  // Live connection streams, so stop() can unblock workers parked in recv.
  std::vector<std::shared_ptr<TcpStream>> streams_;
};

}  // namespace xsearch::net
