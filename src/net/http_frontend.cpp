#include "net/http_frontend.hpp"

#include <algorithm>
#include <cctype>
#include <string>

namespace xsearch::net {

namespace {

// Same bounds read_http_request enforced: a peer may not hold more than
// this much unparsed request in our memory.
constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 1024 * 1024;

/// Finds the end of the header block (`\r\n\r\n`); npos if incomplete.
std::size_t find_header_end(ByteSpan buffered) {
  static constexpr std::uint8_t kSep[] = {'\r', '\n', '\r', '\n'};
  const auto it = std::search(buffered.begin(), buffered.end(),
                              std::begin(kSep), std::end(kSep));
  if (it == buffered.end()) return std::string::npos;
  return static_cast<std::size_t>(it - buffered.begin()) + sizeof kSep;
}

/// Content-Length of the (complete) header block; 0 when absent.
std::size_t parse_content_length(ByteSpan headers) {
  static constexpr std::string_view kName = "content-length:";
  std::size_t line_start = 0;
  for (std::size_t i = 0; i + 1 < headers.size(); ++i) {
    if (headers[i] != '\r' || headers[i + 1] != '\n') continue;
    std::size_t j = line_start;
    std::size_t k = 0;
    while (j < i && k < kName.size() &&
           std::tolower(headers[j]) == kName[k]) {
      ++j;
      ++k;
    }
    if (k == kName.size()) {
      std::size_t value = 0;
      while (j < i && (headers[j] == ' ' || headers[j] == '\t')) ++j;
      while (j < i && headers[j] >= '0' && headers[j] <= '9') {
        value = value * 10 + (headers[j] - '0');
        ++j;
      }
      return value;
    }
    line_start = i + 2;
  }
  return 0;
}

}  // namespace

/// Per-connection HTTP/1.1 keep-alive state machine for the reactor: the
/// loop thread assembles one complete request (headers + Content-Length
/// body) out of the receive buffer, and the dispatch workers parse it and
/// run the broker round-trip.
class HttpProtocol final : public ConnectionProtocol {
 public:
  explicit HttpProtocol(HttpFrontend* frontend) : frontend_(frontend) {}

  Action on_input(ByteSpan buffered) override {
    Action action;
    const std::size_t header_end = find_header_end(buffered);
    if (header_end == std::string::npos) {
      if (buffered.size() > kMaxHeaderBytes) {
        action.close = true;  // header flood; hopeless input
        return action;
      }
      action.mid_message = !buffered.empty();
      return action;
    }
    const std::size_t body = parse_content_length(buffered.first(header_end));
    if (body > kMaxBodyBytes) {
      action.close = true;
      return action;
    }
    const std::size_t total = header_end + body;
    if (buffered.size() < total) {
      action.need = total;
      action.mid_message = true;
      return action;
    }
    action.consumed = total;
    action.dispatch = true;
    action.job.assign(buffered.begin(),
                      buffered.begin() + static_cast<std::ptrdiff_t>(total));
    return action;
  }

  JobResult run_job(ByteSpan job, const Deadline& /*deadline*/) override {
    JobResult result;
    auto request = parse_http_request(job);
    if (!request) {
      result.reply.push_back(make_http_response(
          400, "Bad Request", "text/plain", "malformed request\n"));
      result.close = true;
      return result;
    }
    frontend_->requests_.fetch_add(1, std::memory_order_relaxed);
    result.reply.push_back(frontend_->handle_request(request.value()));
    // keep-alive: the connection goes back to reading the next request.
    return result;
  }

  JobResult shed(const Status& status) override {
    JobResult result;
    result.reply.push_back(encode_shed_response(status));
    result.close = true;
    return result;
  }

  [[nodiscard]] static Bytes encode_shed_response(const Status& status) {
    return make_http_response(503, "Service Unavailable", "text/plain",
                              status.to_string() + "\n");
  }

 private:
  HttpFrontend* frontend_;
};

Result<std::unique_ptr<HttpFrontend>> HttpFrontend::start(
    core::ProxyHandler& proxy, const sgx::AttestationAuthority& authority,
    std::uint16_t port) {
  auto listener = TcpListener::bind(port);
  if (!listener) return listener.status();
  auto frontend =
      std::unique_ptr<HttpFrontend>(new HttpFrontend(proxy, authority));
  // Attest the enclave up front so misconfiguration fails fast.
  {
    MutexLock lock(frontend->broker_mutex_);
    XS_RETURN_IF_ERROR(frontend->broker_->connect());
  }

  Reactor::Options options;
  HttpFrontend* raw = frontend.get();
  options.protocol_factory = [raw] {
    return std::make_unique<HttpProtocol>(raw);
  };
  options.encode_shed = [](const Status& status) {
    return HttpProtocol::encode_shed_response(status);
  };
  auto reactor = Reactor::start(std::move(listener).value(),
                                std::move(options));
  if (!reactor) return reactor.status();
  frontend->reactor_ = std::move(reactor).value();
  return frontend;
}

HttpFrontend::HttpFrontend(core::ProxyHandler& proxy,
                           const sgx::AttestationAuthority& authority)
    : proxy_(&proxy), authority_(&authority) {
  broker_ = std::make_unique<core::ClientBroker>(*proxy_, *authority_,
                                                 proxy_->measurement(),
                                                 /*seed=*/0x477f);
}

HttpFrontend::~HttpFrontend() { stop(); }

void HttpFrontend::stop() {
  if (reactor_) reactor_->stop();
}

Bytes HttpFrontend::handle_request(const HttpRequest& request) {
  if (request.method != "GET") {
    return make_http_response(405, "Method Not Allowed", "text/plain",
                              "only GET is supported\n");
  }
  if (request.path == "/healthz") {
    return make_http_response(200, "OK", "text/plain", "ok\n");
  }
  if (request.path != "/search") {
    return make_http_response(404, "Not Found", "text/plain", "unknown path\n");
  }
  const auto query = request.param("q");
  if (!query || query->empty()) {
    return make_http_response(400, "Bad Request", "text/plain",
                              "missing query parameter q\n");
  }

  Result<std::vector<engine::SearchResult>> results = [&] {
    MutexLock lock(broker_mutex_);
    return broker_->search(*query);
  }();
  if (!results) {
    return make_http_response(502, "Bad Gateway", "text/plain",
                              results.status().to_string() + "\n");
  }

  std::string json = "{\"query\":\"" + json_escape(*query) + "\",\"results\":[";
  bool first = true;
  for (const auto& r : results.value()) {
    if (!first) json += ',';
    first = false;
    json += "{\"title\":\"" + json_escape(r.title) + "\",\"url\":\"" +
            json_escape(r.url) + "\",\"description\":\"" +
            json_escape(r.description) + "\"}";
  }
  json += "]}\n";
  return make_http_response(200, "OK", "application/json", json);
}

}  // namespace xsearch::net
