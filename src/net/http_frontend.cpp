#include "net/http_frontend.hpp"

namespace xsearch::net {

Result<std::unique_ptr<HttpFrontend>> HttpFrontend::start(
    core::ProxyHandler& proxy, const sgx::AttestationAuthority& authority,
    std::uint16_t port) {
  auto listener = TcpListener::bind(port);
  if (!listener) return listener.status();
  auto frontend = std::unique_ptr<HttpFrontend>(
      new HttpFrontend(proxy, authority, std::move(listener).value()));
  // Attest the enclave up front so misconfiguration fails fast.
  {
    MutexLock lock(frontend->broker_mutex_);
    XS_RETURN_IF_ERROR(frontend->broker_->connect());
  }
  return frontend;
}

HttpFrontend::HttpFrontend(core::ProxyHandler& proxy,
                           const sgx::AttestationAuthority& authority,
                           TcpListener listener)
    : proxy_(&proxy), authority_(&authority), listener_(std::move(listener)) {
  broker_ = std::make_unique<core::ClientBroker>(*proxy_, *authority_,
                                                 proxy_->measurement(),
                                                 /*seed=*/0x477f);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

HttpFrontend::~HttpFrontend() { stop(); }

void HttpFrontend::stop() {
  stopping_.store(true);
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // No thread can be inside accept() anymore: free the port for rebinding.
  listener_.release();
  std::vector<std::thread> workers;
  {
    MutexLock lock(workers_mutex_);
    workers.swap(workers_);
    // Unblock workers parked in recv on a keep-alive connection.
    for (const auto& stream : streams_) stream->shutdown_both();
    streams_.clear();
  }
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
}

void HttpFrontend::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto accepted = listener_.accept();
    if (!accepted) break;
    auto stream = std::make_shared<TcpStream>(std::move(accepted).value());
    MutexLock lock(workers_mutex_);
    streams_.push_back(stream);
    workers_.emplace_back([this, stream] { serve_connection(stream); });
  }
}

void HttpFrontend::serve_connection(const std::shared_ptr<TcpStream>& stream_ptr) {
  TcpStream& stream = *stream_ptr;
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto request = read_http_request(stream);
    if (!request) return;  // connection closed or hopeless input
    requests_.fetch_add(1, std::memory_order_relaxed);
    const Bytes response = handle_request(request.value());
    if (!stream.write_all(response).is_ok()) return;
    // keep-alive: loop for the next request on the same connection.
  }
}

Bytes HttpFrontend::handle_request(const HttpRequest& request) {
  if (request.method != "GET") {
    return make_http_response(405, "Method Not Allowed", "text/plain",
                              "only GET is supported\n");
  }
  if (request.path == "/healthz") {
    return make_http_response(200, "OK", "text/plain", "ok\n");
  }
  if (request.path != "/search") {
    return make_http_response(404, "Not Found", "text/plain", "unknown path\n");
  }
  const auto query = request.param("q");
  if (!query || query->empty()) {
    return make_http_response(400, "Bad Request", "text/plain",
                              "missing query parameter q\n");
  }

  Result<std::vector<engine::SearchResult>> results = [&] {
    MutexLock lock(broker_mutex_);
    return broker_->search(*query);
  }();
  if (!results) {
    return make_http_response(502, "Bad Gateway", "text/plain",
                              results.status().to_string() + "\n");
  }

  std::string json = "{\"query\":\"" + json_escape(*query) + "\",\"results\":[";
  bool first = true;
  for (const auto& r : results.value()) {
    if (!first) json += ',';
    first = false;
    json += "{\"title\":\"" + json_escape(r.title) + "\",\"url\":\"" +
            json_escape(r.url) + "\",\"description\":\"" +
            json_escape(r.description) + "\"}";
  }
  json += "]}\n";
  return make_http_response(200, "OK", "application/json", json);
}

}  // namespace xsearch::net
