#include "net/proxy_server.hpp"

#include <algorithm>
#include <cstring>

#include "xsearch/wire.hpp"

namespace xsearch::net {

namespace {

std::size_t resolve_workers(std::size_t requested) {
  if (requested > 0) return requested;
  return std::max<std::size_t>(8, std::thread::hardware_concurrency());
}

}  // namespace

Result<std::unique_ptr<ProxyServer>> ProxyServer::start(core::ProxyHandler& proxy,
                                                        std::uint16_t port) {
  return start(proxy, port, Options{});
}

Result<std::unique_ptr<ProxyServer>> ProxyServer::start(core::ProxyHandler& proxy,
                                                        std::uint16_t port,
                                                        Options options) {
  auto listener = TcpListener::bind(port);
  if (!listener) return listener.status();
  return std::unique_ptr<ProxyServer>(
      new ProxyServer(proxy, std::move(listener).value(), options));
}

ProxyServer::ProxyServer(core::ProxyHandler& proxy, TcpListener listener,
                         Options options)
    : proxy_(&proxy),
      listener_(std::move(listener)),
      pool_(resolve_workers(options.workers),
            std::max<std::size_t>(1, options.max_pending_connections)) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

ProxyServer::~ProxyServer() { stop(); }

void ProxyServer::stop() {
  stopping_.store(true);
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // No thread can be inside accept() anymore: free the port for rebinding.
  listener_.release();
  {
    // Unblock workers parked in recv on live client connections.
    MutexLock lock(connections_mutex_);
    for (const auto& [id, stream] : live_) stream->shutdown_both();
  }
  // Drains queued connection tasks (each sees stopping_, reaps, returns)
  // and joins the workers. Idempotent.
  pool_.shutdown();
  MutexLock lock(connections_mutex_);
  live_.clear();
}

void ProxyServer::reap(std::uint64_t connection_id) {
  {
    MutexLock lock(connections_mutex_);
    if (live_.erase(connection_id) == 0) return;  // already cleared by stop()
  }
  reaped_.fetch_add(1, std::memory_order_relaxed);
}

void ProxyServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto accepted = listener_.accept();
    if (!accepted) break;  // listener closed or fatal error
    connections_.fetch_add(1, std::memory_order_relaxed);
    auto stream = std::make_shared<TcpStream>(std::move(accepted).value());
    std::uint64_t id = 0;
    {
      MutexLock lock(connections_mutex_);
      id = next_connection_id_++;
      live_.emplace(id, stream);
    }
    const bool queued = pool_.try_submit([this, id, stream] {
      serve_connection(*stream);
      reap(id);
    });
    if (!queued) {
      // Every worker is busy and the pending queue is full: shed the
      // connection instead of accumulating it (the bounded analogue of a
      // saturated server resetting connections).
      (void)write_frame(*stream, FrameType::kError, to_bytes("server busy"));
      reap(id);
      shed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void ProxyServer::serve_connection(TcpStream& stream) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto frame = read_frame(stream);
    if (!frame) return;  // clean close or broken peer

    switch (frame.value().type) {
      case FrameType::kHello: {
        if (frame.value().payload.size() != crypto::kX25519KeySize) {
          (void)write_frame(stream, FrameType::kError, to_bytes("bad hello"));
          return;
        }
        crypto::X25519Key client_pub;
        std::memcpy(client_pub.data(), frame.value().payload.data(),
                    client_pub.size());
        auto response = proxy_->handshake(client_pub);
        if (!response) {
          (void)write_frame(stream, FrameType::kError,
                            to_bytes(response.status().to_string()));
          return;
        }
        Bytes payload;
        core::wire::put_u64(payload, response.value().session_id);
        const Bytes quote = response.value().quote.serialize();
        core::wire::put_u32(payload, static_cast<std::uint32_t>(quote.size()));
        append(payload, quote);
        append(payload, response.value().server_ephemeral_pub);
        if (!write_frame(stream, FrameType::kHelloReply, payload).is_ok()) return;
        break;
      }

      case FrameType::kQuery:
      case FrameType::kBatchQuery: {
        // Identical host-side handling: the frame carries session id +
        // one sealed record; whether that record holds one query or a
        // batch is decided inside the enclave. Only the reply frame type
        // mirrors the request's.
        const FrameType reply_type = frame.value().type == FrameType::kQuery
                                         ? FrameType::kQueryReply
                                         : FrameType::kBatchReply;
        std::size_t offset = 0;
        auto session = core::wire::get_u64(frame.value().payload, offset);
        if (!session) {
          (void)write_frame(stream, FrameType::kError, to_bytes("bad query frame"));
          return;
        }
        auto response = proxy_->handle_query_record(
            session.value(), ByteSpan(frame.value().payload).subspan(offset));
        if (!response) {
          if (!write_frame(stream, FrameType::kError,
                           to_bytes(response.status().to_string()))
                   .is_ok()) {
            return;
          }
          break;
        }
        if (!write_frame(stream, reply_type, response.value()).is_ok()) {
          return;
        }
        break;
      }

      default:
        (void)write_frame(stream, FrameType::kError, to_bytes("unexpected frame"));
        return;
    }
  }
}

}  // namespace xsearch::net
