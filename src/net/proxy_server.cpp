#include "net/proxy_server.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "net/frame.hpp"
#include "xsearch/wire.hpp"

namespace xsearch::net {

namespace {

/// Per-connection protocol: incremental frame parsing on the loop thread,
/// enclave/handler work on dispatch workers. Job bytes are
/// `[type byte][frame payload]` — the single copy out of the recv buffer.
class FrameProtocol final : public ConnectionProtocol {
 public:
  explicit FrameProtocol(core::ProxyHandler* proxy) : proxy_(proxy) {}

  Action on_input(ByteSpan buffered) override {
    Action action;
    const FrameCursor::Step step = FrameCursor::parse(buffered);
    switch (step.state) {
      case FrameCursor::State::kError:
        // Malformed length word: unrecoverable, mirror the historical
        // silent close (read_frame's DATA_LOSS never produced a reply).
        action.close = true;
        return action;
      case FrameCursor::State::kNeedHeader:
      case FrameCursor::State::kNeedBody:
        action.need = step.need;
        // Once the length word is in, the frame has started: the reactor's
        // io budget bounds finishing it (anti-slowloris, as before).
        action.mid_message = buffered.size() >= 4;
        return action;
      case FrameCursor::State::kFrame:
        break;
    }

    const FrameCursor::View& frame = step.frame;
    action.consumed = frame.frame_bytes;
    if (frame.v2) peer_v2_ = true;
    const Deadline request_deadline =
        frame.v2 ? Deadline::from_budget_millis(frame.budget_millis)
                 : Deadline();

    switch (frame.type) {
      case FrameType::kHello:
        if (frame.payload.size() != crypto::kX25519KeySize) {
          action.reply = encode_error(invalid_argument("bad hello"));
          action.close = true;
          return action;
        }
        break;
      case FrameType::kQuery:
      case FrameType::kBatchQuery:
        if (frame.payload.size() < 8) {
          action.reply = encode_error(invalid_argument("bad query frame"));
          action.close = true;
          return action;
        }
        break;
      default:
        action.reply = encode_error(invalid_argument("unexpected frame"));
        action.close = true;
        return action;
    }

    action.dispatch = true;
    action.deadline = request_deadline;
    action.job.reserve(1 + frame.payload.size());
    action.job.push_back(static_cast<std::uint8_t>(frame.type));
    append(action.job, frame.payload);
    return action;
  }

  JobResult run_job(ByteSpan job, const Deadline& deadline) override {
    JobResult result;
    const auto type = static_cast<FrameType>(job[0]);
    const ByteSpan payload = job.subspan(1);

    switch (type) {
      case FrameType::kHello: {
        crypto::X25519Key client_pub;
        std::memcpy(client_pub.data(), payload.data(), client_pub.size());
        auto response = proxy_->handshake(client_pub);
        if (!response) {
          result.reply.push_back(encode_error(response.status()));
          result.close = true;
          return result;
        }
        Bytes body;
        core::wire::put_u64(body, response.value().session_id);
        const Bytes quote = response.value().quote.serialize();
        core::wire::put_u32(body, static_cast<std::uint32_t>(quote.size()));
        append(body, quote);
        append(body, response.value().server_ephemeral_pub);
        push_frame(result.reply, FrameType::kHelloReply, std::move(body));
        return result;
      }

      case FrameType::kQuery:
      case FrameType::kBatchQuery: {
        // Identical host-side handling: the frame carries session id + one
        // sealed record; whether that record holds one query or a batch is
        // decided inside the enclave. Only the reply type mirrors the
        // request's.
        const FrameType reply_type = type == FrameType::kQuery
                                         ? FrameType::kQueryReply
                                         : FrameType::kBatchReply;
        std::size_t offset = 0;
        auto session = core::wire::get_u64(payload, offset);
        if (!session) {
          result.reply.push_back(encode_error(invalid_argument("bad query frame")));
          result.close = true;
          return result;
        }
        auto response = proxy_->handle_query_record(
            session.value(), payload.subspan(offset), deadline);
        if (!response) {
          Status status = response.status();
          if (peer_v2_ && status.code() == StatusCode::kUnavailable) {
            // On the query path UNAVAILABLE means the handler's own
            // dependency (fleet worker, enclave) is the problem — tell the
            // client so it stops retrying a proxy that cannot help it.
            status = upstream_down(status.message());
          }
          result.reply.push_back(encode_error(status));
          return result;  // connection keeps serving, as before
        }
        push_frame(result.reply, reply_type, std::move(response).value());
        return result;
      }

      default:
        result.reply.push_back(encode_error(invalid_argument("unexpected frame")));
        result.close = true;
        return result;
    }
  }

  JobResult shed(const Status& status) override {
    // Shed replies are always typed: a v1-only peer that gets shed reads
    // an unknown frame type and treats the connection as failed, which is
    // the correct outcome for it anyway.
    JobResult result;
    result.reply.push_back(encode_shed_frame(status));
    result.close = true;
    return result;
  }

  /// One contiguous kErrorStatus frame (header glued to payload — error
  /// paths are cold, a copy is fine).
  [[nodiscard]] static Bytes encode_shed_frame(const Status& status) {
    Bytes payload = encode_error_status(status);
    Bytes frame = encode_frame_header(FrameType::kErrorStatus, payload.size())
                      .value();
    append(frame, payload);
    return frame;
  }

 private:
  /// Typed kErrorStatus for v2 peers, legacy kError text otherwise.
  [[nodiscard]] Bytes encode_error(const Status& status) const {
    Bytes payload = peer_v2_ ? encode_error_status(status)
                             : to_bytes(status.to_string());
    const FrameType type =
        peer_v2_ ? FrameType::kErrorStatus : FrameType::kError;
    Bytes frame = encode_frame_header(type, payload.size()).value();
    append(frame, payload);
    return frame;
  }

  /// Queues header + payload as separate buffers; the reactor's vectored
  /// write sends both without a gluing copy.
  static void push_frame(std::vector<Bytes>& out, FrameType type,
                         Bytes payload) {
    out.push_back(encode_frame_header(type, payload.size()).value());
    out.push_back(std::move(payload));
  }

  core::ProxyHandler* proxy_;
  /// Set once the peer sends any v2 frame; only ever touched by the one
  /// thread currently driving this connection (see reactor.hpp).
  bool peer_v2_ = false;
};

}  // namespace

Result<std::unique_ptr<ProxyServer>> ProxyServer::start(core::ProxyHandler& proxy,
                                                        std::uint16_t port) {
  return start(proxy, port, Options{});
}

Result<std::unique_ptr<ProxyServer>> ProxyServer::start(core::ProxyHandler& proxy,
                                                        std::uint16_t port,
                                                        Options options) {
  auto listener = TcpListener::bind(port);
  if (!listener) return listener.status();

  Reactor::Options reactor_options;
  reactor_options.shards = options.shards;
  reactor_options.dispatch_workers = options.workers;
  reactor_options.dispatch_queue =
      std::max<std::size_t>(1, options.max_pending_connections);
  reactor_options.queue_timeout = options.queue_timeout;
  reactor_options.io_budget = options.io_budget;
  reactor_options.idle_ttl = options.idle_ttl;
  reactor_options.max_connections = options.max_connections;
  reactor_options.accept_fault = std::move(options.accept_fault);
  core::ProxyHandler* handler = &proxy;
  reactor_options.protocol_factory = [handler] {
    return std::make_unique<FrameProtocol>(handler);
  };
  reactor_options.encode_shed = [](const Status& status) {
    return FrameProtocol::encode_shed_frame(status);
  };

  auto reactor = Reactor::start(std::move(listener).value(),
                                std::move(reactor_options));
  if (!reactor) return reactor.status();
  return std::unique_ptr<ProxyServer>(
      new ProxyServer(proxy, std::move(reactor).value()));
}

ProxyServer::ProxyServer(core::ProxyHandler& proxy,
                         std::unique_ptr<Reactor> reactor)
    : proxy_(&proxy), reactor_(std::move(reactor)) {}

ProxyServer::~ProxyServer() { stop(); }

void ProxyServer::stop() { reactor_->stop(); }

}  // namespace xsearch::net
