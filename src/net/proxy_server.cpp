#include "net/proxy_server.hpp"

#include <cstring>

#include "xsearch/wire.hpp"

namespace xsearch::net {

Result<std::unique_ptr<ProxyServer>> ProxyServer::start(core::XSearchProxy& proxy,
                                                        std::uint16_t port) {
  auto listener = TcpListener::bind(port);
  if (!listener) return listener.status();
  return std::unique_ptr<ProxyServer>(
      new ProxyServer(proxy, std::move(listener).value()));
}

ProxyServer::ProxyServer(core::XSearchProxy& proxy, TcpListener listener)
    : proxy_(&proxy), listener_(std::move(listener)) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

ProxyServer::~ProxyServer() { stop(); }

void ProxyServer::stop() {
  stopping_.store(true);
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(workers_mutex_);
    workers.swap(workers_);
    // Unblock workers parked in recv on a live client connection.
    for (const auto& stream : streams_) stream->shutdown_both();
    streams_.clear();
  }
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
}

void ProxyServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto accepted = listener_.accept();
    if (!accepted) break;  // listener closed or fatal error
    connections_.fetch_add(1, std::memory_order_relaxed);
    auto stream = std::make_shared<TcpStream>(std::move(accepted).value());
    std::lock_guard lock(workers_mutex_);
    streams_.push_back(stream);
    workers_.emplace_back([this, stream] { serve_connection(stream); });
  }
}

void ProxyServer::serve_connection(const std::shared_ptr<TcpStream>& stream_ptr) {
  TcpStream& stream = *stream_ptr;
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto frame = read_frame(stream);
    if (!frame) return;  // clean close or broken peer

    switch (frame.value().type) {
      case FrameType::kHello: {
        if (frame.value().payload.size() != crypto::kX25519KeySize) {
          (void)write_frame(stream, FrameType::kError, to_bytes("bad hello"));
          return;
        }
        crypto::X25519Key client_pub;
        std::memcpy(client_pub.data(), frame.value().payload.data(),
                    client_pub.size());
        auto response = proxy_->handshake(client_pub);
        if (!response) {
          (void)write_frame(stream, FrameType::kError,
                            to_bytes(response.status().to_string()));
          return;
        }
        Bytes payload;
        core::wire::put_u64(payload, response.value().session_id);
        const Bytes quote = response.value().quote.serialize();
        core::wire::put_u32(payload, static_cast<std::uint32_t>(quote.size()));
        append(payload, quote);
        append(payload, response.value().server_ephemeral_pub);
        if (!write_frame(stream, FrameType::kHelloReply, payload).is_ok()) return;
        break;
      }

      case FrameType::kQuery: {
        std::size_t offset = 0;
        auto session = core::wire::get_u64(frame.value().payload, offset);
        if (!session) {
          (void)write_frame(stream, FrameType::kError, to_bytes("bad query frame"));
          return;
        }
        auto response = proxy_->handle_query_record(
            session.value(), ByteSpan(frame.value().payload).subspan(offset));
        if (!response) {
          if (!write_frame(stream, FrameType::kError,
                           to_bytes(response.status().to_string()))
                   .is_ok()) {
            return;
          }
          break;
        }
        if (!write_frame(stream, FrameType::kQueryReply, response.value()).is_ok()) {
          return;
        }
        break;
      }

      default:
        (void)write_frame(stream, FrameType::kError, to_bytes("unexpected frame"));
        return;
    }
  }
}

}  // namespace xsearch::net
