#include "net/proxy_server.hpp"

#include <algorithm>
#include <cstring>

#include "xsearch/wire.hpp"

namespace xsearch::net {

namespace {

std::size_t resolve_workers(std::size_t requested) {
  if (requested > 0) return requested;
  return std::max<std::size_t>(8, std::thread::hardware_concurrency());
}

}  // namespace

Result<std::unique_ptr<ProxyServer>> ProxyServer::start(core::ProxyHandler& proxy,
                                                        std::uint16_t port) {
  return start(proxy, port, Options{});
}

Result<std::unique_ptr<ProxyServer>> ProxyServer::start(core::ProxyHandler& proxy,
                                                        std::uint16_t port,
                                                        Options options) {
  auto listener = TcpListener::bind(port);
  if (!listener) return listener.status();
  return std::unique_ptr<ProxyServer>(
      new ProxyServer(proxy, std::move(listener).value(), options));
}

ProxyServer::ProxyServer(core::ProxyHandler& proxy, TcpListener listener,
                         Options options)
    : proxy_(&proxy),
      listener_(std::move(listener)),
      options_(options),
      pool_(resolve_workers(options.workers),
            std::max<std::size_t>(1, options.max_pending_connections)) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

ProxyServer::~ProxyServer() { stop(); }

void ProxyServer::stop() {
  stopping_.store(true);
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // No thread can be inside accept() anymore: free the port for rebinding.
  listener_.release();
  {
    // Unblock workers parked in recv on live client connections.
    MutexLock lock(connections_mutex_);
    for (const auto& [id, stream] : live_) stream->shutdown_both();
  }
  // Drains queued connection tasks (each sees stopping_, reaps, returns)
  // and joins the workers. Idempotent.
  pool_.shutdown();
  MutexLock lock(connections_mutex_);
  live_.clear();
}

void ProxyServer::reap(std::uint64_t connection_id) {
  {
    MutexLock lock(connections_mutex_);
    if (live_.erase(connection_id) == 0) return;  // already cleared by stop()
  }
  reaped_.fetch_add(1, std::memory_order_relaxed);
}

void ProxyServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto accepted = listener_.accept();
    if (!accepted) break;  // listener closed or fatal error
    connections_.fetch_add(1, std::memory_order_relaxed);
    auto stream = std::make_shared<TcpStream>(std::move(accepted).value());
    std::uint64_t id = 0;
    {
      MutexLock lock(connections_mutex_);
      id = next_connection_id_++;
      live_.emplace(id, stream);
    }
    const Deadline queue_deadline = options_.queue_timeout > 0
                                        ? Deadline::after(options_.queue_timeout)
                                        : Deadline();
    const bool queued = pool_.try_submit([this, id, stream, queue_deadline] {
      if (queue_deadline.expired() &&
          !stopping_.load(std::memory_order_relaxed)) {
        // The connection waited in the pending queue past its deadline: its
        // client has almost certainly timed out and retried elsewhere.
        // Serving it now would burn a worker on abandoned work, so shed it
        // (typed, so a live client can tell overload from a dead proxy).
        FrameWriteOptions write_options;
        if (options_.io_budget > 0) {
          write_options.io_deadline = Deadline::after(options_.io_budget);
        }
        (void)write_frame(
            *stream, FrameType::kErrorStatus,
            encode_error_status(
                overloaded("server busy: connection expired in accept queue")),
            write_options);
        reap(id);
        queue_expired_.fetch_add(1, std::memory_order_relaxed);
        shed_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      serve_connection(*stream);
      reap(id);
    });
    if (!queued) {
      // Every worker is busy and the pending queue is full: shed the
      // connection instead of accumulating it (the bounded analogue of a
      // saturated server resetting connections).
      (void)write_frame(*stream, FrameType::kError, to_bytes("server busy"));
      reap(id);
      shed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void ProxyServer::serve_connection(TcpStream& stream) {
  // Once the peer sends any v2 frame it understands typed errors; until
  // then every error keeps the legacy kError text shape, byte for byte.
  bool peer_v2 = false;

  // Reply/error writes are bounded by the request's remaining budget (if
  // any) and the server's own io_budget, so one stalled reader cannot
  // wedge a worker.
  const auto write_deadline = [this](const Deadline& request) {
    return options_.io_budget > 0
               ? request.min(Deadline::after(options_.io_budget))
               : request;
  };
  const auto send_error = [&](const Status& status, const Deadline& request) {
    FrameWriteOptions write_options;
    write_options.io_deadline = write_deadline(request);
    if (peer_v2) {
      return write_frame(stream, FrameType::kErrorStatus,
                         encode_error_status(status), write_options);
    }
    return write_frame(stream, FrameType::kError, to_bytes(status.to_string()),
                       write_options);
  };

  while (!stopping_.load(std::memory_order_relaxed)) {
    // Waiting for the next frame is unbounded (idle sessions are legal);
    // once a header arrives the body must finish within io_budget.
    FrameReadOptions read_options;
    read_options.body_budget = options_.io_budget;
    auto frame = read_frame(stream, read_options);
    if (!frame) return;  // clean close, broken peer, or slow-writer bound
    if (frame.value().v2) peer_v2 = true;

    // The client's remaining end-to-end budget, carried on v2 frames.
    const Deadline request_deadline =
        frame.value().v2 ? Deadline::from_budget_millis(frame.value().budget_millis)
                         : Deadline();

    switch (frame.value().type) {
      case FrameType::kHello: {
        if (frame.value().payload.size() != crypto::kX25519KeySize) {
          (void)send_error(invalid_argument("bad hello"), request_deadline);
          return;
        }
        crypto::X25519Key client_pub;
        std::memcpy(client_pub.data(), frame.value().payload.data(),
                    client_pub.size());
        auto response = proxy_->handshake(client_pub);
        if (!response) {
          (void)send_error(response.status(), request_deadline);
          return;
        }
        Bytes payload;
        core::wire::put_u64(payload, response.value().session_id);
        const Bytes quote = response.value().quote.serialize();
        core::wire::put_u32(payload, static_cast<std::uint32_t>(quote.size()));
        append(payload, quote);
        append(payload, response.value().server_ephemeral_pub);
        FrameWriteOptions write_options;
        write_options.io_deadline = write_deadline(request_deadline);
        if (!write_frame(stream, FrameType::kHelloReply, payload, write_options)
                 .is_ok()) {
          return;
        }
        break;
      }

      case FrameType::kQuery:
      case FrameType::kBatchQuery: {
        // Identical host-side handling: the frame carries session id +
        // one sealed record; whether that record holds one query or a
        // batch is decided inside the enclave. Only the reply frame type
        // mirrors the request's.
        const FrameType reply_type = frame.value().type == FrameType::kQuery
                                         ? FrameType::kQueryReply
                                         : FrameType::kBatchReply;
        std::size_t offset = 0;
        auto session = core::wire::get_u64(frame.value().payload, offset);
        if (!session) {
          (void)send_error(invalid_argument("bad query frame"), request_deadline);
          return;
        }
        auto response = proxy_->handle_query_record(
            session.value(), ByteSpan(frame.value().payload).subspan(offset),
            request_deadline);
        if (!response) {
          Status status = response.status();
          if (peer_v2 && status.code() == StatusCode::kUnavailable) {
            // On the query path UNAVAILABLE means the handler's own
            // dependency (fleet worker, enclave) is the problem — tell the
            // client so it stops retrying a proxy that cannot help it.
            status = upstream_down(status.message());
          }
          if (!send_error(status, request_deadline).is_ok()) return;
          break;
        }
        FrameWriteOptions write_options;
        write_options.io_deadline = write_deadline(request_deadline);
        if (!write_frame(stream, reply_type, response.value(), write_options)
                 .is_ok()) {
          return;
        }
        break;
      }

      default:
        (void)send_error(invalid_argument("unexpected frame"), request_deadline);
        return;
    }
  }
}

}  // namespace xsearch::net
