// Minimal HTTP/1.1 support for the compatibility frontend.
//
// The paper notes (§6.3, footnote 3) that "X-Search can be used with
// third-party clients issuing regular HTTP requests, such as wget or curl"
// — and its Figure 5 measurements drove the proxy with wrk2 over HTTP.
// This module implements just enough of HTTP/1.1 for that deployment
// surface: request parsing (request line, headers, query string with
// percent-decoding) and response serialization.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "net/socket.hpp"

namespace xsearch::net {

struct HttpRequest {
  std::string method;                         // "GET", "POST", ...
  std::string path;                           // decoded path, e.g. "/search"
  std::map<std::string, std::string> query;   // decoded query parameters
  std::map<std::string, std::string> headers; // lower-cased field names
  std::string body;

  /// Convenience: a query parameter or nullopt.
  [[nodiscard]] std::optional<std::string> param(std::string_view name) const;
};

/// Percent-decodes a URL component ('+' becomes space). Malformed escapes
/// are passed through literally.
[[nodiscard]] std::string url_decode(std::string_view in);

/// Percent-encodes a URL component.
[[nodiscard]] std::string url_encode(std::string_view in);

/// Parses one HTTP/1.1 request from a raw byte buffer (a complete request
/// including the blank line and any Content-Length body).
[[nodiscard]] Result<HttpRequest> parse_http_request(ByteSpan raw);

/// Reads one HTTP/1.1 request from a stream (bounded at 64 KiB of headers,
/// 1 MiB of body).
[[nodiscard]] Result<HttpRequest> read_http_request(TcpStream& stream);

/// Serializes a response with Content-Length framing.
[[nodiscard]] Bytes make_http_response(int status, std::string_view reason,
                                       std::string_view content_type,
                                       std::string_view body);

/// Reads a full HTTP response from a stream; returns the body. Only
/// Content-Length framing is supported (what make_http_response emits).
[[nodiscard]] Result<std::string> read_http_response_body(TcpStream& stream,
                                                          int* status_out = nullptr);

/// Escapes a string for inclusion in a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view in);

}  // namespace xsearch::net
