// Scale-out front tier: N X-Search proxy workers behind one router.
//
// The paper's proxy is a single SGX enclave, which caps throughput at one
// machine's EPC and core budget. ProxyFleet is the first multi-backend
// layer above it: it owns N XSearchProxy workers — each with its own
// enclave runtime, SessionTable and socket-ocall state — and routes every
// request by *consistent hash of the session id*, so
//
//  * all records of one session land on one worker, in order (the
//    SecureChannel nonce counters require it), while
//  * distinct sessions fan out across the whole fleet.
//
// Session ids are untrusted routing metadata (integrity lives in the
// channel records), so the router picks them: on handshake it draws a
// random id, looks up the owning worker on the hash ring, and proposes the
// id to that worker's enclave. Query records then need nothing but the
// ring lookup — the fleet keeps NO per-session routing table, which is the
// point of consistent hashing: routing state is O(workers), not
// O(sessions), and a worker's death invalidates only its own arc.
//
// Worker lifecycle:
//  * drain(i)   removes worker i's virtual nodes from the ring. Its live
//    sessions remap to ring successors, get "unknown session" there, and
//    re-attest transparently (both brokers already retry once on
//    NOT_FOUND). Sessions on other workers never notice. When the worker
//    checkpoints, drain also seals a final checkpoint (graceful shutdown),
//    so a rolling restart restores with zero history loss.
//  * respawn(i) replaces worker i with a freshly keyed proxy and restores
//    its ring arc. With Options::proxy.checkpoint_dir set, each worker
//    keeps its sealed history under its own `worker-<i>/` subdirectory and
//    the replacement proxy restores it — a *warm* restart whose decoy
//    table is as deep as the last checkpoint, instead of the cold-start
//    obfuscation window a crash used to open. Only the sessions that
//    hashed to worker i must re-attest — the failure domain of a crashed
//    enclave is exactly its own arc, never the fleet.
//
// FleetSupervisor (fleet_supervisor.hpp) automates the crash half:
// heartbeat probes per worker, drain+respawn after a failure threshold.
//
// The fleet implements core::ProxyHandler, so net::ProxyServer fronts a
// fleet exactly as it fronts a single proxy, and core::ClientBroker /
// net::RemoteBroker work against it unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/circuit_breaker.hpp"
#include "common/deadline.hpp"
#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "engine/search_engine.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/proxy.hpp"
#include "xsearch/session_table.hpp"

namespace xsearch::net {

class ProxyFleet : public core::ProxyHandler {
 public:
  struct Options {
    /// Proxy workers in the fleet.
    std::size_t workers = 2;
    /// Virtual nodes per worker on the hash ring. More nodes = smoother
    /// session spread and smaller remap arcs on drain, at O(nodes·workers)
    /// ring memory.
    std::size_t virtual_nodes = 64;
    /// Per-worker proxy configuration. Each worker's seed is domain-
    /// separated from `proxy.seed` by its index, so workers draw
    /// independent key material while a fleet run stays reproducible.
    core::XSearchProxy::Options proxy;
  };

  struct WorkerStats {
    bool live = false;
    /// Requests (handshakes + records) routed to this worker.
    std::uint64_t routed = 0;
    /// Times this worker was respawned.
    std::uint64_t respawns = 0;
    core::SessionTable::Stats sessions;
    core::XSearchProxy::CheckpointStats checkpoint;
    /// Worker's proxy→engine circuit breaker (zeroed when disabled).
    CircuitBreaker::Stats engine_breaker;
    /// Worker's switchless job-ring counters (zeroed when disabled).
    sgx::RingStats ring;
  };

  /// Fleet-wide recovery counters. A worker start is a restore *hit* when
  /// it came back with its sealed history, and a *miss* when a respawn had
  /// to cold-start (no checkpointing, no file yet, or a truncated/tampered
  /// blob that was rejected). The initial boot of a worker is counted only
  /// when it actually restored (a fleet restarted over existing checkpoints
  /// is warm; a first-ever boot is not a failed recovery).
  struct FleetStats {
    std::uint64_t respawns = 0;       // manual + automatic
    std::uint64_t auto_respawns = 0;  // supervisor-initiated (auto_respawn)
    std::uint64_t restore_hits = 0;
    std::uint64_t restore_misses = 0;
    /// restore_hits / (restore_hits + restore_misses); 1.0 when no
    /// restart has happened yet (nothing was ever cold).
    double warm_start_ratio = 1.0;
    /// Engine-breaker health across the fleet: workers whose proxy→engine
    /// breaker is currently NOT closed, and lifetime fast-fail/trip totals.
    std::size_t engine_breakers_tripped_now = 0;
    std::uint64_t engine_breaker_rejected = 0;
    std::uint64_t engine_breaker_trips = 0;
    /// Switchless-path totals summed over live workers (all zero when the
    /// fleet runs with switchless disabled). `ring.fallback_ecalls` vs
    /// `ring.jobs_switchless` is the fleet's exitless hit ratio.
    sgx::RingStats ring;
  };

  /// Builds `options.workers` proxies over the shared `engine` (which may
  /// be null when `options.proxy.contact_engine` is false) and `authority`;
  /// both must outlive the fleet. Every worker runs the same enclave code,
  /// so clients pin the one shared measurement.
  [[nodiscard]] static Result<std::unique_ptr<ProxyFleet>> create(
      const engine::SearchEngine* engine,
      const sgx::AttestationAuthority& authority, Options options);

  ProxyFleet(const ProxyFleet&) = delete;
  ProxyFleet& operator=(const ProxyFleet&) = delete;

  // --- ProxyHandler ---------------------------------------------------------

  /// Routes the handshake: draws a session id (or honors a caller
  /// proposal), finds its ring owner, and proposes the id to that worker.
  [[nodiscard]] Result<core::HandshakeResponse> handshake(
      const crypto::X25519Key& client_ephemeral_pub,
      std::uint64_t proposed_session_id) override;

  /// Routes one record to the session's ring owner. A session whose owner
  /// was drained maps to the successor worker, which reports NOT_FOUND —
  /// the broker's re-attest-and-retry path finishes the migration.
  /// The worker call runs WITHOUT the fleet lock (the worker is pinned by
  /// shared ownership), so a hung enclave stalls only its own arc's
  /// requests — routing, drain and respawn stay responsive.
  [[nodiscard]] Result<Bytes> handle_query_record(std::uint64_t session_id,
                                                  ByteSpan record) override;
  [[nodiscard]] Result<Bytes> handle_query_record(
      std::uint64_t session_id, ByteSpan record,
      const Deadline& deadline) override;

  [[nodiscard]] sgx::Measurement measurement() const override;

  // --- worker lifecycle -----------------------------------------------------

  /// Removes worker `index` from the ring (its sessions migrate to ring
  /// successors on their next query). The worker object stays alive until
  /// respawn so in-flight requests finish. Draining the last live worker
  /// is refused. A checkpointing worker seals a final checkpoint on its
  /// way out (best effort — a crashed enclave cannot, and that is what
  /// the periodic interval is for).
  [[nodiscard]] Status drain(std::size_t index);

  /// `drain` with control over the final checkpoint. The supervisor passes
  /// `seal_final = false` when it drains a worker that timed out (hung, not
  /// crashed): a checkpoint ecall on a wedged enclave could block forever,
  /// and the periodic checkpoint is the designated recovery point anyway.
  [[nodiscard]] Status drain(std::size_t index, bool seal_final);

  /// Replaces worker `index` with a freshly keyed proxy and restores its
  /// ring arc. The replacement restores the worker's sealed checkpoint
  /// when one exists (warm restart; counted in FleetStats), and falls
  /// back to an empty history otherwise (cold — the pre-checkpoint crash
  /// model). Works on both live workers (crash + restart) and drained
  /// ones (rolling restart).
  [[nodiscard]] Status respawn(std::size_t index);

  /// `respawn` as invoked by the supervisor's failure path: additionally
  /// counted in FleetStats::auto_respawns.
  [[nodiscard]] Status auto_respawn(std::size_t index);

  /// Probes worker `index`'s enclave with a heartbeat ecall. UNAVAILABLE
  /// once the enclave crashed; the supervisor respawns after a threshold
  /// of consecutive failures. Runs without the fleet lock held, so a
  /// probe into a HUNG (not crashed) enclave blocks only its caller —
  /// the supervisor bounds that with its own probe deadline.
  [[nodiscard]] Status heartbeat(std::size_t index);

  /// Host-side fault injection: crashes worker `index`'s enclave (every
  /// subsequent ecall on it fails). The failure-injection tests and the
  /// fig5 kill-and-recover bench use this; the supervisor is what brings
  /// the worker back.
  [[nodiscard]] Status kill_worker(std::size_t index);

  /// Host-side handle to worker `index`'s proxy, for fault injection the
  /// crash model cannot express (e.g. wedging an ecall handler to model a
  /// HUNG enclave). Shared ownership: the handle stays valid across a
  /// respawn of the slot — it then refers to the retired proxy.
  [[nodiscard]] std::shared_ptr<core::XSearchProxy> worker_proxy(
      std::size_t index) const;

  // --- introspection --------------------------------------------------------

  [[nodiscard]] std::size_t worker_count() const {
    // The slot count is fixed after create() (respawn replaces slots, never
    // adds them), but the vector is guarded, so take the shared lock —
    // uncontended in practice and provably consistent.
    ReaderLock lock(mutex_);
    return workers_.size();
  }
  [[nodiscard]] std::size_t live_workers() const;
  [[nodiscard]] WorkerStats worker_stats(std::size_t index) const;
  [[nodiscard]] FleetStats fleet_stats() const;

  /// History depth of worker `index` right now — the decoy-quality number
  /// the recovery bench charts across a respawn (0 on a cold start).
  [[nodiscard]] std::size_t worker_history_depth(std::size_t index) const;

  /// Ring owner of `session_id` right now, or `worker_count()` when the
  /// ring is empty. Exposed so tests can assert routing stability.
  [[nodiscard]] std::size_t owner_of(std::uint64_t session_id) const;

 private:
  struct Worker {
    /// Shared ownership: routing copies the pointer under the fleet lock,
    /// releases the lock, then calls. A respawn can swap the slot while
    /// calls are in flight on the retired proxy — it is destroyed when the
    /// last in-flight call returns, never under a caller.
    std::shared_ptr<core::XSearchProxy> proxy;
    bool live = true;
    std::uint64_t respawns = 0;
    std::atomic<std::uint64_t> routed{0};
  };

  explicit ProxyFleet(const engine::SearchEngine* engine,
                      const sgx::AttestationAuthority& authority,
                      Options options);

  /// Derives worker `index`'s per-slot proxy options. Reads the worker's
  /// respawn count, so the caller holds `mutex_` (either mode).
  [[nodiscard]] core::XSearchProxy::Options worker_options(std::size_t index)
      const XS_REQUIRES_SHARED(mutex_);

  /// Rebuilds ring_ from the live workers. Caller holds `mutex_` exclusive.
  void rebuild_ring_locked() XS_REQUIRES(mutex_);

  /// Folds a (re)started worker's restore outcome into the fleet counters.
  /// `initial_spawn` exempts checkpoint-less workers from the miss count.
  void account_restore(const core::XSearchProxy& proxy, bool initial_spawn);

  /// Ring lookup. Caller holds `mutex_` (either mode). Returns
  /// workers_.size() when the ring is empty.
  [[nodiscard]] std::size_t owner_locked(std::uint64_t session_id) const
      XS_REQUIRES_SHARED(mutex_);

  const engine::SearchEngine* engine_;
  const sgx::AttestationAuthority* authority_;
  const Options options_;

  // Guards the ring and worker slots. Routing holds it shared for the
  // duration of the worker call, so drain/respawn (exclusive) waits out
  // in-flight requests instead of destroying a proxy under them.
  mutable SharedMutex mutex_;
  // Worker slots: the vector (and each Worker's live/respawns fields, which
  // the analysis cannot tie to a guard owned by another object) follow the
  // same rule — reads under a shared hold of mutex_, writes under exclusive.
  std::vector<std::unique_ptr<Worker>> workers_ XS_GUARDED_BY(mutex_);
  /// (point on the 64-bit ring, worker index), sorted by point.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_ XS_GUARDED_BY(mutex_);
  /// Session-id source for handshakes (ids are routing metadata, so a
  /// deterministic stream is fine — uniqueness per worker is enforced by
  /// the worker's table refusing duplicate proposals).
  Mutex rng_mutex_;
  Rng session_id_rng_ XS_GUARDED_BY(rng_mutex_);

  std::atomic<std::uint64_t> respawns_total_{0};
  std::atomic<std::uint64_t> auto_respawns_{0};
  std::atomic<std::uint64_t> restore_hits_{0};
  std::atomic<std::uint64_t> restore_misses_{0};
};

}  // namespace xsearch::net
