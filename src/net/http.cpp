#include "net/http.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace xsearch::net {

namespace {

constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 1024 * 1024;

[[nodiscard]] std::string to_lower(std::string_view in) {
  std::string out(in);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

[[nodiscard]] int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void parse_query_string(std::string_view qs, std::map<std::string, std::string>& out) {
  while (!qs.empty()) {
    const auto amp = qs.find('&');
    const std::string_view pair = qs.substr(0, amp);
    const auto eq = pair.find('=');
    if (eq != std::string_view::npos) {
      out[url_decode(pair.substr(0, eq))] = url_decode(pair.substr(eq + 1));
    } else if (!pair.empty()) {
      out[url_decode(pair)] = "";
    }
    if (amp == std::string_view::npos) break;
    qs.remove_prefix(amp + 1);
  }
}

}  // namespace

std::optional<std::string> HttpRequest::param(std::string_view name) const {
  const auto it = query.find(std::string(name));
  if (it == query.end()) return std::nullopt;
  return it->second;
}

std::string url_decode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '+') {
      out.push_back(' ');
    } else if (in[i] == '%' && i + 2 < in.size() && hex_digit(in[i + 1]) >= 0 &&
               hex_digit(in[i + 2]) >= 0) {
      out.push_back(static_cast<char>(hex_digit(in[i + 1]) * 16 + hex_digit(in[i + 2])));
      i += 2;
    } else {
      out.push_back(in[i]);
    }
  }
  return out;
}

std::string url_encode(std::string_view in) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    const auto u = static_cast<unsigned char>(c);
    if (std::isalnum(u) || c == '-' || c == '_' || c == '.' || c == '~') {
      out.push_back(c);
    } else if (c == ' ') {
      out.push_back('+');
    } else {
      out.push_back('%');
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0x0f]);
    }
  }
  return out;
}

Result<HttpRequest> parse_http_request(ByteSpan raw) {
  const std::string_view text(reinterpret_cast<const char*>(raw.data()), raw.size());
  const auto header_end = text.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    return data_loss("http: missing header terminator");
  }

  HttpRequest request;
  std::size_t line_start = 0;
  bool first_line = true;
  while (line_start < header_end) {
    auto line_end = text.find("\r\n", line_start);
    if (line_end == std::string_view::npos || line_end > header_end) {
      line_end = header_end;
    }
    const std::string_view line = text.substr(line_start, line_end - line_start);
    line_start = line_end + 2;

    if (first_line) {
      first_line = false;
      const auto sp1 = line.find(' ');
      const auto sp2 = line.rfind(' ');
      if (sp1 == std::string_view::npos || sp2 == sp1) {
        return data_loss("http: malformed request line");
      }
      request.method = std::string(line.substr(0, sp1));
      const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::string_view version = line.substr(sp2 + 1);
      if (!version.starts_with("HTTP/1.")) {
        return data_loss("http: unsupported version");
      }
      const auto qmark = target.find('?');
      request.path = url_decode(target.substr(0, qmark));
      if (qmark != std::string_view::npos) {
        parse_query_string(target.substr(qmark + 1), request.query);
      }
    } else {
      const auto colon = line.find(':');
      if (colon == std::string_view::npos) {
        return data_loss("http: malformed header line");
      }
      request.headers[to_lower(trim(line.substr(0, colon)))] =
          std::string(trim(line.substr(colon + 1)));
    }
  }
  if (first_line) return data_loss("http: empty request");

  request.body = std::string(text.substr(header_end + 4));
  return request;
}

Result<HttpRequest> read_http_request(TcpStream& stream) {
  // Read byte-by-byte batches until the blank line (bounded).
  Bytes buffer;
  while (buffer.size() < kMaxHeaderBytes) {
    auto chunk = stream.read_exact(1);
    if (!chunk) return chunk.status();
    buffer.push_back(chunk.value()[0]);
    if (buffer.size() >= 4 &&
        std::string_view(reinterpret_cast<const char*>(buffer.data()), buffer.size())
            .ends_with("\r\n\r\n")) {
      break;
    }
  }
  auto request = parse_http_request(buffer);
  if (!request) return request.status();

  const auto cl = request.value().headers.find("content-length");
  if (cl != request.value().headers.end()) {
    std::size_t length = 0;
    const auto [ptr, ec] = std::from_chars(
        cl->second.data(), cl->second.data() + cl->second.size(), length);
    if (ec != std::errc() || length > kMaxBodyBytes) {
      return data_loss("http: bad content-length");
    }
    auto body = stream.read_exact(length);
    if (!body) return body.status();
    request.value().body = to_string(body.value());
  }
  return request;
}

Bytes make_http_response(int status, std::string_view reason,
                         std::string_view content_type, std::string_view body) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " + std::string(reason) +
                     "\r\nContent-Type: " + std::string(content_type) +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: keep-alive\r\n\r\n";
  Bytes out = to_bytes(head);
  append(out, to_bytes(body));
  return out;
}

Result<std::string> read_http_response_body(TcpStream& stream, int* status_out) {
  Bytes buffer;
  while (buffer.size() < kMaxHeaderBytes) {
    auto chunk = stream.read_exact(1);
    if (!chunk) return chunk.status();
    buffer.push_back(chunk.value()[0]);
    if (buffer.size() >= 4 &&
        std::string_view(reinterpret_cast<const char*>(buffer.data()), buffer.size())
            .ends_with("\r\n\r\n")) {
      break;
    }
  }
  const std::string_view head(reinterpret_cast<const char*>(buffer.data()),
                              buffer.size());
  if (!head.starts_with("HTTP/1.")) return data_loss("http: bad status line");
  if (status_out != nullptr) {
    const auto sp = head.find(' ');
    int status = 0;
    if (sp != std::string_view::npos) {
      (void)std::from_chars(head.data() + sp + 1, head.data() + sp + 4, status);
    }
    *status_out = status;
  }

  std::size_t length = 0;
  const std::string lower = to_lower(head);
  const auto pos = lower.find("content-length:");
  if (pos != std::string::npos) {
    const char* begin = lower.data() + pos + 15;
    while (*begin == ' ') ++begin;
    (void)std::from_chars(begin, lower.data() + lower.size(), length);
  }
  if (length > kMaxBodyBytes) return data_loss("http: response too large");
  auto body = stream.read_exact(length);
  if (!body) return body.status();
  return to_string(body.value());
}

std::string json_escape(std::string_view in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace xsearch::net
