#include "common/queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace xsearch {
namespace {

TEST(BoundedQueue, PushPopSingleThread) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
}

TEST(BoundedQueue, TryPushFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
}

TEST(BoundedQueue, TryPopFailsWhenEmpty) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, CloseUnblocksPoppers) {
  BoundedQueue<int> q(2);
  std::thread popper([&] { EXPECT_FALSE(q.pop().has_value()); });
  q.close();
  popper.join();
}

TEST(BoundedQueue, CloseDrainsRemainingItems) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, ManyProducersManyConsumers) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kItemsPerProducer = 5000;
  BoundedQueue<int> q(64);
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kItemsPerProducer; ++i) ASSERT_TRUE(q.push(i));
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++popped;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (std::size_t c = kProducers; c < threads.size(); ++c) threads[c].join();

  const long long expected =
      static_cast<long long>(kProducers) * kItemsPerProducer * (kItemsPerProducer + 1) / 2;
  EXPECT_EQ(popped.load(), kProducers * kItemsPerProducer);
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, ExecutesAllTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(pool.submit([&count] { ++count; }));
    }
    pool.shutdown();
  }
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, SubmitAfterShutdownFails) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
}

}  // namespace
}  // namespace xsearch
