// Warm-restart tests for the proxy-integrated checkpointer: periodic
// sealing during traffic, restore at construction, clean cold-start
// fallback on tampered/truncated blobs, and the v2 per-session obfuscator
// state that keeps resumed sessions off their spent decoy streams.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "crypto/x25519.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/broker.hpp"
#include "xsearch/checkpoint.hpp"
#include "xsearch/proxy.hpp"
#include "xsearch/session_table.hpp"

namespace xsearch::core {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest()
      : dir_(std::filesystem::temp_directory_path() /
             ("xs_recovery_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()))),
        authority_(to_bytes("recovery-test-root")) {
    std::filesystem::remove_all(dir_);
  }
  ~RecoveryTest() override { std::filesystem::remove_all(dir_); }

  XSearchProxy::Options checkpointing_options(std::uint64_t interval = 4) const {
    XSearchProxy::Options options;
    options.k = 2;
    options.history_capacity = 1'000;
    options.contact_engine = false;  // isolate the checkpoint/session path
    options.checkpoint_dir = dir_;
    options.checkpoint_interval_queries = interval;
    return options;
  }

  std::filesystem::path dir_;
  sgx::AttestationAuthority authority_;
};

TEST_F(RecoveryTest, PeriodicCheckpointThenWarmRestart) {
  std::size_t depth_at_crash = 0;
  {
    XSearchProxy proxy(nullptr, authority_, checkpointing_options());
    ASSERT_TRUE(proxy.init_status().is_ok());
    ClientBroker broker(proxy, authority_, proxy.measurement(), 1);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(broker.search("query " + std::to_string(i)).is_ok());
    }
    const auto stats = proxy.checkpoint_stats();
    EXPECT_TRUE(stats.enabled);
    EXPECT_GE(stats.written, 2u);  // interval 4, 10 queries
    EXPECT_EQ(stats.write_failures, 0u);
    depth_at_crash = proxy.history_size();
    EXPECT_EQ(depth_at_crash, 10u);
  }  // proxy destroyed: the "crash" (no drain-time checkpoint beyond the
     // periodic ones — last seal was at query 8)

  XSearchProxy restarted(nullptr, authority_, checkpointing_options());
  ASSERT_TRUE(restarted.init_status().is_ok());
  const auto stats = restarted.checkpoint_stats();
  EXPECT_TRUE(stats.restore_attempted);
  EXPECT_TRUE(stats.restore_hit);
  EXPECT_EQ(stats.restored_entries, 8u);  // newest periodic seal
  EXPECT_EQ(restarted.history_size(), 8u);

  // The restored table feeds obfuscation immediately: no cold start.
  ClientBroker broker(restarted, authority_, restarted.measurement(), 2);
  EXPECT_TRUE(broker.search("after restart").is_ok());
}

TEST_F(RecoveryTest, ExplicitCheckpointCapturesFullDepth) {
  {
    XSearchProxy proxy(nullptr, authority_, checkpointing_options(/*interval=*/0));
    ClientBroker broker(proxy, authority_, proxy.measurement(), 3);
    for (int i = 0; i < 7; ++i) {
      ASSERT_TRUE(broker.search("q" + std::to_string(i)).is_ok());
    }
    EXPECT_EQ(proxy.checkpoint_stats().written, 0u);  // interval 0: no periodic
    ASSERT_TRUE(proxy.checkpoint_now().is_ok());
    EXPECT_EQ(proxy.checkpoint_stats().written, 1u);
  }
  XSearchProxy restarted(nullptr, authority_, checkpointing_options(0));
  EXPECT_TRUE(restarted.checkpoint_stats().restore_hit);
  EXPECT_EQ(restarted.history_size(), 7u);
}

TEST_F(RecoveryTest, CheckpointNowWithoutDirIsRefused) {
  XSearchProxy::Options options;
  options.k = 2;
  options.history_capacity = 100;
  options.contact_engine = false;
  XSearchProxy proxy(nullptr, authority_, options);
  const Status status = proxy.checkpoint_now();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(proxy.checkpoint_stats().enabled);
}

TEST_F(RecoveryTest, TamperedCheckpointFallsBackToCleanColdStart) {
  {
    XSearchProxy proxy(nullptr, authority_, checkpointing_options());
    ClientBroker broker(proxy, authority_, proxy.measurement(), 4);
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(broker.search("secret " + std::to_string(i)).is_ok());
    }
  }
  // Byzantine host flips one ciphertext byte.
  const auto path = dir_ / "history.ckpt";
  auto blob = read_checkpoint_file(path);
  ASSERT_TRUE(blob.is_ok());
  Bytes tampered = blob.value();
  tampered[tampered.size() / 2] ^= 1;
  ASSERT_TRUE(write_checkpoint_file(path, tampered).is_ok());

  XSearchProxy restarted(nullptr, authority_, checkpointing_options());
  ASSERT_TRUE(restarted.init_status().is_ok());  // rejection is not fatal
  const auto stats = restarted.checkpoint_stats();
  EXPECT_TRUE(stats.restore_attempted);
  EXPECT_FALSE(stats.restore_hit);
  EXPECT_EQ(restarted.history_size(), 0u);  // cold, never a partial window

  // And the cold proxy serves normally.
  ClientBroker broker(restarted, authority_, restarted.measurement(), 5);
  EXPECT_TRUE(broker.search("fresh query").is_ok());
}

TEST_F(RecoveryTest, TruncatedCheckpointFallsBackToCleanColdStart) {
  {
    XSearchProxy proxy(nullptr, authority_, checkpointing_options());
    ClientBroker broker(proxy, authority_, proxy.measurement(), 6);
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(broker.search("will truncate " + std::to_string(i)).is_ok());
    }
  }
  const auto path = dir_ / "history.ckpt";
  auto blob = read_checkpoint_file(path);
  ASSERT_TRUE(blob.is_ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(blob.value().data()),
              static_cast<std::streamsize>(blob.value().size() / 3));
  }

  XSearchProxy restarted(nullptr, authority_, checkpointing_options());
  ASSERT_TRUE(restarted.init_status().is_ok());
  EXPECT_FALSE(restarted.checkpoint_stats().restore_hit);
  EXPECT_EQ(restarted.history_size(), 0u);
}

TEST_F(RecoveryTest, RestoreRespectsNarrowerWindow) {
  {
    XSearchProxy::Options wide = checkpointing_options(/*interval=*/0);
    wide.history_capacity = 100;
    XSearchProxy proxy(nullptr, authority_, wide);
    ClientBroker broker(proxy, authority_, proxy.measurement(), 7);
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(broker.search("wide " + std::to_string(i)).is_ok());
    }
    ASSERT_TRUE(proxy.checkpoint_now().is_ok());
  }
  // Operator shrinks the window across the restart: only the newest
  // `capacity` checkpointed entries may land.
  XSearchProxy::Options narrow = checkpointing_options(/*interval=*/0);
  narrow.history_capacity = 10;
  XSearchProxy restarted(nullptr, authority_, narrow);
  EXPECT_TRUE(restarted.checkpoint_stats().restore_hit);
  EXPECT_EQ(restarted.history_size(), 10u);
}

TEST_F(RecoveryTest, CheckpointSealsPerSessionState) {
  {
    XSearchProxy proxy(nullptr, authority_, checkpointing_options(/*interval=*/0));
    ClientBroker broker(proxy, authority_, proxy.measurement(), 8);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(broker.search("session state " + std::to_string(i)).is_ok());
    }
    ASSERT_TRUE(proxy.checkpoint_now().is_ok());
  }
  XSearchProxy restarted(nullptr, authority_, checkpointing_options(0));
  const auto stats = restarted.checkpoint_stats();
  EXPECT_TRUE(stats.restore_hit);
  EXPECT_EQ(stats.restored_sessions, 1u);  // the broker's one live session
}

// The v2 privacy property at the RNG level: a session resumed under its
// pre-crash id must not replay the decoy draws the crashed proxy already
// made — identical draws would let the engine link pre- and post-restart
// traffic. The restored generation advances the stream derivation.
TEST_F(RecoveryTest, ResumedSessionDoesNotReplayDecoyStream) {
  const auto make_channel = [] {
    crypto::X25519Key static_seed{};
    static_seed[0] = 0x11;
    crypto::X25519Key eph_seed{};
    eph_seed[0] = 0x22;
    crypto::X25519Key client_seed{};
    client_seed[0] = 0x33;
    const auto statics = crypto::x25519_keypair_from_seed(crypto::X25519Secret(static_seed));
    const auto eph = crypto::x25519_keypair_from_seed(crypto::X25519Secret(eph_seed));
    const auto client = crypto::x25519_keypair_from_seed(crypto::X25519Secret(client_seed));
    return crypto::SecureChannel::responder(statics, eph, client.public_key);
  };
  constexpr std::uint64_t kSessionId = 777;
  constexpr std::uint64_t kSeed = 42;

  const auto first_draws = [&](SessionTable& table) {
    const std::uint64_t id = table.insert(make_channel(), kSessionId);
    EXPECT_EQ(id, kSessionId);
    auto session = table.acquire(kSessionId);
    EXPECT_TRUE(static_cast<bool>(session));
    std::vector<std::uint64_t> draws;
    for (int i = 0; i < 4; ++i) draws.push_back(session.rng().next());
    return draws;
  };

  SessionTable::Options options;
  options.rng_seed = kSeed;

  SessionTable original(options);
  const auto pre_crash = first_draws(original);

  // Same seed, same id, no restored state: the stream replays — this is
  // exactly the exposure the v2 session section exists to close.
  SessionTable naive(options);
  EXPECT_EQ(first_draws(naive), pre_crash);

  // With the checkpointed obfuscation count installed, the resumed session
  // draws a fresh stream.
  SessionTable restored(options);
  restored.set_resume_generations({{kSessionId, 4}});
  EXPECT_NE(first_draws(restored), pre_crash);

  // Sessions under other ids are untouched by the restored state.
  SessionTable other(options);
  other.set_resume_generations({{kSessionId + 1, 9}});
  EXPECT_EQ(first_draws(other), pre_crash);

  // Generations accumulate across a SECOND crash: the restored table's own
  // checkpoint seals base + obfuscations-since (here 4 + 4), so the next
  // restore derives yet another fresh stream instead of regressing to one
  // already spent — and carries forward restored ids that never resumed.
  {
    auto session = restored.acquire(kSessionId);
    ASSERT_TRUE(static_cast<bool>(session));
    for (int i = 0; i < 4; ++i) session.note_obfuscation();
  }
  const auto generations = restored.checkpoint_generations();
  ASSERT_EQ(generations.size(), 1u);
  EXPECT_EQ(generations.front(), (std::pair<std::uint64_t, std::uint64_t>{
                                     kSessionId, 8u}));
  SessionTable restored2(options);
  restored2.set_resume_generations(generations);
  const auto second_restore = first_draws(restored2);
  EXPECT_NE(second_restore, pre_crash);
  // ...and differs from the first restore's stream too (generation 8 ≠ 4).
  SessionTable restored_again(options);
  restored_again.set_resume_generations({{kSessionId, 4}});
  EXPECT_NE(second_restore, first_draws(restored_again));
  // Carried forward without being resumed: a table that restored the state
  // but never saw the session re-checkpoints it unchanged.
  SessionTable idle(options);
  idle.set_resume_generations(generations);
  EXPECT_EQ(idle.checkpoint_generations(), generations);

  // Eviction must not rewind a stream either: after the id departs (LRU)
  // and returns within one run, it resumes past the spent draws, and the
  // spent position survives into checkpoints taken while the id is gone.
  SessionTable::Options tiny = options;
  tiny.capacity = 1;
  SessionTable churn(tiny);
  const auto spent = first_draws(churn);  // id 777, 4 raw draws
  {
    auto session = churn.acquire(kSessionId);
    ASSERT_TRUE(static_cast<bool>(session));
    for (int i = 0; i < 3; ++i) session.note_obfuscation();
  }
  ASSERT_EQ(churn.insert(make_channel(), kSessionId + 1), kSessionId + 1);
  EXPECT_EQ(churn.size(), 1u);  // capacity 1: id 777 was evicted
  const auto checkpointed = churn.checkpoint_generations();
  ASSERT_EQ(checkpointed.size(), 1u);  // 778 has no draws; 777 retained
  EXPECT_EQ(checkpointed.front(),
            (std::pair<std::uint64_t, std::uint64_t>{kSessionId, 3u}));
  EXPECT_NE(first_draws(churn), spent);  // re-insert resumes, not replays
}

}  // namespace
}  // namespace xsearch::core
