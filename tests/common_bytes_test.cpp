#include "common/bytes.hpp"

#include <gtest/gtest.h>

namespace xsearch {
namespace {

TEST(Bytes, HexEncodeEmpty) { EXPECT_EQ(hex_encode({}), ""); }

TEST(Bytes, HexEncodeKnown) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(hex_encode(data), "0001abff");
}

TEST(Bytes, HexDecodeKnown) {
  EXPECT_EQ(hex_decode("0001abff"), (Bytes{0x00, 0x01, 0xab, 0xff}));
  EXPECT_EQ(hex_decode("0001ABFF"), (Bytes{0x00, 0x01, 0xab, 0xff}));
}

TEST(Bytes, HexDecodeRejectsOddLength) { EXPECT_TRUE(hex_decode("abc").empty()); }

TEST(Bytes, HexDecodeRejectsNonHex) { EXPECT_TRUE(hex_decode("zz").empty()); }

TEST(Bytes, HexRoundTrip) {
  Bytes data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(hex_decode(hex_encode(data)), data);
}

TEST(Bytes, StringConversionRoundTrip) {
  const std::string s = "the quick brown fox";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(Bytes, EndianHelpers) {
  std::uint8_t buf[8];
  store_be32(buf, 0x01020304u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
  EXPECT_EQ(load_be32(buf), 0x01020304u);

  store_le32(buf, 0x01020304u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(load_le32(buf), 0x01020304u);

  store_le64(buf, 0x0102030405060708ull);
  EXPECT_EQ(load_le64(buf), 0x0102030405060708ull);
}

TEST(Bytes, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));
  EXPECT_TRUE(constant_time_equal({}, {}));
}

TEST(Bytes, Append) {
  Bytes dst = {1};
  append(dst, Bytes{2, 3});
  EXPECT_EQ(dst, (Bytes{1, 2, 3}));
}

}  // namespace
}  // namespace xsearch
