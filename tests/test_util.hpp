// Small helpers shared across test binaries (each test .cpp compiles into
// its own executable, so these stay header-only).
#pragma once

#include <chrono>
#include <functional>
#include <thread>

namespace xsearch::testutil {

/// Polls `condition` for up to five seconds — for asynchronous effects
/// (connection reaping, supervisor probe/respawn cycles) that complete
/// "soon" but on their own thread's schedule.
inline bool eventually(const std::function<bool()>& condition) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return condition();
}

}  // namespace xsearch::testutil
