// Regression tests for tools/tcb_lint.py, the TCB-boundary linter.
//
// Each case shells out to the linter (python3, stdlib only) against either
// the checked-in fixtures under tests/lint_fixtures/ or the real tree, and
// asserts on exit status + output. This keeps the linter itself under
// ctest: a regex regression that stops flagging host I/O in trusted code
// fails here, not silently in CI.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

#ifndef XS_SOURCE_DIR
#error "XS_SOURCE_DIR must point at the repo root (set by CMakeLists.txt)"
#endif

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run(const std::string& command) {
  RunResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  while (std::fgets(buffer, sizeof buffer, pipe) != nullptr) {
    result.output += buffer;
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

bool python_available() {
  return run("python3 --version").exit_code == 0;
}

std::string lint(const std::string& config, const std::string& only = "") {
  std::string cmd = "python3 " XS_SOURCE_DIR "/tools/tcb_lint.py --root " XS_SOURCE_DIR
                    " --config " + config;
  if (!only.empty()) cmd += " --only " + only;
  return cmd;
}

const std::string kFixtureConfig =
    XS_SOURCE_DIR "/tests/lint_fixtures/tcb_fixture.toml";
const std::string kRealConfig = XS_SOURCE_DIR "/tools/tcb_boundary.toml";

class TcbLintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!python_available()) GTEST_SKIP() << "python3 not on PATH";
  }
};

TEST_F(TcbLintTest, TrustedFileCallingRecvFails) {
  const auto r =
      run(lint(kFixtureConfig, "tests/lint_fixtures/trusted/bad_recv.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("trusted-host-io"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("bad_recv.cpp"), std::string::npos) << r.output;
}

TEST_F(TcbLintTest, WaivedLinePassesAndIsCounted) {
  const auto r =
      run(lint(kFixtureConfig, "tests/lint_fixtures/trusted/waived_recv.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s), 1 waiver(s)"), std::string::npos)
      << r.output;
  // The written reason is echoed, so reviewers see it in CI output.
  EXPECT_NE(r.output.find("demonstrates the per-line waiver syntax"),
            std::string::npos)
      << r.output;
}

TEST_F(TcbLintTest, WaiverWithoutReasonIsAFinding) {
  const auto r =
      run(lint(kFixtureConfig, "tests/lint_fixtures/trusted/bare_waiver.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("no written reason"), std::string::npos) << r.output;
}

TEST_F(TcbLintTest, UntrustedIncludeOfEnclaveHeaderFails) {
  const auto r = run(
      lint(kFixtureConfig, "tests/lint_fixtures/untrusted/bad_include.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("untrusted-enclave-header"), std::string::npos)
      << r.output;
}

// The acceptance gate: the real tree must lint clean — zero unwaived
// findings against tools/tcb_boundary.toml. Any new host-ism in trusted
// code (or enclave peek from untrusted code) fails this test locally
// before CI ever sees it.
TEST_F(TcbLintTest, RealTreeIsClean) {
  const auto r = run(lint(kRealConfig));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

}  // namespace
